"""Packaging metadata (legacy setuptools path).

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build; ``python setup.py develop``
installs the same editable package through the legacy path.

The one runtime dependency is numpy, for the array-native verification
core (``repro.core.batch``, ``repro.graphs.csr``).  The library still
*imports* without it — verification then stays on the pure-python
per-node path and every scheme reports ``batch=no`` — but installs
declare it so the fast path works out of the box.
"""

from setuptools import find_packages, setup

setup(
    name="repro-pls",
    version="0.7.0",
    description=(
        "Reproduction of Korman-Kutten-Peleg proof labeling schemes "
        "(PODC 2005)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
