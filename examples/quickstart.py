#!/usr/bin/env python3
"""Quickstart: certify a spanning tree and catch a corruption.

Walks through the full proof-labeling-scheme loop on one graph:

1. build a random connected network;
2. label it with a legal spanning tree (parent pointers);
3. run the prover to get the Θ(log n) certificates;
4. run the one-round verifier — every node accepts;
5. corrupt two pointers and watch nodes reject, under both the stale
   honest certificates and a budgeted adversary trying to hide it.

Run: ``python examples/quickstart.py``
"""

from __future__ import annotations

from repro import SpanningTreePointerScheme, connected_gnp, make_rng
from repro.core.soundness import attack


def main() -> None:
    rng = make_rng(2025)
    graph = connected_gnp(24, 0.15, rng)
    scheme = SpanningTreePointerScheme()
    print(f"network: {graph!r}, scheme: {scheme.name} ({scheme.size_bound})")

    # A legal configuration and its certificates.
    config = scheme.language.member_configuration(graph, rng=rng)
    assignment = scheme.assignment(config)
    print(f"proof size: {assignment.max_bits} bits per node "
          f"(log2 n = {graph.n.bit_length() - 1})")

    verdict = scheme.run(config)
    print(f"verification on the legal tree: all accept = {verdict.all_accept}")

    # Corrupt two pointers of *this* tree (retry if the corruption
    # happens to produce another legal tree).
    language = scheme.language
    while True:
        corrupted = config.labeling.corrupted(rng, 2, language.random_corruption)
        bad = config.with_labeling(corrupted)
        if not language.is_member(bad):
            break
    distance = config.labeling.hamming_distance(bad.labeling)
    stale = scheme.run(bad)  # stale honest certificates
    print(f"after corrupting {distance} states: "
          f"{stale.reject_count} nodes reject with honest certificates")

    # An adversary tries to craft certificates that hide the corruption.
    result = attack(scheme, bad, rng=rng, trials=100, related=[config])
    print(f"adversary ({result.evaluations} assignments tried): "
          f"fooled = {result.fooled}, best it managed = "
          f"{result.min_rejects} rejecting node(s)")
    assert not result.fooled, "soundness violation!"
    print("soundness holds: every assignment leaves a rejecting node")


if __name__ == "__main__":
    main()
