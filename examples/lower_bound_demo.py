#!/usr/bin/env python3
"""The Ω(log n) lower bound, demonstrated constructively.

The paper proves that spanning trees cannot be certified with
``o(log n)``-bit certificates.  This demo executes the argument's
machinery against budget-truncated schemes:

* **soundness failure** — with ``b`` bits and modular counters, the
  cut-and-plug adversary builds an all-clockwise pointer *cycle* (no
  tree at all!) that every node accepts, whenever ``2^b`` divides ``n``;
  and a two-root path accepted end to end by picking colliding root
  identifiers, whenever the id universe allows a collision;
* **completeness failure** — keeping the strict verifier instead makes
  honest deep trees uncertifiable past depth ``2^b``;
* the threshold where both attacks die tracks ``log₂`` of the id
  universe — which is the lower bound.

Run: ``python examples/lower_bound_demo.py``
"""

from __future__ import annotations

import math

from repro.lowerbounds import (
    completeness_failure_depth,
    minimum_surviving_budget,
    pointer_cycle_attack,
    two_root_path_attack,
)


def main() -> None:
    n = 32
    print(f"--- soundness attacks on C_{n} / P_{n} (id universe n^2) ---")
    for bits in (1, 2, 3, 4, 5):
        cycle = pointer_cycle_attack(n, bits)
        path = two_root_path_attack(n, bits)
        print(f"b={bits}: pointer-cycle fooled={cycle.fooled} "
              f"(rejects={cycle.verdict.reject_count}), "
              f"two-root-path fooled={path.fooled} "
              f"(rejects={path.verdict.reject_count})")

    print("\n--- completeness failure of the strict truncation ---")
    for bits in (1, 2, 3, 4, 5):
        depth = completeness_failure_depth(bits, max_n=200)
        print(f"b={bits}: honest paths of length >= {depth} uncertifiable "
              f"(theory 2^{bits}+1 = {2 ** bits + 1})")

    print("\n--- the threshold ---")
    for size in (8, 16, 32, 64, 128):
        budget = minimum_surviving_budget(size)
        print(f"n={size:4d}: attacks die at b={budget:2d} bits "
              f"(log2 of id universe = {math.log2(size * size):.0f})")
    print("\ncertificates must be able to name the root: Omega(log n).")


if __name__ == "__main__":
    main()
