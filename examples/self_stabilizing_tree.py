#!/usr/bin/env python3
"""Self-stabilizing spanning tree with proof-labeling detection.

The paper's motivating application.  A max-root BFS protocol builds a
spanning tree and goes silent; its registers double as proof-labeling
certificates, so a one-round verifier can watch over the silent system
forever.  The demo:

1. stabilizes the protocol from adversarial garbage;
2. shows the silent state passes verification at every node;
3. injects transient faults and shows detection in a single sweep;
4. recovers with guarded local correction and compares the work against
   the global-reset baseline.

Run: ``python examples/self_stabilizing_tree.py``
"""

from __future__ import annotations

from repro import Network, SpanningTreePointerScheme, connected_gnp, make_rng
from repro.selfstab import (
    MaxRootBfsProtocol,
    PlsDetector,
    inject_faults,
    run_guarded,
    run_until_silent,
    run_with_global_reset,
)


def main() -> None:
    rng = make_rng(11)
    graph = connected_gnp(30, 0.12, rng)
    network = Network(graph)
    protocol = MaxRootBfsProtocol()
    detector = PlsDetector(SpanningTreePointerScheme(), protocol)
    print(f"network: {graph!r}, protocol: {protocol.name}")

    # 1. stabilize from adversarial initial registers.
    contexts = network.contexts()
    chaos = {v: protocol.random_state(contexts[v], rng) for v in graph.nodes}
    trace = run_until_silent(network, protocol, chaos)
    print(f"stabilized from garbage in {trace.rounds} rounds")

    # 2. certified silence.
    report = detector.sweep(network, trace.states)
    print(f"silent state: legitimate = {report.legitimate}, "
          f"alarms = {report.verdict.reject_count}")

    # 3-4. transient faults, detection, recovery.
    for k in (1, 3, 6):
        faulted = inject_faults(network, protocol, trace.states, k, rng)
        sweep = detector.sweep(network, faulted)
        if sweep.legitimate:
            print(f"k={k}: faults happened to stay legal; skipping")
            continue
        print(f"k={k}: detected immediately by {sweep.verdict.reject_count} "
              f"node(s)")
        guarded = run_guarded(network, protocol, detector, faulted)
        global_reset = run_with_global_reset(network, protocol, detector, faulted)
        print(f"   guarded local correction: {guarded.rounds} rounds, "
              f"{guarded.total_moves} moves"
              f"{' (escalated)' if guarded.escalated else ''}")
        print(f"   global reset baseline:    {global_reset.rounds} rounds, "
              f"{global_reset.total_moves} moves")


if __name__ == "__main__":
    main()
