#!/usr/bin/env python3
"""Distributed MST construction with O(log² n) certification.

The paper's central compact scheme, exercised end to end *in-network*:

1. a weighted network is built (distinct weights, so the MST is unique);
2. every node runs the LOCAL-model marker: full-information gathering,
   then a local Borůvka computation that yields its own pointer and its
   own certificate (fragment trees + minimum outgoing edges, one layer
   per Borůvka phase);
3. verification runs as an actual one-round message exchange, with the
   traffic measured in bits;
4. the tree is then damaged and the detection is shown.

Run: ``python examples/certified_mst.py``
"""

from __future__ import annotations

import math

from repro import MstScheme, Network, connected_gnp, make_rng, weighted_copy
from repro.algorithms import mst_marker
from repro.local.verification_round import distributed_verification


def main() -> None:
    rng = make_rng(7)
    graph = weighted_copy(connected_gnp(20, 0.2, rng), rng)
    network = Network(graph)
    scheme = MstScheme()
    print(f"weighted network: {graph!r}")

    # 1-2. construct and certify the MST inside the network.
    marker = mst_marker(network)
    print(f"marker ran {marker.rounds} rounds, "
          f"{marker.message_count} messages, {marker.message_bits} bits")
    config = marker.configuration(network)
    assert scheme.language.is_member(config), "marker built a non-MST!"

    cert_bits = max(
        scheme.certificate_bits(c) for c in marker.certificates.values()
    )
    log2n = math.log2(graph.n)
    print(f"certificate size: {cert_bits} bits "
          f"(log2^2 n = {log2n ** 2:.0f}; ratio {cert_bits / log2n ** 2:.1f})")

    # 3. verification as a real message exchange.
    verdict, run = distributed_verification(scheme, config, marker.certificates)
    print(f"verification: {run.rounds} round, {run.message_bits} bits total, "
          f"all accept = {verdict.all_accept}")

    # 4. damage the tree: re-point one node at a non-tree neighbor.
    bad = scheme.language.corrupted_configuration(graph, corruptions=1, rng=rng)
    stale_verdict, _ = distributed_verification(
        scheme, bad, marker.certificates
    )
    print(f"after 1 corrupted pointer: {stale_verdict.reject_count} "
          f"node(s) reject in one round")
    assert not stale_verdict.all_accept


if __name__ == "__main__":
    main()
