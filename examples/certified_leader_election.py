#!/usr/bin/env python3
"""Leader election, certified — and watched by a self-stabilizing layer.

Two routes to the same certified outcome:

1. **One-shot construction**: flood-max election in the LOCAL simulator;
   its output already contains the BFS tree toward the winner, which is
   exactly the Θ(log n) leader certificate; verification is one round.
2. **Silent self-stabilizing election**: the ``SilentLeaderProtocol``
   converges from arbitrary registers to the same leader, its silent
   registers *are* the certificates, and the PLS detector notices any
   transient fault in a single sweep.

Run: ``python examples/certified_leader_election.py``
"""

from __future__ import annotations

from repro import LeaderScheme, Network, connected_gnp, make_rng
from repro.algorithms import leader_marker
from repro.local.verification_round import distributed_verification
from repro.selfstab import (
    PlsDetector,
    SilentLeaderProtocol,
    inject_faults,
    run_guarded,
    run_until_silent,
)
from repro.util.idspace import random_ids


def main() -> None:
    rng = make_rng(13)
    graph = connected_gnp(24, 0.18, rng)
    ids = random_ids(list(graph.nodes), universe=10_000, rng=rng)
    network = Network(graph, ids=ids)
    scheme = LeaderScheme()
    print(f"network: {graph!r}, ids from [1, 10000]")

    # Route 1: construct + certify in one shot.
    marker = leader_marker(network)
    config = marker.configuration(network)
    leader = next(v for v, marked in marker.states.items() if marked)
    print(f"flood-max elected uid {ids[leader]} "
          f"in {marker.rounds} rounds ({marker.message_count} messages)")
    verdict, run = distributed_verification(scheme, config, marker.certificates)
    print(f"one-round verification: all accept = {verdict.all_accept}, "
          f"{run.message_bits} bits exchanged")

    # Route 2: the self-stabilizing election with a standing detector.
    protocol = SilentLeaderProtocol()
    detector = PlsDetector(scheme, protocol)
    contexts = network.contexts()
    chaos = {v: protocol.random_state(contexts[v], rng) for v in graph.nodes}
    trace = run_until_silent(network, protocol, chaos)
    report = detector.sweep(network, trace.states)
    print(f"silent election stabilized in {trace.rounds} rounds: "
          f"legitimate = {report.legitimate}, alarms = "
          f"{report.verdict.reject_count}")

    faulted = inject_faults(network, protocol, trace.states, 2, rng)
    sweep = detector.sweep(network, faulted)
    if not sweep.legitimate:
        print(f"2 transient faults: {sweep.verdict.reject_count} node(s) "
              f"alarm on the next sweep")
        recovery = run_guarded(network, protocol, detector, faulted)
        print(f"recovered to certified silence in {recovery.rounds} rounds "
              f"({recovery.total_moves} moves"
              f"{', escalated' if recovery.escalated else ''})")
    else:
        print("the injected faults happened to stay legal")


if __name__ == "__main__":
    main()
