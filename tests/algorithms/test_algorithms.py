"""Tests for distributed constructions and certified markers."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.bfs import DistributedBfs
from repro.algorithms.fullinfo import gather_configurations
from repro.algorithms.leader_election import FloodMaxLeaderElection
from repro.algorithms.markers import leader_marker, mst_marker, spanning_tree_marker
from repro.graphs.generators import connected_gnp, cycle_graph, path_graph, star_graph
from repro.graphs.traversal import bfs
from repro.graphs.weighted import weighted_copy
from repro.local.network import Network
from repro.local.runner import run_synchronous
from repro.schemes.bfs_tree import BfsTreeScheme
from repro.schemes.leader import LeaderScheme
from repro.schemes.mst import MstScheme
from repro.schemes.spanning_tree import SpanningTreePointerScheme
from repro.util.rng import make_rng


class TestFloodMax:
    def test_elects_max_uid(self, rng):
        g = connected_gnp(12, 0.3, rng)
        net = Network(g, ids={v: 100 + v * 7 for v in g.nodes})
        result = run_synchronous(net, FloodMaxLeaderElection())
        max_uid = max(net.ids.values())
        winners = [v for v, out in result.outputs.items() if out.is_leader]
        assert winners == [net.node_of_uid(max_uid)]
        assert all(out.leader_uid == max_uid for out in result.outputs.values())

    def test_distances_are_bfs_distances(self, rng):
        g = connected_gnp(10, 0.35, rng)
        net = Network(g)
        result = run_synchronous(net, FloodMaxLeaderElection())
        leader = max(g.nodes, key=lambda v: net.ids[v])
        dist, _ = bfs(g, leader)
        for v, out in result.outputs.items():
            assert out.dist == dist[v]

    def test_quiescent_messaging(self):
        # On a star, flooding settles after two rounds; most rounds are
        # silent, so far fewer messages than rounds * edges are sent.
        g = star_graph(10)
        net = Network(g)
        result = run_synchronous(net, FloodMaxLeaderElection())
        assert result.message_count < result.rounds * 2 * g.num_edges


class TestDistributedBfs:
    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_matches_central_bfs(self, seed):
        rng = make_rng(seed)
        g = connected_gnp(12, 0.3, rng)
        net = Network(g)
        root = 0
        result = run_synchronous(net, DistributedBfs(net.ids[root]))
        dist, _ = bfs(g, root)
        for v, out in result.outputs.items():
            assert out.dist == dist[v]
            if v == root:
                assert out.parent_port is None
            else:
                parent = g.neighbor_at(v, out.parent_port)
                assert dist[parent] == dist[v] - 1


class TestFullInfo:
    def test_everyone_reconstructs_the_network(self, rng):
        g = weighted_copy(connected_gnp(8, 0.4, rng), rng)
        net = Network(g, inputs={v: ("payload", v) for v in g.nodes})
        configs, _ = gather_configurations(net)
        for node, config in configs.items():
            assert config.graph.n == g.n
            assert config.graph.num_edges == g.num_edges
            # Weights survive the flood.
            for u, v in g.edges():
                cu, cv = config.node_of_uid(net.ids[u]), config.node_of_uid(net.ids[v])
                assert config.graph.weight(cu, cv) == g.weight(u, v)
            # Inputs survive too.
            me = config.node_of_uid(net.ids[node])
            assert config.state(me) == ("payload", node)

    def test_reconstruction_identical_across_nodes(self, rng):
        g = connected_gnp(9, 0.3, rng)
        net = Network(g)
        configs, _ = gather_configurations(net)
        graphs = {config.graph for config in configs.values()}
        assert len(graphs) == 1


class TestMarkers:
    def test_leader_marker_verifies(self, rng):
        g = connected_gnp(11, 0.3, rng)
        net = Network(g)
        marker = leader_marker(net)
        scheme = LeaderScheme()
        config = marker.configuration(net)
        assert scheme.language.is_member(config)
        assert scheme.run(config, marker.certificates).all_accept

    def test_spanning_tree_marker_verifies_both_schemes(self, rng):
        g = connected_gnp(13, 0.25, rng)
        net = Network(g)
        marker = spanning_tree_marker(net)
        config = marker.configuration(net)
        for scheme in (SpanningTreePointerScheme(), BfsTreeScheme()):
            assert scheme.language.is_member(config)
            assert scheme.run(config, marker.certificates).all_accept

    def test_spanning_tree_marker_custom_root(self, rng):
        g = cycle_graph(7)
        net = Network(g)
        marker = spanning_tree_marker(net, root_uid=net.ids[3])
        assert marker.states[3] is None

    def test_mst_marker_verifies(self, rng):
        g = weighted_copy(connected_gnp(9, 0.4, rng), rng)
        net = Network(g)
        marker = mst_marker(net)
        scheme = MstScheme()
        config = marker.configuration(net)
        assert scheme.language.is_member(config)
        assert scheme.run(config, marker.certificates).all_accept

    def test_marker_reports_costs(self, rng):
        g = path_graph(6)
        net = Network(g)
        marker = spanning_tree_marker(net)
        assert marker.rounds >= 1
        assert marker.message_count > 0
        assert marker.message_bits > 0
