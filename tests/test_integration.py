"""Cross-subsystem integration tests.

Each test exercises a pipeline the paper describes end to end:
construction algorithm → certificates → one-round verification →
fault-tolerance machinery, across the simulator, the schemes, and the
adversaries together.
"""

from __future__ import annotations

import pytest

from repro.algorithms import leader_marker, mst_marker, spanning_tree_marker
from repro.core.composition import ConjunctionScheme
from repro.core.soundness import attack
from repro.core.universal import UniversalScheme
from repro.graphs.generators import connected_gnp, grid_graph
from repro.graphs.weighted import weighted_copy
from repro.local.network import Network
from repro.local.verification_round import distributed_verification
from repro.schemes import (
    BfsTreeScheme,
    LeaderScheme,
    MstScheme,
    SpanningTreePointerScheme,
)
from repro.selfstab import (
    MaxRootBfsProtocol,
    PlsDetector,
    inject_faults,
    run_guarded,
    run_until_silent,
)
from repro.util.idspace import random_ids
from repro.util.rng import make_rng


class TestConstructCertifyVerify:
    """Marker algorithm output feeds the verifier directly."""

    def test_full_pipeline_leader(self):
        rng = make_rng(1)
        graph = connected_gnp(16, 0.2, rng)
        network = Network(graph, ids=random_ids(list(graph.nodes), 10_000, rng))
        marker = leader_marker(network)
        config = marker.configuration(network)
        verdict, run = distributed_verification(
            LeaderScheme(), config, marker.certificates
        )
        assert verdict.all_accept
        assert run.rounds == 1

    def test_full_pipeline_mst_then_damage(self):
        rng = make_rng(2)
        graph = weighted_copy(connected_gnp(14, 0.25, rng), rng)
        network = Network(graph)
        marker = mst_marker(network)
        scheme = MstScheme()
        config = marker.configuration(network)
        assert scheme.run(config, marker.certificates).all_accept
        # Damage one pointer; the year-old certificates must now fail.
        bad = scheme.language.corrupted_configuration(graph, 1, rng=rng)
        assert not scheme.run(bad, marker.certificates).all_accept

    def test_marker_certificates_survive_adversarial_reuse(self):
        """Replaying marker certificates on a *different* tree fails."""
        rng = make_rng(3)
        graph = connected_gnp(12, 0.3, rng)
        network = Network(graph)
        marker_a = spanning_tree_marker(network, root_uid=network.ids[0])
        marker_b = spanning_tree_marker(network, root_uid=network.ids[5])
        scheme = SpanningTreePointerScheme()
        config_a = marker_a.configuration(network)
        if marker_a.states != marker_b.states:
            verdict = scheme.run(config_a, marker_b.certificates)
            assert not verdict.all_accept


class TestCompactVsUniversal:
    """The compact and universal schemes agree on membership."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_agreement_on_members_and_corruptions(self, seed):
        rng = make_rng(seed)
        graph = connected_gnp(8, 0.4, rng)
        compact = LeaderScheme()
        universal = UniversalScheme(compact.language)
        member = compact.language.member_configuration(graph, rng=rng)
        assert compact.run(member).all_accept
        assert universal.run(member).all_accept
        bad = compact.language.corrupted_configuration(graph, 1, rng=rng)
        assert not compact.run(bad).all_accept
        assert not universal.run(bad).all_accept

    def test_universal_costs_more(self):
        rng = make_rng(4)
        graph = connected_gnp(16, 0.25, rng)
        compact = LeaderScheme()
        universal = UniversalScheme(compact.language)
        member = compact.language.member_configuration(graph, rng=rng)
        assert (
            universal.proof_size_bits(member)
            > 10 * compact.proof_size_bits(member)
        )


class TestConjunctionPipeline:
    def test_bfs_and_tree_certified_from_one_marker(self):
        rng = make_rng(5)
        graph = connected_gnp(12, 0.3, rng)
        network = Network(graph)
        marker = spanning_tree_marker(network)
        scheme = ConjunctionScheme([SpanningTreePointerScheme(), BfsTreeScheme()])
        config = marker.configuration(network)
        certs = {
            v: (marker.certificates[v], marker.certificates[v])
            for v in graph.nodes
        }
        assert scheme.run(config, certs).all_accept


class TestSelfStabPipeline:
    def test_stabilize_fault_detect_recover_reverify(self):
        rng = make_rng(6)
        graph = grid_graph(4, 5)
        network = Network(graph)
        protocol = MaxRootBfsProtocol()
        scheme = SpanningTreePointerScheme()
        detector = PlsDetector(scheme, protocol)

        silent = run_until_silent(network, protocol).states
        assert not detector.sweep(network, silent).alarmed

        faulted = inject_faults(network, protocol, silent, 3, rng)
        recovery = run_guarded(network, protocol, detector, faulted)
        assert recovery.stabilized

        # The recovered registers pass both detection and an independent
        # adversarial check on the underlying configuration.
        config = detector.configuration(network, recovery.states)
        assert scheme.language.is_member(config)
        certs = detector.certificates(network, recovery.states)
        assert scheme.run(config, certs).all_accept

    def test_detector_agrees_with_message_passing_verification(self):
        rng = make_rng(7)
        graph = connected_gnp(14, 0.25, rng)
        network = Network(graph)
        protocol = MaxRootBfsProtocol()
        scheme = SpanningTreePointerScheme()
        detector = PlsDetector(scheme, protocol)
        states = run_until_silent(network, protocol).states
        faulted = inject_faults(network, protocol, states, 2, rng)
        report = detector.sweep(network, faulted)
        config = detector.configuration(network, faulted)
        certs = detector.certificates(network, faulted)
        verdict, _ = distributed_verification(scheme, config, certs)
        assert verdict.rejects == report.verdict.rejects


class TestAdversarialEndToEnd:
    def test_attack_with_cross_instance_pool(self):
        """The strongest pool: certificates from many legal instances on
        the same graph, including the marker-built ones."""
        rng = make_rng(8)
        graph = connected_gnp(10, 0.35, rng)
        network = Network(graph)
        scheme = SpanningTreePointerScheme()
        related = [
            scheme.language.member_configuration(graph, rng=make_rng(s))
            for s in range(4)
        ]
        related.append(spanning_tree_marker(network).configuration(network))
        bad = scheme.language.corrupted_configuration(graph, 3, rng=rng)
        result = attack(scheme, bad, rng=rng, trials=60, related=related)
        assert not result.fooled
