"""Tests for graph family generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.generators import (
    FAMILIES,
    binary_tree,
    caterpillar,
    complete_bipartite,
    complete_graph,
    connected_gnp,
    cycle_graph,
    double_clique,
    grid_graph,
    hypercube,
    lollipop,
    path_graph,
    random_regular,
    random_tree,
    star_graph,
    torus_graph,
)
from repro.graphs.traversal import diameter, is_connected
from repro.util.rng import make_rng


class TestDeterministicFamilies:
    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert diameter(g) == 4

    def test_path_singleton(self):
        assert path_graph(1).num_edges == 0

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(v) == 2 for v in g.nodes)

    def test_cycle_minimum_size(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 6
        assert all(g.degree(v) == 1 for v in range(1, 7))

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert all(g.degree(v) == 5 for v in g.nodes)

    def test_complete_bipartite(self):
        g = complete_bipartite(3, 4)
        assert g.n == 7
        assert g.num_edges == 12
        assert g.degree(0) == 4
        assert g.degree(3) == 3

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.num_edges == 3 * 3 + 2 * 4
        assert is_connected(g)

    def test_torus_is_4_regular(self):
        g = torus_graph(3, 4)
        assert all(g.degree(v) == 4 for v in g.nodes)

    def test_hypercube(self):
        g = hypercube(4)
        assert g.n == 16
        assert all(g.degree(v) == 4 for v in g.nodes)
        assert diameter(g) == 4

    def test_hypercube_dim_zero(self):
        assert hypercube(0).n == 1

    def test_binary_tree(self):
        g = binary_tree(10)
        assert g.num_edges == 9
        assert is_connected(g)

    def test_caterpillar(self):
        g = caterpillar(4, legs_per_node=2)
        assert g.n == 12
        assert is_connected(g)

    def test_lollipop(self):
        g = lollipop(4, 3)
        assert g.n == 7
        assert g.num_edges == 6 + 3

    def test_double_clique_has_bridge(self):
        g = double_clique(4)
        assert g.n == 8
        assert g.has_edge(3, 4)
        assert is_connected(g)


class TestRandomFamilies:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=0, max_value=2**32),
    )
    def test_random_tree_is_tree(self, n, seed):
        g = random_tree(n, make_rng(seed))
        assert g.n == n
        assert g.num_edges == n - 1 if n > 0 else 0
        assert is_connected(g)

    def test_random_tree_deterministic(self):
        assert random_tree(20, make_rng(9)) == random_tree(20, make_rng(9))

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=2, max_value=30),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=2**32),
    )
    def test_connected_gnp_always_connected(self, n, p, seed):
        g = connected_gnp(n, p, make_rng(seed))
        assert g.n == n
        assert is_connected(g)

    def test_connected_gnp_p1_is_complete(self):
        g = connected_gnp(8, 1.0, make_rng(0))
        assert g.num_edges == 28

    def test_random_regular_degrees(self):
        g = random_regular(12, 3, make_rng(4))
        assert all(g.degree(v) == 3 for v in g.nodes)
        assert is_connected(g)

    def test_random_regular_parity_check(self):
        with pytest.raises(GraphError):
            random_regular(7, 3, make_rng(0))

    def test_random_regular_needs_room(self):
        with pytest.raises(GraphError):
            random_regular(3, 3, make_rng(0))


class TestFamilyRegistry:
    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_families_produce_connected_graphs(self, name):
        factory = FAMILIES[name]
        g = factory(16, make_rng(3))
        assert g.n >= 4
        assert is_connected(g)
