"""Tests for traversal and structural queries (cross-checked vs networkx)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.generators import connected_gnp, cycle_graph, path_graph
from repro.graphs.graph import Graph
from repro.graphs.traversal import (
    bfs,
    bfs_tree_edges,
    connected_components,
    diameter,
    eccentricity,
    is_connected,
    is_forest,
    is_spanning_tree_edges,
    spanning_forest,
    spanning_tree_parents,
)
from repro.util.rng import make_rng


class TestBfs:
    def test_path_distances(self):
        g = path_graph(5)
        dist, parent = bfs(g, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}
        assert parent[0] is None
        assert parent[4] == 3

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_matches_networkx(self, n, seed):
        g = connected_gnp(n, 0.25, make_rng(seed))
        dist, _ = bfs(g, 0)
        expected = nx.single_source_shortest_path_length(g.to_networkx(), 0)
        assert dist == dict(expected)

    def test_bfs_tree_edges_count(self):
        g = connected_gnp(15, 0.3, make_rng(1))
        assert len(bfs_tree_edges(g, 0)) == 14

    def test_unreachable_nodes_absent(self):
        g = Graph(4, [(0, 1), (2, 3)])
        dist, _ = bfs(g, 0)
        assert set(dist) == {0, 1}


class TestComponents:
    def test_connected_graph_one_component(self):
        assert len(connected_components(cycle_graph(5))) == 1

    def test_disconnected(self):
        g = Graph(5, [(0, 1), (2, 3)])
        comps = connected_components(g)
        assert [sorted(c) for c in comps] == [[0, 1], [2, 3], [4]]

    def test_is_connected(self):
        assert is_connected(path_graph(4))
        assert not is_connected(Graph(3, [(0, 1)]))
        assert is_connected(Graph(0))
        assert is_connected(Graph(1))


class TestDistanceMetrics:
    def test_eccentricity(self):
        g = path_graph(5)
        assert eccentricity(g, 0) == 4
        assert eccentricity(g, 2) == 2

    def test_eccentricity_disconnected_raises(self):
        with pytest.raises(GraphError):
            eccentricity(Graph(3, [(0, 1)]), 0)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=2, max_value=25),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_diameter_matches_networkx(self, n, seed):
        g = connected_gnp(n, 0.3, make_rng(seed))
        assert diameter(g) == nx.diameter(g.to_networkx())


class TestForests:
    def test_is_forest(self):
        assert is_forest(4, [(0, 1), (2, 3)])
        assert not is_forest(3, [(0, 1), (1, 2), (0, 2)])
        assert is_forest(3, [])

    def test_spanning_tree_edges_checks(self):
        g = cycle_graph(4)
        tree = [(0, 1), (1, 2), (2, 3)]
        assert is_spanning_tree_edges(g, tree)
        assert not is_spanning_tree_edges(g, tree + [(0, 3)])  # too many
        assert not is_spanning_tree_edges(g, tree[:2])  # too few
        assert not is_spanning_tree_edges(g, [(0, 1), (1, 2), (0, 2)])  # not an edge

    def test_spanning_forest_covers_components(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4)])
        forest = spanning_forest(g)
        assert len(forest) == 3  # 2 + 1 edges over three components

    def test_spanning_tree_parents(self):
        g = cycle_graph(5)
        parent = spanning_tree_parents(g, root=2)
        assert parent[2] is None
        assert sum(1 for p in parent.values() if p is None) == 1

    def test_spanning_tree_parents_disconnected(self):
        with pytest.raises(GraphError):
            spanning_tree_parents(Graph(3, [(0, 1)]))
