"""Tests for pointer and list subgraph encodings."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LabelingError
from repro.graphs.generators import connected_gnp, cycle_graph, path_graph
from repro.graphs.subgraphs import (
    edges_from_lists,
    edges_from_pointers,
    forest_from_lists,
    lists_are_consistent,
    lists_from_edges,
    pointer_structure,
    pointers_are_well_formed,
    pointers_form_spanning_tree,
    pointers_from_tree,
)
from repro.graphs.traversal import bfs_tree_edges
from repro.util.rng import make_rng


class TestPointerBasics:
    def test_well_formed(self):
        g = path_graph(3)
        assert pointers_are_well_formed(g, {0: 1, 1: None, 2: 1})
        assert not pointers_are_well_formed(g, {0: 2, 1: None, 2: 1})  # not a neighbor
        assert not pointers_are_well_formed(g, {0: 1, 1: None})  # missing node

    def test_edges_from_pointers(self):
        edges = edges_from_pointers({0: 1, 1: None, 2: 1})
        assert edges == {(0, 1), (1, 2)}


class TestPointerStructure:
    def test_forest_depths(self):
        s = pointer_structure({0: None, 1: 0, 2: 1, 3: None})
        assert s.is_acyclic
        assert s.roots == {0, 3}
        assert s.depth == {0: 0, 1: 1, 2: 2, 3: 0}

    def test_cycle_detection(self):
        s = pointer_structure({0: 1, 1: 2, 2: 0})
        assert not s.is_acyclic
        assert s.on_cycle == {0, 1, 2}

    def test_tail_into_cycle(self):
        s = pointer_structure({0: 1, 1: 2, 2: 1, 3: None})
        assert s.on_cycle == {1, 2}
        assert 0 not in s.depth  # feeds a cycle, never reaches a root
        assert s.depth[3] == 0

    def test_two_cycles(self):
        s = pointer_structure({0: 1, 1: 0, 2: 3, 3: 2})
        assert s.on_cycle == {0, 1, 2, 3}

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=25),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_depth_parent_relation(self, n, seed):
        rng = make_rng(seed)
        pointers = {
            v: (rng.randrange(v) if v and rng.random() < 0.8 else None)
            for v in range(n)
        }
        s = pointer_structure(pointers)
        assert s.is_acyclic  # pointers only go to smaller indices
        for v, target in pointers.items():
            if target is not None:
                assert s.depth[v] == s.depth[target] + 1


class TestSpanningTreePointers:
    def test_valid_tree(self):
        g = cycle_graph(5)
        pointers = {0: None, 1: 0, 2: 1, 3: 2, 4: 0}
        assert pointers_form_spanning_tree(g, pointers)

    def test_two_roots_rejected(self):
        g = path_graph(4)
        pointers = {0: None, 1: 0, 2: None, 3: 2}
        assert not pointers_form_spanning_tree(g, pointers)

    def test_cycle_rejected(self):
        g = cycle_graph(4)
        pointers = {0: 1, 1: 2, 2: 3, 3: 0}
        assert not pointers_form_spanning_tree(g, pointers)

    def test_pointers_from_tree_roundtrip(self):
        g = connected_gnp(12, 0.3, make_rng(2))
        tree = bfs_tree_edges(g, 0)
        pointers = pointers_from_tree(g, tree, root=5)
        assert pointers_form_spanning_tree(g, pointers)
        assert pointers[5] is None
        assert edges_from_pointers(pointers) == tree

    def test_pointers_from_non_tree_raises(self):
        g = cycle_graph(4)
        with pytest.raises(LabelingError):
            pointers_from_tree(g, g.edges(), root=0)


class TestListEncoding:
    def test_consistent_lists(self):
        g = path_graph(3)
        lists = {0: {1}, 1: {0, 2}, 2: {1}}
        assert lists_are_consistent(g, lists)
        assert edges_from_lists(lists) == {(0, 1), (1, 2)}

    def test_asymmetric_rejected(self):
        g = path_graph(3)
        lists = {0: {1}, 1: {2}, 2: {1}}
        assert not lists_are_consistent(g, lists)

    def test_non_neighbor_rejected(self):
        g = path_graph(3)
        lists = {0: {2}, 1: set(), 2: {0}}
        assert not lists_are_consistent(g, lists)

    def test_edges_from_lists_requires_mutuality(self):
        edges = edges_from_lists({0: {1}, 1: set()})
        assert edges == set()

    def test_lists_from_edges_roundtrip(self):
        g = connected_gnp(10, 0.3, make_rng(5))
        tree = bfs_tree_edges(g, 0)
        lists = lists_from_edges(g, tree)
        assert lists_are_consistent(g, lists)
        assert edges_from_lists(lists) == tree

    def test_lists_from_edges_rejects_non_edges(self):
        g = path_graph(3)
        with pytest.raises(LabelingError):
            lists_from_edges(g, [(0, 2)])

    def test_forest_from_lists(self):
        g = cycle_graph(4)
        tree_lists = lists_from_edges(g, [(0, 1), (1, 2), (2, 3)])
        assert forest_from_lists(g, tree_lists) == {(0, 1), (1, 2), (2, 3)}
        cycle_lists = lists_from_edges(g, g.edges())
        assert forest_from_lists(g, cycle_lists) is None
