"""Tests for the core Graph type."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs.graph import Graph, edge_key


class TestConstruction:
    def test_empty(self):
        g = Graph(0)
        assert g.n == 0
        assert g.num_edges == 0

    def test_basic(self):
        g = Graph(3, [(0, 1), (2, 1)])
        assert g.n == 3
        assert g.edges() == ((0, 1), (1, 2))
        assert g.neighbors(1) == (0, 2)

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            Graph(2, [(1, 1)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 1), (1, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 2)])

    def test_rejects_negative_n(self):
        with pytest.raises(GraphError):
            Graph(-1)


class TestQueries:
    def test_degree_and_max_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(3) == 1
        assert g.max_degree() == 3

    def test_has_edge(self):
        g = Graph(3, [(0, 1)])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(1, 1)

    def test_ports_are_sorted_neighbor_positions(self):
        g = Graph(4, [(2, 0), (2, 3), (2, 1)])
        assert g.neighbors(2) == (0, 1, 3)
        assert g.port(2, 0) == 0
        assert g.port(2, 3) == 2
        assert g.neighbor_at(2, 1) == 1

    def test_port_of_non_edge_raises(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            g.port(0, 2)

    def test_neighbor_at_invalid_port(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            g.neighbor_at(0, 5)

    def test_node_range_check(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(GraphError):
            g.neighbors(9)


class TestWeights:
    def test_with_weights_mapping(self):
        g = Graph(3, [(0, 1), (1, 2)]).with_weights({(0, 1): 5, (1, 2): 7})
        assert g.is_weighted
        assert g.weight(1, 0) == 5
        assert g.weights() == {(0, 1): 5, (1, 2): 7}

    def test_with_weights_function(self):
        g = Graph(3, [(0, 1), (1, 2)]).with_weights(lambda u, v: u + v)
        assert g.weight(0, 1) == 1
        assert g.weight(1, 2) == 3

    def test_missing_weight_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 1), (1, 2)], {(0, 1): 5})

    def test_extra_weight_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 1)], {(0, 1): 5, (0, 2): 6})

    def test_unweighted_weight_access_raises(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(GraphError):
            g.weight(0, 1)

    def test_weight_key_breaks_ties(self):
        g = Graph(3, [(0, 1), (1, 2)]).with_weights({(0, 1): 5, (1, 2): 5})
        assert not g.has_distinct_weights()
        assert g.weight_key(0, 1) < g.weight_key(1, 2)

    def test_distinct_weights_detection(self):
        g = Graph(3, [(0, 1), (1, 2)]).with_weights({(0, 1): 1, (1, 2): 2})
        assert g.has_distinct_weights()

    def test_unweighted_copy(self):
        g = Graph(2, [(0, 1)], {(0, 1): 3}).unweighted()
        assert not g.is_weighted


class TestDerivedGraphs:
    def test_add_edges(self):
        g = Graph(3, [(0, 1)]).add_edges([(1, 2)])
        assert g.has_edge(1, 2)
        assert g.num_edges == 2

    def test_remove_edges_preserves_weights(self):
        g = Graph(3, [(0, 1), (1, 2)], {(0, 1): 1, (1, 2): 2})
        h = g.remove_edges([(0, 1)])
        assert not h.has_edge(0, 1)
        assert h.weight(1, 2) == 2

    def test_induced_subgraph(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        sub, index = g.induced_subgraph([1, 2, 3])
        assert sub.n == 3
        assert sub.num_edges == 2
        assert index == {1: 0, 2: 1, 3: 2}

    def test_induced_subgraph_keeps_weights(self):
        g = Graph(3, [(0, 1), (1, 2)], {(0, 1): 1, (1, 2): 2})
        sub, index = g.induced_subgraph([1, 2])
        assert sub.weight(0, 1) == 2

    def test_disjoint_union(self):
        a = Graph(2, [(0, 1)])
        b = Graph(3, [(0, 2)])
        u = a.disjoint_union(b)
        assert u.n == 5
        assert u.has_edge(0, 1)
        assert u.has_edge(2, 4)

    def test_disjoint_union_weight_mismatch(self):
        a = Graph(2, [(0, 1)], {(0, 1): 1})
        b = Graph(2, [(0, 1)])
        with pytest.raises(GraphError):
            a.disjoint_union(b)


class TestInterop:
    def test_networkx_roundtrip(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], {(0, 1): 1, (1, 2): 2, (2, 3): 3})
        back = Graph.from_networkx(g.to_networkx())
        assert back == g

    def test_eq_and_hash(self):
        a = Graph(3, [(0, 1)])
        b = Graph(3, [(0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Graph(3, [(0, 2)])

    def test_repr_mentions_size(self):
        assert "n=3" in repr(Graph(3, [(0, 1)]))

    def test_edge_key_canonicalises(self):
        assert edge_key(5, 2) == (2, 5)
        with pytest.raises(GraphError):
            edge_key(1, 1)
