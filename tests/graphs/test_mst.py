"""Tests for the reference MST algorithms and Borůvka traces."""

from __future__ import annotations

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.generators import connected_gnp, cycle_graph, path_graph
from repro.graphs.graph import Graph
from repro.graphs.mst import (
    UnionFind,
    boruvka_trace,
    is_mst,
    kruskal,
    mst_weight,
    prim,
)
from repro.graphs.traversal import is_spanning_tree_edges
from repro.graphs.weighted import distinct_random_weights, unit_weights, weighted_copy
from repro.util.rng import make_rng


class TestUnionFind:
    def test_basic_unions(self):
        uf = UnionFind(5)
        assert uf.components == 5
        assert uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.components == 4
        assert uf.find(0) == uf.find(1)

    def test_groups(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(2, 3)
        groups = sorted(sorted(g) for g in uf.groups().values())
        assert groups == [[0, 1], [2, 3]]


class TestMstAlgorithms:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=2, max_value=25),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_kruskal_prim_boruvka_agree(self, n, seed):
        rng = make_rng(seed)
        g = weighted_copy(connected_gnp(n, 0.35, rng), rng)
        k = kruskal(g)
        assert k == prim(g)
        assert k == boruvka_trace(g).mst_edges

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_weight_matches_networkx(self, n, seed):
        rng = make_rng(seed)
        g = weighted_copy(connected_gnp(n, 0.4, rng), rng)
        ours = mst_weight(g)
        theirs = sum(
            d["weight"]
            for _, _, d in nx.minimum_spanning_tree(g.to_networkx()).edges(data=True)
        )
        assert ours == theirs

    def test_tied_weights_still_agree(self):
        g = cycle_graph(6).with_weights(unit_weights(cycle_graph(6)))
        assert kruskal(g) == prim(g) == boruvka_trace(g).mst_edges

    def test_is_mst(self):
        rng = make_rng(7)
        g = weighted_copy(connected_gnp(10, 0.4, rng), rng)
        tree = kruskal(g)
        assert is_mst(g, tree)
        # Any other spanning tree is rejected (distinct weights).
        other = prim(g.with_weights({e: -w for e, w in g.weights().items()}))
        if other != tree:
            assert not is_mst(g, other)

    def test_requires_weights(self):
        with pytest.raises(GraphError):
            kruskal(path_graph(4))

    def test_requires_connected(self):
        g = Graph(4, [(0, 1), (2, 3)], {(0, 1): 1, (2, 3): 2})
        with pytest.raises(GraphError):
            kruskal(g)

    def test_single_node(self):
        g = Graph(1, [], {})
        assert kruskal(g) == frozenset()
        assert prim(g) == frozenset()


class TestBoruvkaTrace:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=32),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_phase_count_bound(self, n, seed):
        rng = make_rng(seed)
        g = weighted_copy(connected_gnp(n, 0.3, rng), rng)
        trace = boruvka_trace(g)
        assert trace.phase_count <= max(1, math.ceil(math.log2(g.n)))

    def test_phase_zero_is_singletons(self):
        rng = make_rng(3)
        g = weighted_copy(connected_gnp(8, 0.4, rng), rng)
        trace = boruvka_trace(g)
        assert trace.phases[0].fragment == {v: v for v in g.nodes}

    def test_fragments_merge_along_selected_edges(self):
        rng = make_rng(4)
        g = weighted_copy(connected_gnp(12, 0.3, rng), rng)
        trace = boruvka_trace(g)
        for i, phase in enumerate(trace.phases):
            nxt = (
                trace.phases[i + 1].fragment
                if i + 1 < trace.phase_count
                else trace.final_fragment
            )
            for rep, (u, v) in phase.moe.items():
                assert nxt[u] == nxt[v]
            # Cohabitation is preserved.
            for a in g.nodes:
                for b in g.nodes:
                    if phase.fragment[a] == phase.fragment[b]:
                        assert nxt[a] == nxt[b]

    def test_moe_is_minimum_outgoing(self):
        rng = make_rng(5)
        g = weighted_copy(connected_gnp(10, 0.4, rng), rng)
        trace = boruvka_trace(g)
        for phase in trace.phases:
            for rep, (u, v) in phase.moe.items():
                key = g.weight_key(u, v)
                for a, b in g.edges():
                    if (phase.fragment[a] == rep) != (phase.fragment[b] == rep):
                        assert g.weight_key(a, b) >= key

    def test_final_fragment_is_single(self):
        rng = make_rng(6)
        g = weighted_copy(connected_gnp(9, 0.4, rng), rng)
        trace = boruvka_trace(g)
        assert len(set(trace.final_fragment.values())) == 1

    def test_mst_edges_form_spanning_tree(self):
        rng = make_rng(8)
        g = weighted_copy(connected_gnp(14, 0.25, rng), rng)
        assert is_spanning_tree_edges(g, boruvka_trace(g).mst_edges)


class TestWeightGenerators:
    def test_distinct_random_weights(self):
        g = connected_gnp(10, 0.4, make_rng(1))
        weights = distinct_random_weights(g, make_rng(2))
        assert len(set(weights.values())) == g.num_edges

    def test_range_too_small(self):
        g = connected_gnp(10, 0.8, make_rng(1))
        with pytest.raises(GraphError):
            distinct_random_weights(g, make_rng(2), low=1, high=3)

    def test_weighted_copy_distinct(self):
        g = weighted_copy(connected_gnp(8, 0.5, make_rng(1)), make_rng(2))
        assert g.has_distinct_weights()
