"""CSR adjacency must mirror the Graph's port structure exactly."""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

# The gate above must run before repro.graphs.csr (which imports numpy
# unconditionally), hence the post-gate imports.
from repro.graphs.csr import build_csr  # noqa: E402
from repro.graphs.generators import (  # noqa: E402
    connected_gnp,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph  # noqa: E402
from repro.graphs.weighted import weighted_copy  # noqa: E402
from repro.util.rng import make_rng  # noqa: E402


def _assert_mirrors(graph):
    """Every CSR column agrees with the Graph's own port arithmetic."""
    csr = graph.csr()
    assert csr.n == graph.n
    assert csr.num_entries == 2 * graph.num_edges
    assert int(csr.indptr[0]) == 0
    for u in graph.nodes:
        row = csr.neighbors(u)
        assert row.tolist() == list(graph.neighbors(u))
        assert int(csr.indptr[u + 1] - csr.indptr[u]) == graph.degree(u)
    for j in range(csr.num_entries):
        u = int(csr.owners[j])
        v = int(csr.indices[j])
        port = int(csr.ports[j])
        assert graph.neighbor_at(u, port) == v
        assert graph.port(u, v) == port
        # The reverse entry is the opposite half-edge, and back_ports is
        # the port through which v sees u.
        r = int(csr.reverse[j])
        assert int(csr.owners[r]) == v
        assert int(csr.indices[r]) == u
        assert int(csr.reverse[r]) == j
        assert graph.port(v, u) == int(csr.back_ports[j])
    if graph.is_weighted:
        for j in range(csr.num_entries):
            u, v = int(csr.owners[j]), int(csr.indices[j])
            assert csr.weights[j] == graph.weight(u, v)
    else:
        assert csr.weights is None


@pytest.mark.parametrize(
    "graph",
    [
        path_graph(1),
        path_graph(2),
        path_graph(9),
        cycle_graph(3),
        cycle_graph(8),
        star_graph(6),
        grid_graph(3, 4),
        Graph(5, [(0, 1), (3, 4)]),  # node 2 isolated
        Graph(4),  # no edges at all
        Graph(0),  # empty graph
    ],
    ids=[
        "single-node",
        "edge",
        "path",
        "triangle",
        "cycle",
        "star",
        "grid",
        "isolated-middle",
        "edgeless",
        "empty",
    ],
)
def test_round_trip(graph):
    _assert_mirrors(graph)


def test_round_trip_weighted():
    rng = make_rng(5)
    _assert_mirrors(weighted_copy(connected_gnp(12, 0.4, rng), rng))


def test_random_graphs_round_trip():
    rng = make_rng(11)
    for _ in range(5):
        _assert_mirrors(connected_gnp(10, 0.35, rng))


def test_cached_on_graph():
    graph = cycle_graph(5)
    assert graph.csr() is graph.csr()
    # build_csr constructs a fresh equivalent structure.
    fresh = build_csr(graph)
    assert fresh is not graph.csr()
    assert fresh.indices.tolist() == graph.csr().indices.tolist()


def test_isolated_nodes_have_empty_rows():
    graph = Graph(5, [(0, 1), (3, 4)])
    csr = graph.csr()
    assert csr.neighbors(2).size == 0
    assert csr.degrees().tolist() == [1, 1, 0, 1, 1]
