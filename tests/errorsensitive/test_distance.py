"""Edit-distance metric: certified bounds, exactness, invariances."""

from __future__ import annotations

import pytest

from repro.core import catalog
from repro.core.labeling import Configuration
from repro.errors import LanguageError
from repro.errorsensitive import DistanceResult, distance_to_language
from repro.graphs.generators import connected_gnp, path_graph
from repro.util.rng import make_rng, spawn

LEADER = catalog.build("leader").language
STP = catalog.build("spanning-tree-ptr").language
INDEP = catalog.build("independent-set").language


class TestDistanceZero:
    @pytest.mark.parametrize("name", ["leader", "spanning-tree-ptr",
                                      "independent-set", "es-spanning-tree"])
    def test_members_are_at_distance_zero(self, name):
        spec = catalog.get(name)
        graph = spec.sample_graph(10, make_rng(1))
        scheme = spec.build(graph=graph, rng=make_rng(2))
        config = scheme.language.member_configuration(graph, rng=make_rng(3))
        result = distance_to_language(config, scheme.language)
        assert result == DistanceResult(0, 0, True, config.labeling, 1)


class TestExactSearch:
    def test_extra_leaders_count_exactly(self):
        graph = path_graph(6)
        member = LEADER.member_configuration(graph, rng=make_rng(1))
        everyone = member.with_labeling({v: True for v in graph.nodes})
        result = distance_to_language(everyone, LEADER)
        assert result.exact
        assert result.lower == result.upper == 5

    def test_no_leader_is_one_edit_out(self):
        graph = path_graph(5)
        nobody = Configuration.build(
            graph, {v: False for v in graph.nodes}
        )
        result = distance_to_language(nobody, LEADER)
        assert result.exact
        assert result.upper == 1

    def test_witness_is_member_at_upper(self):
        rng = make_rng(7)
        for seed in range(4):
            graph = connected_gnp(8, 0.4, spawn(rng, seed))
            bad = STP.corrupted_configuration(graph, 2, rng=spawn(rng, 10 + seed))
            result = distance_to_language(bad, STP)
            assert result.witness is not None
            assert STP.is_member(bad.with_labeling(result.witness))
            assert bad.labeling.hamming_distance(result.witness) == result.upper

    @pytest.mark.parametrize("language", [LEADER, STP, INDEP],
                             ids=["leader", "stp", "indep"])
    def test_exact_agrees_with_greedy_bracket_on_small_instances(self, language):
        """The satellite check: on n <= 8 the exhaustive search must land
        inside (and tighten) the certified greedy bracket."""
        rng = make_rng(99)
        for seed in range(5):
            graph = connected_gnp(7, 0.45, spawn(rng, seed))
            corruptions = 1 + seed % 3
            try:
                bad = language.corrupted_configuration(
                    graph, corruptions, rng=spawn(rng, 50 + seed)
                )
            except LanguageError:
                continue
            exact = distance_to_language(bad, language, mode="exact",
                                         rng=spawn(rng, 100 + seed))
            greedy = distance_to_language(bad, language, mode="greedy",
                                          rng=spawn(rng, 100 + seed))
            assert exact.exact
            assert greedy.lower <= exact.upper <= greedy.upper
            assert exact.upper <= corruptions  # reverting the edits suffices

    def test_auto_mode_is_exact_only_below_the_limit(self):
        """The n <= exact_limit cutoff must gate the exhaustive search,
        so the probe needs a configuration whose greedy bracket stays
        open — otherwise exact=True is reached without searching."""
        rng = make_rng(31)
        open_bracket = None
        for seed in range(40):
            graph = connected_gnp(7, 0.45, spawn(rng, seed))
            bad = STP.corrupted_configuration(graph, 2, rng=spawn(rng, 60 + seed))
            greedy = distance_to_language(bad, STP, mode="greedy",
                                          rng=spawn(rng, 90 + seed))
            if greedy.lower < greedy.upper:
                open_bracket = (bad, greedy)
                break
        assert open_bracket, "no open greedy bracket found in 40 draws"
        bad, greedy = open_bracket
        below = distance_to_language(bad, STP, exact_limit=7,
                                     rng=make_rng(1))
        above = distance_to_language(bad, STP, exact_limit=4,
                                     rng=make_rng(1))
        assert below.exact  # n <= limit: the exhaustive search closed it
        assert greedy.lower <= below.upper <= greedy.upper
        assert not above.exact  # n > limit: bounds only
        assert (above.lower, above.upper) == (greedy.lower, greedy.upper)


class TestInvariances:
    def test_distance_is_invariant_under_id_relabeling(self):
        graph = connected_gnp(8, 0.4, make_rng(3))
        bad = LEADER.corrupted_configuration(graph, 2, rng=make_rng(4))
        base = distance_to_language(bad, LEADER, mode="exact")
        permuted = bad.with_ids(
            {v: 1000 - bad.uid(v) for v in graph.nodes}
        )
        relabeled = distance_to_language(permuted, LEADER, mode="exact")
        assert relabeled.lower == base.lower
        assert relabeled.upper == base.upper

    def test_anchor_pins_the_upper_bound(self):
        graph = connected_gnp(20, 0.2, make_rng(5))
        member = STP.member_configuration(graph, rng=make_rng(6))
        bad = member.with_labeling(
            member.labeling.corrupted(make_rng(7), 3, STP.random_corruption)
        )
        if STP.is_member(bad):
            pytest.skip("corruption landed back in the language")
        anchored = distance_to_language(
            bad, STP, mode="greedy", anchors=(member.labeling,)
        )
        assert anchored.upper <= 3


class TestValidation:
    def test_invalid_states_raise_the_lower_bound(self):
        graph = path_graph(6)
        states = {v: "garbage" for v in graph.nodes}
        config = Configuration.build(graph, states)
        result = distance_to_language(config, LEADER, mode="greedy")
        assert result.lower == 6

    def test_unknown_mode_rejected(self):
        graph = path_graph(4)
        config = LEADER.member_configuration(graph, rng=make_rng(1))
        with pytest.raises(LanguageError):
            distance_to_language(config, LEADER, mode="bogus")
