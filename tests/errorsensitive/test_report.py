"""Sensitivity measurement, the rejection decider, and the FF17 repair."""

from __future__ import annotations

import pytest

from repro.core import catalog
from repro.errors import SchemeError
from repro.errorsensitive import (
    FAR_PATTERNS,
    RejectionCounter,
    count_rejections,
    error_sensitivity_report,
    measure_scheme_sensitivity,
    min_rejections,
)
from repro.errorsensitive.report import _pointer_mix_pattern
from repro.graphs.generators import connected_gnp
from repro.util.rng import make_rng, spawn


class TestRejectionCounter:
    @pytest.mark.parametrize("name", ["spanning-tree-ptr", "coarse-acyclic",
                                      "es-spanning-tree"])
    def test_counter_matches_full_reverification(self, name):
        """The reuse path must agree with a from-scratch run — including
        for radius > 1 schemes, whose refresh balls are wider."""
        spec = catalog.get(name)
        rng = make_rng(11)
        graph = spec.sample_graph(14, spawn(rng, 1))
        scheme = spec.build(graph=graph, rng=spawn(rng, 2))
        member = scheme.language.member_configuration(graph, rng=spawn(rng, 3))
        counter = RejectionCounter(scheme, member)
        for seed in range(5):
            corrupted = member.labeling.corrupted(
                spawn(rng, 20 + seed), 1 + seed % 3,
                scheme.language.random_corruption,
            )
            fast = counter.count(corrupted)
            full = scheme.run(
                member.with_labeling(corrupted),
                certificates=counter.certificates,
            ).reject_count
            assert fast == full

    def test_explicit_changed_set_is_validated(self):
        scheme = catalog.build("leader")
        graph = connected_gnp(8, 0.4, make_rng(1))
        member = scheme.language.member_configuration(graph, rng=make_rng(2))
        counter = RejectionCounter(scheme, member)
        flipped = {v: not member.state(v) for v in graph.nodes}
        with pytest.raises(SchemeError):
            counter.count(flipped, changed=[0])

    def test_count_rejections_counts_honest_member_as_zero(self):
        scheme = catalog.build("leader")
        graph = connected_gnp(10, 0.3, make_rng(3))
        member = scheme.language.member_configuration(graph, rng=make_rng(4))
        assert count_rejections(scheme, member) == 0

    def test_min_rejections_never_exceeds_honest_count(self):
        scheme = catalog.build("spanning-tree-ptr")
        graph = connected_gnp(12, 0.3, make_rng(5))
        bad = scheme.language.corrupted_configuration(graph, 2, rng=make_rng(6))
        outcome = min_rejections(scheme, bad, rng=make_rng(7), trials=10)
        assert 1 <= outcome.min_rejects <= count_rejections(scheme, bad)


class TestPointerMixPattern:
    def test_pattern_distance_is_half_the_path(self):
        config, distance, related = _pointer_mix_pattern(24, make_rng(1))
        assert distance == 12
        language = catalog.build("spanning-tree-ptr").language
        assert not language.is_member(config)
        for member in related:
            assert language.is_member(member)

    def test_honest_certificates_leave_one_rejection(self):
        """The FF17 collapse: Theta(n) edits, a single rejecting node."""
        config, distance, _ = _pointer_mix_pattern(24, make_rng(1))
        scheme = catalog.build("spanning-tree-ptr")
        assert count_rejections(scheme, config) == 1
        assert distance >= 12  # far, yet quiet

    def test_pattern_is_registered_for_the_pointer_scheme(self):
        assert "spanning-tree-ptr" in FAR_PATTERNS


class TestMeasurement:
    def test_pointer_scheme_is_classified_not_error_sensitive(self):
        sensitivity = measure_scheme_sensitivity(
            "spanning-tree-ptr", n=16, distances=(2, 4),
            samples_per_distance=1, attack_trials=8, rng=make_rng(21),
        )
        assert sensitivity.classification == "not-error-sensitive"
        assert sensitivity.beta < 0.2
        assert sensitivity.matches_declaration
        kinds = {s.kind for s in sensitivity.samples}
        assert "pattern" in kinds

    def test_repair_is_classified_error_sensitive(self):
        sensitivity = measure_scheme_sensitivity(
            "es-spanning-tree", n=16, distances=(1, 4),
            samples_per_distance=1, attack_trials=8, rng=make_rng(22),
        )
        assert sensitivity.classification == "error-sensitive"
        assert sensitivity.beta >= 0.2
        assert sensitivity.matches_declaration

    def test_gap_schemes_skip_dont_care_bursts(self):
        sensitivity = measure_scheme_sensitivity(
            "approx-vertex-cover", n=16, distances=(1, 8),
            samples_per_distance=2, attack_trials=8, rng=make_rng(23),
        )
        # Every sample that was kept obliged a rejection (a genuine
        # no-instance), and each saw at least one rejecting node.
        for sample in sensitivity.samples:
            assert sample.min_rejects >= 1

    def test_report_covers_requested_names_without_mismatches(self):
        report = error_sensitivity_report(
            names=("spanning-tree-ptr", "es-spanning-tree"),
            n=16, distances=(2, 4), samples_per_distance=1,
            attack_trials=8, rng=make_rng(24),
        )
        assert set(report.classified) == {"spanning-tree-ptr", "es-spanning-tree"}
        assert report.classified["spanning-tree-ptr"] == "not-error-sensitive"
        assert report.classified["es-spanning-tree"] == "error-sensitive"
        assert report.mismatches == []
        assert report.entry("es-spanning-tree").declared is True
        with pytest.raises(SchemeError):
            report.entry("nope")


class TestRepairScheme:
    def test_builds_from_the_catalog_with_metadata(self):
        spec = catalog.get("es-spanning-tree")
        assert spec.error_sensitive is True
        assert catalog.get("spanning-tree-ptr").error_sensitive is False
        scheme = catalog.build("es-spanning-tree")
        assert scheme.name == "es-spanning-tree"

    def test_complete_and_detects_corruption(self):
        scheme = catalog.build("es-spanning-tree")
        graph = connected_gnp(16, 0.25, make_rng(31))
        member = scheme.language.member_configuration(graph, rng=make_rng(32))
        assert scheme.run(member).all_accept
        bad = scheme.language.corrupted_configuration(graph, 2, rng=make_rng(33))
        assert not scheme.run(bad).all_accept

    def test_mix_pattern_is_harmless_after_reencoding(self):
        """The glued-orientations construction that breaks the pointer
        scheme lists every path edge under the list encoding — which is
        again a spanning tree, i.e. the repair dissolves the far-but-
        quiet configuration instead of mis-accepting it."""
        from repro.core.labeling import Configuration
        from repro.graphs.generators import path_graph

        n = 12
        graph = path_graph(n)
        scheme = catalog.build("es-spanning-tree")
        both = {
            v: frozenset(range(graph.degree(v))) for v in graph.nodes
        }
        mixed = Configuration.build(graph, both)
        assert scheme.language.is_member(mixed)


class TestExperimentTable:
    def test_es_experiment_rows_and_notes(self):
        from repro.analysis.experiments import experiment_es_sensitivity

        result = experiment_es_sensitivity(
            n=16, distances=(2, 4), samples_per_distance=1,
            attack_trials=8,
            names=("spanning-tree-ptr", "es-spanning-tree"),
        )
        col = result.headers.index
        schemes = {row[col("scheme")] for row in result.rows}
        assert schemes == {"spanning-tree-ptr", "es-spanning-tree"}
        assert any("FF17 negative demonstrated: spanning-tree-ptr" in note
                   for note in result.notes)
        assert any("FF17 repair demonstrated" in note for note in result.notes)
        assert any("declaration mismatches: none" in note
                   for note in result.notes)
