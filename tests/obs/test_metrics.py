"""Tests for the scope-aware metrics layer (`repro.obs.metrics`)."""

from __future__ import annotations

import time

import pytest

from repro.obs import metrics as obs
from repro.obs.metrics import NULL, MetricsCollector, NullCollector
from repro.util.rng import make_rng


@pytest.fixture(autouse=True)
def _clean_scopes():
    """No test may leak a scoped collector into the next."""
    yield
    obs._reset_for_tests()


class TestNullCollector:
    def test_shared_singleton(self):
        assert isinstance(NULL, NullCollector)
        assert obs.active() is NULL

    def test_every_recording_method_is_a_noop(self):
        NULL.add("x", 5)
        NULL.record_span("s", 1.0, 1, {})
        assert NULL.counter("x") == 0
        assert NULL.counter("x", default=7) == 7
        assert NULL.counters == {}
        assert NULL.spans == {}
        assert NULL.snapshot()["counters"] == {}

    def test_counters_view_never_grows(self):
        view = NULL.counters
        view["x"] = 1  # mutating the returned copy must not stick
        assert NULL.counters == {}


class TestUnscopedFastPath:
    def test_not_scoped_by_default(self):
        assert not obs.scoped()

    def test_span_is_the_shared_null_object(self):
        first = obs.span("anything", label=1)
        second = obs.span("other")
        assert first is second  # no allocation on the unscoped path
        with first:
            pass  # and it is a working (no-op) context manager

    def test_event_is_a_noop(self):
        obs.event("campaign.cell", n=8)  # must not raise, must not record

    def test_inc_still_reaches_the_root(self):
        before = obs.counter_total("test.unscoped")
        obs.inc("test.unscoped", 3)
        assert obs.counter_total("test.unscoped") == before + 3


class TestScopedCounters:
    def test_scope_sees_its_own_delta(self):
        with obs.collect("outer") as metrics:
            obs.inc("test.delta", 2)
            obs.add("test.delta", 3)
        assert metrics.counter("test.delta") == 5

    def test_scope_delta_equals_root_delta(self):
        """The load-bearing identity: a scoped counter reads exactly as a
        before/after delta of the process-lifetime root ledger."""
        rng = make_rng(11)
        for _ in range(20):
            before = obs.counter_total("test.prop")
            with obs.collect("probe") as metrics:
                bumps = [rng.randrange(0, 9) for _ in range(rng.randrange(1, 6))]
                for value in bumps:
                    obs.inc("test.prop", value)
            delta = obs.counter_total("test.prop") - before
            assert metrics.counter("test.prop") == delta == sum(bumps)

    def test_nested_scopes_each_see_their_window(self):
        with obs.collect("outer") as outer:
            obs.inc("test.nest")
            with obs.collect("inner") as inner:
                obs.inc("test.nest")
            obs.inc("test.nest")
        assert outer.counter("test.nest") == 3
        assert inner.counter("test.nest") == 1

    def test_active_is_innermost(self):
        with obs.collect("outer"):
            with obs.collect("inner") as inner:
                assert obs.active() is inner
            assert obs.scoped()
        assert obs.active() is NULL

    def test_labels_are_kept(self):
        with obs.collect("cell", scheme="mst", n=16) as metrics:
            pass
        assert metrics.labels == {"scheme": "mst", "n": 16}
        assert metrics.snapshot()["labels"] == {"scheme": "mst", "n": 16}


class TestViewBuildLedger:
    def test_record_view_builds_reaches_root_and_scope(self):
        before = obs.view_build_total()
        with obs.collect("probe") as metrics:
            obs.record_view_builds()
            obs.record_view_builds(4)
        assert metrics.counter("views.built") == 5
        assert obs.view_build_total() == before + 5

    def test_verifier_facade_reads_the_same_ledger(self):
        from repro.core.verifier import view_build_count

        assert view_build_count() == obs.view_build_total()
        obs.record_view_builds(2)
        assert view_build_count() == obs.view_build_total()

    def test_monkeypatch_seam(self, monkeypatch):
        """The ratchet's regression-injection seam: doubling the named
        function doubles what every collector sees."""
        original = obs.record_view_builds
        monkeypatch.setattr(
            obs, "record_view_builds", lambda count=1: original(2 * count)
        )
        with obs.collect("probe") as metrics:
            obs.record_view_builds(3)
        assert metrics.counter("views.built") == 6


class TestSpans:
    def test_unscoped_spans_record_nothing(self):
        with obs.span("ghost"):
            pass
        with obs.collect("probe") as metrics:
            pass
        assert metrics.spans == {}

    def test_span_aggregates_calls_and_seconds(self):
        with obs.collect("probe") as metrics:
            for _ in range(3):
                with obs.span("work"):
                    pass
        stat = metrics.spans["work"]
        assert stat.calls == 3
        assert stat.seconds >= 0.0

    def test_nested_span_durations_are_monotone(self):
        """An enclosing span can never be shorter than a span it
        contains (both measured by the same clock)."""
        with obs.collect("probe") as metrics:
            with obs.span("outer"):
                with obs.span("inner"):
                    time.sleep(0.002)
        outer = metrics.spans["outer"].seconds
        inner = metrics.spans["inner"].seconds
        assert inner > 0.0
        assert outer >= inner

    def test_nested_spans_reach_every_scoped_collector(self):
        with obs.collect("outer") as outer:
            with obs.collect("inner") as inner:
                with obs.span("work"):
                    pass
        assert outer.spans["work"].calls == 1
        assert inner.spans["work"].calls == 1


class TestScopeHygiene:
    def test_mispaired_exit_never_pops_the_root(self):
        scope = obs.collect("probe")
        scope.__enter__()
        scope.__exit__(None, None, None)
        scope.__exit__(None, None, None)  # double exit: harmless
        assert not obs.scoped()
        assert list(obs.iter_stack())  # root still present

    def test_reset_drops_leaked_scopes(self):
        obs.collect("leak").__enter__()
        assert obs.scoped()
        obs._reset_for_tests()
        assert not obs.scoped()

    def test_exception_still_closes_the_scope(self):
        with pytest.raises(RuntimeError):
            with obs.collect("probe"):
                raise RuntimeError("boom")
        assert not obs.scoped()


class TestHelpers:
    def test_instrumented_returns_result_and_collector(self):
        def work(x):
            obs.inc("test.helper", x)
            return x * 2

        result, metrics = obs.instrumented(work, 4)
        assert result == 8
        assert isinstance(metrics, MetricsCollector)
        assert metrics.counter("test.helper") == 4
        assert metrics.name == "work"
