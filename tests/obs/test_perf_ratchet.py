"""Tests for the committed perf ratchet (`benchmarks/bench_metrics.py`).

The ratchet's whole value is that it *fires*: these tests load the
benchmark module from its file, pin ``compare``'s semantics, check the
committed snapshots against a live re-measurement of a subgrid, and —
the acceptance test — inject a 2x view-build accounting regression
through the ``record_view_builds`` seam and watch the ratchet fail.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

from repro.obs import metrics as obs

REPO = pathlib.Path(__file__).resolve().parents[2]
BENCH_PATH = REPO / "benchmarks" / "bench_metrics.py"
RESULTS = REPO / "benchmarks" / "results"


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_metrics", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_metrics", module)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(autouse=True)
def _clean_scopes():
    yield
    obs._reset_for_tests()


class TestCompare:
    SNAPSHOT = {
        "schema": "bench-metrics/v1",
        "metric": "views.built",
        "tolerance": 0.10,
        "sizes": [16],
        "schemes": {"leader": {"16": 100}},
    }

    def test_within_tolerance_passes(self, bench):
        assert bench.compare(self.SNAPSHOT, {"leader": {"16": 110}}) == []
        assert bench.compare(self.SNAPSHOT, {"leader": {"16": 90}}) == []

    def test_regression_fails(self, bench):
        failures = bench.compare(self.SNAPSHOT, {"leader": {"16": 111}})
        assert len(failures) == 1
        assert "regressed" in failures[0]

    def test_grid_drift_fails_both_ways(self, bench):
        assert bench.compare(self.SNAPSHOT, {}) != []
        extra = {"leader": {"16": 100}, "mst": {"16": 5}}
        failures = bench.compare(self.SNAPSHOT, extra)
        assert any("missing from the committed snapshot" in f for f in failures)


class TestCommittedSnapshots:
    def test_files_exist_and_cover_the_floor(self):
        for name in ("BENCH_views.json", "BENCH_messages.json"):
            data = json.loads((RESULTS / name).read_text(encoding="utf-8"))
            assert data["schema"] == "bench-metrics/v1"
            assert len(data["schemes"]) >= 8
            assert len(data["sizes"]) >= 3

    def test_subgrid_matches_committed_exactly(self, bench):
        """Determinism: a live re-measurement reproduces the committed
        cells bit-for-bit (no tolerance needed)."""
        views = json.loads((RESULTS / "BENCH_views.json").read_text())
        messages = json.loads((RESULTS / "BENCH_messages.json").read_text())
        for name in ("leader", "bfs-tree"):
            for n in (16, 32):
                cell = bench.measure_cell(name, n)
                assert cell["views.built"] == views["schemes"][name][str(n)]
                assert cell["messages.sent"] == messages["schemes"][name][str(n)]


class TestInjectedRegression:
    def test_doubled_view_accounting_trips_the_ratchet(self, bench, monkeypatch):
        """Acceptance: a 2x view-build regression (injected through the
        repro.obs.metrics.record_view_builds seam) must fail --check."""
        committed = json.loads((RESULTS / "BENCH_views.json").read_text())
        original = obs.record_view_builds
        monkeypatch.setattr(
            obs, "record_view_builds", lambda count=1: original(2 * count)
        )
        name, n = "leader", 16
        cell = bench.measure_cell(name, n)
        assert cell["views.built"] == 2 * committed["schemes"][name][str(n)]
        failures = bench.compare(
            {
                **committed,
                "sizes": [n],
                "schemes": {name: {str(n): committed["schemes"][name][str(n)]}},
            },
            {name: {str(n): cell["views.built"]}},
        )
        assert len(failures) == 1
        assert "regressed" in failures[0]

    def test_honest_measurement_passes(self, bench):
        committed = json.loads((RESULTS / "BENCH_views.json").read_text())
        name, n = "leader", 16
        cell = bench.measure_cell(name, n)
        failures = bench.compare(
            {
                **committed,
                "schemes": {name: {str(n): committed["schemes"][name][str(n)]}},
            },
            {name: {str(n): cell["views.built"]}},
        )
        assert failures == []
