"""Instrumentation must be observationally free.

Opening a metrics scope (or attaching a trace sink) may never change a
verdict, a certificate, or the number of LocalViews the engine builds —
instrumentation reads the computation, it does not steer it.
"""

from __future__ import annotations

import io

import pytest

from repro.core import catalog
from repro.local.verification_round import distributed_verification
from repro.obs import metrics as obs
from repro.util.rng import make_rng

# A cheap cross-section: tree scheme, KKP visibility, weighted verifier,
# and an approx (gap) scheme.
SCHEMES = ("leader", "spanning-tree-ptr", "mst", "approx-vertex-cover")


@pytest.fixture(autouse=True)
def _clean_scopes():
    yield
    obs._reset_for_tests()


def _instance(name: str, n: int = 12):
    spec = catalog.get(name)
    rng = make_rng(0xB0B + n)
    graph = spec.sample_graph(n, rng)
    scheme = catalog.build(name, graph=graph, rng=rng)
    config = scheme.language.member_configuration(graph, rng=rng)
    return scheme, config


@pytest.mark.parametrize("name", SCHEMES)
def test_verdicts_identical_scoped_and_unscoped(name):
    scheme, config = _instance(name)
    certificates = scheme.prove(config)
    bare = scheme.run(config, certificates)
    with obs.collect("probe", trace=io.StringIO()):
        scoped = scheme.run(config, certificates)
    assert scoped.all_accept == bare.all_accept
    assert scoped.accepts == bare.accepts
    assert scoped.rejects == bare.rejects


@pytest.mark.parametrize("name", ("leader", "spanning-tree-ptr"))
def test_view_build_cost_identical_scoped_and_unscoped(name):
    """The audited unit is invariant under instrumentation: the root
    ledger advances by the same amount whether or not a scope watches."""
    scheme, config = _instance(name)
    certificates = scheme.prove(config)

    before = obs.view_build_total()
    scheme.run(config, certificates)
    bare_delta = obs.view_build_total() - before

    before = obs.view_build_total()
    with obs.collect("probe") as metrics:
        scheme.run(config, certificates)
    scoped_delta = obs.view_build_total() - before

    assert scoped_delta == bare_delta
    assert metrics.counter("views.built") == scoped_delta


def test_message_round_identical_scoped_and_unscoped():
    scheme, config = _instance("leader", n=10)
    certificates = scheme.prove(config)
    bare_verdict, bare_run = distributed_verification(scheme, config, certificates)
    with obs.collect("probe") as metrics:
        scoped_verdict, scoped_run = distributed_verification(
            scheme, config, certificates
        )
    assert scoped_verdict.all_accept == bare_verdict.all_accept
    assert scoped_verdict.accepts == bare_verdict.accepts
    assert scoped_verdict.rejects == bare_verdict.rejects
    assert scoped_run.message_count == bare_run.message_count
    assert scoped_run.message_bits == bare_run.message_bits
    assert metrics.counter("messages.sent") == scoped_run.message_count
