"""Concurrency properties of the metrics layer (`repro.obs.metrics`).

The threaded certification front end makes the obs ledger a shared
data structure: many request threads bump root counters while any of
them may hold open `collect()` scopes.  These tests pin the threading
contract the module docstring states:

* root counter totals are **process-lifetime-exact** — the delta over a
  concurrent storm equals the arithmetic sum of every thread's bumps,
  never a lost update;
* a scope opened in one thread is **invisible** to every other thread —
  its collector sees exactly the costs its own thread incurred;
* span nesting and depth are per thread — concurrent spans never
  interleave each other's depths;
* a scope exited on the wrong thread is a no-op there and never strips
  another thread's stack (nor the root).

Scale knob: ``REPRO_THREAD_STRESS`` multiplies thread count and
iterations (CI's 3.13 lane runs these with the default; a soak run can
export a larger factor).
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.obs import metrics as obs

#: Multiplier for threads/iterations, for soak runs (CI keeps 1).
STRESS = max(1, int(os.environ.get("REPRO_THREAD_STRESS", "1")))


@pytest.fixture(autouse=True)
def _clean_scopes():
    """No test may leak a scoped collector into the next."""
    yield
    obs._reset_for_tests()


def _run_threads(workers):
    """Start one thread per callable, join all; re-raise any failure."""
    failures = []

    def wrap(fn):
        def run():
            try:
                fn()
            except BaseException as error:  # pragma: no cover - on failure
                failures.append(error)

        return run

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]


class TestRootExactness:
    def test_concurrent_bumps_sum_exactly(self):
        # >= 1000 mixed bumps from many threads: the root total is the
        # exact arithmetic sum, bit-for-bit — no lost updates.
        n_threads, per_thread = 8 * STRESS, 250 * STRESS
        before_a = obs.counter_total("stress.a")
        before_b = obs.counter_total("stress.b")
        barrier = threading.Barrier(n_threads)

        def worker():
            barrier.wait()  # maximize interleaving
            for index in range(per_thread):
                obs.inc("stress.a")
                obs.add("stress.b", 3)
                if index % 2:
                    obs.inc("stress.a", 2)

        _run_threads([worker] * n_threads)
        total_bumps = n_threads * per_thread
        assert obs.counter_total("stress.a") - before_a == (
            total_bumps + 2 * (total_bumps // 2)
        )
        assert obs.counter_total("stress.b") - before_b == 3 * total_bumps

    def test_view_build_total_exact_under_threads(self):
        n_threads, per_thread = 6 * STRESS, 200 * STRESS
        before = obs.view_build_total()
        barrier = threading.Barrier(n_threads)

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                obs.record_view_builds()
                obs.record_view_builds(2)

        _run_threads([worker] * n_threads)
        assert obs.view_build_total() - before == 3 * n_threads * per_thread

    def test_mixed_scoped_and_unscoped_threads_keep_root_exact(self):
        # Half the threads bump inside scopes, half bare; the root sees
        # every bump exactly once either way.
        n_threads, per_thread = 8, 150 * STRESS
        before = obs.counter_total("stress.mixed")
        barrier = threading.Barrier(n_threads)

        def scoped_worker():
            with obs.collect("worker"):
                barrier.wait()
                for _ in range(per_thread):
                    obs.inc("stress.mixed")

        def bare_worker():
            barrier.wait()
            for _ in range(per_thread):
                obs.inc("stress.mixed")

        _run_threads([scoped_worker, bare_worker] * (n_threads // 2))
        assert (
            obs.counter_total("stress.mixed") - before == n_threads * per_thread
        )


class TestScopeIsolation:
    def test_each_thread_sees_only_its_own_bumps(self):
        # N threads each open a scope and bump a distinct amount; every
        # scope's counter equals its own thread's contribution only.
        amounts = [10, 20, 30, 40, 50]
        snapshots = {}
        barrier = threading.Barrier(len(amounts))

        def make_worker(amount):
            def worker():
                with obs.collect(f"scope-{amount}") as metrics:
                    barrier.wait()
                    for _ in range(amount):
                        obs.inc("isolated.bumps")
                snapshots[amount] = metrics.counter("isolated.bumps")

            return worker

        _run_threads([make_worker(amount) for amount in amounts])
        assert snapshots == {amount: amount for amount in amounts}

    def test_scope_invisible_to_other_threads(self):
        # A scope open on the main thread must not absorb a worker
        # thread's bumps — and the worker must read as unscoped.
        worker_state = {}

        def worker():
            worker_state["scoped"] = obs.scoped()
            worker_state["active"] = obs.active()
            obs.inc("crossthread.bumps", 7)

        before_root = obs.counter_total("crossthread.bumps")
        with obs.collect("main-only") as metrics:
            _run_threads([worker])
        assert worker_state["scoped"] is False
        assert worker_state["active"] is obs.NULL
        assert metrics.counter("crossthread.bumps") == 0
        # ...but the shared root still accounted for the worker.
        assert obs.counter_total("crossthread.bumps") - before_root == 7

    def test_span_on_unscoped_thread_is_null(self):
        seen = {}

        def worker():
            seen["span"] = obs.span("decide")

        with obs.collect("main-only"):
            _run_threads([worker])
            assert isinstance(obs.span("decide"), obs._Span)
        assert seen["span"] is obs._NULL_SPAN


class TestSpanNesting:
    def test_depths_never_leak_across_threads(self):
        # Each thread runs its own nested spans; recorded depths must
        # reflect only that thread's nesting (1 then 2), regardless of
        # how the threads interleave.
        n_threads = 6
        depth_log = {}
        barrier = threading.Barrier(n_threads)

        def make_worker(tid):
            def worker():
                with obs.collect(f"t{tid}") as metrics:
                    barrier.wait()
                    for _ in range(20 * STRESS):
                        with obs.span("outer"):
                            with obs.span("inner"):
                                pass
                depth_log[tid] = {
                    name: stat.calls for name, stat in metrics.spans.items()
                }

            return worker

        # Depths stream through record_span; capture them per thread
        # via a sink-free check on the aggregate call counts plus one
        # instrumented thread asserting depths inline.
        depths_seen = []
        real_record = obs.MetricsCollector.record_span

        def recording(self, name, duration, depth, labels):
            depths_seen.append((threading.get_ident(), name, depth))
            real_record(self, name, duration, depth, labels)

        obs.MetricsCollector.record_span = recording
        try:
            _run_threads([make_worker(tid) for tid in range(n_threads)])
        finally:
            obs.MetricsCollector.record_span = real_record

        for tid in range(n_threads):
            assert depth_log[tid] == {
                "outer": 20 * STRESS,
                "inner": 20 * STRESS,
            }
        # Every recorded depth is exactly the per-thread nesting level:
        # inner always closes at depth 2, outer at depth 1 — never a
        # depth polluted by another thread's open spans.
        for _, name, depth in depths_seen:
            assert depth == (2 if name == "inner" else 1)

    def test_concurrent_spans_count_exactly_per_scope(self):
        results = {}
        barrier = threading.Barrier(4)

        def make_worker(tid):
            def worker():
                with obs.collect(f"spans-{tid}") as metrics:
                    barrier.wait()
                    for _ in range(50):
                        with obs.span("work"):
                            pass
                results[tid] = metrics.spans["work"].calls

            return worker

        _run_threads([make_worker(tid) for tid in range(4)])
        assert results == {tid: 50 for tid in range(4)}


class TestMispairedExitUnderThreads:
    def test_exit_on_wrong_thread_is_noop_there(self):
        # Enter a scope on the main thread, hand the context manager to
        # a worker for the exit: the worker's (empty) stack is left
        # alone, the main thread's stack still holds the scope, and a
        # later same-thread exit still works.
        scope = obs.collect("handed-off")
        metrics = scope.__enter__()
        obs.inc("mispaired.bumps")

        def worker():
            # wrong-thread exit: pops nothing, closes nothing
            scope.__exit__(None, None, None)
            assert obs.scoped() is False
            obs.inc("mispaired.bumps")  # lands in root only

        _run_threads([worker])
        # main thread still scoped; its collector missed the worker bump
        assert obs.active() is metrics
        assert metrics.counter("mispaired.bumps") == 1
        scope.__exit__(None, None, None)
        assert obs.active() is obs.NULL

    def test_wrong_thread_exit_never_strips_root(self):
        scope = obs.collect("rooted")
        scope.__enter__()

        def worker():
            scope.__exit__(None, None, None)
            assert list(obs.iter_stack())  # root always present

        _run_threads([worker])
        assert next(obs.iter_stack()).name == "root"
        scope.__exit__(None, None, None)

    def test_reset_for_tests_clears_calling_thread_only(self):
        entered = threading.Event()
        release = threading.Event()
        state = {}

        def worker():
            with obs.collect("worker-scope") as metrics:
                entered.set()
                release.wait(timeout=10)
                state["active"] = obs.active() is metrics

        thread = threading.Thread(target=worker)
        thread.start()
        try:
            assert entered.wait(timeout=10)
            with obs.collect("main-scope"):
                obs._reset_for_tests()  # clears *this* thread's stack
                assert obs.scoped() is False
        finally:
            release.set()
            thread.join()
        assert state["active"] is True  # worker's scope survived
