"""Tests for the JSONL trace sink and its schema (`repro.obs.trace`)."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import metrics as obs
from repro.obs.trace import TRACE_TYPES, TraceSink, read_trace, validate_record


@pytest.fixture(autouse=True)
def _clean_scopes():
    yield
    obs._reset_for_tests()


class TestTraceSink:
    def test_writes_every_record_type(self):
        buffer = io.StringIO()
        sink = TraceSink(buffer)
        sink.begin("probe", {"scheme": "mst"})
        sink.span("decide", 0.001, 1, {"scheme": "mst"})
        sink.event("campaign.cell", {"n": 16})
        sink.metrics({"scope": "probe", "labels": {}, "counters": {}, "spans": {}})
        sink.close()
        records = read_trace(buffer.getvalue())
        assert [record["type"] for record in records] == [
            "begin",
            "span",
            "event",
            "metrics",
        ]

    def test_file_like_target_is_not_closed(self):
        buffer = io.StringIO()
        sink = TraceSink(buffer)
        sink.begin("probe", {})
        sink.close()
        assert not buffer.closed
        sink.begin("after-close", {})  # closed sink: silently dropped
        assert "after-close" not in buffer.getvalue()

    def test_path_target_creates_parents(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "trace.jsonl"
        sink = TraceSink(target)
        sink.begin("probe", {})
        sink.close()
        assert read_trace(target)[0]["scope"] == "probe"

    def test_non_json_values_stringified(self):
        buffer = io.StringIO()
        sink = TraceSink(buffer)
        sink.event("odd", {"obj": object()})
        records = read_trace(buffer.getvalue())
        assert isinstance(records[0]["fields"]["obj"], str)


class TestSchema:
    def test_valid_records_pass(self):
        validate_record({"type": "begin", "scope": "s", "labels": {}})
        validate_record(
            {"type": "span", "name": "n", "seconds": 0.0, "depth": 1, "labels": {}}
        )
        validate_record({"type": "event", "name": "n", "fields": {}})
        validate_record(
            {"type": "metrics", "scope": "s", "labels": {}, "counters": {}, "spans": {}}
        )

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown trace record type"):
            validate_record({"type": "mystery"})

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError, match="missing fields"):
            validate_record({"type": "begin", "scope": "s"})

    def test_negative_span_seconds_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            validate_record(
                {"type": "span", "name": "n", "seconds": -1, "depth": 1, "labels": {}}
            )

    def test_zero_span_depth_rejected(self):
        with pytest.raises(ValueError, match="positive integer"):
            validate_record(
                {"type": "span", "name": "n", "seconds": 0.0, "depth": 0, "labels": {}}
            )

    def test_metrics_counters_must_be_mapping(self):
        with pytest.raises(ValueError, match="mapping"):
            validate_record(
                {
                    "type": "metrics",
                    "scope": "s",
                    "labels": {},
                    "counters": 3,
                    "spans": {},
                }
            )

    def test_every_declared_type_has_fields(self):
        for kind, fields in TRACE_TYPES.items():
            assert fields, kind


class TestReadTrace:
    def test_invalid_json_line_reports_lineno(self):
        with pytest.raises(ValueError, match="trace line 2"):
            read_trace('{"type": "begin", "scope": "s", "labels": {}}\nnot json\n')

    def test_schema_violation_reports_lineno(self):
        bad = json.dumps({"type": "span", "name": "n"})
        with pytest.raises(ValueError, match="trace line 1"):
            read_trace(bad + "\n")

    def test_blank_lines_skipped(self):
        text = '\n{"type": "event", "name": "n", "fields": {}}\n\n'
        assert len(read_trace(text)) == 1


class TestScopeIntegration:
    def test_collect_with_trace_round_trips(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        with obs.collect("probe", trace=str(target), scheme="leader"):
            obs.inc("test.traced", 2)
            with obs.span("work", phase="a"):
                pass
            obs.event("cell", n=8)
        records = read_trace(target)
        kinds = [record["type"] for record in records]
        assert kinds[0] == "begin"
        assert kinds[-1] == "metrics"  # snapshot is always last
        assert "span" in kinds and "event" in kinds
        final = records[-1]
        assert final["counters"]["test.traced"] == 2
        assert final["labels"] == {"scheme": "leader"}
        span_record = next(r for r in records if r["type"] == "span")
        assert span_record["name"] == "work"
        assert span_record["depth"] == 1
        assert span_record["labels"] == {"phase": "a"}

    def test_only_the_sinked_scope_streams(self, tmp_path):
        """A nested scope without its own sink records counters but does
        not write to the enclosing scope's file twice."""
        target = tmp_path / "trace.jsonl"
        with obs.collect("outer", trace=str(target)):
            with obs.collect("inner") as inner:
                obs.event("marker", k=1)
        assert inner.sink is None
        records = read_trace(target)
        markers = [r for r in records if r["type"] == "event"]
        assert len(markers) == 1
