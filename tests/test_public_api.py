"""The public API surface stays importable and coherent."""

from __future__ import annotations

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.util",
    "repro.graphs",
    "repro.local",
    "repro.core",
    "repro.schemes",
    "repro.lowerbounds",
    "repro.selfstab",
    "repro.algorithms",
    "repro.analysis",
    "repro.approx",
    "repro.errorsensitive",
    "repro.service",
    "repro.cli",
]


class TestImports:
    @pytest.mark.parametrize("module", SUBPACKAGES)
    def test_subpackages_import(self, module):
        importlib.import_module(module)

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module", SUBPACKAGES[:-1])
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestDocstrings:
    @pytest.mark.parametrize("module", SUBPACKAGES)
    def test_modules_documented(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and mod.__doc__.strip()

    def test_public_classes_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type):
                assert obj.__doc__, f"{name} lacks a docstring"


class TestQuickstartContract:
    def test_readme_quickstart_snippet(self):
        from repro import SpanningTreePointerScheme, connected_gnp, make_rng
        from repro.core.soundness import attack

        rng = make_rng(1)
        graph = connected_gnp(32, 0.2, rng)
        scheme = SpanningTreePointerScheme()
        config = scheme.language.member_configuration(graph, rng=rng)
        assert scheme.run(config).all_accept
        bad = scheme.language.corrupted_configuration(graph, 2, rng=rng)
        assert not scheme.run(bad).all_accept
        assert not attack(scheme, bad, rng=rng).fooled
