"""Smoke tests for the experiment harness (tiny parameters)."""

from __future__ import annotations


from repro.analysis.experiments import (
    experiment_f1_st_scaling,
    experiment_f2_mst_scaling,
    experiment_f3_lower_bound,
    experiment_f4_selfstab,
    experiment_f5_idspace,
    experiment_t1_proof_sizes,
    experiment_t2_soundness,
    experiment_t3_universal,
    experiment_t4_verification_cost,
    experiment_t5_approx,
)
from repro.analysis.tables import ExperimentResult, format_table
from repro.util.rng import make_rng


class TestTables:
    def test_format_table_alignment(self):
        table = format_table(("a", "bbbb"), [(1, 2.5), (333, None)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "2.50" in table
        assert "-" in lines[-1]

    def test_experiment_result_render(self):
        result = ExperimentResult("demo", ("x", "y"))
        result.add(1, 2)
        result.note("a note")
        text = result.to_table()
        assert "demo" in text and "a note" in text


class TestExperimentsRun:
    def test_t1(self):
        from repro.core import catalog

        result = experiment_t1_proof_sizes(sizes=(8, 12), rng=make_rng(1))
        assert len(result.rows) == len(catalog.specs(kind="exact")) * 2
        assert any("best-fit" in n for n in result.notes)

    def test_t2(self):
        result = experiment_t2_soundness(
            n=8, corruption_levels=(1,), trials=10, rng=make_rng(2)
        )
        assert result.rows
        fooled_column = [row[3] for row in result.rows if row[3] != "-"]
        assert all(f is False for f in fooled_column)

    def test_f1(self):
        result = experiment_f1_st_scaling(sizes=(8, 16), rng=make_rng(3))
        assert len(result.rows) == 8
        assert all("bits per doubling" in n for n in result.notes)

    def test_f2(self):
        result = experiment_f2_mst_scaling(sizes=(8, 16), rng=make_rng(4))
        assert len(result.rows) == 2
        for row in result.rows:
            assert row[3] <= row[4]  # phases within the log bound

    def test_f3(self):
        result = experiment_f3_lower_bound(sizes=(8, 16))
        assert len(result.rows) == 2
        for row in result.rows:
            n, cycle_b, path_b, surviving, log_u = row
            assert surviving > path_b

    def test_t3(self):
        result = experiment_t3_universal(sizes=(6, 10), rng=make_rng(5))
        for row in result.rows:
            assert row[3] is True  # member accepted
            assert row[4] is True  # corrupted rejected

    def test_f4(self):
        result = experiment_f4_selfstab(n=14, fault_counts=(2,), seeds=range(2))
        assert result.rows
        for row in result.rows:
            assert row[2] == 0  # detection latency: first sweep

    def test_t4(self):
        from repro.core import catalog

        result = experiment_t4_verification_cost(n=10, rng=make_rng(6))
        radius_one = [s for s in catalog.specs(kind="exact") if s.radius == 1]
        assert len(result.rows) == len(radius_one)
        assert all(row[1] == 1 for row in result.rows)  # one round each

    def test_t5(self):
        from repro.core import catalog

        result = experiment_t5_approx(
            sizes=(10,), families=("gnp_sparse",), rng=make_rng(9)
        )
        # One row per approx spec, times the three-point eps sweep for
        # the (1+eps)-parametrised counter families.
        expected = sum(
            3 if spec.has_param("eps") else 1
            for spec in catalog.specs(kind="approx")
        )
        assert len(result.rows) == expected
        for row in result.rows:
            assert row[4] < row[5]  # approx bits strictly below exact bits
        swept_alphas = {
            row[1] for row in result.rows if row[0] == "approx-tree-weight"
        }
        assert len(swept_alphas) >= 3  # the eps sweep really varies alpha
        assert any("strictly smaller" in n and "True" in n for n in result.notes)
        assert any("tradeoff" in n for n in result.notes)

    def test_f5(self):
        result = experiment_f5_idspace(
            n=12, domains=(2, 2**8), universes=(64, 2**16), rng=make_rng(7)
        )
        agreement_rows = [r for r in result.rows if r[0].startswith("agreement")]
        assert agreement_rows[0][3] <= agreement_rows[-1][3]
