"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.graphs.generators import (
    connected_gnp,
    cycle_graph,
    grid_graph,
    path_graph,
    random_tree,
)
from repro.graphs.weighted import weighted_copy
from repro.util.rng import make_rng


@pytest.fixture
def rng():
    """A deterministic RNG, fresh per test."""
    return make_rng(0xC0FFEE)


@pytest.fixture
def small_graphs(rng):
    """A representative zoo of small connected graphs."""
    return {
        "path": path_graph(7),
        "cycle": cycle_graph(8),
        "grid": grid_graph(3, 4),
        "tree": random_tree(10, rng),
        "gnp": connected_gnp(12, 0.3, rng),
    }


@pytest.fixture
def weighted_graph(rng):
    """A small connected graph with distinct random weights."""
    return weighted_copy(connected_gnp(10, 0.35, rng), rng)
