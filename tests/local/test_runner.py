"""Tests for the synchronous LOCAL-model runner."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.graphs.generators import cycle_graph, path_graph
from repro.local.algorithm import Halted, NodeContext, SynchronousAlgorithm
from repro.local.network import Network
from repro.local.runner import run_synchronous


class EchoOnce(SynchronousAlgorithm):
    """Round 0: broadcast uid; then halt with the set of heard uids."""

    name = "echo-once"

    def init_state(self, ctx):
        return None

    def send(self, ctx, state, round_index):
        return {port: ctx.uid for port in range(ctx.degree)}

    def receive(self, ctx, state, inbox, round_index):
        return Halted(frozenset(inbox.values()))


class CountTo(SynchronousAlgorithm):
    """Halt after a fixed number of rounds; no messages."""

    name = "count-to"

    def __init__(self, rounds):
        self.rounds = rounds

    def init_state(self, ctx):
        return 0

    def send(self, ctx, state, round_index):
        return {}

    def receive(self, ctx, state, inbox, round_index):
        if round_index + 1 >= self.rounds:
            return Halted(round_index + 1)
        return state + 1


class BadPort(SynchronousAlgorithm):
    name = "bad-port"

    def init_state(self, ctx):
        return None

    def send(self, ctx, state, round_index):
        return {99: "boom"}

    def receive(self, ctx, state, inbox, round_index):
        return Halted(None)


class Forever(SynchronousAlgorithm):
    name = "forever"

    def init_state(self, ctx):
        return 0

    def send(self, ctx, state, round_index):
        return {}

    def receive(self, ctx, state, inbox, round_index):
        return state + 1


class TestRunner:
    def test_one_round_echo(self):
        net = Network(path_graph(3))
        result = run_synchronous(net, EchoOnce())
        assert result.rounds == 1
        assert result.outputs[0] == frozenset({net.ids[1]})
        assert result.outputs[1] == frozenset({net.ids[0], net.ids[2]})

    def test_message_accounting(self):
        g = cycle_graph(5)
        result = run_synchronous(Network(g), EchoOnce())
        assert result.message_count == 2 * g.num_edges
        assert result.message_bits > 0

    def test_bit_accounting_optional(self):
        result = run_synchronous(Network(path_graph(3)), EchoOnce(), count_bits=False)
        assert result.message_bits == 0
        assert result.message_count == 4

    def test_fixed_round_halting(self):
        result = run_synchronous(Network(path_graph(4)), CountTo(5))
        assert result.rounds == 5
        assert all(out == 5 for out in result.outputs.values())

    def test_invalid_port_raises(self):
        with pytest.raises(SimulationError):
            run_synchronous(Network(path_graph(2)), BadPort())

    def test_round_budget(self):
        with pytest.raises(SimulationError):
            run_synchronous(Network(path_graph(2)), Forever(), max_rounds=10)

    def test_output_by_uid(self):
        net = Network(path_graph(2))
        result = run_synchronous(net, CountTo(1))
        assert set(result.output_by_uid(net)) == set(net.ids.values())


class TestNetwork:
    def test_contexts(self):
        g = path_graph(3).with_weights({(0, 1): 2.5, (1, 2): 3.5})
        net = Network(g, inputs={0: "a", 1: "b", 2: "c"})
        ctx = net.context(1)
        assert isinstance(ctx, NodeContext)
        assert ctx.degree == 2
        assert ctx.input == "b"
        assert ctx.n == 3
        assert ctx.port_weights == (2.5, 3.5)

    def test_missing_inputs_rejected(self):
        with pytest.raises(SimulationError):
            Network(path_graph(3), inputs={0: 1})

    def test_node_of_uid(self):
        net = Network(path_graph(3), ids={0: 10, 1: 20, 2: 30})
        assert net.node_of_uid(20) == 1
        with pytest.raises(SimulationError):
            net.node_of_uid(99)

    def test_default_ids_contiguous(self):
        net = Network(path_graph(3))
        assert net.ids == {0: 1, 1: 2, 2: 3}


class HaltAtRound(SynchronousAlgorithm):
    """Broadcast every round; node 0 halts immediately, others at round 2.

    After round 0 every message node 1 sends toward node 0 is addressed
    to a halted receiver and must be dropped *and excluded* from the
    message statistics.
    """

    name = "halt-at-round"

    def init_state(self, ctx):
        return None

    def send(self, ctx, state, round_index):
        return {port: "ping" for port in range(ctx.degree)}

    def receive(self, ctx, state, inbox, round_index):
        if ctx.node == 0 or round_index >= 2:
            return Halted(round_index)
        return state


class TestHaltedReceivers:
    def test_messages_to_halted_nodes_not_counted(self):
        # Path 0-1-2: round 0 all send (4 messages). Rounds 1 and 2:
        # nodes 1 and 2 send 2 messages each toward each other, plus one
        # each round from 1 toward halted 0 — dropped, not counted.
        result = run_synchronous(Network(path_graph(3)), HaltAtRound())
        assert result.rounds == 3
        assert result.message_count == 4 + 2 + 2

    def test_bits_match_counted_messages(self):
        from repro.util.bits import obj_bit_size

        result = run_synchronous(Network(path_graph(3)), HaltAtRound())
        assert result.message_bits == result.message_count * obj_bit_size("ping")

    def test_cached_contexts_are_shared(self):
        net = Network(path_graph(3))
        assert net.contexts() is net.contexts()
