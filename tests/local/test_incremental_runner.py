"""The incremental message-passing path: reuse must be invisible.

Central property: a :class:`~repro.local.runner.SimulationSession` fed
any sequence of localized register/certificate changes must be
round-for-round identical to a fresh non-incremental run — same
outputs, same message counts and bits, same rejection sets — across
visibilities, radii, and daemon-shaped mutation schedules, while
re-executing only O(ball(changed)) nodes.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.verifier import Visibility, view_build_count
from repro.graphs.generators import connected_gnp, path_graph
from repro.local.algorithm import Halted, SynchronousAlgorithm
from repro.local.network import Network
from repro.local.runner import SimulationSession, run_synchronous
from repro.local.verification_round import (
    VerificationSession,
    distributed_verification,
)
from repro.schemes.radius_acyclic import CoarseAcyclicScheme
from repro.schemes.spanning_tree import SpanningTreePointerScheme
from repro.selfstab import (
    MaxRootBfsProtocol,
    PartialDaemon,
    PlsDetector,
    inject_faults_report,
    run_until_silent,
)
from repro.util.rng import make_rng


class FullSpanningTreeScheme(SpanningTreePointerScheme):
    """The pointer scheme under FULL visibility (ignores the extra data)."""

    visibility = Visibility.FULL


def _certified(seed, n=18, scheme=None):
    rng = make_rng(seed)
    graph = connected_gnp(n, 0.25, rng)
    network = Network(graph)
    protocol = MaxRootBfsProtocol()
    detector = PlsDetector(scheme or SpanningTreePointerScheme(), protocol)
    states = run_until_silent(network, protocol).states
    return rng, network, protocol, detector, states


def _registers(detector, network, states):
    config = detector.configuration(network, states)
    certs = detector.certificates(network, states)
    return config, certs


class TestVerificationSessionEquivalence:
    """Incremental resweeps == fresh distributed verification, always."""

    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_randomized_fault_schedule(self, seed):
        rng, network, protocol, detector, states = _certified(seed)
        config, certs = _registers(detector, network, states)
        session = VerificationSession(detector.scheme, config, certs)
        current = dict(states)
        for burst in range(3):
            k = 1 + (seed + burst) % 3
            injection = inject_faults_report(network, protocol, current, k, rng)
            current = injection.states
            new_config, new_certs = _registers(detector, network, current)
            verdict, result = session.resweep(
                states=dict(new_config.labeling),
                certificates=new_certs,
                changed=injection.victims,
            )
            fresh_verdict, fresh_result = distributed_verification(
                detector.scheme, new_config, certificates=new_certs
            )
            assert verdict == fresh_verdict  # rejection sets identical
            assert result.outputs == fresh_result.outputs
            assert result.rounds == fresh_result.rounds
            assert result.message_count == fresh_result.message_count
            assert result.message_bits == fresh_result.message_bits

    @pytest.mark.parametrize(
        "scheme_factory",
        [
            SpanningTreePointerScheme,
            FullSpanningTreeScheme,
            lambda: CoarseAcyclicScheme(2),
            lambda: CoarseAcyclicScheme(3),
        ],
        ids=["kkp-r1", "full-r1", "full-r2", "full-r3"],
    )
    def test_across_visibilities_and_radii(self, scheme_factory):
        scheme = scheme_factory()
        rng = make_rng(33)
        graph = path_graph(14)
        config = scheme.language.member_configuration(graph, rng=rng)
        certs = dict(scheme.prove(config))
        session = VerificationSession(scheme, config, certs)
        assert session.verdict() == scheme.run(config, certificates=certs)
        for trial in range(4):
            node = rng.randrange(graph.n)
            certs[node] = ("bogus", trial)
            verdict, result = session.resweep(certificates=certs, changed=[node])
            fresh_verdict, fresh_result = distributed_verification(
                scheme, config, certificates=certs
            )
            assert verdict == fresh_verdict
            assert result.message_count == fresh_result.message_count
            assert result.message_bits == fresh_result.message_bits

    def test_daemon_shaped_mutation_schedule(self):
        # A partial daemon decides which registers mutate each round —
        # including empty rounds (no change at all): the session must
        # track every schedule a daemon can produce.
        rng, network, protocol, detector, states = _certified(91)
        config, certs = _registers(detector, network, states)
        session = VerificationSession(detector.scheme, config, certs)
        daemon = PartialDaemon(0.2)
        current = dict(states)
        nodes = sorted(network.graph.nodes)
        for round_index in range(6):
            contexts = network.contexts()
            active = daemon.activation(nodes, round_index, rng)
            mutated = dict(current)
            for v in sorted(active):
                mutated[v] = protocol.random_state(contexts[v], rng)
            current = mutated
            new_config, new_certs = _registers(detector, network, current)
            verdict, _ = session.resweep(
                states=dict(new_config.labeling),
                certificates=new_certs,
                changed=active,
            )
            fresh_verdict, _ = distributed_verification(
                detector.scheme, new_config, certificates=new_certs
            )
            assert verdict == fresh_verdict

    def test_resweep_builds_ball_not_n(self):
        rng, network, protocol, detector, states = _certified(7, n=40)
        config, certs = _registers(detector, network, states)
        session = VerificationSession(detector.scheme, config, certs)
        injection = inject_faults_report(network, protocol, states, 1, rng)
        new_config, new_certs = _registers(detector, network, injection.states)
        before = view_build_count()
        session.resweep(
            states=dict(new_config.labeling),
            certificates=new_certs,
            changed=injection.victims,
        )
        built = view_build_count() - before
        victim = injection.victims[0]
        ball = 1 + network.graph.degree(victim)
        assert built <= ball < network.graph.n

    def test_unchanged_resweep_is_free(self):
        _, network, protocol, detector, states = _certified(5)
        config, certs = _registers(detector, network, states)
        session = VerificationSession(detector.scheme, config, certs)
        before = view_build_count()
        verdict, _ = session.resweep(
            states=dict(config.labeling), certificates=certs
        )
        assert view_build_count() == before
        assert verdict.all_accept


class CountdownBroadcast(SynchronousAlgorithm):
    """Broadcast (input, round) for ``input`` rounds, then halt with the sum
    of everything heard — input-dependent halting, so an input change at
    one node shifts its halt round and exercises the fallback path."""

    name = "countdown-broadcast"

    def init_state(self, ctx):
        return 0

    def send(self, ctx, state, round_index):
        return {port: (ctx.uid, round_index) for port in range(ctx.degree)}

    def receive(self, ctx, state, inbox, round_index):
        total = state + sum(uid for uid, _ in inbox.values())
        if round_index + 1 >= ctx.input:
            return Halted(total)
        return total


class TestSimulationSession:
    def test_cached_result_matches_run_synchronous(self):
        network = Network(
            connected_gnp(12, 0.3, make_rng(1)),
            inputs={v: 3 for v in range(12)},
        )
        fresh = run_synchronous(network, CountdownBroadcast())
        session = SimulationSession(network, CountdownBroadcast())
        cached = session.result()
        assert cached.outputs == fresh.outputs
        assert cached.rounds == fresh.rounds
        assert cached.message_count == fresh.message_count
        assert cached.message_bits == fresh.message_bits
        assert cached.states == fresh.states

    def test_rerun_without_changes_is_identity(self):
        network = Network(path_graph(6), inputs={v: 2 for v in range(6)})
        session = SimulationSession(network, CountdownBroadcast())
        assert session.rerun(changed=()) == session.result()

    def test_halt_divergence_falls_back_to_full_run(self):
        # Changing one node's input changes its halt round; the session
        # must detect the divergence and still return the exact fresh
        # result.
        inputs = {v: 2 for v in range(8)}
        network = Network(path_graph(8), inputs=dict(inputs))
        session = SimulationSession(network, CountdownBroadcast())
        network.update_input(3, 4)
        result = session.rerun(changed=[3])
        fresh = run_synchronous(
            Network(path_graph(8), inputs={**inputs, 3: 4}), CountdownBroadcast()
        )
        assert result.outputs == fresh.outputs
        assert result.rounds == fresh.rounds
        assert result.message_count == fresh.message_count
        assert result.message_bits == fresh.message_bits


class TestNetworkUpdateInput:
    def test_patches_cached_context(self):
        network = Network(path_graph(3), inputs={0: "a", 1: "b", 2: "c"})
        contexts = network.contexts()
        network.update_input(1, "z")
        assert contexts[1].input == "z"
        assert network.contexts()[1].input == "z"
        assert contexts[0].input == "a"

    def test_unknown_node_rejected(self):
        from repro.errors import SimulationError

        network = Network(path_graph(3))
        with pytest.raises(SimulationError):
            network.update_input(9, 1)
