"""The message-passing verification round must match the direct engine."""

from __future__ import annotations

import pytest

from repro.graphs.generators import connected_gnp, grid_graph
from repro.graphs.weighted import weighted_copy
from repro.local.verification_round import distributed_verification
from repro.core import catalog
from repro.util.rng import make_rng


def _scheme_and_config(name, rng):
    # Graph first: graph-fitted specs (e.g. eccentricity) need it to build.
    graph = grid_graph(3, 4) if name == "bipartite" else connected_gnp(12, 0.3, rng)
    if catalog.get(name).weighted:
        graph = weighted_copy(graph, rng)
    scheme = catalog.build(name, graph=graph)
    return scheme, scheme.language.member_configuration(graph, rng=rng)


@pytest.mark.parametrize(
    "name", [s.name for s in catalog.specs(kind="exact") if s.radius == 1]
)
class TestAgainstDirectEngine:
    def test_verdicts_match_on_members(self, name):
        rng = make_rng(42)
        scheme, config = _scheme_and_config(name, rng)
        certs = scheme.prove(config)
        distributed, run = distributed_verification(scheme, config, certs)
        direct = scheme.run(config, certs)
        assert distributed.rejects == direct.rejects
        assert distributed.all_accept
        assert run.rounds == 1

    def test_verdicts_match_on_corrupted(self, name):
        rng = make_rng(43)
        scheme, config = _scheme_and_config(name, rng)
        try:
            bad = scheme.language.corrupted_configuration(
                config.graph, corruptions=2, rng=rng
            )
        except Exception:
            pytest.skip("language cannot corrupt on this graph")
        certs = scheme.prove(bad)
        distributed, _ = distributed_verification(scheme, bad, certs)
        direct = scheme.run(bad, certs)
        assert distributed.rejects == direct.rejects
        assert not distributed.all_accept


class TestMessageCost:
    def test_bits_scale_with_certificates(self):
        rng = make_rng(7)
        scheme, config = _scheme_and_config("spanning-tree-ptr", rng)
        _, run = distributed_verification(scheme, config)
        # Two messages per edge, each carrying at least the certificate.
        assert run.message_count == 2 * config.graph.num_edges
        assert run.message_bits >= run.message_count  # non-trivial payloads
