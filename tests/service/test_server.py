"""The certification service serves exactly the in-process verdicts.

The headline property is registry-wide: for every catalog scheme, a
served verdict (through envelope serialization, parsing, deterministic
rebuild, and the batched decider) equals the in-process ``decide()``
verdict node-for-node — honest and corrupted labelings alike.  Around
it: cache semantics, replay rejection, parameter validation, and the
sharded worker pool.
"""

from __future__ import annotations

import pytest

from repro.core import catalog
from repro.core.batch import try_batch_verdict
from repro.core.labeling import Configuration
from repro.core.verifier import decide
from repro.errors import ReplayError, ServiceError
from repro.obs import metrics as obs
from repro.service import (
    CertificationResult,
    CertificationService,
    ProofEnvelope,
    build_envelope,
)
from repro.service.server import _rng_seed
from repro.util.rng import make_rng


def _in_process_verdict(envelope: ProofEnvelope):
    """What the library computes without the service in the loop."""
    spec = catalog.get(envelope.scheme)
    scheme = spec.build(
        graph=envelope.graph,
        rng=make_rng(_rng_seed(envelope.body_hash)),
        **spec.resolve_params(envelope.params),
    )
    config = Configuration.build(envelope.graph, envelope.labeling)
    certificates = envelope.certificates
    if certificates is None:
        certificates = scheme.prove(config)
    verdict = try_batch_verdict(scheme, config, certificates)
    if verdict is None:
        verdict = decide(
            scheme.verify, config, certificates,
            scheme.visibility, scheme.radius,
        )
    return verdict


@pytest.mark.parametrize("name", catalog.names())
class TestServedVerdictEquivalence:
    """Wire round trip + service pipeline == in-process decide()."""

    def test_honest_accepted(self, name):
        service = CertificationService()
        envelope = build_envelope(name, n=12, seed=5)
        wire = ProofEnvelope.from_bytes(envelope.to_bytes())
        result = service.submit(wire)
        verdict = _in_process_verdict(envelope)
        assert result.accepted
        assert verdict.all_accept
        assert result.rejections == len(verdict.rejects) == 0

    def test_corrupted_verdicts_match(self, name):
        service = CertificationService()
        # Stale certificates over corrupted states: the configuration
        # the detection campaigns study.  Served and in-process verdicts
        # must agree node-for-node, accepted or not.
        envelope = build_envelope(name, n=12, seed=7, corrupt=3)
        result = service.submit(ProofEnvelope.from_bytes(envelope.to_bytes()))
        verdict = _in_process_verdict(envelope)
        assert result.accepted == verdict.all_accept
        assert result.rejections == len(verdict.rejects)
        assert list(result.rejecting) == sorted(verdict.rejects)[
            : len(result.rejecting)
        ]


class TestBatchedRebuild:
    """The envelope build path runs the vectorized marker — and the
    bytes it serves are identical to the dict oracle's."""

    @pytest.mark.parametrize(
        "name", ["spanning-tree-ptr", "bfs-tree", "leader", "spanning-tree-list"]
    )
    def test_envelope_bytes_independent_of_marker_backend(self, name, monkeypatch):
        with obs.collect("t") as collected:
            batched = build_envelope(name, n=32, seed=9)
        assert collected.counter("generate.batch") == 1, (
            "build_envelope must route through the batched marker"
        )
        # Disable the kernel registry and rebuild: same seed, same bytes.
        from repro.core import batch

        monkeypatch.setattr(batch, "_MARKERS", {})
        with obs.collect("t") as collected:
            reference = build_envelope(name, n=32, seed=9)
        assert collected.counter("generate.batch") == 0
        assert batched.to_bytes() == reference.to_bytes()

    def test_served_equals_in_process_on_batched_marker(self):
        service = CertificationService()
        envelope = build_envelope("spanning-tree-ptr", n=64, seed=11)
        result = service.submit(ProofEnvelope.from_bytes(envelope.to_bytes()))
        verdict = _in_process_verdict(envelope)
        assert result.accepted and verdict.all_accept


class TestCacheSemantics:
    def test_fresh_nonce_hits_cache(self):
        service = CertificationService()
        envelope = build_envelope("spanning-tree-ptr", n=24, seed=1)
        with obs.collect("t") as metrics:
            cold = service.submit(envelope)
            hot = service.submit(envelope.with_nonce("fresh"))
        assert not cold.cache_hit and hot.cache_hit
        assert hot.accepted == cold.accepted
        assert hot.body_hash == cold.body_hash
        assert hot.nullifier != cold.nullifier
        assert metrics.counter("service.cache.hit") == 1
        assert metrics.counter("service.cache.miss") == 1
        # The hit ran no decider at all.
        assert hot.timings == {}

    def test_lru_evicts_oldest(self):
        service = CertificationService(cache_size=2)
        # Distinct sizes, not seeds: bipartite's grid sampler is
        # seed-independent, so only n changes the body hash.
        envelopes = [
            build_envelope("bipartite", n=n, seed=0) for n in (6, 8, 12)
        ]
        for envelope in envelopes:
            service.submit(envelope)
        assert not service.cached(envelopes[0].body_hash)
        assert service.cached(envelopes[2].body_hash)

    def test_replay_rejected_and_counted(self):
        service = CertificationService()
        envelope = build_envelope("bipartite", n=8, seed=2)
        service.submit(envelope)
        with obs.collect("t") as metrics:
            with pytest.raises(ReplayError):
                service.submit(envelope)
        assert metrics.counter("service.nullifier.rejected") == 1
        assert service.stats["replays_rejected"] == 1


class TestValidation:
    def test_unknown_scheme_rejected(self):
        service = CertificationService()
        envelope = build_envelope("bipartite", n=8, seed=3)
        obj = envelope.to_obj()
        obj["scheme"] = "no-such-scheme"
        with pytest.raises(ServiceError, match="unknown scheme"):
            service.submit(obj)

    def test_invalid_param_rejected(self):
        from repro.util.canonical import encode_value

        service = CertificationService()
        envelope = build_envelope("approx-tree-weight", n=10, seed=3)
        obj = envelope.to_obj()
        obj["params"] = encode_value({"eps": -1.0})
        with pytest.raises(ServiceError, match="eps"):
            service.submit(obj)

    def test_unknown_param_rejected(self):
        from repro.util.canonical import encode_value

        service = CertificationService()
        envelope = build_envelope("bipartite", n=8, seed=4)
        obj = envelope.to_obj()
        obj["params"] = encode_value({"bogus": 1})
        with pytest.raises(ServiceError, match="bogus"):
            service.submit(obj)

    def test_labeling_graph_mismatch_rejected(self):
        service = CertificationService()
        a = build_envelope("bipartite", n=8, seed=5)
        b = build_envelope("bipartite", n=12, seed=5)
        obj = a.to_obj()
        obj["labeling"] = b.to_obj()["labeling"]
        with pytest.raises(ServiceError):
            service.submit(obj)

    def test_deterministic_results(self):
        # Same envelope content, two fresh services: identical verdicts
        # (the build rng is seeded from the body hash).
        envelope = build_envelope("leader", n=14, seed=6, corrupt=2)
        first = CertificationService().submit(envelope)
        second = CertificationService().submit(envelope)
        assert first.to_obj()["rejecting"] == second.to_obj()["rejecting"]
        assert first.body_hash == second.body_hash


class TestResultWireForm:
    def test_round_trip(self):
        result = CertificationService().submit(
            build_envelope("spanning-tree-ptr", n=16, seed=8, corrupt=2)
        )
        back = CertificationResult.from_obj(result.to_obj())
        assert back.accepted == result.accepted
        assert back.rejecting == result.rejecting
        assert back.body_hash == result.body_hash


class TestShardedPool:
    def test_pool_matches_in_process(self):
        envelopes = [
            build_envelope("spanning-tree-ptr", n=16, seed=s) for s in range(3)
        ] + [build_envelope("bipartite", n=8, seed=9, corrupt=2)]
        inline = [CertificationService().submit(e) for e in envelopes]
        with CertificationService(workers=2) as service:
            pooled = service.submit_many(
                [e.with_nonce(f"pool-{i}") for i, e in enumerate(envelopes)]
            )
            assert [r.accepted for r in pooled] == [
                r.accepted for r in inline
            ]
            assert [r.rejecting for r in pooled] == [
                r.rejecting for r in inline
            ]
            # Resubmission under fresh nonces: all cache hits, queue idle.
            again = service.submit_many(
                [e.with_nonce(f"again-{i}") for i, e in enumerate(envelopes)]
            )
            assert all(r.cache_hit for r in again)
            stats = service.metrics()
            assert stats["queue_depth"] == 0
            assert stats["stats"]["enqueued"] == len(envelopes)

    def test_shard_affinity_is_stable(self):
        with CertificationService(workers=3) as service:
            envelope = build_envelope("bipartite", n=8, seed=10)
            shard = service._pool.shard_of(envelope)
            for nonce in ("a", "b", "c"):
                assert (
                    service._pool.shard_of(envelope.with_nonce(nonce)) == shard
                )
