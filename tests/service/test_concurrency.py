"""The threaded front end under contention: serial ≡ concurrent.

The certification service's one semantic promise under threading is
that concurrency changes *scheduling, never verdicts*: a workload
pushed through the threaded HTTP front end by many clients at once
must decide exactly what a serial in-process run decides, replay
protection must fire exactly once per duplicated nullifier no matter
which thread wins the race, and the stats ledger must balance.  These
tests pin that, plus the backpressure contract (429 + ``Retry-After``
under saturation, :class:`~repro.errors.ServiceUnavailableError` once
the client's retry budget is spent) and the rule that a vanished or
malformed client never takes a worker thread down with it.
"""

from __future__ import annotations

import contextlib
import http.client
import json
import random
import socket
import struct
import threading
import time

import pytest

from repro.errors import ReplayError, ServiceError, ServiceUnavailableError
from repro.service import CertificationService, build_envelope
from repro.service.client import CertifyClient
from repro.service.httpd import make_server


@contextlib.contextmanager
def _serving(service, **kwargs):
    """A live threaded server around ``service``; yields its base URL."""
    server = make_server(port=0, service=service, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, "http://%s:%d" % server.server_address[:2]
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def _run_threads(workers):
    failures = []

    def wrap(fn):
        def run():
            try:
                fn()
            except BaseException as error:  # pragma: no cover - on failure
                failures.append(error)

        return run

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "worker thread deadlocked"
    if failures:
        raise failures[0]


def _verdict(result) -> tuple:
    """The order-independent fields a verdict must be judged by.

    ``cache_hit`` and ``timings`` legitimately depend on scheduling;
    everything else must be identical however threads interleave.
    """
    return (
        result.scheme,
        result.n,
        result.accepted,
        result.rejections,
        result.rejecting,
        result.body_hash,
    )


class TestSerialConcurrentEquivalence:
    def _workload(self):
        """(distinct envelopes, submission list) — honest, corrupted,
        fresh-nonce resubmits, and verbatim replays, all deterministic.
        """
        distinct = [
            build_envelope("bipartite", n=8, seed=31),
            build_envelope("bipartite", n=10, seed=32, corrupt=2),
            build_envelope("leader", n=10, seed=33),
            build_envelope("leader", n=12, seed=34, corrupt=3),
            build_envelope("spanning-tree-ptr", n=12, seed=35),
            build_envelope("spanning-tree-ptr", n=14, seed=36, corrupt=2),
            build_envelope("agreement", n=9, seed=37),
        ]
        # same content under fresh nonces: distinct nullifiers, shared
        # body_hash — the cache-hit path under contention
        distinct += [
            distinct[0].with_nonce("fresh-a"),
            distinct[2].with_nonce("fresh-b"),
            distinct[4].with_nonce("fresh-c"),
        ]
        submissions = list(distinct)
        # verbatim duplicates: exactly one replay rejection each
        replayed = [distinct[0], distinct[3], distinct[5], distinct[8]]
        submissions += replayed
        random.Random(99).shuffle(submissions)
        return distinct, submissions, len(replayed)

    def test_threaded_run_matches_serial_run(self):
        distinct, submissions, n_replays = self._workload()

        # -- serial baseline: one envelope each, plain in-process submit
        serial_service = CertificationService()
        try:
            baseline = {
                envelope.nullifier: _verdict(serial_service.submit(envelope))
                for envelope in distinct
            }
        finally:
            serial_service.close()

        # -- concurrent run: the same multiset of submissions pushed
        # through the threaded HTTP front end by several clients at
        # once, mixing the single and the batch route
        outcomes: list[tuple[str, str, tuple | None]] = []
        sink_lock = threading.Lock()
        n_threads = 4
        chunks = [submissions[index::n_threads] for index in range(n_threads)]

        def make_single_worker(chunk, url, barrier):
            def worker():
                with CertifyClient(url) as client:
                    barrier.wait()
                    for envelope in chunk:
                        try:
                            result = client.submit(envelope)
                        except ReplayError:
                            record = (envelope.nullifier, "replay", None)
                        else:
                            record = (
                                envelope.nullifier, "ok", _verdict(result)
                            )
                        with sink_lock:
                            outcomes.append(record)

            return worker

        def make_batch_worker(chunk, url, barrier):
            def worker():
                with CertifyClient(url) as client:
                    barrier.wait()
                    settled = client.submit_many(chunk)
                assert len(settled) == len(chunk)
                with sink_lock:
                    for envelope, outcome in zip(chunk, settled):
                        if isinstance(outcome, ReplayError):
                            outcomes.append(
                                (envelope.nullifier, "replay", None)
                            )
                        else:
                            assert not isinstance(outcome, ServiceError)
                            outcomes.append(
                                (envelope.nullifier, "ok", _verdict(outcome))
                            )

            return worker

        service = CertificationService()
        barrier = threading.Barrier(n_threads)
        with _serving(service, max_inflight=8) as (server, url):
            _run_threads([
                (make_single_worker if index % 2 else make_batch_worker)(
                    chunk, url, barrier
                )
                for index, chunk in enumerate(chunks)
            ])
            with CertifyClient(url) as client:
                stats = client.metrics()["stats"]
            assert not server.errors

        # -- equivalence: every submission produced an outcome; per
        # nullifier exactly one decided verdict (whichever thread won),
        # identical to the serial verdict, and every duplicate drew
        # exactly one replay rejection
        assert len(outcomes) == len(submissions)
        by_nullifier: dict[str, list] = {}
        for nullifier, kind, verdict in outcomes:
            by_nullifier.setdefault(nullifier, []).append((kind, verdict))
        assert set(by_nullifier) == set(baseline)
        replay_total = 0
        for envelope in distinct:
            records = by_nullifier[envelope.nullifier]
            decided = [v for kind, v in records if kind == "ok"]
            replays = [kind for kind, _ in records if kind == "replay"]
            assert len(decided) == 1, (
                f"nullifier {envelope.nullifier[:8]} decided "
                f"{len(decided)} times"
            )
            assert len(replays) == len(records) - 1
            assert decided[0] == baseline[envelope.nullifier]
            replay_total += len(replays)
        assert replay_total == n_replays

        # -- conservation: the stats ledger balances exactly
        assert stats["submitted"] == len(submissions)
        assert stats["replays_rejected"] == n_replays
        assert (
            stats["cache_hits"] + stats["cache_misses"]
            == stats["submitted"] - stats["replays_rejected"]
        )
        assert stats["enqueued"] == stats["completed"]

    def test_conservation_holds_with_worker_pool(self):
        # the sharded pool path: prelaunched batch work must drain
        # (enqueued == completed) even when threads race the pool
        envelopes = [
            build_envelope("bipartite", n=8, seed=41),
            build_envelope("leader", n=10, seed=42),
            build_envelope("spanning-tree-ptr", n=12, seed=43),
            build_envelope("bipartite", n=9, seed=44, corrupt=2),
        ]
        service = CertificationService(workers=2)
        with _serving(service, max_inflight=8) as (server, url):
            def make_worker(chunk, url):
                def worker():
                    with CertifyClient(url) as client:
                        for outcome in client.submit_many(chunk):
                            assert not isinstance(outcome, ServiceError)

                return worker

            _run_threads([
                make_worker(envelopes[:2], url),
                make_worker(envelopes[2:], url),
            ])
            with CertifyClient(url) as client:
                stats = client.metrics()["stats"]
            assert not server.errors
        assert stats["submitted"] == len(envelopes)
        assert stats["cache_hits"] + stats["cache_misses"] == len(envelopes)
        assert stats["enqueued"] == stats["completed"]


class _BlockingService(CertificationService):
    """Holds every submit until released — makes saturation deterministic."""

    def __init__(self) -> None:
        super().__init__()
        self.entered = threading.Event()
        self.release = threading.Event()

    def submit(self, envelope, _prelaunched=None):
        self.entered.set()
        assert self.release.wait(timeout=30), "blocking service never released"
        return super().submit(envelope, _prelaunched=_prelaunched)


class TestBackpressure:
    def test_saturation_yields_429_with_retry_after(self):
        service = _BlockingService()
        envelope = build_envelope("bipartite", n=8, seed=51)
        with _serving(service, max_inflight=1) as (server, url):
            accepted = []

            def occupant():
                with CertifyClient(url) as client:
                    accepted.append(client.submit(envelope).accepted)

            holder = threading.Thread(target=occupant)
            holder.start()
            try:
                assert service.entered.wait(timeout=10)
                # the one slot is taken: a raw POST must bounce with
                # 429 + Retry-After, not queue and not deadlock
                host, port = server.server_address[:2]
                conn = http.client.HTTPConnection(host, port, timeout=10)
                try:
                    payload = envelope.with_nonce("other").to_bytes()
                    conn.request(
                        "POST", "/certify", body=payload,
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    body = json.loads(response.read())
                    assert response.status == 429
                    assert response.getheader("Retry-After") == "1"
                    assert response.getheader("Connection") == "close"
                    assert body["retry_after"] == 1
                finally:
                    conn.close()
                # GET routes bypass the gate: health and metrics stay
                # readable while the service is saturated
                with CertifyClient(url) as probe:
                    assert probe.healthz()
                    assert probe.metrics()["inflight"] == 1
            finally:
                service.release.set()
                holder.join(timeout=30)
            assert not holder.is_alive(), "admitted submission never settled"
            assert accepted == [True]  # the occupant's verdict survived

    def test_client_retry_budget_exhaustion_raises(self):
        service = _BlockingService()
        envelope = build_envelope("bipartite", n=8, seed=52)
        with _serving(service, max_inflight=1) as (_, url):
            holder = threading.Thread(
                target=lambda: CertifyClient(url).submit(envelope)
            )
            holder.start()
            try:
                assert service.entered.wait(timeout=10)
                sleeps: list[float] = []
                with CertifyClient(
                    url, retries=2, sleep=sleeps.append
                ) as client:
                    with pytest.raises(ServiceUnavailableError):
                        client.submit(envelope.with_nonce("x"))
                assert len(sleeps) == 2  # one wait per retry, then give up
                assert all(0 < wait <= 1.0 for wait in sleeps)
            finally:
                service.release.set()
                holder.join(timeout=30)

    def test_client_retry_succeeds_once_capacity_frees(self):
        service = _BlockingService()
        envelope = build_envelope("bipartite", n=8, seed=53)
        with _serving(service, max_inflight=1) as (_, url):
            holder = threading.Thread(
                target=lambda: CertifyClient(url).submit(envelope)
            )
            holder.start()
            try:
                assert service.entered.wait(timeout=10)
                sleeps: list[float] = []

                def unblocking_sleep(wait: float) -> None:
                    # first 429: free the slot, then give the occupant
                    # a beat to finish before the retry
                    sleeps.append(wait)
                    service.release.set()
                    time.sleep(0.05)

                with CertifyClient(
                    url, retries=40, sleep=unblocking_sleep
                ) as client:
                    result = client.submit(envelope.with_nonce("y"))
                assert result.accepted
                assert sleeps, "the retry path was never exercised"
            finally:
                service.release.set()
                holder.join(timeout=30)


class TestDisconnects:
    def test_client_vanishing_mid_response_stays_quiet(self):
        # a client that RSTs after sending a full request must not
        # crash the handler thread, must not pollute server.errors,
        # and must leave the server fully serving
        service = _BlockingService()
        envelope = build_envelope("bipartite", n=8, seed=61)
        with _serving(service, max_inflight=4) as (server, url):
            host, port = server.server_address[:2]
            payload = envelope.to_bytes()
            sock = socket.create_connection((host, port), timeout=10)
            try:
                sock.sendall(
                    b"POST /certify HTTP/1.1\r\n"
                    b"Host: test\r\n"
                    b"Content-Type: application/json\r\n"
                    + f"Content-Length: {len(payload)}\r\n\r\n".encode()
                    + payload
                )
                assert service.entered.wait(timeout=10)
            finally:
                # RST on close: the reply hits a dead peer immediately
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
                sock.close()
            service.release.set()
            # the doomed reply happens on its own thread; follow-up
            # traffic proves the server outlived it
            with CertifyClient(url) as client:
                assert client.healthz()
                result = client.submit(envelope.with_nonce("after"))
                assert result.accepted
            time.sleep(0.2)  # let the broken handler thread wind down
            assert not server.errors, list(server.errors)
