"""The stdlib HTTP front end: routes, status codes, verdict fidelity."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core import catalog
from repro.service import CertificationService, build_envelope
from repro.service.httpd import make_server


@pytest.fixture
def server_url():
    service = CertificationService()
    server = make_server(port=0, service=service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    service.close()


def _get(url):
    with urllib.request.urlopen(url) as response:
        return response.status, json.load(response)


def _post(url, payload: bytes):
    request = urllib.request.Request(
        url, data=payload, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


class TestRoutes:
    def test_healthz(self, server_url):
        status, body = _get(server_url + "/healthz")
        assert status == 200 and body == {"ok": True}

    def test_schemes_matches_catalog(self, server_url):
        status, body = _get(server_url + "/schemes")
        assert status == 200
        names = [entry["name"] for entry in body["schemes"]]
        assert names == catalog.names()
        by_name = {entry["name"]: entry for entry in body["schemes"]}
        eps = [p for p in by_name["approx-tree-weight"]["params"]
               if p["name"] == "eps"]
        assert eps and eps[0]["minimum"] == 0 and eps[0]["exclusive"]

    def test_unknown_route_404(self, server_url):
        status, body = _post(server_url + "/nope", b"{}")
        assert status == 404 and "error" in body


class TestCertify:
    def test_honest_then_replay_then_fresh(self, server_url):
        envelope = build_envelope("spanning-tree-ptr", n=24, seed=11)
        status, body = _post(server_url + "/certify", envelope.to_bytes())
        assert status == 200
        assert body["accepted"] and not body["cache_hit"]

        status, body = _post(server_url + "/certify", envelope.to_bytes())
        assert status == 409 and body["replay"]

        status, body = _post(
            server_url + "/certify", envelope.with_nonce("f").to_bytes()
        )
        assert status == 200 and body["cache_hit"] and body["accepted"]

    def test_corrupted_rejected_with_sample(self, server_url):
        envelope = build_envelope("spanning-tree-ptr", n=24, seed=12, corrupt=3)
        status, body = _post(server_url + "/certify", envelope.to_bytes())
        assert status == 200
        assert not body["accepted"]
        assert body["rejections"] >= 1
        assert body["rejecting"] == sorted(body["rejecting"])

    def test_malformed_envelope_400(self, server_url):
        status, body = _post(server_url + "/certify", b'{"format": "junk"}')
        assert status == 400 and "error" in body

    def test_unknown_scheme_400(self, server_url):
        envelope = build_envelope("bipartite", n=8, seed=13)
        obj = envelope.to_obj()
        obj["scheme"] = "no-such"
        status, body = _post(
            server_url + "/certify", json.dumps(obj).encode()
        )
        assert status == 400 and "unknown scheme" in body["error"]

    def test_metrics_reflect_traffic(self, server_url):
        envelope = build_envelope("bipartite", n=8, seed=14)
        _post(server_url + "/certify", envelope.to_bytes())
        _post(server_url + "/certify", envelope.with_nonce("g").to_bytes())
        status, body = _get(server_url + "/metrics")
        assert status == 200
        assert body["stats"]["cache_hits"] == 1
        assert body["stats"]["cache_misses"] == 1
        assert body["cache_entries"] == 1

    def test_metrics_report_inflight_gauge(self, server_url):
        status, body = _get(server_url + "/metrics")
        assert status == 200
        assert body["max_inflight"] >= 1
        # the GET itself bypasses the gate, so nothing is in flight
        assert body["inflight"] == 0


class TestCertifyBatch:
    def test_mixed_batch_settles_every_envelope(self, server_url):
        honest = build_envelope("bipartite", n=8, seed=21)
        corrupted = build_envelope("leader", n=10, seed=22, corrupt=2)
        replayed = build_envelope("spanning-tree-ptr", n=12, seed=23)
        batch = {"envelopes": [
            honest.to_obj(),
            corrupted.to_obj(),
            replayed.to_obj(),
            replayed.to_obj(),        # verbatim duplicate: 409 in place
            {"format": "junk"},       # malformed: 400 in place
        ]}
        status, body = _post(
            server_url + "/certify-batch", json.dumps(batch).encode()
        )
        assert status == 200  # batch transport succeeded; statuses inside
        results = body["results"]
        assert [item["status"] for item in results] == [200, 200, 200, 409, 400]
        assert results[0]["result"]["accepted"]
        assert not results[1]["result"]["accepted"]
        assert results[1]["result"]["rejections"] >= 1
        assert results[2]["result"]["accepted"]
        assert results[3]["replay"] and "error" in results[3]
        assert "error" in results[4]

    def test_batch_fresh_nonce_hits_cache(self, server_url):
        envelope = build_envelope("bipartite", n=8, seed=24)
        batch = {"envelopes": [
            envelope.to_obj(),
            envelope.with_nonce("fresh").to_obj(),
        ]}
        status, body = _post(
            server_url + "/certify-batch", json.dumps(batch).encode()
        )
        assert status == 200
        first, second = body["results"]
        assert not first["result"]["cache_hit"]
        assert second["result"]["cache_hit"]

    def test_batch_bad_json_400(self, server_url):
        status, body = _post(server_url + "/certify-batch", b"not json")
        assert status == 400 and "JSON" in body["error"]

    def test_batch_wrong_shape_400(self, server_url):
        for payload in (b"[1, 2]", b'{"envelope": []}', b'{"envelopes": 3}'):
            status, body = _post(server_url + "/certify-batch", payload)
            assert status == 400
            assert '{"envelopes": [...]}' in body["error"]

    def test_batch_over_bound_400(self, server_url):
        from repro.service.httpd import MAX_BATCH_ENVELOPES

        batch = {"envelopes": [{}] * (MAX_BATCH_ENVELOPES + 1)}
        status, body = _post(
            server_url + "/certify-batch", json.dumps(batch).encode()
        )
        assert status == 400 and "bound" in body["error"]


def _raw_connection(server_url):
    host, port = server_url.removeprefix("http://").rsplit(":", 1)
    import http.client

    return http.client.HTTPConnection(host, int(port), timeout=5)


class TestBodyFraming:
    """Malformed framing must 400 cleanly, never pin a worker thread."""

    @pytest.mark.parametrize("route", ["/certify", "/certify-batch"])
    def test_missing_content_length_400(self, server_url, route):
        conn = _raw_connection(server_url)
        try:
            conn.putrequest("POST", route)
            conn.endheaders()  # no body, no Content-Length
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 400
            assert "Content-Length" in body["error"]
            # framing errors poison keep-alive: the server must close
            assert response.getheader("Connection") == "close"
        finally:
            conn.close()

    @pytest.mark.parametrize("route", ["/certify", "/certify-batch"])
    def test_chunked_transfer_encoding_400(self, server_url, route):
        # refused before any body read: a chunked body's length is
        # unknowable up front, and waiting on it would hang the worker
        conn = _raw_connection(server_url)
        try:
            conn.putrequest("POST", route)
            conn.putheader("Transfer-Encoding", "chunked")
            conn.endheaders()
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 400
            assert "chunked" in body["error"]
            assert response.getheader("Connection") == "close"
        finally:
            conn.close()

    def test_unparseable_content_length_400(self, server_url):
        conn = _raw_connection(server_url)
        try:
            conn.putrequest("POST", "/certify")
            conn.putheader("Content-Length", "banana")
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
            assert "Content-Length" in json.loads(response.read())["error"]
        finally:
            conn.close()

    def test_truncated_body_400(self, server_url):
        import socket

        host, port = server_url.removeprefix("http://").rsplit(":", 1)
        with socket.create_connection((host, int(port)), timeout=5) as sock:
            sock.sendall(
                b"POST /certify HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Content-Length: 100\r\n\r\n"
                b"only-a-few-bytes"
            )
            sock.shutdown(socket.SHUT_WR)  # EOF long before 100 bytes
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        raw = b"".join(chunks)
        assert raw.split(b"\r\n", 1)[0].endswith(b"400 Bad Request")
        assert b"truncated" in raw
