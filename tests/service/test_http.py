"""The stdlib HTTP front end: routes, status codes, verdict fidelity."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core import catalog
from repro.service import CertificationService, build_envelope
from repro.service.httpd import make_server


@pytest.fixture
def server_url():
    service = CertificationService()
    server = make_server(port=0, service=service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    service.close()


def _get(url):
    with urllib.request.urlopen(url) as response:
        return response.status, json.load(response)


def _post(url, payload: bytes):
    request = urllib.request.Request(
        url, data=payload, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


class TestRoutes:
    def test_healthz(self, server_url):
        status, body = _get(server_url + "/healthz")
        assert status == 200 and body == {"ok": True}

    def test_schemes_matches_catalog(self, server_url):
        status, body = _get(server_url + "/schemes")
        assert status == 200
        names = [entry["name"] for entry in body["schemes"]]
        assert names == catalog.names()
        by_name = {entry["name"]: entry for entry in body["schemes"]}
        eps = [p for p in by_name["approx-tree-weight"]["params"]
               if p["name"] == "eps"]
        assert eps and eps[0]["minimum"] == 0 and eps[0]["exclusive"]

    def test_unknown_route_404(self, server_url):
        status, body = _post(server_url + "/nope", b"{}")
        assert status == 404 and "error" in body


class TestCertify:
    def test_honest_then_replay_then_fresh(self, server_url):
        envelope = build_envelope("spanning-tree-ptr", n=24, seed=11)
        status, body = _post(server_url + "/certify", envelope.to_bytes())
        assert status == 200
        assert body["accepted"] and not body["cache_hit"]

        status, body = _post(server_url + "/certify", envelope.to_bytes())
        assert status == 409 and body["replay"]

        status, body = _post(
            server_url + "/certify", envelope.with_nonce("f").to_bytes()
        )
        assert status == 200 and body["cache_hit"] and body["accepted"]

    def test_corrupted_rejected_with_sample(self, server_url):
        envelope = build_envelope("spanning-tree-ptr", n=24, seed=12, corrupt=3)
        status, body = _post(server_url + "/certify", envelope.to_bytes())
        assert status == 200
        assert not body["accepted"]
        assert body["rejections"] >= 1
        assert body["rejecting"] == sorted(body["rejecting"])

    def test_malformed_envelope_400(self, server_url):
        status, body = _post(server_url + "/certify", b'{"format": "junk"}')
        assert status == 400 and "error" in body

    def test_unknown_scheme_400(self, server_url):
        envelope = build_envelope("bipartite", n=8, seed=13)
        obj = envelope.to_obj()
        obj["scheme"] = "no-such"
        status, body = _post(
            server_url + "/certify", json.dumps(obj).encode()
        )
        assert status == 400 and "unknown scheme" in body["error"]

    def test_metrics_reflect_traffic(self, server_url):
        envelope = build_envelope("bipartite", n=8, seed=14)
        _post(server_url + "/certify", envelope.to_bytes())
        _post(server_url + "/certify", envelope.with_nonce("g").to_bytes())
        status, body = _get(server_url + "/metrics")
        assert status == 200
        assert body["stats"]["cache_hits"] == 1
        assert body["stats"]["cache_misses"] == 1
        assert body["cache_entries"] == 1
