"""Canonical serialization: exact round trips, stable bytes, anti-replay.

The service's trust chain starts here: equal objects must serialize to
equal bytes (hashes are only meaningful if so), and every byte form must
parse back to an equal object (verdicts served on parsed envelopes are
only meaningful if so).  These are property tests over generated graph
and value zoos, not example checks.
"""

from __future__ import annotations

import json

import pytest

from repro.core.labeling import Labeling
from repro.errors import CanonicalError, EnvelopeError, ReplayError
from repro.graphs.generators import (
    connected_gnp,
    cycle_graph,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.serialize import graph_from_obj, graph_hash, graph_to_obj
from repro.graphs.weighted import weighted_copy
from repro.service.envelope import NullifierRegistry, ProofEnvelope
from repro.util.canonical import (
    canonical_bytes,
    decode_value,
    domain_hash,
    encode_value,
)
from repro.util.rng import make_rng

# ---------------------------------------------------------------------------
# Value codec.
# ---------------------------------------------------------------------------

#: Certificate/state shapes that appear across the catalog: ints, None,
#: tuples (pointer certs), frozensets (universal scheme's edge masks),
#: big ints (universal bitmasks), dicts, bytes, nested mixes.
VALUES = [
    None,
    True,
    False,
    0,
    1,
    -7,
    2**70,
    1.5,
    -0.0,
    "x",
    "",
    (),
    (1, 2),
    (0, None, ("nested", 3)),
    [1, 2, [3]],
    frozenset(),
    frozenset({1, 2, 3}),
    frozenset({(1, 2), (3, 4)}),
    {"a": 1, "b": (2, 3)},
    {1: "int-key", (2, 3): "tuple-key"},
    b"\x00\xffbytes",
    {"__pls__": "looks-like-a-tag"},
]


class TestValueCodec:
    @pytest.mark.parametrize("value", VALUES, ids=repr)
    def test_round_trip_exact(self, value):
        decoded = decode_value(encode_value(value))
        assert type(decoded) is type(value)
        assert decoded == value

    @pytest.mark.parametrize("value", VALUES, ids=repr)
    def test_bytes_survive_json(self, value):
        payload = canonical_bytes(encode_value(value))
        assert decode_value(json.loads(payload)) == value

    def test_bool_int_distinct(self):
        # 1 == True, but the codec must keep the types apart.
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(1)) == 1
        assert decode_value(encode_value(1)) is not True

    def test_unordered_containers_deterministic(self):
        a = canonical_bytes(encode_value(frozenset({3, 1, 2})))
        b = canonical_bytes(encode_value(frozenset({2, 3, 1})))
        assert a == b
        c = canonical_bytes(encode_value({"b": 1, "a": 2}))
        d = canonical_bytes(encode_value({"a": 2, "b": 1}))
        assert c == d

    @pytest.mark.parametrize(
        "value",
        [float("nan"), float("inf"), object(), {"k": float("nan")}],
        ids=["nan", "inf", "object", "nested-nan"],
    )
    def test_unrepresentable_rejected(self, value):
        with pytest.raises(CanonicalError):
            canonical_bytes(encode_value(value))

    def test_domain_separation(self):
        assert domain_hash("A", b"x") != domain_hash("B", b"x")
        # Domain/payload boundary cannot be shifted.
        assert domain_hash("AB", b"x") != domain_hash("A", b"Bx")


# ---------------------------------------------------------------------------
# Graph serialization.
# ---------------------------------------------------------------------------


def _graph_zoo():
    rng = make_rng(0xA11CE)
    isolated = Graph(5, [(0, 1), (2, 3)])  # node 4 isolated
    return {
        "empty": Graph(0),
        "single": Graph(1),
        "edgeless": Graph(4),
        "path": path_graph(6),
        "cycle": cycle_graph(5),
        "grid": grid_graph(3, 3),
        "star": star_graph(7),
        "tree": random_tree(12, rng),
        "gnp": connected_gnp(14, 0.3, rng),
        "isolated": isolated,
        "weighted": weighted_copy(connected_gnp(10, 0.35, rng), rng),
        "weighted-tree": weighted_copy(random_tree(9, rng), rng),
    }


GRAPHS = _graph_zoo()


class TestGraphSerialization:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_round_trip(self, name):
        graph = GRAPHS[name]
        back = graph_from_obj(graph_to_obj(graph))
        assert back.n == graph.n
        assert back.edges() == graph.edges()
        assert back.is_weighted == graph.is_weighted
        if graph.is_weighted:
            assert back.weights() == graph.weights()

    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_hash_stable_and_discriminating(self, name):
        graph = GRAPHS[name]
        h = graph_hash(graph)
        assert h == graph_hash(graph_from_obj(graph_to_obj(graph)))
        others = {graph_hash(g) for k, g in GRAPHS.items() if k != name}
        assert h not in others

    def test_weights_change_hash(self):
        rng = make_rng(7)
        base = cycle_graph(6)
        assert graph_hash(base) != graph_hash(weighted_copy(base, rng))

    @pytest.mark.parametrize(
        "obj",
        [
            None,
            [],
            {"format": "pls-graph/v0", "n": 1, "edges": [], "weights": None},
            {"format": "pls-graph/v1", "n": -1, "edges": [], "weights": None},
            {"format": "pls-graph/v1", "n": True, "edges": [], "weights": None},
            {"format": "pls-graph/v1", "n": 2, "edges": [[0]], "weights": None},
            {"format": "pls-graph/v1", "n": 2, "edges": [[0, 2]], "weights": None},
            {
                "format": "pls-graph/v1",
                "n": 2,
                "edges": [[0, 1]],
                "weights": [1.0, 2.0],
            },
        ],
        ids=["none", "list", "format", "neg-n", "bool-n", "arity", "range",
             "weights-misaligned"],
    )
    def test_malformed_rejected(self, obj):
        with pytest.raises(CanonicalError):
            graph_from_obj(obj)


# ---------------------------------------------------------------------------
# Labeling serialization.
# ---------------------------------------------------------------------------


class TestLabelingSerialization:
    def test_round_trip_mixed_states(self):
        labeling = Labeling(
            {0: None, 1: 3, 2: (0, 5), 3: frozenset({1, 2}), 4: "s"}
        )
        back = Labeling.from_obj(labeling.to_obj())
        assert back == labeling
        assert canonical_bytes(back.to_obj()) == canonical_bytes(
            labeling.to_obj()
        )

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(CanonicalError):
            Labeling.from_obj([[0, None], [0, None]])


# ---------------------------------------------------------------------------
# Envelopes.
# ---------------------------------------------------------------------------


def _envelope(nonce="n0", certificates=None, graph=None):
    graph = graph or GRAPHS["grid"]
    labeling = Labeling.uniform(graph.nodes, None)
    return ProofEnvelope(
        scheme="bipartite",
        params={},
        graph=graph,
        labeling=labeling,
        certificates=certificates,
        nonce=nonce,
    )


class TestProofEnvelope:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_round_trip_every_graph(self, name):
        graph = GRAPHS[name]
        env = ProofEnvelope(
            scheme="s",
            params={"eps": 0.5},
            graph=graph,
            labeling=Labeling({v: (v, None) for v in graph.nodes}),
            certificates={v: v % 3 for v in graph.nodes},
            nonce="abc",
        )
        back = ProofEnvelope.from_bytes(env.to_bytes())
        assert back == env
        assert back.to_bytes() == env.to_bytes()
        assert back.body_hash == env.body_hash
        assert back.nullifier == env.nullifier

    def test_body_hash_ignores_nonce(self):
        a, b = _envelope("n1"), _envelope("n2")
        assert a.body_hash == b.body_hash
        assert a.nullifier != b.nullifier

    def test_body_hash_covers_certificates(self):
        graph = GRAPHS["grid"]
        honest = _envelope(certificates={v: 0 for v in graph.nodes})
        marker = _envelope(certificates=None)
        other = _envelope(certificates={v: 1 for v in graph.nodes})
        assert len({honest.body_hash, marker.body_hash, other.body_hash}) == 3

    def test_with_nonce_shares_part_hashes(self):
        env = _envelope("n1")
        _ = env.body_hash
        fresh = env.with_nonce("n2")
        assert fresh._hashes is env._hashes
        assert fresh.body_hash == env.body_hash

    def test_tampered_graph_binding_rejected(self):
        obj = _envelope().to_obj()
        obj["graph"]["edges"] = obj["graph"]["edges"][:-1]
        with pytest.raises(EnvelopeError):
            ProofEnvelope.from_obj(obj)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda o: o.update(format="pls-envelope/v0"),
            lambda o: o.update(scheme=7),
            lambda o: o.update(nonce=3),
            lambda o: o.update(params=[1, 2]),
            lambda o: o.update(labeling={"0": 1}),
            lambda o: o.update(certificates={"0": 1}),
        ],
        ids=["format", "scheme", "nonce", "params", "labeling", "certs"],
    )
    def test_malformed_sections_rejected(self, mutate):
        obj = _envelope(
            certificates={v: 0 for v in GRAPHS["grid"].nodes}
        ).to_obj()
        mutate(obj)
        with pytest.raises(EnvelopeError):
            ProofEnvelope.from_obj(obj)

    def test_not_json_rejected(self):
        with pytest.raises(EnvelopeError):
            ProofEnvelope.from_bytes(b"\xff not json")

    def test_graph_cache_skips_payload(self):
        env = _envelope()
        cache = {env.graph_hash: env.graph}
        obj = env.to_obj()
        obj["graph"] = {"format": "pls-graph/v1", "n": 0, "edges": [],
                        "weights": None}  # wrong payload, cached hash wins
        back = ProofEnvelope.from_obj(obj, graph_cache=cache)
        assert back.graph is env.graph
        assert back.body_hash == env.body_hash


class TestNullifierRegistry:
    def test_replay_rejected(self):
        registry = NullifierRegistry()
        env = _envelope("n1")
        registry.spend(env.nullifier)
        with pytest.raises(ReplayError):
            registry.spend(env.nullifier)
        # A fresh nonce is a different nullifier: spendable.
        registry.spend(env.with_nonce("n2").nullifier)

    def test_capacity_bounds_window(self):
        registry = NullifierRegistry(capacity=3)
        for i in range(5):
            registry.spend(f"null-{i}")
        assert len(registry) == 3
        assert not registry.seen("null-0")  # aged out of the window
        assert registry.seen("null-4")
        registry.spend("null-0")  # and therefore spendable again
