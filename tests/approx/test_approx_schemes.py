"""Property-style checks for every shipped α-APLS.

Completeness: honest certificates on a yes-instance convince every node,
across a zoo of graph families and seeds.  Gap soundness: the budgeted
adversary never reaches zero rejections on an α-far no-instance.  Size:
the approximate certificate beats the exact counterpart.
"""

from __future__ import annotations

import pytest

from repro.approx import (
    ApproxDiameterScheme,
    ApproxDominatingSetScheme,
    ApproxTreeWeightScheme,
    GapDiameterLanguage,
    GapDominatingSetLanguage,
    GapTreeWeightLanguage,
)
from repro.core import catalog
from repro.core.soundness import gap_attack
from repro.graphs.generators import (
    connected_gnp,
    cycle_graph,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.graphs.mst import mst_weight
from repro.graphs.weighted import weighted_copy
from repro.util.rng import make_rng, spawn

FAMILIES = {
    "path": lambda n, rng: path_graph(n),
    "cycle": lambda n, rng: cycle_graph(max(3, n)),
    "star": lambda n, rng: star_graph(n),
    "grid": lambda n, rng: grid_graph(3, max(1, n // 3)),
    "tree": random_tree,
    "gnp": lambda n, rng: connected_gnp(n, 0.3, rng),
}


def _instance(name, family, n, seed, **params):
    rng = make_rng(seed)
    spec = catalog.get(name)
    graph = FAMILIES[family](n, spawn(rng, 1))
    if spec.weighted:
        graph = weighted_copy(graph, spawn(rng, 2))
    scheme = catalog.build(name, graph=graph, rng=spawn(rng, 3), **params)
    return scheme, graph, rng


class TestCompleteness:
    @pytest.mark.parametrize("name", catalog.names(kind="approx"))
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_honest_certificates_accept_everywhere(self, name, family, seed):
        scheme, graph, rng = _instance(name, family, n=13, seed=seed)
        config = scheme.language.member_configuration(graph, rng=spawn(rng, 4))
        verdict = scheme.run(config)
        assert verdict.all_accept, f"{name}/{family}: rejects {sorted(verdict.rejects)}"


class TestGapSoundness:
    @pytest.mark.parametrize(
        "name", ["approx-vertex-cover", "approx-dominating-set",
                 "approx-matching", "approx-tree-weight"],
    )
    @pytest.mark.parametrize("family", ["path", "gnp", "tree"])
    def test_budgeted_adversary_never_fools(self, name, family):
        scheme, graph, rng = _instance(name, family, n=10, seed=11)
        member = scheme.language.member_configuration(graph, rng=spawn(rng, 4))
        bad = scheme.gap_language.no_configuration(graph, rng=spawn(rng, 5))
        outcome = gap_attack(
            scheme, bad, rng=spawn(rng, 6), trials=40, related=[member]
        )
        assert not outcome.fooled
        assert outcome.min_rejects >= 1

    def test_diameter_adversary_never_fools(self):
        lang = GapDiameterLanguage(2)
        bad = lang.no_configuration(path_graph(12), rng=make_rng(0))
        outcome = gap_attack(
            ApproxDiameterScheme(lang), bad, rng=make_rng(1), trials=40
        )
        assert not outcome.fooled

    def test_oversized_dominating_set_rejected(self):
        """The interesting far side: a true dominating set over α·budget."""
        graph = star_graph(12)  # greedy/optimal dominating set: the hub
        lang = GapDominatingSetLanguage(budget=1)
        scheme = ApproxDominatingSetScheme(lang)
        bad = lang.member_configuration(graph).with_labeling(
            {v: True for v in graph.nodes}
        )
        assert lang.is_no(bad)
        outcome = gap_attack(scheme, bad, rng=make_rng(2), trials=40)
        assert not outcome.fooled

    def test_overweight_tree_rejected(self):
        """A genuine spanning tree whose weight blows the α budget."""
        rng = make_rng(3)
        graph = weighted_copy(connected_gnp(10, 0.5, rng), rng)
        lang = GapTreeWeightLanguage(budget=mst_weight(graph))
        scheme = ApproxTreeWeightScheme(lang)
        bad = lang.no_configuration(graph, rng=rng)
        if lang._tree_weight(bad) is not None:  # got the overweight tree
            outcome = gap_attack(scheme, bad, rng=rng, trials=40)
            assert not outcome.fooled


class TestSizeComparison:
    @pytest.mark.parametrize("name", catalog.names(kind="approx"))
    @pytest.mark.parametrize("family", ["gnp", "tree"])
    def test_approx_beats_exact(self, name, family):
        scheme, graph, rng = _instance(name, family, n=14, seed=7)
        config = scheme.language.member_configuration(graph, rng=spawn(rng, 4))
        approx_bits = scheme.proof_size_bits(config)
        exact_bits = scheme.exact_counterpart().proof_size_bits(config)
        assert approx_bits < exact_bits

    @pytest.mark.parametrize("name", catalog.names(kind="approx"))
    def test_alpha_exposed(self, name):
        scheme, _, _ = _instance(name, "gnp", n=10, seed=5)
        assert scheme.alpha == catalog.get(name).alpha > 1.0


class TestEpsFamilies:
    """The (1+ε)-parametrised counter families stay complete and sound
    away from the classic ε = 1 (α = 2) point."""

    @pytest.mark.parametrize("name", ["approx-dominating-set", "approx-tree-weight"])
    @pytest.mark.parametrize("eps", [0.25, 3.0])
    def test_completeness_across_eps(self, name, eps):
        scheme, graph, rng = _instance(name, "gnp", n=13, seed=2, eps=eps)
        assert scheme.alpha == 1.0 + eps
        config = scheme.language.member_configuration(graph, rng=spawn(rng, 4))
        assert scheme.run(config).all_accept

    @pytest.mark.parametrize("name", ["approx-dominating-set", "approx-tree-weight"])
    @pytest.mark.parametrize("eps", [0.25, 3.0])
    def test_gap_soundness_across_eps(self, name, eps):
        scheme, graph, rng = _instance(name, "gnp", n=10, seed=11, eps=eps)
        member = scheme.language.member_configuration(graph, rng=spawn(rng, 4))
        from repro.errors import LanguageError

        try:
            bad = scheme.gap_language.no_configuration(graph, rng=spawn(rng, 5))
        except LanguageError:
            pytest.skip("no alpha-far instance reachable on this graph")
        outcome = gap_attack(
            scheme, bad, rng=spawn(rng, 6), trials=30, related=[member]
        )
        assert not outcome.fooled

    def test_tighter_eps_widens_the_mantissa(self):
        """Shrinking ε tightens the gap the honest round-up must fit in,
        so the chosen mantissa width is monotone non-increasing in α."""
        from repro.approx.counters import mantissa_bits_for

        for depth in (2, 8, 32):
            widths = [
                mantissa_bits_for(depth, 1.0 + eps)
                for eps in (0.1, 0.25, 1.0, 3.0)
            ]
            assert widths == sorted(widths, reverse=True)
            assert widths[0] > widths[-1]

    def test_tighter_eps_tightens_the_accepted_root_bound(self):
        """The α the verifier enforces really is 1 + ε: an accepted root
        certifies weight ≤ (1+ε)·budget, so smaller ε certifies more."""
        scheme_tight, graph, rng = _instance(
            "approx-tree-weight", "gnp", n=16, seed=9, eps=0.1
        )
        scheme_loose = catalog.build(
            "approx-tree-weight", graph=graph, rng=spawn(rng, 3), eps=3.0
        )
        budget = scheme_tight.gap_language.budget
        assert scheme_loose.gap_language.budget == budget
        assert (
            scheme_tight.alpha * budget < scheme_loose.alpha * budget
        )
