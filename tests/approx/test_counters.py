"""Rounded-counter properties: never under, bounded over."""

from __future__ import annotations

import pytest

from repro.approx.counters import (
    counter_value,
    is_counter,
    mantissa_bits_for,
    round_up_counter,
)
from repro.errors import SchemeError
from repro.util.rng import make_rng


class TestRoundUp:
    @pytest.mark.parametrize("mantissa", [2, 3, 5, 8])
    def test_never_underestimates(self, mantissa):
        rng = make_rng(1)
        for _ in range(500):
            value = rng.randrange(0, 1 << rng.randrange(1, 40))
            counter = round_up_counter(value, mantissa)
            assert counter_value(counter) >= value

    @pytest.mark.parametrize("mantissa", [3, 5, 8])
    def test_relative_error_bound(self, mantissa):
        rng = make_rng(2)
        slack = 1.0 + 1.0 / ((1 << (mantissa - 1)) - 1)
        for _ in range(500):
            value = 1 + rng.randrange(1 << rng.randrange(1, 40))
            counter = round_up_counter(value, mantissa)
            assert counter_value(counter) <= value * slack

    def test_mantissa_stays_in_range(self):
        for value in [0, 1, 7, 8, 255, 256, 12345, (1 << 60) - 1]:
            mantissa, _ = round_up_counter(value, 4)
            assert 0 <= mantissa < 16

    def test_small_values_exact(self):
        for value in range(16):
            assert counter_value(round_up_counter(value, 5)) == value

    def test_rejects_bad_inputs(self):
        with pytest.raises(SchemeError):
            round_up_counter(5, 1)
        with pytest.raises(SchemeError):
            round_up_counter(-1, 4)


class TestShapeCheck:
    def test_accepts_real_counters(self):
        assert is_counter(round_up_counter(1234, 4))

    @pytest.mark.parametrize(
        "bad",
        [None, 7, (1,), (1, 2, 3), (-1, 0), (1, -1), (True, 0), (1.5, 0), (1, 99999)],
    )
    def test_rejects_malformed(self, bad):
        assert not is_counter(bad)


class TestMantissaBudget:
    def test_accumulated_inflation_within_alpha(self):
        """A depth-long chain of round-ups stays within the gap factor."""
        for depth in [0, 1, 5, 20, 100]:
            for alpha in [1.5, 2.0, 3.0]:
                mantissa = mantissa_bits_for(depth, alpha)
                total = 1_000_000
                bound = total
                for _ in range(depth + 1):
                    bound = counter_value(round_up_counter(bound, mantissa))
                assert bound <= alpha * total

    def test_grows_slowly_with_depth(self):
        assert mantissa_bits_for(1000) <= mantissa_bits_for(1) + 10
