"""The gap-language contract: disjoint sides, usable generators."""

from __future__ import annotations

import pytest

from repro.approx import (
    GapDiameterLanguage,
    GapDominatingSetLanguage,
    GapVertexCoverLanguage,
)
from repro.core import catalog
from repro.core.soundness import gap_attack
from repro.errors import LanguageError, SchemeError
from repro.graphs.generators import connected_gnp, path_graph
from repro.graphs.weighted import weighted_copy
from repro.schemes import LeaderScheme
from repro.util.rng import make_rng


def _fitted(name, n=12, seed=3, **params):
    rng = make_rng(seed)
    spec = catalog.get(name)
    graph = connected_gnp(n, 0.3, rng)
    if spec.weighted:
        graph = weighted_copy(graph, rng)
    return catalog.build(name, graph=graph, rng=rng, **params), graph, rng


class TestGapContract:
    @pytest.mark.parametrize("name", catalog.names(kind="approx"))
    def test_member_configuration_is_yes(self, name):
        scheme, graph, rng = _fitted(name)
        config = scheme.language.member_configuration(graph, rng=rng)
        lang = scheme.gap_language
        assert lang.is_yes(config)
        assert not lang.is_no(config)
        assert lang.check_gap_consistency(config)

    @pytest.mark.parametrize(
        "name", ["approx-vertex-cover", "approx-dominating-set",
                 "approx-matching", "approx-tree-weight"],
    )
    def test_no_configuration_is_no(self, name):
        scheme, graph, rng = _fitted(name)
        bad = scheme.gap_language.no_configuration(graph, rng=rng)
        lang = scheme.gap_language
        assert lang.is_no(bad)
        assert not lang.is_yes(bad)
        assert lang.check_gap_consistency(bad)

    def test_diameter_no_instance_needs_far_graph(self):
        lang = GapDiameterLanguage(2)
        with pytest.raises(LanguageError):
            lang.no_configuration(path_graph(4), rng=make_rng(0))
        bad = lang.no_configuration(path_graph(10), rng=make_rng(0))
        assert lang.is_no(bad)

    def test_gap_between_sides_exists(self):
        """A cover that is neither optimal-shaped nor α-far sits in the gap."""
        lang = GapVertexCoverLanguage()
        graph = path_graph(5)  # OPT = 2
        # Mark {1, 2, 3}: a cover of size 3 <= 2*OPT, but node 2 has both
        # neighbors in the cover, so no matching saturates the marks.
        config = lang.member_configuration(graph).with_labeling(
            {0: False, 1: True, 2: True, 3: True, 4: False}
        )
        assert lang.in_gap(config)


class TestGapAttackGuards:
    def test_rejects_exact_schemes(self):
        scheme = LeaderScheme()
        graph = connected_gnp(8, 0.3, make_rng(1))
        config = scheme.language.member_configuration(graph, rng=make_rng(2))
        with pytest.raises(SchemeError):
            gap_attack(scheme, config)

    def test_rejects_yes_instances(self):
        scheme, graph, rng = _fitted("approx-vertex-cover")
        config = scheme.language.member_configuration(graph, rng=rng)
        with pytest.raises(SchemeError):
            gap_attack(scheme, config, rng=rng)

    def test_rejects_gap_instances(self):
        lang = GapVertexCoverLanguage()
        graph = path_graph(5)
        config = lang.member_configuration(graph).with_labeling(
            {0: False, 1: True, 2: True, 3: True, 4: False}
        )
        from repro.approx import ApproxVertexCoverScheme

        with pytest.raises(SchemeError):
            gap_attack(ApproxVertexCoverScheme(lang), config)


class TestBudgetValidation:
    def test_dominating_set_budget_positive(self):
        with pytest.raises(LanguageError):
            GapDominatingSetLanguage(0)

    def test_alpha_must_exceed_one(self):
        with pytest.raises(LanguageError):
            GapDominatingSetLanguage(3, alpha=1.0)
