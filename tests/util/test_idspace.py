"""Tests for identifier assignment policies."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IdentityError
from repro.util.idspace import (
    adversarial_ids,
    contiguous_ids,
    id_domain_bits,
    permuted_ids,
    random_ids,
    validate_ids,
)
from repro.util.rng import make_rng


class TestContiguous:
    def test_values(self):
        assert contiguous_ids([0, 1, 2]) == {0: 1, 1: 2, 2: 3}

    def test_empty(self):
        assert contiguous_ids([]) == {}


class TestPermuted:
    def test_is_permutation(self):
        ids = permuted_ids(list(range(20)), make_rng(1))
        assert sorted(ids.values()) == list(range(1, 21))

    def test_deterministic_under_seed(self):
        a = permuted_ids(list(range(10)), make_rng(7))
        b = permuted_ids(list(range(10)), make_rng(7))
        assert a == b


class TestRandomIds:
    @given(st.integers(min_value=1, max_value=40))
    def test_distinct_and_in_universe(self, n):
        ids = random_ids(list(range(n)), universe=10 * n, rng=make_rng(n))
        values = list(ids.values())
        assert len(set(values)) == n
        assert all(1 <= v <= 10 * n for v in values)

    def test_universe_too_small(self):
        with pytest.raises(IdentityError):
            random_ids([0, 1, 2], universe=2)


class TestAdversarial:
    def test_takes_largest_ids(self):
        ids = adversarial_ids([0, 1, 2], universe=100)
        assert sorted(ids.values()) == [98, 99, 100]

    def test_universe_too_small(self):
        with pytest.raises(IdentityError):
            adversarial_ids([0, 1, 2], universe=2)


class TestValidate:
    def test_accepts_good_assignment(self):
        validate_ids([0, 1], {0: 5, 1: 9}, universe=10)

    def test_rejects_missing_node(self):
        with pytest.raises(IdentityError):
            validate_ids([0, 1], {0: 5})

    def test_rejects_duplicates(self):
        with pytest.raises(IdentityError):
            validate_ids([0, 1], {0: 5, 1: 5})

    def test_rejects_nonpositive(self):
        with pytest.raises(IdentityError):
            validate_ids([0], {0: 0})

    def test_rejects_outside_universe(self):
        with pytest.raises(IdentityError):
            validate_ids([0], {0: 11}, universe=10)


class TestDomainBits:
    def test_bits(self):
        assert id_domain_bits({0: 1}) == 1
        assert id_domain_bits({0: 255, 1: 3}) == 8
        assert id_domain_bits({}) == 0
