"""Tests for the bit-level codec."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.util.bits import (
    BitReader,
    BitWriter,
    bit_length,
    decode_obj,
    elias_gamma,
    elias_gamma_decode,
    encode_obj,
    fixed_uint,
    fixed_uint_decode,
    log2_ceil,
    obj_bit_size,
    zigzag,
    zigzag_decode,
)


class TestPrimitives:
    def test_bit_length_basics(self):
        assert bit_length(0) == 1
        assert bit_length(1) == 1
        assert bit_length(2) == 2
        assert bit_length(255) == 8
        assert bit_length(256) == 9

    def test_bit_length_rejects_negative(self):
        with pytest.raises(EncodingError):
            bit_length(-1)

    def test_fixed_uint_roundtrip(self):
        for width in (1, 3, 8, 16):
            for value in (0, 1, (1 << width) - 1):
                assert fixed_uint_decode(fixed_uint(value, width)) == value

    def test_fixed_uint_width_is_exact(self):
        assert len(fixed_uint(5, 10)) == 10

    def test_fixed_uint_overflow(self):
        with pytest.raises(EncodingError):
            fixed_uint(4, 2)

    def test_fixed_uint_rejects_bad_width(self):
        with pytest.raises(EncodingError):
            fixed_uint(0, 0)

    def test_elias_gamma_known_values(self):
        assert elias_gamma(1) == "1"
        assert elias_gamma(2) == "010"
        assert elias_gamma(3) == "011"
        assert elias_gamma(5) == "00101"

    def test_elias_gamma_rejects_nonpositive(self):
        with pytest.raises(EncodingError):
            elias_gamma(0)

    def test_elias_gamma_length(self):
        for v in (1, 2, 7, 100, 12345):
            assert len(elias_gamma(v)) == 2 * int(math.log2(v)) + 1

    @given(st.integers(min_value=1, max_value=10**9))
    def test_elias_gamma_roundtrip(self, value):
        decoded, pos = elias_gamma_decode(elias_gamma(value))
        assert decoded == value
        assert pos == len(elias_gamma(value))

    def test_elias_gamma_decode_truncated(self):
        with pytest.raises(EncodingError):
            elias_gamma_decode("00")

    @given(st.integers(min_value=-(10**9), max_value=10**9))
    def test_zigzag_roundtrip(self, value):
        assert zigzag_decode(zigzag(value)) == value

    def test_zigzag_is_dense(self):
        seen = {zigzag(v) for v in range(-5, 6)}
        assert seen == set(range(11))

    def test_log2_ceil(self):
        assert log2_ceil(1) == 0
        assert log2_ceil(2) == 1
        assert log2_ceil(3) == 2
        assert log2_ceil(1024) == 10

    def test_log2_ceil_rejects_nonpositive(self):
        with pytest.raises(EncodingError):
            log2_ceil(0)


class TestStreams:
    def test_writer_reader_mixed(self):
        writer = BitWriter()
        writer.bit(True)
        writer.uint(13, 6)
        writer.nat(0)
        writer.int(-7)
        writer.gamma(9)
        bits = writer.getvalue()
        reader = BitReader(bits)
        assert reader.bit() is True
        assert reader.uint(6) == 13
        assert reader.nat() == 0
        assert reader.int() == -7
        assert reader.gamma() == 9
        assert reader.exhausted()

    def test_reader_overrun(self):
        reader = BitReader("101")
        reader.raw(3)
        with pytest.raises(EncodingError):
            reader.raw(1)

    def test_writer_raw_validation(self):
        writer = BitWriter()
        with pytest.raises(EncodingError):
            writer.raw("10x")

    def test_writer_len_tracks_bits(self):
        writer = BitWriter()
        writer.uint(0, 5)
        writer.bit(False)
        assert len(writer) == 6


_atoms = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.text(max_size=12),
    st.binary(max_size=8),
)

_objects = st.recursive(
    _atoms,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.tuples(inner, inner),
        st.dictionaries(st.integers(min_value=0, max_value=50), inner, max_size=3),
        st.frozensets(st.integers(min_value=0, max_value=50), max_size=4),
    ),
    max_leaves=12,
)


class TestGenericCodec:
    @settings(max_examples=150)
    @given(_objects)
    def test_roundtrip(self, obj):
        assert decode_obj(encode_obj(obj)) == obj

    def test_floats_roundtrip(self):
        for value in (0.0, -1.5, 3.141592653589793, 1e300):
            assert decode_obj(encode_obj(value)) == value

    def test_canonical_encoding_is_deterministic(self):
        a = encode_obj({3: "x", 1: "y"})
        b = encode_obj({1: "y", 3: "x"})
        assert a == b

    def test_size_monotone_in_content(self):
        assert obj_bit_size((1, 2, 3)) > obj_bit_size((1,))

    def test_trailing_garbage_rejected(self):
        bits = encode_obj(42) + "0"
        with pytest.raises(EncodingError):
            decode_obj(bits)

    def test_unsupported_type_rejected(self):
        with pytest.raises(EncodingError):
            encode_obj(object())

    def test_bool_not_confused_with_int(self):
        assert decode_obj(encode_obj(True)) is True
        assert decode_obj(encode_obj(1)) == 1
        assert encode_obj(True) != encode_obj(1)

    def test_tuple_not_confused_with_list(self):
        assert decode_obj(encode_obj((1, 2))) == (1, 2)
        assert decode_obj(encode_obj([1, 2])) == [1, 2]
        assert encode_obj((1, 2)) != encode_obj([1, 2])

    def test_int_size_grows_logarithmically(self):
        small = obj_bit_size(3)
        large = obj_bit_size(3_000_000)
        assert small < large < small + 50
