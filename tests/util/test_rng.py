"""Tests for the RNG discipline helpers."""

from __future__ import annotations

import pytest

from repro.util.rng import make_rng, sample_distinct, shuffled, spawn, weighted_choice


class TestMakeRng:
    def test_deterministic_for_seed(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_default_seed_is_fixed(self):
        assert make_rng().random() == make_rng().random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()


class TestSpawn:
    def test_children_reproducible(self):
        a = spawn(make_rng(9), salt=1).random()
        b = spawn(make_rng(9), salt=1).random()
        assert a == b

    def test_salt_separates_children(self):
        parent = make_rng(9)
        a = spawn(parent, salt=1)
        parent2 = make_rng(9)
        b = spawn(parent2, salt=2)
        assert a.random() != b.random()


class TestSampling:
    def test_sample_distinct(self):
        values = sample_distinct(make_rng(1), 1, 100, 10)
        assert len(set(values)) == 10
        assert all(1 <= v <= 100 for v in values)

    def test_sample_distinct_range_too_small(self):
        with pytest.raises(ValueError):
            sample_distinct(make_rng(1), 1, 3, 10)

    def test_shuffled_preserves_input(self):
        original = [1, 2, 3, 4]
        result = shuffled(make_rng(2), original)
        assert sorted(result) == original
        assert original == [1, 2, 3, 4]

    def test_weighted_choice_respects_support(self):
        rng = make_rng(3)
        picks = {weighted_choice(rng, ["a", "b"], [0.0, 1.0]) for _ in range(20)}
        assert picks == {"b"}
