"""Documentation is enforced: module docstrings and the docs/ book.

Every public module under ``src/repro/`` must open with a module-level
docstring tying it to the reproduced material (the source paper, a
related-work paper, or the engineering extension it implements), and the
``docs/`` book plus README links must not silently disappear.
"""

from __future__ import annotations

import ast
import pathlib

import pytest

REPO = pathlib.Path(__file__).parent.parent
SRC = REPO / "src" / "repro"

MODULES = sorted(SRC.rglob("*.py"))


def test_module_inventory_is_nonempty():
    assert len(MODULES) > 50


@pytest.mark.parametrize("path", MODULES, ids=lambda p: str(p.relative_to(SRC)))
def test_every_module_has_a_docstring(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    docstring = ast.get_docstring(tree)
    assert docstring, f"{path.relative_to(REPO)} lacks a module docstring"
    assert len(docstring.split()) >= 5, (
        f"{path.relative_to(REPO)}: docstring too thin to state what the "
        f"module reproduces"
    )


@pytest.mark.parametrize(
    "package, citation",
    [
        ("approx/__init__.py", "Emek"),
        ("errorsensitive/__init__.py", "Feuilloley"),
        ("core/__init__.py", "paper"),
        ("selfstab/__init__.py", "self-stabiliz"),
        ("lowerbounds/__init__.py", "lower"),
    ],
)
def test_package_docstrings_name_their_source(package, citation):
    tree = ast.parse((SRC / package).read_text(encoding="utf-8"))
    docstring = ast.get_docstring(tree) or ""
    assert citation.lower() in docstring.lower(), (
        f"src/repro/{package} should name the material it reproduces "
        f"(expected {citation!r})"
    )


def test_docs_book_exists_and_is_linked():
    architecture = REPO / "docs" / "ARCHITECTURE.md"
    experiments = REPO / "docs" / "EXPERIMENTS.md"
    assert architecture.is_file()
    assert experiments.is_file()
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/EXPERIMENTS.md" in readme
    # The experiment book documents how to reproduce every table,
    # including the new error-sensitivity sweep.
    book = experiments.read_text(encoding="utf-8")
    for table in ("T1", "T2", "T4", "T5", "F4b", "ES"):
        assert table in book, f"docs/EXPERIMENTS.md lost its {table} section"
    assert "python -m repro" in book
