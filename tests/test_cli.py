"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["certify", "no-such-scheme"])


class TestCommands:
    def test_list_schemes(self, capsys):
        assert main(["list-schemes"]) == 0
        out = capsys.readouterr().out
        assert "spanning-tree-ptr" in out
        assert "mst" in out
        assert "Theta(log n)" in out

    def test_list_schemes_includes_approx(self, capsys):
        from repro.approx import APPROX_SCHEME_BUILDERS

        assert main(["list-schemes"]) == 0
        out = capsys.readouterr().out
        for name in APPROX_SCHEME_BUILDERS:
            assert name in out
        assert "alpha=2" in out

    def test_certify_accepts(self, capsys):
        code = main(["certify", "spanning-tree-ptr", "--n", "16", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "all accept = True" in out

    def test_certify_weighted_scheme(self, capsys):
        assert main(["certify", "mst", "--n", "10", "--seed", "1"]) == 0
        assert "proof size" in capsys.readouterr().out

    def test_certify_unconstructible_exits(self):
        with pytest.raises(SystemExit):
            # bipartite on a family that is generally non-bipartite
            main(["certify", "bipartite", "--family", "gnp_dense", "--n", "13"])

    def test_approx_certify_accepts(self, capsys):
        code = main(["approx-certify", "approx-vertex-cover", "--n", "16", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "all accept = True" in out
        assert "gap saving" in out

    def test_approx_certify_weighted_scheme(self, capsys):
        assert main(["approx-certify", "approx-tree-weight", "--n", "12"]) == 0
        out = capsys.readouterr().out
        assert "approx proof size" in out
        assert "exact proof size" in out

    def test_approx_certify_attack_never_fooled(self, capsys):
        code = main(
            ["approx-certify", "approx-matching", "--n", "12",
             "--attack", "--trials", "20", "--seed", "1"]
        )
        assert code == 0
        assert "fooled = False" in capsys.readouterr().out

    def test_approx_certify_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["approx-certify", "no-such-scheme"])

    def test_attack_never_fooled(self, capsys):
        code = main(
            ["attack", "leader", "--n", "12", "--trials", "20", "--seed", "2"]
        )
        assert code == 0
        assert "fooled: False" in capsys.readouterr().out

    def test_experiment_runs(self, capsys):
        assert main(["experiment", "f6"]) == 0
        out = capsys.readouterr().out
        assert "space-radius" in out

    def test_report_writes_file(self, tmp_path, monkeypatch):
        # Stub the (slow) full experiment suite; this test covers the
        # file-writing plumbing only.
        import repro.analysis.report as report_module

        monkeypatch.setattr(
            report_module, "generate_report", lambda: "# stub report\n"
        )
        target = tmp_path / "EXP.md"
        assert report_module.main([str(target)]) == 0
        assert target.read_text() == "# stub report\n"


class TestSelfstabSweep:
    def test_sweep_runs_clean(self, capsys):
        code = main(
            ["selfstab-sweep", "--n", "12", "--faults", "1", "--runs", "2",
             "--detector", "st-pointer", "--seed", "7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "F4b" in out
        assert "view ratio" in out
        assert "false negatives observed: 0" in out

    def test_sweep_accepts_approx_detectors(self, capsys):
        code = main(
            ["selfstab-sweep", "--n", "10", "--faults", "1", "--runs", "1",
             "--detector", "approx-dominating-set"]
        )
        assert code == 0
        assert "approx-dominating-set" in capsys.readouterr().out

    def test_unknown_detector_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["selfstab-sweep", "--detector", "bogus"])
