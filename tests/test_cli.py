"""Tests for the command-line interface."""

from __future__ import annotations

import re

import pytest

from repro.cli import build_parser, main
from repro.core import catalog


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["certify", "no-such-scheme"])

    def test_approx_names_are_plain_certify_choices(self):
        args = build_parser().parse_args(["certify", "approx-vertex-cover"])
        assert args.scheme == "approx-vertex-cover"


class TestListSchemes:
    def test_every_registered_name_listed(self, capsys):
        assert main(["list-schemes"]) == 0
        out = capsys.readouterr().out
        for name in catalog.names():
            assert name in out
        assert "spanning-tree-ptr" in out
        assert "mst" in out
        assert "Theta(log n)" in out
        assert "alpha=2" in out
        assert "eps=1" in out  # declared parameters are rendered

    def test_fields_are_separated(self, capsys):
        """Regression: approx rows used to concatenate ``alpha=...`` and
        ``bound=...`` with no separator between the two fields."""
        assert main(["list-schemes"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert lines
        for line in lines:
            assert re.search(r"alpha=\S+\s", line), line
            assert not re.search(r"alpha=\S*bound=", line), line
            assert " bound=" in line

    def test_kinds_rendered_uniformly(self, capsys):
        assert main(["list-schemes"]) == 0
        out = capsys.readouterr().out
        assert "kind=exact" in out
        assert "kind=approx" in out
        assert "kind=universal" in out


class TestCertify:
    def test_certify_accepts(self, capsys):
        code = main(["certify", "spanning-tree-ptr", "--n", "16", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "all accept = True" in out

    def test_certify_weighted_scheme(self, capsys):
        assert main(["certify", "mst", "--n", "10", "--seed", "1"]) == 0
        assert "proof size" in capsys.readouterr().out

    def test_certify_unconstructible_exits(self):
        with pytest.raises(SystemExit):
            # bipartite on a family that is generally non-bipartite
            main(["certify", "bipartite", "--family", "gnp_dense", "--n", "13"])

    def test_certify_defaults_to_supported_family(self, capsys):
        # No --family: the spec's own sampler must pick a bipartite graph.
        assert main(["certify", "bipartite", "--n", "12"]) == 0
        assert "all accept = True" in capsys.readouterr().out

    @pytest.mark.parametrize("name", catalog.names())
    def test_certify_succeeds_for_every_registered_name(self, name, capsys):
        """The acceptance criterion: one uniform path for all kinds."""
        assert main(["certify", name, "--n", "14", "--seed", "5"]) == 0
        assert "all accept = True" in capsys.readouterr().out

    def test_certify_approx_reports_gap_saving(self, capsys):
        code = main(["certify", "approx-vertex-cover", "--n", "16", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "all accept = True" in out
        assert "gap saving" in out
        assert "exact proof size" in out

    def test_certify_param_override_reaches_the_scheme(self, capsys):
        code = main(
            ["certify", "approx-tree-weight", "--n", "12", "--param", "eps=0.5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "alpha=1.5" in out
        assert "params: eps=0.5" in out

    def test_certify_unknown_param_exits(self):
        with pytest.raises(SystemExit):
            main(["certify", "approx-tree-weight", "--n", "10",
                  "--param", "bogus=3"])

    def test_certify_malformed_param_exits(self):
        with pytest.raises(SystemExit):
            main(["certify", "approx-tree-weight", "--n", "10",
                  "--param", "eps"])

    def test_certify_attack_exact_never_fooled(self, capsys):
        code = main(
            ["certify", "leader", "--n", "12", "--attack", "--trials", "20",
             "--seed", "2"]
        )
        assert code == 0
        assert "fooled = False" in capsys.readouterr().out

    def test_certify_attack_approx_never_fooled(self, capsys):
        code = main(
            ["certify", "approx-matching", "--n", "12",
             "--attack", "--trials", "20", "--seed", "1"]
        )
        assert code == 0
        assert "fooled = False" in capsys.readouterr().out


class TestAttack:
    def test_attack_never_fooled(self, capsys):
        code = main(
            ["attack", "leader", "--n", "12", "--trials", "20", "--seed", "2"]
        )
        assert code == 0
        assert "fooled: False" in capsys.readouterr().out

    def test_attack_gap_scheme_uses_no_instance(self, capsys):
        code = main(
            ["attack", "approx-vertex-cover", "--n", "10", "--trials", "20",
             "--seed", "4"]
        )
        assert code == 0
        assert "fooled: False" in capsys.readouterr().out


class TestOtherCommands:
    def test_experiment_runs(self, capsys):
        assert main(["experiment", "f6"]) == 0
        out = capsys.readouterr().out
        assert "space-radius" in out

    def test_report_writes_file(self, tmp_path, monkeypatch):
        # Stub the (slow) full experiment suite; this test covers the
        # file-writing plumbing only.
        import repro.analysis.report as report_module

        monkeypatch.setattr(
            report_module, "generate_report", lambda: "# stub report\n"
        )
        target = tmp_path / "EXP.md"
        assert report_module.main([str(target)]) == 0
        assert target.read_text() == "# stub report\n"


class TestErrorProfile:
    def test_profiles_the_non_sensitive_pointer_scheme(self, capsys):
        code = main(
            ["error-profile", "spanning-tree-ptr", "--n", "16",
             "--distance", "4", "--samples", "1", "--trials", "8"]
        )
        # Classification (not-error-sensitive) matches the declaration.
        assert code == 0
        out = capsys.readouterr().out
        assert "classification: not-error-sensitive" in out
        assert "pattern" in out
        assert "beta^" in out

    def test_profiles_the_repair(self, capsys):
        code = main(
            ["error-profile", "es-spanning-tree", "--n", "16",
             "--distance", "2", "--distance", "4", "--samples", "2",
             "--trials", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "classification: error-sensitive" in out
        assert "declared error-sensitive: yes" in out

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["error-profile", "bogus"])

    def test_es_metadata_rendered_in_list_schemes(self, capsys):
        assert main(["list-schemes"]) == 0
        out = capsys.readouterr().out
        assert "es-spanning-tree" in out
        for line in out.splitlines():
            if line.startswith("spanning-tree-ptr"):
                assert "es=no" in line
            if line.startswith("es-spanning-tree"):
                assert "es=yes" in line


class TestSelfstabSweep:
    def test_sweep_runs_clean(self, capsys):
        code = main(
            ["selfstab-sweep", "--n", "12", "--faults", "1", "--runs", "2",
             "--detector", "st-pointer", "--seed", "7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "F4b" in out
        assert "view ratio" in out
        assert "false negatives observed: 0" in out

    def test_sweep_accepts_approx_detectors(self, capsys):
        code = main(
            ["selfstab-sweep", "--n", "10", "--faults", "1", "--runs", "1",
             "--detector", "approx-dominating-set"]
        )
        assert code == 0
        assert "approx-dominating-set" in capsys.readouterr().out

    def test_unknown_detector_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["selfstab-sweep", "--detector", "bogus"])

    def test_sweep_param_override_forwarded(self, capsys):
        code = main(
            ["selfstab-sweep", "--n", "10", "--faults", "1", "--runs", "1",
             "--detector", "approx-dominating-set", "--param", "eps=0.5"]
        )
        assert code == 0
        assert "approx-dominating-set" in capsys.readouterr().out

    def test_sweep_unknown_param_exits_cleanly(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["selfstab-sweep", "--n", "10", "--faults", "1", "--runs", "1",
                  "--detector", "es-spanning-tree", "--param", "epsilon=0.5"])
        assert "epsilon" in str(excinfo.value)

    def test_sweep_trace_captures_cells_and_params(self, tmp_path, capsys):
        from repro.obs.trace import read_trace

        target = tmp_path / "sweep.jsonl"
        code = main(
            ["selfstab-sweep", "--n", "10", "--faults", "1", "--runs", "1",
             "--detector", "approx-dominating-set", "--param", "eps=0.5",
             "--trace", str(target)]
        )
        assert code == 0
        records = read_trace(target)
        assert records[0]["type"] == "begin"
        assert records[-1]["type"] == "metrics"
        cells = [r for r in records if r["type"] == "event"
                 and r["name"] == "campaign.cell"]
        assert cells
        assert all(c["fields"]["params"] == {"eps": "0.5"} for c in cells)
        counters = records[-1]["counters"]
        assert counters["views.built"] > 0
        assert counters["detector.sweeps"] > 0


class TestProfile:
    def test_profile_prints_counters_and_spans(self, capsys):
        code = main(["profile", "mst", "--n", "16", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "views.built" in out
        assert "messages.sent" in out
        assert "spans:" in out
        assert "decide" in out
        assert "distributed_verification" in out
        assert "all accept = True" in out

    def test_profile_writes_trace(self, tmp_path, capsys):
        from repro.obs.trace import read_trace

        target = tmp_path / "profile.jsonl"
        code = main(
            ["profile", "leader", "--n", "12", "--trace", str(target)]
        )
        assert code == 0
        assert f"trace written: {target}" in capsys.readouterr().out
        records = read_trace(target)
        kinds = [r["type"] for r in records]
        assert kinds[0] == "begin"
        assert kinds[-1] == "metrics"
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert {"certify", "message-path"} <= span_names

    def test_profile_accepts_params(self, capsys):
        code = main(
            ["profile", "approx-tree-weight", "--n", "12", "--param", "eps=0.5"]
        )
        assert code == 0
        assert "eps=0.5" in capsys.readouterr().out

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "bogus"])


class TestTraceFlag:
    def test_certify_trace_round_trips(self, tmp_path):
        from repro.obs.trace import read_trace

        target = tmp_path / "certify.jsonl"
        code = main(
            ["certify", "leader", "--n", "12", "--trace", str(target)]
        )
        assert code == 0
        records = read_trace(target)
        assert records[0]["type"] == "begin"
        assert records[0]["scope"] == "certify"
        assert records[-1]["type"] == "metrics"
        counters = records[-1]["counters"]
        # leader verifies on the batched array path (no views built).
        assert counters["decide.batch.nodes"] > 0

    def test_untraced_commands_leave_no_scope_open(self):
        from repro.obs import metrics as obs

        assert main(["certify", "leader", "--n", "10"]) == 0
        assert not obs.scoped()


class TestListSchemesJson:
    def test_machine_readable_catalog(self, capsys):
        import json

        assert main(["list-schemes", "--json"]) == 0
        specs = json.loads(capsys.readouterr().out)
        assert [s["name"] for s in specs] == catalog.names()
        by_name = {s["name"]: s for s in specs}
        st = by_name["spanning-tree-ptr"]
        assert st["kind"] == "exact" and st["visibility"] == "kkp"
        eps = [p for p in by_name["approx-tree-weight"]["params"]
               if p["name"] == "eps"]
        assert eps and eps[0]["exclusive"] is True
        # every entry carries the full stable key set
        keys = {"name", "kind", "summary", "size_bound", "visibility",
                "radius", "weighted", "alpha", "graph_fitted",
                "error_sensitive", "batch", "params"}
        assert all(keys <= set(s) for s in specs)


class TestServiceCommands:
    def test_make_envelope_writes_wire_form(self, tmp_path, capsys):
        from repro.service import ProofEnvelope

        out = tmp_path / "env.json"
        assert main(["make-envelope", "spanning-tree-ptr", "--n", "16",
                     "--seed", "3", "--out", str(out)]) == 0
        envelope = ProofEnvelope.from_bytes(out.read_bytes())
        assert envelope.scheme == "spanning-tree-ptr"
        assert envelope.graph.n == 16
        assert envelope.certificates is not None

    def test_make_envelope_to_stdout_round_trips(self, capsys):
        from repro.service import ProofEnvelope

        assert main(["make-envelope", "bipartite", "--n", "8",
                     "--no-certificates"]) == 0
        envelope = ProofEnvelope.from_bytes(capsys.readouterr().out)
        assert envelope.certificates is None

    def test_make_envelope_family_override(self, tmp_path, capsys):
        # --family random_tree sidesteps the scheme's own G(n, p)
        # sampler — the path the large-n service benchmark rides.
        from repro.service import CertificationService, ProofEnvelope

        out = tmp_path / "env.json"
        assert main(["make-envelope", "spanning-tree-ptr", "--n", "40",
                     "--seed", "6", "--family", "random_tree",
                     "--out", str(out)]) == 0
        envelope = ProofEnvelope.from_bytes(out.read_bytes())
        assert envelope.graph.n == 40
        assert len(envelope.graph.edges()) == 39  # a tree, not G(n, p)
        assert CertificationService().submit(envelope).accepted

    def test_make_envelope_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for out in (a, b):
            assert main(["make-envelope", "leader", "--n", "10",
                         "--seed", "5", "--out", str(out)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_submit_round_trip_against_live_server(self, tmp_path, capsys):
        import json
        import threading

        from repro.service import CertificationService
        from repro.service.httpd import make_server

        out = tmp_path / "env.json"
        assert main(["make-envelope", "spanning-tree-ptr", "--n", "16",
                     "--seed", "4", "--out", str(out)]) == 0
        capsys.readouterr()

        service = CertificationService()
        server = make_server(port=0, service=service)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        url = "http://%s:%d" % server.server_address[:2]
        try:
            assert main(["submit", str(out), "--url", url]) == 0
            verdict = json.loads(capsys.readouterr().out)
            assert verdict["accepted"] and not verdict["cache_hit"]
            # verbatim replay is refused...
            assert main(["submit", str(out), "--url", url]) == 2
            assert json.loads(capsys.readouterr().out)["replay"]
            # ...but a fresh nonce is served from cache.
            assert main(["submit", str(out), "--url", url,
                         "--nonce", "fresh"]) == 0
            assert json.loads(capsys.readouterr().out)["cache_hit"]
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_submit_unreachable_server_exits(self, tmp_path):
        out = tmp_path / "env.json"
        assert main(["make-envelope", "bipartite", "--n", "6",
                     "--out", str(out)]) == 0
        with pytest.raises(SystemExit, match="cannot reach"):
            main(["submit", str(out), "--url", "http://127.0.0.1:1"])
