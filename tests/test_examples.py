"""Every example script must run to completion as documented."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path):
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they do"
