"""Tests for the executable lower-bound machinery."""

from __future__ import annotations

import math

import pytest

from repro.core.soundness import completeness_holds
from repro.errors import AttackError
from repro.graphs.generators import cycle_graph, path_graph
from repro.lowerbounds.crossing import (
    completeness_failure_depth,
    minimum_surviving_budget,
    pointer_cycle_attack,
    signature_collision_profile,
    two_root_path_attack,
)
from repro.lowerbounds.truncated import TruncatedSpanningTreeScheme
from repro.schemes.spanning_tree import SpanningTreePointerScheme
from repro.util.rng import make_rng


class TestTruncatedScheme:
    def test_lax_stays_complete_on_deep_trees(self):
        scheme = TruncatedSpanningTreeScheme(2, strict_root=False)
        config = scheme.language.member_configuration(path_graph(30))
        assert completeness_holds(scheme, config)

    def test_strict_loses_completeness_past_threshold(self):
        bits = 3
        scheme = TruncatedSpanningTreeScheme(bits, strict_root=True)
        shallow = scheme.language.member_configuration(path_graph(2 ** bits))
        # With a random root the depth may stay below the modulus; use
        # the deterministic deep labeling instead.
        from repro.core.labeling import Configuration

        deep_graph = path_graph(2 ** bits + 1)
        deep = Configuration.build(
            deep_graph, scheme.language.canonical_labeling(deep_graph)
        )
        assert not completeness_holds(scheme, deep)

    def test_declared_certificate_size(self):
        scheme = TruncatedSpanningTreeScheme(5)
        assert scheme.certificate_bits((0, 0)) == 10

    def test_rejects_invalid_budget(self):
        with pytest.raises(ValueError):
            TruncatedSpanningTreeScheme(0)


class TestPointerCycleAttack:
    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    def test_fools_when_divisible(self, bits):
        result = pointer_cycle_attack(16, bits)
        assert result.illegal
        assert result.fooled
        assert result.verdict.reject_count == 0

    def test_requires_divisibility(self):
        with pytest.raises(AttackError):
            pointer_cycle_attack(10, 2)  # 4 does not divide 10

    def test_instance_is_far_from_language(self):
        result = pointer_cycle_attack(16, 2)
        # Every node's pointer participates in the cycle: fixing the
        # instance needs at least one label change (in fact many).
        assert not result.config.graph is None
        assert result.illegal


class TestTwoRootPathAttack:
    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_fools_small_budgets(self, bits):
        result = two_root_path_attack(16, bits)
        assert result.illegal
        assert result.fooled

    def test_blocked_by_small_universe(self):
        # With 2^b beyond the id universe there is no colliding pair.
        with pytest.raises(AttackError):
            two_root_path_attack(8, 10, universe=64)

    def test_needs_minimum_length(self):
        with pytest.raises(AttackError):
            two_root_path_attack(3, 1)


class TestThresholds:
    @pytest.mark.parametrize("n", [8, 16, 32, 64])
    def test_surviving_budget_tracks_log_universe(self, n):
        # For power-of-two n with universe n², the attacks succeed up to
        # exactly log2(n²) - 1 bits and fail from log2(n²) on.
        assert minimum_surviving_budget(n) == round(2 * math.log2(n))

    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    def test_completeness_threshold_exact(self, bits):
        assert completeness_failure_depth(bits, max_n=300) == 2 ** bits + 1

    def test_full_scheme_never_fooled_by_these_attacks(self):
        """The real Θ(log n) scheme survives the same constructions."""
        scheme = SpanningTreePointerScheme()
        # Re-run the pointer-cycle construction against the full scheme:
        # all-clockwise pointers with the best certificates the adversary
        # could harvest cannot all-accept (counters must strictly
        # decrease without wrap-around).
        from repro.core.labeling import Configuration

        n = 16
        g = cycle_graph(n)
        states = {i: g.port(i, (i + 1) % n) for i in range(n)}
        config = Configuration.build(g, states)
        from repro.core.soundness import attack

        result = attack(scheme, config, rng=make_rng(0), trials=60)
        assert not result.fooled


class TestCollisionProfile:
    def test_profile_monotone_and_saturating(self):
        scheme = SpanningTreePointerScheme()
        configs = [
            scheme.language.member_configuration(path_graph(12), rng=make_rng(s))
            for s in range(4)
        ]
        profile = signature_collision_profile(scheme, configs)
        widths = sorted(profile)
        values = [profile[w] for w in widths]
        assert all(a <= b for a, b in zip(values, values[1:]))
        assert values[0] <= 2  # one bit distinguishes at most two
        assert values[-1] > 2  # full width separates many certificates
