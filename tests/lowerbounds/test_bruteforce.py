"""Exhaustive replay-adversary checks on tiny instances."""

from __future__ import annotations

import pytest

from repro.core.labeling import Configuration
from repro.graphs.generators import cycle_graph, path_graph
from repro.lowerbounds.bruteforce import (
    all_legal_configurations,
    exhaustive_soundness_check,
    per_node_candidates,
)
from repro.schemes.acyclic import AcyclicLanguage, AcyclicScheme
from repro.schemes.spanning_tree import (
    SpanningTreePointerLanguage,
    SpanningTreePointerScheme,
)
from repro.util.rng import make_rng


class TestEnumeration:
    def test_all_legal_spanning_trees_of_c4(self):
        language = SpanningTreePointerLanguage()
        members = all_legal_configurations(language, cycle_graph(4))
        # C4 has 4 spanning trees (drop one edge), each with 4 root
        # choices: 16 legal pointer labelings.
        assert len(members) == 16

    def test_all_legal_paths(self):
        language = SpanningTreePointerLanguage()
        members = all_legal_configurations(language, path_graph(3))
        # The path's unique spanning tree with 3 root choices.
        assert len(members) == 3

    def test_space_guard(self):
        language = SpanningTreePointerLanguage()
        with pytest.raises(ValueError):
            all_legal_configurations(language, cycle_graph(30), limit=100)

    def test_candidates_cover_all_nodes(self):
        language = SpanningTreePointerLanguage()
        scheme = SpanningTreePointerScheme(language)
        members = all_legal_configurations(language, path_graph(3))
        candidates = per_node_candidates(scheme, members, rng=make_rng(1))
        assert set(candidates) == {0, 1, 2}
        assert all(len(c) >= 2 for c in candidates.values())


class TestExhaustiveSoundness:
    def test_spanning_tree_survives_full_replay_on_p4(self):
        language = SpanningTreePointerLanguage()
        scheme = SpanningTreePointerScheme(language)
        graph = path_graph(4)
        members = all_legal_configurations(language, graph)
        # Two-root illegal instance.
        illegal = Configuration.build(
            graph,
            {0: None, 1: graph.port(1, 0), 2: graph.port(2, 3), 3: None},
        )
        assert not language.is_member(illegal)
        result = exhaustive_soundness_check(
            scheme, illegal, members, rng=make_rng(2), limit=300_000
        )
        assert not result.fooled
        assert result.min_rejects >= 1

    def test_acyclic_survives_replay_on_c3(self):
        language = AcyclicLanguage()
        scheme = AcyclicScheme(language)
        graph = cycle_graph(3)
        members = all_legal_configurations(language, graph)
        looped = Configuration.build(
            graph, {i: graph.port(i, (i + 1) % 3) for i in range(3)}
        )
        assert not language.is_member(looped)
        result = exhaustive_soundness_check(
            scheme, looped, members, rng=make_rng(3), limit=300_000
        )
        assert not result.fooled
