"""Tests for language intersection and scheme conjunction."""

from __future__ import annotations

import pytest

from repro.core.composition import ConjunctionScheme, IntersectionLanguage
from repro.core.labeling import Configuration
from repro.core.soundness import completeness_holds
from repro.core.verifier import Visibility
from repro.errors import LanguageError, SchemeError
from repro.graphs.generators import connected_gnp, path_graph
from repro.schemes.acyclic import AcyclicLanguage, AcyclicScheme
from repro.schemes.bfs_tree import BfsTreeScheme
from repro.schemes.spanning_tree import (
    SpanningTreePointerLanguage,
    SpanningTreePointerScheme,
)
from repro.util.rng import make_rng


class TestIntersectionLanguage:
    def test_membership_is_conjunction(self):
        inter = IntersectionLanguage(
            [SpanningTreePointerLanguage(), AcyclicLanguage()]
        )
        rng = make_rng(1)
        graph = connected_gnp(8, 0.4, rng)
        config = inter.member_configuration(graph, rng=rng)
        assert inter.is_member(config)

    def test_name_concatenates(self):
        inter = IntersectionLanguage([AcyclicLanguage(), AcyclicLanguage()])
        assert "acyclic" in inter.name

    def test_empty_intersection_rejected(self):
        with pytest.raises(LanguageError):
            IntersectionLanguage([])

    def test_non_member_detected(self):
        inter = IntersectionLanguage([SpanningTreePointerLanguage()])
        config = Configuration.build(path_graph(3), {0: None, 1: None, 2: None})
        assert not inter.is_member(config)


class TestConjunctionScheme:
    def test_completeness(self):
        scheme = ConjunctionScheme(
            [SpanningTreePointerScheme(), AcyclicScheme()]
        )
        rng = make_rng(2)
        graph = connected_gnp(10, 0.3, rng)
        config = scheme.language.member_configuration(graph, rng=rng)
        assert completeness_holds(scheme, config)

    def test_certificates_are_tuples_and_sizes_add(self):
        a, b = SpanningTreePointerScheme(), AcyclicScheme()
        scheme = ConjunctionScheme([a, b])
        rng = make_rng(3)
        graph = connected_gnp(8, 0.4, rng)
        config = scheme.language.member_configuration(graph, rng=rng)
        certs = scheme.prove(config)
        cert = certs[0]
        assert isinstance(cert, tuple) and len(cert) == 2
        assert scheme.certificate_bits(cert) == (
            a.certificate_bits(cert[0]) + b.certificate_bits(cert[1])
        )

    def test_rejects_if_any_component_rejects(self):
        scheme = ConjunctionScheme([SpanningTreePointerScheme(), AcyclicScheme()])
        rng = make_rng(4)
        graph = connected_gnp(8, 0.4, rng)
        config = scheme.language.member_configuration(graph, rng=rng)
        certs = dict(scheme.prove(config))
        good = certs[0]
        certs[0] = (good[0], 999_999)  # break only the acyclic component
        assert not scheme.run(config, certificates=certs).all_accept

    def test_malformed_tuple_rejected(self):
        scheme = ConjunctionScheme([SpanningTreePointerScheme(), AcyclicScheme()])
        rng = make_rng(5)
        graph = connected_gnp(6, 0.5, rng)
        config = scheme.language.member_configuration(graph, rng=rng)
        verdict = scheme.run(config, certificates={v: "junk" for v in graph.nodes})
        assert not verdict.all_accept

    def test_visibility_and_radius_lift(self):
        class WideScheme(SpanningTreePointerScheme):
            visibility = Visibility.FULL
            radius = 2

        scheme = ConjunctionScheme([WideScheme(), AcyclicScheme()])
        assert scheme.visibility is Visibility.FULL
        assert scheme.radius == 2

    def test_empty_conjunction_rejected(self):
        with pytest.raises(SchemeError):
            ConjunctionScheme([])

    def test_spanning_tree_and_bfs(self):
        scheme = ConjunctionScheme([SpanningTreePointerScheme(), BfsTreeScheme()])
        rng = make_rng(6)
        graph = connected_gnp(9, 0.35, rng)
        config = scheme.language.member_configuration(graph, rng=rng)
        assert completeness_holds(scheme, config)
