"""The unified scheme catalog: registry-wide properties and the API.

Every registered spec must build a working scheme on its own
``sample_graph`` (completeness: honest certificates convince every
node), and the metadata a spec declares — kind, visibility, radius,
size bound, α, weighted — must match the scheme it builds.  The second
half pins the parameter machinery: declared defaults, validation, CLI
string coercion, and the registration error paths.
"""

from __future__ import annotations

import pytest

from repro.approx.scheme import ApproxScheme
from repro.core import catalog
from repro.core.catalog import KINDS, ParamSpec, SchemeSpec, register_scheme
from repro.core.scheme import ProofLabelingScheme
from repro.errors import CatalogError
from repro.util.rng import make_rng, spawn

ALL_NAMES = catalog.names()


class TestRegistryWideProperties:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_builds_and_completes_on_own_sample_graph(self, name):
        rng = make_rng(hash(name) & 0xFFFFFF)
        spec = catalog.get(name)
        graph = spec.sample_graph(14, spawn(rng, 1))
        scheme = catalog.build(name, graph=graph, rng=spawn(rng, 2))
        assert isinstance(scheme, ProofLabelingScheme)
        config = scheme.language.member_configuration(graph, rng=spawn(rng, 3))
        verdict = scheme.run(config)
        assert verdict.all_accept, f"{name}: rejects {sorted(verdict.rejects)}"

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_declared_metadata_matches_built_scheme(self, name):
        spec = catalog.get(name)
        graph = spec.sample_graph(12, make_rng(7))
        scheme = catalog.build(name, graph=graph, rng=make_rng(8))
        assert scheme.visibility is spec.visibility
        assert scheme.radius == spec.radius
        assert scheme.size_bound == spec.size_bound
        assert scheme.language.weighted == spec.weighted
        if spec.kind == "approx":
            assert isinstance(scheme, ApproxScheme)
            assert scheme.alpha == spec.alpha > 1.0
        else:
            assert spec.alpha is None
            assert not isinstance(scheme, ApproxScheme)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_sample_graph_honours_weightedness(self, name):
        spec = catalog.get(name)
        graph = spec.sample_graph(10, make_rng(3))
        if spec.weighted:
            assert graph.is_weighted

    def test_kind_partition_covers_registry(self):
        by_kind = [name for kind in KINDS for name in catalog.names(kind)]
        assert sorted(by_kind) == sorted(ALL_NAMES)
        assert len(set(ALL_NAMES)) == len(ALL_NAMES)

    def test_expected_population(self):
        assert len(catalog.names(kind="exact")) >= 14
        assert len(catalog.names(kind="approx")) >= 5
        assert "universal-regular" in catalog.names(kind="universal")
        # The (1+eps)-parametrised counter families.
        eps_families = [
            s.name for s in catalog.specs(kind="approx") if s.has_param("eps")
        ]
        assert sorted(eps_families) == [
            "approx-dominating-set",
            "approx-tree-weight",
        ]


class TestBuildApi:
    def test_unknown_name_lists_known(self):
        with pytest.raises(CatalogError, match="unknown scheme"):
            catalog.build("no-such-scheme")

    def test_unknown_kind_rejected(self):
        with pytest.raises(CatalogError, match="unknown scheme kind"):
            catalog.specs(kind="bogus")

    def test_graph_fitted_specs_require_a_graph(self):
        with pytest.raises(CatalogError, match="graph-fitted"):
            catalog.build("approx-tree-weight")

    def test_graph_agnostic_specs_build_without_a_graph(self):
        scheme = catalog.build("spanning-tree-ptr")
        assert scheme.name == "spanning-tree-ptr"
        assert isinstance(catalog.build("approx-vertex-cover"), ApproxScheme)

    def test_weighted_spec_rejects_unweighted_graph(self):
        from repro.graphs.generators import path_graph

        with pytest.raises(CatalogError, match="weighted"):
            catalog.build("approx-tree-weight", graph=path_graph(6))

    def test_eps_override_changes_alpha(self):
        spec = catalog.get("approx-dominating-set")
        graph = spec.sample_graph(12, make_rng(1))
        assert catalog.build(
            "approx-dominating-set", graph=graph, eps=0.5
        ).alpha == 1.5
        # CLI-style string values coerce through the same path.
        assert catalog.build(
            "approx-dominating-set", graph=graph, eps="0.5"
        ).alpha == 1.5

    def test_undeclared_param_rejected(self):
        spec = catalog.get("approx-dominating-set")
        graph = spec.sample_graph(10, make_rng(2))
        with pytest.raises(CatalogError, match="no parameter"):
            catalog.build("approx-dominating-set", graph=graph, gamma=2)
        with pytest.raises(CatalogError, match="no parameter"):
            catalog.build("leader", eps=0.5)

    def test_param_bounds_enforced(self):
        spec = catalog.get("approx-tree-weight")
        graph = spec.sample_graph(10, make_rng(3))
        with pytest.raises(CatalogError, match="must exceed"):
            catalog.build("approx-tree-weight", graph=graph, eps=0.0)
        with pytest.raises(CatalogError, match="at least"):
            catalog.build("coarse-acyclic", t=0)

    def test_int_param_rejects_fractions(self):
        with pytest.raises(CatalogError, match="integer"):
            catalog.build("coarse-acyclic", t=2.5)
        # Integral floats and strings are accepted.
        assert catalog.build("coarse-acyclic", t="4").radius == 4

    def test_non_numeric_param_rejected(self):
        with pytest.raises(CatalogError, match="number"):
            catalog.build("coarse-acyclic", t="four")


class TestParamSpec:
    def test_defaults_fix_the_type(self):
        p = ParamSpec("t", 2)
        assert p.coerce("3") == 3 and isinstance(p.coerce("3"), int)
        q = ParamSpec("eps", 1.0)
        assert q.coerce(2) == 2.0 and isinstance(q.coerce(2), float)

    def test_bool_is_not_a_number(self):
        with pytest.raises(CatalogError):
            ParamSpec("t", 2).coerce(True)


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(CatalogError, match="already registered"):
            register_scheme("leader", kind="exact", summary="dup")

    def test_unknown_kind_rejected(self):
        with pytest.raises(CatalogError, match="kind"):
            register_scheme("x-new", kind="fuzzy", summary="?")

    def test_duplicate_param_rejected(self):
        with pytest.raises(CatalogError, match="duplicate parameter"):
            register_scheme(
                "x-new",
                kind="exact",
                summary="?",
                params=(ParamSpec("a", 1), ParamSpec("a", 2)),
            )

    def test_graph_fitted_specs_must_declare_metadata(self):
        with pytest.raises(CatalogError, match="declare"):
            register_scheme(
                "x-new", kind="approx", summary="?", graph_fitted=True
            )(lambda graph, rng: None)

    def test_spec_repr_is_informative(self):
        spec = catalog.get("mst")
        assert isinstance(spec, SchemeSpec)
        assert "mst" in repr(spec)
