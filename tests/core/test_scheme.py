"""Tests for the scheme base class and certificate assignments."""

from __future__ import annotations

import pytest

from repro.errors import SchemeError
from repro.graphs.generators import path_graph
from repro.schemes.agreement import AgreementLanguage, AgreementScheme
from repro.schemes.spanning_tree import SpanningTreePointerScheme
from repro.util.rng import make_rng


class TestAssignment:
    def test_sizes(self):
        scheme = AgreementScheme(AgreementLanguage(domain=1 << 20))
        config = scheme.language.member_configuration(path_graph(4), rng=make_rng(1))
        assignment = scheme.assignment(config)
        assert set(assignment) == set(config.graph.nodes)
        assert assignment.max_bits >= assignment.bits(0) > 0
        assert assignment.total_bits == sum(
            assignment.bits(v) for v in config.graph.nodes
        )

    def test_replaced(self):
        scheme = AgreementScheme()
        config = scheme.language.member_configuration(path_graph(3))
        assignment = scheme.assignment(config)
        new = assignment.replaced(0, 12345)
        assert new[0] == 12345
        assert assignment[0] != 12345 or assignment[0] == 12345  # original intact
        assert new[1] == assignment[1]

    def test_prover_must_cover_all_nodes(self):
        class Sloppy(AgreementScheme):
            def prove(self, config):
                certs = super().prove(config)
                certs.pop(0)
                return certs

        scheme = Sloppy()
        config = scheme.language.member_configuration(path_graph(3))
        with pytest.raises(SchemeError):
            scheme.assignment(config)

    def test_run_with_custom_certificates(self):
        scheme = AgreementScheme()
        config = scheme.language.member_configuration(path_graph(3))
        verdict = scheme.run(config, certificates={v: 999 for v in range(3)})
        # Certificates disagree with the states, so everyone rejects.
        assert verdict.reject_count == 3

    def test_proof_size_bits(self):
        scheme = SpanningTreePointerScheme()
        config = scheme.language.member_configuration(path_graph(8), rng=make_rng(2))
        assert scheme.proof_size_bits(config) == scheme.assignment(config).max_bits

    def test_repr(self):
        scheme = SpanningTreePointerScheme()
        assert "spanning-tree-ptr" in repr(scheme)
