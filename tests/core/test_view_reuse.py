"""The prebuilt-view fast path must be indistinguishable from rebuilds."""

from __future__ import annotations

import pytest

from repro.core.labeling import Configuration
from repro.core.verifier import (
    Visibility,
    affected_nodes,
    build_view,
    build_views,
    decide,
    refresh_views,
)
from repro.graphs.generators import connected_gnp, cycle_graph, grid_graph
from repro.schemes import SpanningTreePointerScheme
from repro.util.rng import make_rng


def _config(n=14, seed=5):
    rng = make_rng(seed)
    graph = connected_gnp(n, 0.3, rng)
    scheme = SpanningTreePointerScheme()
    config = scheme.language.member_configuration(graph, rng=rng)
    return scheme, config, rng


class TestRefreshViews:
    @pytest.mark.parametrize("radius", [1, 2, 3])
    @pytest.mark.parametrize("visibility", [Visibility.KKP, Visibility.FULL])
    def test_refresh_equals_full_rebuild(self, radius, visibility):
        scheme, config, rng = _config()
        certs = dict(scheme.prove(config))
        views = build_views(config, certs, visibility, radius)
        for trial in range(10):
            changed = rng.sample(list(config.graph.nodes), k=rng.randrange(1, 4))
            for node in changed:
                certs[node] = ("mutant", trial, node)
            views = refresh_views(config, certs, views, changed, visibility, radius)
            rebuilt = build_views(config, certs, visibility, radius)
            assert views == rebuilt

    def test_affected_nodes_is_the_ball(self):
        graph = grid_graph(4, 4)
        assert affected_nodes(graph, [5], radius=1) == {1, 4, 5, 6, 9}
        assert affected_nodes(graph, [0], radius=2) == {0, 1, 2, 4, 5, 8}

    def test_input_views_not_mutated(self):
        scheme, config, _ = _config()
        certs = dict(scheme.prove(config))
        views = build_views(config, certs)
        snapshot = dict(views)
        certs[0] = "changed"
        refresh_views(config, certs, views, [0])
        assert views == snapshot

    def test_decide_uses_prebuilt_views(self):
        scheme, config, _ = _config()
        certs = scheme.prove(config)
        views = build_views(config, certs)
        direct = decide(scheme.verify, config, certs)
        via_views = decide(scheme.verify, config, certs, views=views)
        assert direct == via_views

    def test_scheme_run_with_views_matches(self):
        scheme, config, _ = _config()
        certs = dict(scheme.prove(config))
        certs[3] = ("bogus",)
        views = scheme.build_views(config, certs)
        assert scheme.run(config, certs, views=views) == scheme.run(config, certs)


class TestBallScaffolding:
    def test_ball_edges_match_induced_subgraph(self):
        """Neighbor-based ball edges equal the old full-edge-scan set."""
        rng = make_rng(9)
        graph = connected_gnp(16, 0.3, rng)
        config = Configuration.build(graph)
        certs = {v: v for v in graph.nodes}
        for node in graph.nodes:
            view = build_view(config, certs, node, radius=3)
            ball_uids = set(view.ball.members)
            expected = {
                (config.uid(u), config.uid(v))
                for u, v in graph.edges()
                if config.uid(u) in ball_uids and config.uid(v) in ball_uids
            }
            assert {(u, v) for u, v, _ in view.ball.edges} == expected


class TestNeighborByUid:
    def test_finds_and_misses(self):
        graph = cycle_graph(6)
        config = Configuration.build(graph, ids={v: 100 + v for v in graph.nodes})
        view = build_view(config, {v: None for v in graph.nodes}, 0)
        assert view.neighbor_by_uid(101).uid == 101
        assert view.neighbor_by_uid(105).uid == 105
        assert view.neighbor_by_uid(999) is None

    def test_repeated_lookups_consistent(self):
        graph = grid_graph(3, 3)
        config = Configuration.build(graph)
        view = build_view(config, {v: None for v in graph.nodes}, 4)
        first = [view.neighbor_by_uid(config.uid(nb)) for nb in graph.neighbors(4)]
        second = [view.neighbor_by_uid(config.uid(nb)) for nb in graph.neighbors(4)]
        assert first == second
        assert all(g is not None for g in first)
