"""Tests for the adversarial soundness harness."""

from __future__ import annotations

import pytest

from repro.core.soundness import (
    attack,
    completeness_holds,
    exhaustive_attack,
    greedy_attack,
    harvest_pool,
    mutate_certificate,
    random_attack,
)
from repro.errors import SchemeError
from repro.graphs.generators import connected_gnp, cycle_graph, path_graph
from repro.schemes.agreement import AgreementScheme
from repro.schemes.leader import LeaderScheme
from repro.schemes.spanning_tree import SpanningTreePointerScheme
from repro.util.rng import make_rng


class TestCompleteness:
    def test_holds_on_member(self):
        scheme = LeaderScheme()
        config = scheme.language.member_configuration(cycle_graph(6), rng=make_rng(1))
        assert completeness_holds(scheme, config)

    def test_requires_member(self):
        scheme = LeaderScheme()
        bad = scheme.language.corrupted_configuration(
            cycle_graph(6), 1, rng=make_rng(2)
        )
        with pytest.raises(SchemeError):
            completeness_holds(scheme, bad)


class TestMutation:
    def test_int_changes(self):
        rng = make_rng(3)
        assert mutate_certificate(5, rng) != 5

    def test_bool_flips(self):
        assert mutate_certificate(True, make_rng(1)) is False

    def test_tuple_shape_preserved(self):
        rng = make_rng(4)
        cert = (1, "x", (2, 3))
        mutant = mutate_certificate(cert, rng)
        assert isinstance(mutant, tuple) and len(mutant) == 3

    def test_none_unchanged(self):
        assert mutate_certificate(None, make_rng(1)) is None

    def test_dict_values_mutated(self):
        rng = make_rng(5)
        mutant = mutate_certificate({"k": 1}, rng)
        assert set(mutant) == {"k"}


class TestPool:
    def test_harvest_dedupes(self):
        scheme = AgreementScheme()
        config = scheme.language.member_configuration(path_graph(5), rng=make_rng(0))
        pool = harvest_pool(
            scheme, [config, config], rng=make_rng(1), mutations_per_cert=0
        )
        # All nodes share the same agreement value: one unique certificate.
        assert len(pool) == 1

    def test_harvest_includes_mutants(self):
        scheme = AgreementScheme()
        config = scheme.language.member_configuration(path_graph(5), rng=make_rng(0))
        pool = harvest_pool(scheme, [config], rng=make_rng(1), mutations_per_cert=3)
        assert len(pool) > 1


class TestAttacks:
    def test_attacks_never_fool_sound_scheme(self):
        rng = make_rng(6)
        scheme = SpanningTreePointerScheme()
        graph = connected_gnp(9, 0.35, rng)
        member = scheme.language.member_configuration(graph, rng=rng)
        bad = scheme.language.corrupted_configuration(graph, 2, rng=rng)
        for attacker in (random_attack, greedy_attack):
            result = attacker(scheme, bad, rng=rng)
            assert not result.fooled
            assert result.min_rejects >= 1
        combined = attack(scheme, bad, rng=rng, trials=30, related=[member])
        assert not combined.fooled

    def test_attack_fools_broken_scheme(self):
        class Gullible(SpanningTreePointerScheme):
            """Accepts anything — soundness is trivially violated."""

            def verify(self, view):
                return True

        rng = make_rng(7)
        scheme = Gullible()
        bad = scheme.language.corrupted_configuration(cycle_graph(6), 2, rng=rng)
        result = random_attack(scheme, bad, rng=rng, trials=5)
        assert result.fooled
        assert result.min_rejects == 0

    def test_exhaustive_attack_small_space(self):
        rng = make_rng(8)
        scheme = AgreementScheme()
        graph = path_graph(3)
        bad = scheme.language.corrupted_configuration(graph, 1, rng=rng)
        candidates = {v: [0, 1, 2] for v in graph.nodes}
        result = exhaustive_attack(scheme, bad, candidates)
        assert not result.fooled
        assert result.evaluations == 27

    def test_exhaustive_attack_space_guard(self):
        rng = make_rng(9)
        scheme = AgreementScheme()
        bad = scheme.language.corrupted_configuration(path_graph(8), 1, rng=rng)
        candidates = {v: list(range(10)) for v in range(8)}
        with pytest.raises(SchemeError):
            exhaustive_attack(scheme, bad, candidates, limit=1000)

    def test_attack_reports_evaluations(self):
        rng = make_rng(10)
        scheme = AgreementScheme()
        bad = scheme.language.corrupted_configuration(path_graph(5), 1, rng=rng)
        result = attack(scheme, bad, rng=rng, trials=10)
        assert result.evaluations > 0
