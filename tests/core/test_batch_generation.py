"""The vectorized generation path must agree with the dict oracle — always.

The contract (see :mod:`repro.core.batch_markers`): a marker kernel
consumes the rng stream exactly as the dict ``canonical_labeling`` does
and returns a bit-identical labeling — or raises the very same
exception; a prover kernel returns exactly ``scheme.prove``'s
certificate dict, junk states included.  These tests pin that contract
registry-wide, the same way ``test_batch_equivalence.py`` pins the
decider side.
"""

from __future__ import annotations

import copy

import pytest

np = pytest.importorskip("numpy")

from repro.core import catalog  # noqa: E402
from repro.core.arrays import ArrayLabeling  # noqa: E402
from repro.core.batch import (  # noqa: E402
    supports_batch_marker,
    supports_batch_prove,
    try_batch_member_configuration,
    try_batch_prove,
)
from repro.errors import LanguageError  # noqa: E402
from repro.graphs import Graph  # noqa: E402
from repro.graphs.generators import random_tree  # noqa: E402
from repro.graphs.weighted import weighted_copy  # noqa: E402
from repro.util.rng import make_rng, spawn  # noqa: E402

JUNK = (
    None,
    True,
    False,
    0,
    1,
    -1,
    1.0,
    2**70,
    "x",
    (0, None, 0),
    (1, 2),
    frozenset(),
    frozenset({0, 1}),
    [0, 1],
)


def _generate_both(language, graph, rng):
    """(dict outcome, batched outcome): each a config or a raised error.

    Both paths start from identical rng clones; afterwards the clones
    must sit at the same stream position (checked by the caller drawing
    one float from each).
    """
    r_dict, r_batch = rng, copy.deepcopy(rng)
    try:
        dict_config = language.member_configuration(
            graph, rng=r_dict, backend="views"
        )
        dict_outcome = ("ok", dict_config)
    except Exception as error:  # noqa: BLE001 — the exception IS the outcome
        dict_outcome = ("err", error)
    try:
        config = try_batch_member_configuration(language, graph, rng=r_batch)
        if config is None:
            config = language.member_configuration(
                graph, rng=r_batch, backend="views"
            )
        batch_outcome = ("ok", config)
    except Exception as error:  # noqa: BLE001
        batch_outcome = ("err", error)
    return dict_outcome, batch_outcome, r_dict, r_batch


def _assert_same_outcome(dict_outcome, batch_outcome, r_dict, r_batch):
    assert dict_outcome[0] == batch_outcome[0], (dict_outcome, batch_outcome)
    if dict_outcome[0] == "err":
        assert type(dict_outcome[1]) is type(batch_outcome[1])
        assert str(dict_outcome[1]) == str(batch_outcome[1])
        return None
    dict_config, config = dict_outcome[1], batch_outcome[1]
    n = dict_config.graph.n
    # Bit-identical columns, not just equal dicts: same dtype choices.
    reference = ArrayLabeling.from_labeling(dict_config.labeling, n)
    batched = ArrayLabeling.from_labeling(config.labeling, n)
    assert reference == batched
    assert reference.column("state").dtype == batched.column("state").dtype
    assert dict_config.ids == config.ids
    # Same rng stream position afterwards.
    assert r_dict.random() == r_batch.random()
    return dict_config


def _fitted(spec, rng, n):
    graph = spec.sample_graph(n, spawn(rng, 1))
    scheme = spec.build(graph=graph, rng=spawn(rng, 2))
    return scheme, graph


@pytest.mark.parametrize("name", catalog.names())
class TestRegistryWideGeneration:
    def test_same_seed_same_labeling(self, name):
        spec = catalog.get(name)
        n = 8 if spec.kind == "universal" else 16
        for salt in range(3):
            rng = make_rng(hash((name, "gen", salt)) & 0xFFFFFF)
            scheme, graph = _fitted(spec, rng, n)
            outcome = _generate_both(scheme.language, graph, spawn(rng, 3))
            _assert_same_outcome(*outcome)

    def test_tiny_instances(self, name):
        """n ∈ {0, 1}: the degenerate sizes where dict-path exceptions
        (empty randrange, missing uid) must replicate exactly."""
        spec = catalog.get(name)
        for n in (0, 1):
            rng = make_rng(hash((name, "tiny", n)) & 0xFFFFFF)
            try:
                graph = spec.sample_graph(n, spawn(rng, 1))
                scheme = spec.build(graph=graph, rng=spawn(rng, 2))
            except Exception:
                continue  # the spec itself rejects the size — not ours
            outcome = _generate_both(scheme.language, graph, spawn(rng, 3))
            _assert_same_outcome(*outcome)

    def test_prover_kernel_matches_dict_prover(self, name):
        spec = catalog.get(name)
        n = 8 if spec.kind == "universal" else 16
        rng = make_rng(hash((name, "prove")) & 0xFFFFFF)
        scheme, graph = _fitted(spec, rng, n)
        if not supports_batch_prove(scheme):
            pytest.skip("no vectorized prover registered")
        config = scheme.language.member_configuration(graph, rng=spawn(rng, 3))
        batched = try_batch_prove(scheme, config)
        assert batched is not None, "honest config must take the array path"
        assert dict(batched) == dict(scheme.prove(config))

    def test_prover_kernel_on_junk_states(self, name):
        """Certificates for vandalized configurations — the stale-prover
        inputs detection sessions feed — must match value-for-value, or
        the kernel must decline (never diverge, never crash)."""
        spec = catalog.get(name)
        n = 8 if spec.kind == "universal" else 16
        rng = make_rng(hash((name, "junk")) & 0xFFFFFF)
        scheme, graph = _fitted(spec, rng, n)
        if not supports_batch_prove(scheme):
            pytest.skip("no vectorized prover registered")
        config = scheme.language.member_configuration(graph, rng=spawn(rng, 3))
        fuzz = spawn(rng, 4)
        for _trial in range(8):
            states = {v: config.state(v) for v in range(graph.n)}
            for _ in range(fuzz.randrange(1, 4)):
                states[fuzz.randrange(graph.n)] = fuzz.choice(JUNK)
            bad = config.with_labeling(states)
            try:
                reference = ("ok", scheme.prove(bad))
            except Exception as error:  # noqa: BLE001
                reference = ("err", error)
            batched = try_batch_prove(scheme, bad)
            if batched is None:
                continue
            assert reference[0] == "ok", (
                f"dict prover raised {reference[1]!r} but kernel returned"
            )
            assert dict(batched) == dict(reference[1])

    def test_spec_generate_flag_matches_registry(self, name):
        """``list-schemes``' gen column reports exactly the languages
        with a registered marker kernel."""
        spec = catalog.get(name)
        rng = make_rng(hash((name, "flag")) & 0xFFFFFF)
        scheme, _graph = _fitted(spec, rng, 8)
        assert spec.generate == supports_batch_marker(scheme.language)


class TestAwkwardGraphs:
    """Shapes the samplers rarely produce: isolated nodes, disconnection,
    weights — where dict-path error behavior must replicate exactly."""

    DISCONNECTED = Graph(6, [(0, 1), (1, 2), (3, 4)])  # node 5 isolated

    def _check(self, name, graph, seed):
        spec = catalog.get(name)
        try:
            scheme = spec.build(graph=graph, rng=make_rng(seed))
        except Exception:
            pytest.skip("spec cannot be fitted to this graph")
        outcome = _generate_both(scheme.language, graph, make_rng(seed + 1))
        config = _assert_same_outcome(*outcome)
        if config is not None and supports_batch_prove(scheme):
            batched = try_batch_prove(scheme, config)
            if batched is not None:
                assert dict(batched) == dict(scheme.prove(config))

    @pytest.mark.parametrize("name", catalog.names())
    def test_isolated_node_graph(self, name):
        self._check(name, self.DISCONNECTED, seed=101)

    @pytest.mark.parametrize("name", catalog.names())
    def test_weighted_graph(self, name):
        graph = weighted_copy(random_tree(12, make_rng(7)), make_rng(8))
        self._check(name, graph, seed=202)

    def test_isolated_everything(self):
        graph = Graph(4, [])
        for name in ("leader", "independent-set", "dominating-set", "acyclic"):
            self._check(name, graph, seed=303)


class TestLargeInstanceDeterminism:
    """n = 10⁴ on the fast-path schemes: the sizes where a subtly wrong
    frontier order would first show up."""

    @pytest.mark.parametrize(
        "name", ["spanning-tree-ptr", "bfs-tree", "leader", "spanning-tree-list"]
    )
    def test_tree_10k(self, name):
        spec = catalog.get(name)
        rng = make_rng(hash((name, "10k")) & 0xFFFFFF)
        graph = random_tree(10_000, spawn(rng, 1))
        scheme = spec.build(graph=graph, rng=spawn(rng, 2))
        outcome = _generate_both(scheme.language, graph, spawn(rng, 3))
        config = _assert_same_outcome(*outcome)
        certs = try_batch_prove(scheme, config)
        assert certs is not None
        assert dict(certs) == dict(scheme.prove(config))


class TestBackendSelection:
    def test_views_backend_forces_dict_path(self):
        from repro.obs import metrics

        spec = catalog.get("leader")
        rng = make_rng(5)
        graph = spec.sample_graph(12, spawn(rng, 1))
        language = spec.build(graph=graph, rng=spawn(rng, 2)).language
        with metrics.collect("t") as collected:
            language.member_configuration(
                graph, rng=spawn(rng, 3), backend="views"
            )
        assert collected.counter("generate.batch") == 0

    def test_array_backend_requires_a_kernel(self):
        spec = catalog.get("mst")  # no marker kernel registered
        rng = make_rng(6)
        graph = spec.sample_graph(10, spawn(rng, 1))
        scheme = spec.build(graph=graph, rng=spawn(rng, 2))
        with pytest.raises(LanguageError, match="no vectorized marker"):
            scheme.language.member_configuration(
                graph, rng=spawn(rng, 3), backend="array"
            )

    def test_unknown_backend_rejected(self):
        spec = catalog.get("leader")
        rng = make_rng(7)
        graph = spec.sample_graph(10, spawn(rng, 1))
        scheme = spec.build(graph=graph, rng=spawn(rng, 2))
        with pytest.raises(LanguageError, match="unknown marker backend"):
            scheme.language.member_configuration(graph, backend="bogus")

    def test_auto_backend_takes_the_array_path(self):
        from repro.obs import metrics

        spec = catalog.get("spanning-tree-ptr")
        rng = make_rng(8)
        graph = spec.sample_graph(16, spawn(rng, 1))
        language = spec.build(graph=graph, rng=spawn(rng, 2)).language
        with metrics.collect("t") as collected:
            language.member_configuration(graph, rng=spawn(rng, 3))
        assert collected.counter("generate.batch") == 1
