"""ArrayLabeling must be an exact columnar mirror of Labeling."""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

# The gate above must run before repro.core.arrays (which imports numpy
# unconditionally), hence the post-gate imports.
from repro.core.arrays import ArrayLabeling, column_from_values  # noqa: E402
from repro.core.labeling import Labeling  # noqa: E402
from repro.errors import SchemeError  # noqa: E402


class TestColumnFromValues:
    def test_bools_get_bool_dtype(self):
        col = column_from_values([True, False, True], 3)
        assert col.dtype == bool

    def test_ints_get_int64_dtype(self):
        col = column_from_values([0, -7, 2**40], 3)
        assert col.dtype == np.int64

    def test_bool_int_mix_stays_object(self):
        # bool is a subclass of int; a faithful column must not coerce.
        col = column_from_values([True, 1, 0], 3)
        assert col.dtype == object
        assert col[0] is True and col[1] == 1

    def test_huge_ints_stay_object(self):
        col = column_from_values([2**80, 1], 2)
        assert col.dtype == object
        assert col[0] == 2**80

    def test_none_and_tuples_stay_object(self):
        values = [None, (1, 2), frozenset({3})]
        col = column_from_values(values, 3)
        assert col.dtype == object
        assert list(col) == values

    def test_length_mismatch_rejected(self):
        with pytest.raises(SchemeError):
            column_from_values([1, 2], 3)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "values",
        [
            [True, False, False, True],
            [0, 5, -3, 2**60],
            [None, 1, "x", (2, None)],
            [frozenset(), frozenset({0, 2}), None, 7],
        ],
        ids=["bools", "ints", "mixed", "sets"],
    )
    def test_labeling_invariance(self, values):
        n = len(values)
        labeling = Labeling(dict(enumerate(values)))
        arrays = ArrayLabeling.from_labeling(labeling, n)
        back = arrays.to_labeling()
        assert back == labeling
        for v in range(n):
            got = arrays.value("state", v)
            assert got == values[v] and type(got) is type(values[v])

    def test_missing_node_rejected(self):
        with pytest.raises(SchemeError):
            ArrayLabeling.from_labeling({0: 1, 2: 3}, 3)

    def test_from_fields_round_trip(self):
        outputs = {0: True, 1: False}
        certs = {0: (0, None, 0), 1: (0, 0, 1)}
        arrays = ArrayLabeling.from_fields(2, {"output": outputs, "certificate": certs})
        assert set(arrays.fields) == {"output", "certificate"}
        assert arrays.to_dict("output") == outputs
        assert arrays.to_dict("certificate") == certs
        assert arrays.row(1) == {"output": False, "certificate": (0, 0, 1)}


class TestMutation:
    def test_set_same_dtype_stays_packed(self):
        arrays = ArrayLabeling.from_labeling({0: 1, 1: 2, 2: 3}, 3)
        arrays.set("state", 1, 99)
        assert arrays.column("state").dtype == np.int64
        assert arrays.value("state", 1) == 99

    def test_set_widens_to_object_on_mismatch(self):
        arrays = ArrayLabeling.from_labeling({0: 1, 1: 2, 2: 3}, 3)
        arrays.set("state", 2, None)
        assert arrays.column("state").dtype == object
        assert arrays.to_dict("state") == {0: 1, 1: 2, 2: None}
        # The untouched cells kept their exact Python types.
        assert type(arrays.value("state", 0)) is int

    def test_bool_column_widens_for_int(self):
        arrays = ArrayLabeling.from_labeling({0: True, 1: False}, 2)
        arrays.set("state", 0, 1)
        assert arrays.column("state").dtype == object
        assert arrays.value("state", 0) == 1
        assert arrays.value("state", 1) is False

    def test_update_writes_many(self):
        arrays = ArrayLabeling.from_labeling({0: 1, 1: 2, 2: 3}, 3)
        arrays.update("state", {0: 10, 2: 30})
        assert arrays.to_dict("state") == {0: 10, 1: 2, 2: 30}

    def test_equality_ignores_dtype(self):
        packed = ArrayLabeling.from_labeling({0: 1, 1: 2}, 2)
        loose = ArrayLabeling(2, {"state": column_from_values([1, "x"], 2)})
        loose.set("state", 1, 2)
        assert packed == loose
