"""Tests for the universal proof-labeling scheme."""

from __future__ import annotations

import pytest

from repro.core.soundness import attack, completeness_holds
from repro.core.universal import UniversalScheme
from repro.graphs.generators import connected_gnp, cycle_graph, path_graph
from repro.graphs.weighted import weighted_copy
from repro.schemes.agreement import AgreementLanguage
from repro.schemes.leader import LeaderLanguage
from repro.schemes.mst import MstLanguage
from repro.schemes.regular import RegularSubgraphLanguage
from repro.util.rng import make_rng

LANGUAGES = {
    "agreement": AgreementLanguage(domain=16),
    "leader": LeaderLanguage(),
    "regular": RegularSubgraphLanguage(),
}


@pytest.mark.parametrize("name", sorted(LANGUAGES))
class TestUniversalOnUnweighted:
    def test_completeness(self, name):
        rng = make_rng(11)
        language = LANGUAGES[name]
        scheme = UniversalScheme(language)
        config = language.member_configuration(connected_gnp(9, 0.35, rng), rng=rng)
        assert completeness_holds(scheme, config)

    def test_detects_corruption(self, name):
        rng = make_rng(12)
        language = LANGUAGES[name]
        scheme = UniversalScheme(language)
        graph = connected_gnp(9, 0.35, rng)
        bad = language.corrupted_configuration(graph, corruptions=1, rng=rng)
        assert not scheme.run(bad).all_accept

    def test_attack_resistant(self, name):
        rng = make_rng(13)
        language = LANGUAGES[name]
        scheme = UniversalScheme(language)
        graph = connected_gnp(8, 0.4, rng)
        bad = language.corrupted_configuration(graph, corruptions=1, rng=rng)
        result = attack(scheme, bad, rng=rng, trials=25)
        assert not result.fooled


class TestUniversalWeighted:
    def test_mst_language_through_universal(self):
        rng = make_rng(21)
        language = MstLanguage()
        scheme = UniversalScheme(language)
        graph = weighted_copy(connected_gnp(7, 0.5, rng), rng)
        config = language.member_configuration(graph, rng=rng)
        assert completeness_holds(scheme, config)
        bad = language.corrupted_configuration(graph, corruptions=1, rng=rng)
        assert not scheme.run(bad).all_accept

    def test_lying_about_weights_detected(self):
        rng = make_rng(22)
        language = MstLanguage()
        scheme = UniversalScheme(language)
        graph = weighted_copy(cycle_graph(5), rng)
        config = language.member_configuration(graph, rng=rng)
        certs = scheme.prove(config)
        # Forge the weight table inside every certificate.
        tag, uids, rows, states, weights = certs[0]
        forged_weights = tuple((i, j, w + 1) for i, j, w in weights)
        forged = {v: (tag, uids, rows, states, forged_weights) for v in certs}
        assert not scheme.run(config, certificates=forged).all_accept


class TestUniversalAdversarialStructure:
    def test_disagreeing_maps_rejected(self):
        rng = make_rng(31)
        language = LeaderLanguage()
        scheme = UniversalScheme(language)
        config = language.member_configuration(path_graph(4), rng=rng)
        certs = dict(scheme.prove(config))
        other = language.member_configuration(path_graph(4), rng=make_rng(99))
        certs[2] = scheme.prove(other)[2]
        verdict = scheme.run(config, certificates=certs)
        # Either the splice is identical (same map) or someone rejects.
        if certs[2] != scheme.prove(config)[2]:
            assert not verdict.all_accept

    def test_wrong_row_rejected(self):
        language = LeaderLanguage()
        scheme = UniversalScheme(language)
        config = language.member_configuration(cycle_graph(5), rng=make_rng(1))
        tag, uids, rows, states, weights = scheme.prove(config)[0]
        # Claim node 0 has no edges at all.
        forged_rows = (0,) + rows[1:]
        forged = {
            v: (tag, uids, forged_rows, states, weights)
            for v in config.graph.nodes
        }
        assert not scheme.run(config, certificates=forged).all_accept

    def test_asymmetric_matrix_rejected(self):
        language = LeaderLanguage()
        scheme = UniversalScheme(language)
        config = language.member_configuration(path_graph(3), rng=make_rng(1))
        tag, uids, rows, states, weights = scheme.prove(config)[0]
        rows = list(rows)
        rows[0] |= 1 << 2  # 0 claims edge to 2; 2 does not reciprocate
        forged = {
            v: (tag, uids, tuple(rows), states, weights)
            for v in config.graph.nodes
        }
        assert not scheme.run(config, certificates=forged).all_accept

    def test_malformed_certificates_rejected(self):
        language = LeaderLanguage()
        scheme = UniversalScheme(language)
        config = language.member_configuration(path_graph(3), rng=make_rng(1))
        for junk in (None, 42, ("x",), ("universal-map", (), (), (), None)):
            verdict = scheme.run(config, certificates={v: junk for v in range(3)})
            assert not verdict.all_accept

    def test_proof_size_quadratic_shape(self):
        language = RegularSubgraphLanguage()
        scheme = UniversalScheme(language)
        sizes = []
        for n in (6, 12, 24):
            config = language.member_configuration(
                connected_gnp(n, 0.3, make_rng(n)), rng=make_rng(n)
            )
            sizes.append(scheme.proof_size_bits(config))
        # Doubling n should much-more-than-double the certificate.
        assert sizes[1] > 2 * sizes[0]
        assert sizes[2] > 2 * sizes[1]
