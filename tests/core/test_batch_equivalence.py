"""The batched array path must agree with the per-node oracle — always.

The contract (see :mod:`repro.core.batch`): whenever the batched decider
produces a verdict at all, it is node-for-node identical to the per-node
verifier's, for *every* certificate assignment however malformed; inputs
the array encoding cannot represent faithfully fall back (return
``None``) rather than risk a divergent answer.  These tests pin that
contract registry-wide: every catalog scheme, honest and corrupted and
adversarially junk-filled registers alike.
"""

from __future__ import annotations

import math

import pytest

np = pytest.importorskip("numpy")

# Gate first: without numpy the batch path cannot run at all, so every
# equivalence property below is vacuous.
from repro.core import catalog  # noqa: E402
from repro.core.batch import (  # noqa: E402
    batch_decide,
    batch_verdict,
    supports_batch,
    try_batch_verdict,
)
from repro.core.verifier import decide  # noqa: E402
from repro.util.rng import make_rng, spawn  # noqa: E402

#: Values an adversary might write into a register: type confusions the
#: int-code interning must keep faithful (1 == True == 1.0), huge ints
#: beyond the int64 columns, and values the encoding must refuse
#: (NaN, unhashables) — those must fall back, never misdecide.
JUNK = (
    None,
    True,
    False,
    0,
    1,
    -1,
    1.0,
    2**70,
    "x",
    (0, None, 0),
    (1, 2),
    frozenset(),
    frozenset({0, 1}),
    float("nan"),
    [0, 1],
)


def _fitted(spec, rng, n=10):
    if spec.kind == "universal":
        n = 8
    graph = spec.sample_graph(n, spawn(rng, 1))
    scheme = spec.build(graph=graph, rng=spawn(rng, 2))
    config = scheme.language.member_configuration(graph, rng=spawn(rng, 3))
    return scheme, config


def _oracle(scheme, config, certs):
    """The per-node dict-path verdict (no batch dispatch)."""
    return decide(scheme.verify, config, certs, scheme.visibility, scheme.radius)


def _assert_same(scheme, config, certs, *, require_batch=False):
    batched = try_batch_verdict(scheme, config, certs)
    if batched is None:
        assert not require_batch, f"{type(scheme).__name__} fell back"
        return
    oracle = _oracle(scheme, config, certs)
    assert batched.accepts == oracle.accepts
    assert batched.rejects == oracle.rejects


@pytest.mark.parametrize("name", catalog.names())
class TestRegistryWideEquivalence:
    def test_honest_certificates(self, name):
        spec = catalog.get(name)
        rng = make_rng(hash((name, "honest")) & 0xFFFFFF)
        scheme, config = _fitted(spec, rng)
        certs = scheme.prove(config)
        # Honest registers never trip the encoding: a batch-capable
        # scheme must actually take the array path here.
        _assert_same(scheme, config, certs, require_batch=supports_batch(scheme))

    def test_corrupted_and_junk_registers(self, name):
        """Property: under random register vandalism, batch verdicts —
        when produced at all — are identical to the oracle's."""
        spec = catalog.get(name)
        rng = make_rng(hash((name, "fuzz")) & 0xFFFFFF)
        scheme, config = _fitted(spec, rng)
        if not supports_batch(scheme):
            pytest.skip("no vectorized decider registered")
        honest = dict(scheme.prove(config))
        n = config.graph.n
        for trial in range(8):
            certs = dict(honest)
            for _ in range(rng.randrange(1, 4)):
                victim = rng.randrange(n)
                if rng.random() < 0.3 and victim in certs:
                    del certs[victim]
                elif rng.random() < 0.5:
                    certs[victim] = rng.choice(JUNK)
                else:
                    # Structure-preserving vandalism: swap two nodes'
                    # certificates (stays well-formed, lands off-tree).
                    other = rng.randrange(n)
                    certs[victim], certs[other] = (
                        certs.get(other),
                        certs.get(victim),
                    )
            _assert_same(scheme, config, certs)

    def test_corrupted_states(self, name):
        spec = catalog.get(name)
        rng = make_rng(hash((name, "states")) & 0xFFFFFF)
        scheme, config = _fitted(spec, rng)
        if not supports_batch(scheme):
            pytest.skip("no vectorized decider registered")
        certs = scheme.prove(config)
        n = config.graph.n
        for trial in range(4):
            states = {v: config.state(v) for v in range(n)}
            for _ in range(rng.randrange(1, 3)):
                states[rng.randrange(n)] = rng.choice(JUNK)
            bad = config.with_labeling(states)
            _assert_same(scheme, bad, certs)

    def test_spec_batch_flag_matches_registry(self, name):
        """``list-schemes``' batch column reports exactly the schemes
        with a registered decider."""
        spec = catalog.get(name)
        rng = make_rng(hash((name, "flag")) & 0xFFFFFF)
        scheme, _config = _fitted(spec, rng)
        assert spec.batch == supports_batch(scheme)


class TestFallbackInputs:
    """Values the encoding must refuse — and refuse loudly, not wrongly."""

    def test_nan_certificate_falls_back_with_identical_verdict(self):
        rng = make_rng(3)
        scheme, config = _fitted(catalog.get("leader"), rng)
        certs = dict(scheme.prove(config))
        certs[0] = (float("nan"), None, 0)
        assert try_batch_verdict(scheme, config, certs) is None
        # batch_verdict still answers, via the oracle.
        verdict = batch_verdict(scheme, config, certs)
        oracle = _oracle(scheme, config, certs)
        assert verdict.rejects == oracle.rejects

    def test_huge_int_falls_back(self):
        rng = make_rng(4)
        scheme, config = _fitted(catalog.get("acyclic"), rng)
        certs = dict(scheme.prove(config))
        certs[1] = 2**70
        batched = try_batch_verdict(scheme, config, certs)
        if batched is not None:  # an encoding may legitimately handle it
            oracle = _oracle(scheme, config, certs)
            assert batched.rejects == oracle.rejects

    def test_batch_decide_mask_matches_run(self):
        rng = make_rng(5)
        scheme, config = _fitted(catalog.get("spanning-tree-ptr"), rng)
        certs = scheme.prove(config)
        mask = batch_decide(scheme, config, certs)
        verdict = scheme.run(config, certs)
        assert mask.dtype == bool and mask.shape == (config.graph.n,)
        assert set(np.flatnonzero(mask)) == set(verdict.accepts)

    def test_batch_decide_proves_when_unsupplied(self):
        rng = make_rng(6)
        scheme, config = _fitted(catalog.get("bfs-tree"), rng)
        assert bool(batch_decide(scheme, config).all())


class TestBackendEquivalence:
    """views / array / auto detector backends must agree verdict-for-verdict."""

    def _session(self, backend, seed=11):
        from repro.graphs.generators import random_tree
        from repro.local.network import Network
        from repro.selfstab.campaign import FrozenCertifiedProtocol
        from repro.selfstab.detector import PlsDetector
        from repro.selfstab.model import run_until_silent

        rng = make_rng(seed)
        spec = catalog.get("spanning-tree-ptr")
        graph = random_tree(12, rng)
        scheme = spec.build(graph=graph, rng=rng)
        member = scheme.language.member_configuration(graph, rng=rng)
        certs = scheme.prove(member)
        network = Network(graph)
        protocol = FrozenCertifiedProtocol(scheme, member, certs)
        silent = run_until_silent(network, protocol).states
        detector = PlsDetector(scheme, protocol, backend=backend)
        return detector.session(network, silent), silent

    @pytest.mark.parametrize("backend", ["array", "auto"])
    def test_detection_session_matches_views_backend(self, backend):
        reference, silent = self._session("views")
        candidate, _ = self._session(backend)
        baseline = reference.verify()
        assert candidate.verify().rejects == baseline.rejects
        # Corrupt one register and resweep incrementally on both.
        bad = dict(silent)
        victim = next(iter(bad))
        state, _cert = bad[victim]
        bad[victim] = (state, ("corrupt", 7))
        ref_report = reference.sweep(bad, changed=[victim], check_membership=False)
        cand_report = candidate.sweep(bad, changed=[victim], check_membership=False)
        assert cand_report.verdict.rejects == ref_report.verdict.rejects

    def test_unknown_backend_rejected(self):
        from repro.errors import SimulationError
        from repro.selfstab.campaign import FrozenCertifiedProtocol
        from repro.selfstab.detector import PlsDetector

        rng = make_rng(2)
        scheme, config = _fitted(catalog.get("leader"), rng)
        protocol = FrozenCertifiedProtocol(scheme, config, scheme.prove(config))
        with pytest.raises(SimulationError):
            PlsDetector(scheme, protocol, backend="bogus")

    @pytest.mark.parametrize("backend", ["views", "array", "auto"])
    def test_rejection_counter_backends_agree(self, backend):
        from repro.errorsensitive.decider import RejectionCounter

        rng = make_rng(21)
        scheme, config = _fitted(catalog.get("spanning-tree-list"), rng)
        certs = scheme.prove(config)
        counter = RejectionCounter(scheme, config, certs, backend=backend)
        assert counter.verdict(config.labeling).all_accept

    def test_isolated_equals_infinity_guard(self):
        """β̂ of math.inf is never produced: min over empty sample sets
        is 0.0 (regression guard for the report's default)."""
        from repro.errorsensitive.report import SchemeSensitivity

        empty = SchemeSensitivity(
            scheme="x", declared=None, samples=(), skipped=0
        )
        assert empty.beta == 0.0 and not math.isinf(empty.beta)


class TestColoringFullEquivalence:
    """The FULL-visibility coloring scheme has no catalog entry, so the
    registry sweep above misses its kernel; pin the same properties
    directly against the class."""

    def _instance(self, seed):
        from repro.graphs.generators import connected_gnp
        from repro.schemes.coloring import ColoringFullScheme

        rng = make_rng(seed)
        scheme = ColoringFullScheme()
        graph = connected_gnp(12, 0.3, rng)
        config = scheme.language.member_configuration(graph, rng=rng)
        return rng, scheme, config

    def test_honest_takes_array_path(self):
        _rng, scheme, config = self._instance(21)
        certs = scheme.prove(config)
        assert supports_batch(scheme)
        _assert_same(scheme, config, certs, require_batch=True)

    def test_corrupted_states_match_oracle(self):
        rng, scheme, config = self._instance(22)
        certs = scheme.prove(config)
        n = config.graph.n
        for _trial in range(8):
            states = {v: config.state(v) for v in range(n)}
            for _ in range(rng.randrange(1, 4)):
                states[rng.randrange(n)] = rng.choice(JUNK)
            _assert_same(scheme, config.with_labeling(states), certs)

    def test_float_state_clashes_like_the_oracle(self):
        # 2.0 == 2: a float neighbor state must collide with an int
        # color, exactly as per-node `!=` sees it.
        _rng, scheme, config = self._instance(23)
        v = next(iter(config.graph.neighbors(0)), None)
        if v is None:
            pytest.skip("node 0 isolated")
        states = {u: config.state(u) for u in config.graph.nodes}
        states[v] = float(states[0])
        _assert_same(scheme, config.with_labeling(states), scheme.prove(config))
