"""Tests for the DistributedLanguage base-class machinery."""

from __future__ import annotations

import pytest

from repro.core.labeling import Configuration, Labeling
from repro.core.language import DistributedLanguage
from repro.errors import LanguageError
from repro.graphs.generators import cycle_graph, path_graph
from repro.graphs.graph import Graph
from repro.schemes.bipartite import BipartiteLanguage
from repro.schemes.leader import LeaderLanguage
from repro.util.rng import make_rng


class _AlwaysLanguage(DistributedLanguage):
    """Every configuration with all-None states is a member."""

    name = "always"

    def is_member(self, config):
        return all(config.state(v) is None for v in config.graph.nodes)

    def canonical_labeling(self, graph, ids=None, rng=None):
        return Labeling.uniform(graph.nodes, None)


class _BrokenLanguage(DistributedLanguage):
    """Canonical labeling that is not actually a member (a bug)."""

    name = "broken"

    def is_member(self, config):
        return False

    def canonical_labeling(self, graph, ids=None, rng=None):
        return Labeling.uniform(graph.nodes, None)


class TestMemberConfiguration:
    def test_builds_member(self):
        config = _AlwaysLanguage().member_configuration(path_graph(4))
        assert config.n == 4

    def test_detects_canonical_bug(self):
        with pytest.raises(LanguageError):
            _BrokenLanguage().member_configuration(path_graph(3))

    def test_respects_ids(self):
        ids = {0: 7, 1: 9, 2: 11}
        config = LeaderLanguage().member_configuration(path_graph(3), ids=ids)
        assert config.ids == ids


class TestSupportsGraph:
    def test_true_when_constructible(self):
        assert BipartiteLanguage().supports_graph(cycle_graph(6))

    def test_false_when_not(self):
        assert not BipartiteLanguage().supports_graph(cycle_graph(5))


class TestCorruptedConfiguration:
    def test_produces_illegal(self):
        lang = LeaderLanguage()
        bad = lang.corrupted_configuration(cycle_graph(6), 1, rng=make_rng(1))
        assert not lang.is_member(bad)

    def test_respects_corruption_count_upper_bound(self):
        lang = LeaderLanguage()
        base = lang.member_configuration(path_graph(6), rng=make_rng(2))
        bad = lang.corrupted_configuration(path_graph(6), 2, rng=make_rng(2))
        # Same rng seed -> same base labeling, so the distance is exactly
        # the number of corrupted nodes.
        assert base.labeling.hamming_distance(bad.labeling) <= 2

    def test_gives_up_when_uncorruptible(self):
        # The always-language cannot leave itself via random_corruption
        # retries if corruption keeps states None-ish... use a language
        # whose corruption is the identity to force the failure path.
        class Stubborn(_AlwaysLanguage):
            def random_corruption(self, node, state, rng):
                return state  # corruption never changes anything

        with pytest.raises(LanguageError):
            Stubborn().corrupted_configuration(
                path_graph(4), 1, rng=make_rng(3), attempts=5
            )

    def test_allow_legal_result_when_not_required(self):
        lang = _AlwaysLanguage()

        class Flip(_AlwaysLanguage):
            def random_corruption(self, node, state, rng):
                return "corrupt"

        config = Flip().corrupted_configuration(
            path_graph(4), 1, rng=make_rng(4), require_illegal=False
        )
        assert isinstance(config, Configuration)

    def test_repr(self):
        assert "leader" in repr(LeaderLanguage())


class TestDefaults:
    def test_validate_state_default_true(self):
        lang = _AlwaysLanguage()
        assert lang.validate_state(Graph(1), 0, object())

    def test_default_corruption_changes_state(self):
        lang = _AlwaysLanguage()
        corrupted = lang.random_corruption(0, None, make_rng(5))
        assert corrupted is not None
