"""Tests for proof-size measurement and curve fitting."""

from __future__ import annotations

import math

from repro.core.measure import (
    CURVES,
    best_curve,
    fit_constant,
    proof_size_sweep,
    size_table,
)
from repro.graphs.generators import path_graph
from repro.schemes.spanning_tree import SpanningTreePointerScheme
from repro.util.rng import make_rng


class TestFitting:
    def test_exact_recovery(self):
        points = [(n, 3.5 * math.log2(n)) for n in (8, 16, 32, 64)]
        c, rmse = fit_constant(points, CURVES["log n"])
        assert abs(c - 3.5) < 1e-9
        assert rmse < 1e-9

    def test_best_curve_picks_right_shape(self):
        log_points = [(n, 4.0 * math.log2(n)) for n in (8, 16, 64, 256, 1024)]
        name, scale, _ = best_curve(log_points)
        assert name == "log n"
        assert abs(scale - 4.0) < 1e-6

        sq_points = [(n, 2.0 * math.log2(n) ** 2) for n in (8, 16, 64, 256, 1024)]
        name, _, _ = best_curve(sq_points)
        assert name == "log^2 n"

        quad_points = [(n, 0.5 * n * n) for n in (8, 16, 64, 256)]
        name, _, _ = best_curve(quad_points)
        assert name == "n^2"

    def test_empty_points(self):
        c, rmse = fit_constant([], CURVES["n"])
        assert c == 0.0
        assert rmse == float("inf")


class TestSweep:
    def test_rows_shape(self):
        scheme = SpanningTreePointerScheme()
        rows = proof_size_sweep(
            scheme,
            "path",
            lambda n, rng: path_graph(n),
            sizes=(8, 16),
            rng=make_rng(1),
            samples=2,
        )
        assert [r.n for r in rows] == [8, 16]
        assert all(r.scheme == scheme.name for r in rows)
        assert all(r.proof_bits > 0 for r in rows)
        assert rows[1].proof_bits >= rows[0].proof_bits

    def test_size_table_renders(self):
        scheme = SpanningTreePointerScheme()
        rows = proof_size_sweep(
            scheme, "path", lambda n, rng: path_graph(n), sizes=(8,), rng=make_rng(1)
        )
        table = size_table(rows)
        assert "path" in table
        assert scheme.name in table
