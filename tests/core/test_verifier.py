"""Tests for view construction and the decision engine."""

from __future__ import annotations

import pytest

from repro.core.labeling import Configuration
from repro.core.verifier import (
    Visibility,
    build_view,
    build_views,
    decide,
)
from repro.errors import SchemeError
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.graphs.weighted import weighted_copy


@pytest.fixture
def config():
    return Configuration.build(
        path_graph(3), {0: "s0", 1: "s1", 2: "s2"}, ids={0: 10, 1: 20, 2: 30}
    )


class TestViewConstruction:
    def test_own_fields(self, config):
        view = build_view(config, {0: "c0", 1: "c1", 2: "c2"}, 1)
        assert view.uid == 20
        assert view.degree == 2
        assert view.state == "s1"
        assert view.certificate == "c1"

    def test_kkp_hides_neighbor_states(self, config):
        view = build_view(config, {}, 1, visibility=Visibility.KKP)
        assert all(g.state is None for g in view.neighbors)

    def test_full_reveals_neighbor_states(self, config):
        view = build_view(config, {}, 1, visibility=Visibility.FULL)
        assert [g.state for g in view.neighbors] == ["s0", "s2"]

    def test_neighbor_certs_and_uids(self, config):
        view = build_view(config, {0: "c0", 2: "c2"}, 1)
        assert [g.uid for g in view.neighbors] == [10, 30]
        assert [g.certificate for g in view.neighbors] == ["c0", "c2"]

    def test_back_port(self):
        g = star_graph(4)
        config = Configuration.build(g)
        view = build_view(config, {}, 2)  # leaf node 2
        hub = view.neighbors[0]
        assert hub.back_port == g.port(0, 2) == 1

    def test_weights_visible(self, rng):
        g = weighted_copy(cycle_graph(4), rng)
        config = Configuration.build(g)
        view = build_view(config, {}, 0)
        for glimpse in view.neighbors:
            nb = g.neighbor_at(0, glimpse.port)
            assert glimpse.weight == g.weight(0, nb)

    def test_neighbor_lookup_helpers(self, config):
        view = build_view(config, {0: "c0", 2: "c2"}, 1)
        assert view.neighbor_at(0).uid == 10
        assert view.neighbor_by_uid(30).certificate == "c2"
        assert view.neighbor_by_uid(99) is None
        assert view.neighbor_uids() == frozenset({10, 30})
        with pytest.raises(SchemeError):
            view.neighbor_at(5)

    def test_build_views_covers_all_nodes(self, config):
        views = build_views(config, {})
        assert set(views) == {0, 1, 2}


class TestRadius:
    def test_ball_members_and_edges(self):
        g = path_graph(5)
        config = Configuration.build(g, {v: v for v in g.nodes})
        view = build_view(config, {v: f"c{v}" for v in g.nodes}, 2, radius=2)
        assert view.ball is not None
        # uids are node+1; ball of radius 2 around node 2 covers everyone.
        assert set(view.ball.members) == {1, 2, 3, 4, 5}
        dists = {uid: entry[0] for uid, entry in view.ball.members.items()}
        assert dists == {3: 0, 2: 1, 4: 1, 1: 2, 5: 2}
        assert len(view.ball.edges) == 4

    def test_radius_one_has_no_ball(self):
        config = Configuration.build(path_graph(3))
        assert build_view(config, {}, 1).ball is None


class TestDecide:
    def test_all_accept(self, config):
        verdict = decide(lambda view: True, config, {})
        assert verdict.all_accept
        assert verdict.reject_count == 0

    def test_rejects_collected(self, config):
        verdict = decide(lambda view: view.uid != 20, config, {})
        assert verdict.rejects == frozenset({1})
        assert verdict.accepts == frozenset({0, 2})

    def test_exception_counts_as_reject(self, config):
        def explosive(view):
            raise ValueError("boom")

        verdict = decide(explosive, config, {})
        assert verdict.reject_count == 3

    def test_missing_certificates_are_none(self, config):
        seen = {}

        def record(view):
            seen[view.uid] = view.certificate
            return True

        decide(record, config, {1: "only-middle"})
        assert seen == {10: None, 20: "only-middle", 30: None}
