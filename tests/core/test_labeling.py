"""Tests for labelings and configurations."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labeling import Configuration, Labeling
from repro.errors import IdentityError, LabelingError
from repro.graphs.generators import path_graph
from repro.util.rng import make_rng


class TestLabelingBasics:
    def test_mapping_protocol(self):
        lab = Labeling({0: "a", 1: "b"})
        assert lab[0] == "a"
        assert len(lab) == 2
        assert set(lab) == {0, 1}

    def test_missing_node_raises(self):
        with pytest.raises(LabelingError):
            Labeling({0: 1})[5]

    def test_uniform(self):
        lab = Labeling.uniform(range(3), 7)
        assert all(lab[v] == 7 for v in range(3))

    def test_with_state_is_persistent(self):
        lab = Labeling({0: 1, 1: 2})
        new = lab.with_state(0, 99)
        assert lab[0] == 1
        assert new[0] == 99

    def test_with_state_unknown_node(self):
        with pytest.raises(LabelingError):
            Labeling({0: 1}).with_state(7, 0)

    def test_with_states_bulk(self):
        lab = Labeling({0: 1, 1: 2, 2: 3}).with_states({0: 9, 2: 9})
        assert (lab[0], lab[1], lab[2]) == (9, 2, 9)

    def test_equality(self):
        assert Labeling({0: 1}) == Labeling({0: 1})
        assert Labeling({0: 1}) != Labeling({0: 2})


_states = st.dictionaries(
    st.integers(min_value=0, max_value=9),
    st.integers(min_value=0, max_value=5),
    min_size=1,
    max_size=10,
)


class TestHammingDistance:
    def test_identity(self):
        lab = Labeling({0: 1, 1: 2})
        assert lab.hamming_distance(lab) == 0

    @given(_states, st.integers(min_value=0, max_value=5))
    def test_symmetry(self, states, bump):
        a = Labeling(states)
        keys = sorted(states)
        b = a.with_state(keys[0], states[keys[0]] + bump)
        assert a.hamming_distance(b) == b.hamming_distance(a)

    @settings(max_examples=50)
    @given(_states, st.data())
    def test_triangle_inequality(self, states, data):
        keys = sorted(states)
        a = Labeling(states)
        b = Labeling({k: data.draw(st.integers(0, 5)) for k in keys})
        c = Labeling({k: data.draw(st.integers(0, 5)) for k in keys})
        assert a.hamming_distance(c) <= a.hamming_distance(b) + b.hamming_distance(c)

    def test_counts_differences(self):
        a = Labeling({0: 1, 1: 2, 2: 3})
        b = Labeling({0: 1, 1: 9, 2: 9})
        assert a.hamming_distance(b) == 2

    def test_mismatched_nodes(self):
        with pytest.raises(LabelingError):
            Labeling({0: 1}).hamming_distance(Labeling({1: 1}))


class TestCorruption:
    def test_corrupts_exact_count(self):
        lab = Labeling({v: 0 for v in range(10)})
        corrupted = lab.corrupted(make_rng(1), 3, lambda v, s, r: s + 1)
        assert lab.hamming_distance(corrupted) == 3

    def test_too_many(self):
        with pytest.raises(LabelingError):
            Labeling({0: 1}).corrupted(make_rng(1), 2, lambda v, s, r: s)

    def test_max_state_bits(self):
        lab = Labeling({0: 0, 1: (1, 2, 3)})
        assert lab.max_state_bits() > 0


class TestConfiguration:
    def test_build_defaults(self):
        g = path_graph(3)
        config = Configuration.build(g)
        assert config.n == 3
        assert config.state(0) is None
        assert config.ids == {0: 1, 1: 2, 2: 3}

    def test_uid_lookup(self):
        config = Configuration.build(path_graph(2), ids={0: 10, 1: 20})
        assert config.uid(1) == 20
        assert config.node_of_uid(10) == 0
        with pytest.raises(LabelingError):
            config.node_of_uid(99)

    def test_labeling_must_cover_graph(self):
        with pytest.raises(LabelingError):
            Configuration.build(path_graph(3), {0: 1})

    def test_duplicate_ids_rejected(self):
        with pytest.raises(IdentityError):
            Configuration.build(path_graph(2), ids={0: 1, 1: 1})

    def test_with_labeling(self):
        config = Configuration.build(path_graph(2), {0: "a", 1: "b"})
        new = config.with_labeling({0: "x", 1: "y"})
        assert new.state(0) == "x"
        assert config.state(0) == "a"
        assert new.ids == config.ids

    def test_with_ids(self):
        config = Configuration.build(path_graph(2))
        new = config.with_ids({0: 5, 1: 6})
        assert new.uid(0) == 5
