"""Model-knob tests: visibility models and verification radius.

The framework's two extension axes must behave as the definitions say:
KKP hides neighbor states (schemes that need them must echo), FULL
reveals them; radius-1 views carry no ball, larger radii carry
consistent ball data that the coarse-counter scheme relies on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labeling import Configuration
from repro.core.verifier import Visibility, build_view, build_views
from repro.graphs.generators import connected_gnp, cycle_graph, path_graph
from repro.util.rng import make_rng


class TestVisibilityContracts:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_kkp_state_always_none(self, seed):
        rng = make_rng(seed)
        g = connected_gnp(8, 0.4, rng)
        config = Configuration.build(g, {v: ("state", v) for v in g.nodes})
        for view in build_views(config, {}, visibility=Visibility.KKP).values():
            assert all(glimpse.state is None for glimpse in view.neighbors)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_full_states_are_ground_truth(self, seed):
        rng = make_rng(seed)
        g = connected_gnp(8, 0.4, rng)
        config = Configuration.build(g, {v: ("state", v) for v in g.nodes})
        for node, view in build_views(
            config, {}, visibility=Visibility.FULL
        ).items():
            for glimpse in view.neighbors:
                neighbor = g.neighbor_at(node, glimpse.port)
                assert glimpse.state == ("state", neighbor)

    def test_back_ports_are_symmetric(self):
        g = connected_gnp(10, 0.35, make_rng(1))
        config = Configuration.build(g)
        for node, view in build_views(config, {}).items():
            for glimpse in view.neighbors:
                neighbor = g.neighbor_at(node, glimpse.port)
                assert g.neighbor_at(neighbor, glimpse.back_port) == node


class TestBallConsistency:
    @pytest.mark.parametrize("radius", [2, 3, 4])
    def test_ball_distances_and_membership(self, radius):
        g = cycle_graph(12)
        config = Configuration.build(g, {v: v for v in g.nodes})
        certs = {v: ("c", v) for v in g.nodes}
        view = build_view(config, certs, 0, radius=radius)
        ball = view.ball
        assert ball is not None and ball.radius == radius
        # Cycle: exactly 2*radius + 1 members.
        assert len(ball.members) == 2 * radius + 1
        for uid, (dist, cert, state) in ball.members.items():
            node = config.node_of_uid(uid)
            assert cert == certs[node]
            assert dist <= radius

    def test_ball_ports_cover_members(self):
        g = path_graph(7)
        config = Configuration.build(g)
        view = build_view(config, {}, 3, radius=2)
        ball = view.ball
        assert set(ball.ports) == set(ball.members)
        # Port tuples name real neighbors in order.
        for uid, ports in ball.ports.items():
            node = config.node_of_uid(uid)
            assert ports == tuple(config.uid(nb) for nb in g.neighbors(node))

    def test_ball_states_follow_visibility(self):
        g = path_graph(5)
        config = Configuration.build(g, {v: v * 10 for v in g.nodes})
        kkp = build_view(config, {}, 2, visibility=Visibility.KKP, radius=2)
        full = build_view(config, {}, 2, visibility=Visibility.FULL, radius=2)
        assert all(entry[2] is None for entry in kkp.ball.members.values())
        assert any(entry[2] is not None for entry in full.ball.members.values())

    def test_ball_edges_are_induced(self):
        g = cycle_graph(8)
        config = Configuration.build(g)
        view = build_view(config, {}, 0, radius=2)
        member_uids = set(view.ball.members)
        for a, b, _w in view.ball.edges:
            assert a in member_uids and b in member_uids
