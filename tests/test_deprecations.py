"""The pre-catalog registries stay usable — and warn.

``ALL_SCHEME_FACTORIES`` and ``APPROX_SCHEME_BUILDERS`` are deprecated
views over :mod:`repro.core.catalog`; these tests pin both halves of
that contract: the alias behaviour (same names, same call shapes, same
objects out) and the :class:`DeprecationWarning` on access.  Internal
``repro.*`` code must not trip these shims — CI runs the suite with
``-W error::DeprecationWarning:repro`` to enforce it.
"""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.core import catalog
from repro.core.scheme import ProofLabelingScheme
from repro.util.rng import make_rng

#: The exact surface the old dicts exposed.
LEGACY_EXACT = [
    "acyclic",
    "agreement",
    "bfs-tree",
    "bipartite",
    "coloring-echo",
    "dominating-set",
    "independent-set",
    "leader",
    "matching",
    "mst",
    "spanning-tree-list",
    "spanning-tree-ptr",
    "vertex-cover",
]
LEGACY_APPROX = [
    "approx-diameter",
    "approx-dominating-set",
    "approx-matching",
    "approx-tree-weight",
    "approx-vertex-cover",
]


class TestAllSchemeFactoriesShim:
    def test_access_warns(self):
        import repro.schemes

        with pytest.warns(DeprecationWarning, match="ALL_SCHEME_FACTORIES"):
            repro.schemes.ALL_SCHEME_FACTORIES

    def test_alias_behaviour_pinned(self):
        import repro.schemes

        with pytest.warns(DeprecationWarning):
            factories = repro.schemes.ALL_SCHEME_FACTORIES
        assert sorted(factories) == LEGACY_EXACT
        # Zero-arg factories, exactly like the old dict of classes —
        # catalog-only additions (coarse-acyclic) are not retrofitted.
        scheme = factories["mst"]()
        assert isinstance(scheme, ProofLabelingScheme)
        assert scheme.name == catalog.build("mst").name
        assert "coarse-acyclic" not in factories

    def test_reexport_through_schemes_package_warns(self):
        import repro.schemes

        with pytest.warns(DeprecationWarning, match="APPROX_SCHEME_BUILDERS"):
            builders = repro.schemes.APPROX_SCHEME_BUILDERS
        assert sorted(builders) == LEGACY_APPROX


class TestApproxBuildersShim:
    def test_access_warns(self):
        import repro.approx

        with pytest.warns(DeprecationWarning, match="APPROX_SCHEME_BUILDERS"):
            repro.approx.APPROX_SCHEME_BUILDERS

    def test_alias_behaviour_pinned(self):
        import repro.approx

        with pytest.warns(DeprecationWarning):
            builders = repro.approx.APPROX_SCHEME_BUILDERS
        assert sorted(builders) == LEGACY_APPROX
        entry = builders["approx-dominating-set"]
        # The old dataclass surface: metadata plus build(graph, rng).
        assert entry.alpha == 2.0
        assert entry.weighted is False
        spec = catalog.get("approx-dominating-set")
        assert entry.size_bound == spec.size_bound
        assert entry.summary == spec.summary
        rng = make_rng(5)
        graph = spec.sample_graph(10, rng)
        scheme = entry.build(graph, rng)
        assert scheme.alpha == 2.0
        assert scheme.run(
            scheme.language.member_configuration(graph, rng=rng)
        ).all_accept

    def test_build_approx_scheme_warns_and_forwards(self):
        from repro.approx import build_approx_scheme
        from repro.errors import SchemeError

        spec = catalog.get("approx-vertex-cover")
        graph = spec.sample_graph(10, make_rng(1))
        with pytest.warns(DeprecationWarning, match="build_approx_scheme"):
            scheme = build_approx_scheme("approx-vertex-cover", graph)
        assert scheme.alpha == 2.0
        with pytest.warns(DeprecationWarning):
            with pytest.raises(SchemeError, match="unknown approx scheme"):
                build_approx_scheme("leader", graph)


class TestTopLevelReexports:
    def test_repro_all_scheme_factories_warns(self):
        import repro

        with pytest.warns(DeprecationWarning, match="ALL_SCHEME_FACTORIES"):
            factories = repro.ALL_SCHEME_FACTORIES
        assert sorted(factories) == LEGACY_EXACT

    def test_repro_approx_builders_warns(self):
        import repro

        with pytest.warns(DeprecationWarning, match="APPROX_SCHEME_BUILDERS"):
            builders = repro.APPROX_SCHEME_BUILDERS
        assert sorted(builders) == LEGACY_APPROX

    def test_unknown_attribute_still_raises(self):
        import repro
        import repro.approx
        import repro.schemes

        for module in (repro, repro.schemes, repro.approx):
            with pytest.raises(AttributeError):
                module.no_such_attribute_xyz


class TestInternalCodeIsClean:
    def test_package_import_emits_no_deprecation_warning(self):
        """``import repro`` (and the CLI parser build) must not touch the
        shims — the same property CI enforces suite-wide with
        ``-W error::DeprecationWarning:repro``."""
        code = (
            "import warnings\n"
            "warnings.filterwarnings('error', category=DeprecationWarning,"
            " module=r'repro')\n"
            "import repro\n"
            "import repro.cli\n"
            "repro.cli.build_parser()\n"
            "from repro.core import catalog\n"
            "catalog.build('leader')\n"
            "print('clean')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        assert "clean" in result.stdout
