"""Incremental detection sessions: equivalence, guards, fault campaigns.

The central property: a :class:`DetectionSession` fed any sequence of
register mutations must be verdict-identical to a fresh from-scratch
sweep at every step — while building O(ball(changed)) views instead of
O(n).  Plus regression tests for the accounting/detection bugfixes that
shipped with the incremental engine.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.verifier import Visibility, view_build_count
from repro.errors import SchemeError, SimulationError
from repro.graphs.generators import connected_gnp, cycle_graph, path_graph
from repro.local.network import Network
from repro.schemes.bfs_tree import BfsTreeScheme
from repro.schemes.leader import LeaderScheme
from repro.schemes.spanning_tree import SpanningTreePointerScheme
from repro.selfstab import (
    MaxRootBfsProtocol,
    PlsDetector,
    SilentLeaderProtocol,
    inject_faults,
    inject_faults_report,
    run_guarded,
    run_until_silent,
    run_with_global_reset,
    synchronous_round,
)
from repro.selfstab.model import SelfStabProtocol
from repro.util.rng import make_rng


class WideSpanningTreeScheme(SpanningTreePointerScheme):
    """The pointer scheme run under FULL visibility at radius 2.

    The verifier ignores the extra material, so verdicts match the base
    scheme — but building and refreshing its views exercises the ball
    scaffolding and the FULL state plumbing of the incremental path.
    """

    visibility = Visibility.FULL
    radius = 2


def _certified_system(seed, n=16, protocol=None, scheme=None):
    rng = make_rng(seed)
    graph = connected_gnp(n, 0.25, rng)
    network = Network(graph)
    protocol = protocol or MaxRootBfsProtocol()
    detector = PlsDetector(scheme or SpanningTreePointerScheme(), protocol)
    states = run_until_silent(network, protocol).states
    return rng, network, protocol, detector, states


class TestSessionEquivalence:
    """Incremental sweeps must be indistinguishable from full sweeps."""

    @settings(
        max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_randomized_fault_campaign(self, seed):
        rng, network, protocol, detector, states = _certified_system(seed)
        session = detector.session(network, states)
        current = dict(states)
        for burst in range(4):
            k = 1 + (seed + burst) % 3
            injection = inject_faults_report(network, protocol, current, k, rng)
            current = injection.states
            incremental = session.sweep(current, changed=injection.victims)
            fresh = detector.sweep(network, current)
            assert incremental.verdict == fresh.verdict
            assert incremental.legitimate == fresh.legitimate

    @pytest.mark.parametrize(
        "scheme_factory",
        [SpanningTreePointerScheme, BfsTreeScheme, WideSpanningTreeScheme],
        ids=["st-kkp-r1", "bfs-kkp-r1", "st-full-r2"],
    )
    def test_across_visibilities_and_radii(self, scheme_factory):
        rng, network, protocol, detector, states = _certified_system(
            77, scheme=scheme_factory()
        )
        session = detector.session(network, states)
        current = dict(states)
        for burst in range(5):
            injection = inject_faults_report(network, protocol, current, 2, rng)
            current = injection.states
            incremental = session.sweep(current, changed=injection.victims)
            fresh = detector.sweep(network, current)
            assert incremental.verdict == fresh.verdict

    def test_leader_protocol_session(self):
        rng, network, protocol, detector, states = _certified_system(
            5, protocol=SilentLeaderProtocol(), scheme=LeaderScheme()
        )
        session = detector.session(network, states)
        current = dict(states)
        for burst in range(4):
            injection = inject_faults_report(network, protocol, current, 1, rng)
            current = injection.states
            assert (
                session.sweep(current, changed=injection.victims).verdict
                == detector.sweep(network, current).verdict
            )

    def test_implicit_diff_matches_explicit_changed(self):
        rng, network, protocol, detector, states = _certified_system(9)
        injection = inject_faults_report(network, protocol, states, 3, rng)
        explicit = detector.session(network, states)
        implicit = detector.session(network, states)
        a = explicit.sweep(injection.states, changed=injection.victims)
        b = implicit.sweep(injection.states)  # diffs all registers itself
        assert a.verdict == b.verdict

    def test_sweep_on_unchanged_registers_is_view_free(self):
        _, network, protocol, detector, states = _certified_system(3)
        session = detector.session(network, states)
        session.sweep(check_membership=False)
        before = view_build_count()
        report = session.sweep(states, check_membership=False)
        assert view_build_count() == before  # nothing changed, nothing rebuilt
        assert not report.alarmed

    def test_incremental_sweep_builds_ball_not_n(self):
        rng, network, protocol, detector, states = _certified_system(21, n=40)
        session = detector.session(network, states)
        injection = inject_faults_report(network, protocol, states, 1, rng)
        before = view_build_count()
        session.sweep(
            injection.states, changed=injection.victims, check_membership=False
        )
        built = view_build_count() - before
        victim = injection.victims[0]
        ball = 1 + network.graph.degree(victim)
        assert built <= ball < network.graph.n

    def test_skipped_membership_reports_none(self):
        _, network, protocol, detector, states = _certified_system(4)
        report = detector.session(network, states).sweep(check_membership=False)
        assert report.legitimate is None
        assert not report.false_negative and not report.false_positive


class TestViewReuseGuard:
    """Mismatched view reuse must raise, not mis-verify (satellite guard)."""

    def test_refresh_views_rejects_mismatched_radius(self):
        scheme = SpanningTreePointerScheme()
        rng = make_rng(1)
        graph = connected_gnp(12, 0.3, rng)
        config = scheme.language.member_configuration(graph, rng=rng)
        certs = dict(scheme.prove(config))
        from repro.core.verifier import build_views, decide, refresh_views

        views = build_views(config, certs, Visibility.KKP, radius=1)
        with pytest.raises(SchemeError):
            refresh_views(config, certs, views, [0], Visibility.KKP, radius=2)
        with pytest.raises(SchemeError):
            refresh_views(config, certs, views, [0], Visibility.FULL, radius=1)
        with pytest.raises(SchemeError):
            decide(scheme.verify, config, certs, Visibility.FULL, 1, views=views)
        # Matching parameters still pass.
        refresh_views(config, certs, views, [0], Visibility.KKP, radius=1)
        decide(scheme.verify, config, certs, Visibility.KKP, 1, views=views)

    def test_scheme_level_mismatch_raises(self):
        rng = make_rng(2)
        graph = connected_gnp(12, 0.3, rng)
        narrow = SpanningTreePointerScheme()
        wide = WideSpanningTreeScheme()
        config = narrow.language.member_configuration(graph, rng=rng)
        certs = dict(narrow.prove(config))
        views = narrow.build_views(config, certs)
        with pytest.raises(SchemeError):
            wide.run(config, certs, views=views)

    def test_plain_dicts_still_accepted(self):
        scheme = SpanningTreePointerScheme()
        rng = make_rng(3)
        graph = cycle_graph(6)
        config = scheme.language.member_configuration(graph, rng=rng)
        certs = dict(scheme.prove(config))
        views = dict(scheme.build_views(config, certs))  # strips the tag
        assert scheme.run(config, certs, views=views) == scheme.run(config, certs)


class StickyProtocol(SelfStabProtocol):
    """Degenerate state space: random_state almost always returns 0."""

    name = "sticky"

    def initial_state(self, ctx):
        return 0

    def random_state(self, ctx, rng):
        return 0 if rng.random() < 0.9 else 1

    def step(self, ctx, state, neighbor_states):
        return state

    def output(self, ctx, state):
        return state

    def certificate(self, ctx, state):
        return state


class TestInjectFaults:
    """Regression: the injection must corrupt exactly ``count`` registers."""

    def test_exact_count_under_degenerate_sampler(self):
        network = Network(path_graph(10))
        protocol = StickyProtocol()
        states = {v: 0 for v in network.graph.nodes}
        for seed in range(20):
            injection = inject_faults_report(
                network, protocol, states, 3, make_rng(seed)
            )
            changed = [v for v in states if injection.states[v] != states[v]]
            assert sorted(changed) == sorted(injection.victims)
            assert len(injection.victims) == 3

    def test_impossible_count_raises(self):
        class Constant(StickyProtocol):
            name = "constant"

            def random_state(self, ctx, rng):
                return 0

        network = Network(path_graph(4))
        states = {v: 0 for v in network.graph.nodes}
        with pytest.raises(SimulationError):
            inject_faults_report(network, Constant(), states, 1, make_rng(0))

    def test_count_larger_than_network_raises(self):
        network = Network(path_graph(4))
        states = {v: 0 for v in network.graph.nodes}
        with pytest.raises(SimulationError):
            inject_faults_report(network, StickyProtocol(), states, 5, make_rng(0))

    def test_wrapper_returns_states_only(self):
        network = Network(path_graph(8))
        protocol = StickyProtocol()
        states = {v: 0 for v in network.graph.nodes}
        faulted = inject_faults(network, protocol, states, 2, make_rng(1))
        assert sum(1 for v in states if faulted[v] != states[v]) == 2


class TestResetAccounting:
    """Regression: the global reset must charge its own writes."""

    def test_reset_write_is_charged(self):
        rng = make_rng(6)
        graph = connected_gnp(16, 0.25, rng)
        network = Network(graph)
        protocol = MaxRootBfsProtocol()
        detector = PlsDetector(SpanningTreePointerScheme(), protocol)
        states = run_until_silent(network, protocol).states
        faulted = inject_faults(network, protocol, states, 5, rng)
        trace = run_with_global_reset(network, protocol, detector, faulted)
        assert trace.stabilized
        # Round 0 is the reset write: every register it actually rewrote.
        clean = {
            v: protocol.initial_state(network.context(v)) for v in graph.nodes
        }
        expected = sum(1 for v in graph.nodes if clean[v] != faulted[v])
        assert trace.moves_per_round[0] == expected
        assert expected > 0
        # Rounds = reset round + protocol rounds to silence.
        assert trace.rounds == len(trace.moves_per_round)

    def test_guarded_escalation_rounds_are_consistent(self):
        # Drive run_guarded into escalation with patience=1 and check the
        # merged trace: detection rounds strictly increasing, moves list
        # aligned with the round count.
        rng = make_rng(8)
        graph = connected_gnp(16, 0.25, rng)
        network = Network(graph)
        protocol = MaxRootBfsProtocol()
        detector = PlsDetector(SpanningTreePointerScheme(), protocol)
        states = run_until_silent(network, protocol).states
        faulted = inject_faults(network, protocol, states, 6, rng)
        trace = run_guarded(network, protocol, detector, faulted, patience=1)
        assert trace.escalated and trace.stabilized
        rounds_seen = [r for r, _ in trace.detections]
        assert rounds_seen == sorted(set(rounds_seen))  # no duplicate rounds
        assert trace.rounds == len(trace.moves_per_round)

    def test_wedged_escalation_has_no_duplicate_detection(self):
        class Wedged(StickyProtocol):
            """Illegal, unmovable: step and reset both keep state 1."""

            name = "wedged"

            def initial_state(self, ctx):
                return 1

            def step(self, ctx, state, neighbor_states):
                return state

            def output(self, ctx, state):
                return None  # never a spanning tree: every node rootlike

            def certificate(self, ctx, state):
                return (0, 0)

        network = Network(path_graph(6))
        protocol = Wedged()
        detector = PlsDetector(SpanningTreePointerScheme(), protocol)
        states = {v: 1 for v in network.graph.nodes}
        with pytest.raises(SimulationError):
            # The global reset cannot fix a protocol whose clean state is
            # illegal — but on the way there, the wedged round must not
            # have double-counted (covered by escalation test above).
            run_guarded(network, protocol, detector, states, patience=10)


class TestActiveSetScheduling:
    def test_partial_round_matches_full_round_on_quiescent_rest(self):
        rng = make_rng(11)
        graph = connected_gnp(14, 0.3, rng)
        network = Network(graph)
        protocol = MaxRootBfsProtocol()
        silent = run_until_silent(network, protocol).states
        injection = inject_faults_report(network, protocol, silent, 2, rng)
        # Nodes outside the victims' closed neighborhood are quiescent:
        # stepping only the affected region equals a full round.
        active = set(injection.victims)
        for v in injection.victims:
            active.update(graph.neighbors(v))
        full = synchronous_round(network, protocol, injection.states)
        partial = synchronous_round(network, protocol, injection.states, active=active)
        assert partial == full

    def test_run_until_silent_trace_unchanged_by_scheduling(self):
        # The active-set runner must produce the exact same trace as the
        # naive step-everyone implementation.
        rng = make_rng(12)
        graph = connected_gnp(14, 0.3, rng)
        network = Network(graph)
        protocol = MaxRootBfsProtocol()
        contexts = network.contexts()
        chaos = {
            v: protocol.random_state(contexts[v], rng) for v in graph.nodes
        }
        trace = run_until_silent(network, protocol, chaos, max_rounds=2000)

        current = dict(chaos)
        naive_changes = []
        while True:
            nxt = synchronous_round(network, protocol, current)
            naive_changes.append(
                sum(1 for v in current if nxt[v] != current[v])
            )
            current = nxt
            if naive_changes[-1] == 0:
                break
        assert trace.changes_per_round == naive_changes
        assert trace.states == current
