"""Adversary strategies, daemons, latency distributions, containment."""

from __future__ import annotations

import pytest

from repro.core import catalog
from repro.errors import SimulationError
from repro.graphs.generators import connected_gnp, path_graph
from repro.local.network import Network
from repro.selfstab import (
    ByzantineAdversary,
    FrozenCertifiedProtocol,
    LatencyDistribution,
    PartialDaemon,
    PlsDetector,
    RandomAdversary,
    SynchronousDaemon,
    TargetedAdversary,
    adversary_campaign,
    build_adversary,
    build_campaign_instance,
    classify_truth,
    fault_sweep_campaign,
    inject_faults_report,
    measure_detection_latency,
    run_contained,
    run_guarded,
    run_until_silent,
)
from repro.selfstab.campaign import CampaignInstance
from repro.util.rng import make_rng


def _instance(name="st-pointer", n=16, seed=3):
    rng = make_rng(seed)
    graph = connected_gnp(n, 0.25, rng)
    instance = build_campaign_instance(name, graph, rng)
    silent = run_until_silent(instance.network, instance.protocol).states
    return instance, silent


class TestRandomAdversary:
    def test_bit_compatible_with_inject_faults_report(self):
        instance, silent = _instance()
        direct = inject_faults_report(
            instance.network, instance.protocol, silent, 3, make_rng(9)
        )
        via_adversary = RandomAdversary().corrupt(instance, silent, 3, make_rng(9))
        assert via_adversary == direct

    def test_campaign_default_is_random(self):
        kwargs = dict(
            sizes=(12,),
            fault_counts=(1, 2),
            detectors=("st-pointer",),
            seeds_per_cell=2,
        )
        default = fault_sweep_campaign(rng=make_rng(4), **kwargs)
        explicit = fault_sweep_campaign(
            rng=make_rng(4), adversary=RandomAdversary(), **kwargs
        )
        assert default == explicit


class TestTargetedAdversary:
    def test_exact_victim_count_and_localized_changes(self):
        instance, silent = _instance()
        injection = TargetedAdversary().corrupt(instance, silent, 3, make_rng(5))
        changed = sorted(v for v in silent if injection.states[v] != silent[v])
        assert changed == sorted(injection.victims)
        assert len(injection.victims) == 3

    def test_quieter_than_random_on_st_pointer(self):
        # The acceptance property at test scale: equal budget, strictly
        # fewer rejecting nodes (the scheme is not error-sensitive, so
        # quiet corruption exists for a searching adversary).
        def mean_rejects(adversary, seeds):
            total = runs = 0
            for seed in seeds:
                instance, silent = _instance(n=20, seed=seed)
                rng = make_rng(100 + seed)
                injection = adversary.corrupt(instance, silent, 2, rng)
                session = instance.detector.session(instance.network, silent)
                report = session.sweep(
                    injection.states,
                    changed=injection.victims,
                    check_membership=False,
                )
                truth = classify_truth(
                    instance.detector.scheme.language, session.config
                )
                if truth == "illegal":
                    total += report.verdict.reject_count
                    runs += 1
            return total / max(1, runs)

        seeds = range(4)
        assert mean_rejects(TargetedAdversary(), seeds) < mean_rejects(
            RandomAdversary(), seeds
        )

    def test_prefers_illegal_corruption(self):
        instance, silent = _instance(n=18, seed=11)
        injection = TargetedAdversary().corrupt(instance, silent, 2, make_rng(2))
        session = instance.detector.session(instance.network, injection.states)
        truth = classify_truth(instance.detector.scheme.language, session.config)
        assert truth == "illegal"

    def test_far_pattern_seeds_on_a_path(self):
        # On a path with the frozen spanning-tree-ptr scheme, the
        # glued-orientations FAR_PATTERNS construction joins the
        # candidate pool and the search lands on a quiet corruption.
        rng = make_rng(7)
        graph = path_graph(12)
        scheme = catalog.build("spanning-tree-ptr")
        config = scheme.language.member_configuration(graph, rng=rng)
        protocol = FrozenCertifiedProtocol(scheme, config)
        network = Network(graph)
        instance = CampaignInstance(
            network=network,
            protocol=protocol,
            detector=PlsDetector(scheme, protocol),
        )
        silent = run_until_silent(network, protocol).states
        adversary = TargetedAdversary(search_width=12)
        assert adversary._pattern_states(instance, make_rng(1)) is not None
        injection = adversary.corrupt(instance, silent, 1, make_rng(3))
        session = instance.detector.session(network, injection.states)
        assert classify_truth(scheme.language, session.config) == "illegal"
        assert session.verify().reject_count <= 2


class TestByzantineAdversary:
    def test_recorrupt_touches_only_victims(self):
        instance, silent = _instance()
        adversary = ByzantineAdversary()
        injection = adversary.corrupt(instance, silent, 2, make_rng(1))
        refreshed = adversary.recorrupt(
            instance, injection.states, injection.victims, make_rng(2)
        )
        outside = [
            v
            for v in silent
            if v not in injection.victims
            and refreshed[v] != injection.states[v]
        ]
        assert not outside

    def test_one_shot_adversaries_refuse_recorrupt(self):
        instance, silent = _instance()
        with pytest.raises(SimulationError):
            RandomAdversary().recorrupt(instance, silent, (0,), make_rng(0))

    def test_frozen_detector_contains_the_lie(self):
        instance, silent = _instance(name="es-spanning-tree", n=14, seed=5)
        adversary = ByzantineAdversary()
        injection = adversary.corrupt(instance, silent, 1, make_rng(3))
        session = instance.detector.session(instance.network, injection.states)
        outcome = run_contained(
            instance, session, injection.states, injection.victims, make_rng(4)
        )
        assert outcome.contained
        assert outcome.honest_moves == 0  # local resets never fire off-zone
        assert outcome.escaped_alarms == 0


class TestDaemonsAndLatency:
    def test_synchronous_daemon_detects_in_one_round(self):
        instance, silent = _instance(seed=13)
        injection = RandomAdversary().corrupt(instance, silent, 2, make_rng(5))
        session = instance.detector.session(instance.network, silent)
        report = session.sweep(
            injection.states, changed=injection.victims, check_membership=False
        )
        if not report.alarmed:
            pytest.skip("burst landed legal for this seed")
        latency, _ = measure_detection_latency(
            instance,
            session,
            injection.states,
            injection.victims,
            RandomAdversary(),
            SynchronousDaemon(),
            make_rng(6),
        )
        assert latency.detected and latency.rounds == 1

    def test_partial_daemon_is_validated(self):
        with pytest.raises(SimulationError):
            PartialDaemon(0.0)
        with pytest.raises(SimulationError):
            PartialDaemon(1.5)
        assert PartialDaemon(1.0).activation([1, 2, 3], 0, make_rng(0)) == {1, 2, 3}

    def test_latency_distribution_statistics(self):
        dist = LatencyDistribution.from_rounds([1, 1, 2, 3, 10])
        assert dist.count == 5
        assert dist.minimum == 1 and dist.maximum == 10
        assert dist.median == 2.0
        assert dist.p95 == 10.0
        assert dist.mean == pytest.approx(3.4)
        assert LatencyDistribution.from_rounds([]).count == 0
        even = LatencyDistribution.from_rounds([1, 3])
        assert even.median == 2.0


class TestCampaignAndRegistry:
    def test_unknown_adversary_rejected(self):
        with pytest.raises(SimulationError):
            build_adversary("bogus")

    def test_small_campaign_detects_everything(self):
        records = adversary_campaign(
            sizes=(12,),
            fault_counts=(1,),
            detectors=("st-pointer", "es-spanning-tree"),
            adversaries=("random", "targeted", "byzantine"),
            seeds_per_cell=2,
            rng=make_rng(21),
        )
        assert len(records) == 6
        for record in records:
            assert record.detected == record.illegal_runs
            assert (
                record.illegal_runs + record.gap_runs + record.legal_runs
                == 2
            )
            if record.adversary != "byzantine":
                assert record.contained == 0
                assert record.mean_containment_rounds == 0.0

    def test_campaign_is_deterministic(self):
        kwargs = dict(
            sizes=(10,),
            fault_counts=(1,),
            detectors=("st-pointer",),
            adversaries=("targeted",),
            seeds_per_cell=2,
        )
        a = adversary_campaign(rng=make_rng(8), **kwargs)
        b = adversary_campaign(rng=make_rng(8), **kwargs)
        assert a == b

    def test_experiment_table_and_notes(self):
        from repro.analysis.experiments import experiment_adversary_latency

        result = experiment_adversary_latency(
            sizes=(12,),
            fault_counts=(1,),
            detectors=("st-pointer", "es-spanning-tree"),
            adversaries=("random", "targeted"),
            seeds_per_cell=2,
            rng=make_rng(31),
        )
        assert len(result.rows) == 4
        col = result.headers.index
        for row in result.rows:
            assert row[col("detected")] == row[col("illegal")]
        assert any(
            "incremental message-passing simulator" in note
            for note in result.notes
        )


class TestSharedRecoverySession:
    def test_shared_session_recovery_matches_fresh(self):
        instance, silent = _instance(seed=17)
        injection = RandomAdversary().corrupt(instance, silent, 3, make_rng(2))
        session = instance.detector.session(instance.network, injection.states)
        shared = run_guarded(
            instance.network,
            instance.protocol,
            instance.detector,
            injection.states,
            session=session,
        )
        fresh = run_guarded(
            instance.network,
            instance.protocol,
            instance.detector,
            injection.states,
        )
        assert shared.rounds == fresh.rounds
        assert shared.states == fresh.states
        assert shared.moves_per_round == fresh.moves_per_round
        assert shared.detections == fresh.detections
        assert shared.escalated == fresh.escalated

    def test_escalation_shares_one_session(self, monkeypatch):
        # Count DetectionSession constructions across an escalating
        # guarded run: exactly one (the fallback inherits it).
        import repro.selfstab.detector as detector_module

        built = []
        original = detector_module.DetectionSession.__init__

        def counting(self, detector, network, states, **kwargs):
            built.append(1)
            original(self, detector, network, states, **kwargs)

        monkeypatch.setattr(detector_module.DetectionSession, "__init__", counting)
        instance, silent = _instance(seed=19)
        injection = RandomAdversary().corrupt(instance, silent, 5, make_rng(3))
        trace = run_guarded(
            instance.network,
            instance.protocol,
            instance.detector,
            injection.states,
            patience=1,
        )
        assert trace.escalated and trace.stabilized
        assert len(built) == 1
