"""The fault-injection campaign and its frozen certified detectors."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.graphs.generators import connected_gnp
from repro.local.network import Network
from repro.schemes.spanning_tree import SpanningTreePointerScheme
from repro.selfstab import (
    FrozenCertifiedProtocol,
    PlsDetector,
    SWEEP_DETECTORS,
    build_campaign_instance,
    fault_sweep_campaign,
    inject_faults_report,
    run_guarded,
    run_until_silent,
)
from repro.util.rng import make_rng


class TestFrozenCertifiedProtocol:
    def _frozen(self, seed=1, n=14):
        rng = make_rng(seed)
        graph = connected_gnp(n, 0.3, rng)
        scheme = SpanningTreePointerScheme()
        config = scheme.language.member_configuration(graph, rng=rng)
        return Network(graph), FrozenCertifiedProtocol(scheme, config), scheme

    def test_initial_states_are_certified_silence(self):
        network, protocol, scheme = self._frozen()
        detector = PlsDetector(scheme, protocol)
        trace = run_until_silent(network, protocol)
        assert trace.silent and trace.rounds == 1  # identity rule: instant
        report = detector.sweep(network, trace.states)
        assert report.legitimate and not report.alarmed

    def test_corruption_is_detected_and_locally_reset(self):
        network, protocol, scheme = self._frozen(seed=2)
        detector = PlsDetector(scheme, protocol)
        rng = make_rng(3)
        states = run_until_silent(network, protocol).states
        injection = inject_faults_report(network, protocol, states, 2, rng)
        report = detector.sweep(network, injection.states)
        if not report.legitimate:
            assert report.alarmed
        recovery = run_guarded(network, protocol, detector, injection.states)
        assert recovery.stabilized
        final = detector.sweep(network, recovery.states)
        assert final.legitimate and not final.alarmed

    def test_register_decomposition(self):
        network, protocol, scheme = self._frozen(seed=4)
        ctx = network.context(0)
        state = protocol.initial_state(ctx)
        assert protocol.output(ctx, state) == state[0]
        assert protocol.certificate(ctx, state) == state[1]
        assert protocol.output(ctx, "garbage") is None
        assert protocol.certificate(ctx, 17) is None


class TestCampaignRegistry:
    def test_every_detector_builds_and_certifies(self):
        rng = make_rng(5)
        graph = connected_gnp(16, 0.25, rng)
        for name in SWEEP_DETECTORS:
            instance = build_campaign_instance(name, graph, make_rng(6))
            states = run_until_silent(instance.network, instance.protocol).states
            session = instance.detector.session(instance.network, states)
            assert session.verify().all_accept, name

    def test_unknown_detector_raises(self):
        graph = connected_gnp(8, 0.4, make_rng(7))
        with pytest.raises(SimulationError):
            build_campaign_instance("no-such-detector", graph, make_rng(8))

    def test_approx_tree_weight_gets_weighted_graph(self):
        graph = connected_gnp(12, 0.3, make_rng(9))
        instance = build_campaign_instance("approx-tree-weight", graph, make_rng(10))
        assert instance.network.graph.is_weighted


class TestFaultSweepCampaign:
    def test_small_grid_detects_everything(self):
        records = fault_sweep_campaign(
            sizes=(14,),
            fault_counts=(1, 2),
            detectors=("st-pointer", "approx-dominating-set"),
            seeds_per_cell=2,
            rng=make_rng(11),
        )
        assert len(records) == 4
        for record in records:
            assert record.detected == record.illegal_runs
            assert record.false_negatives == 0
            assert record.full_views == 14.0  # full rebuild = n views/sweep
            assert record.incremental_views <= record.full_views

    def test_campaign_is_deterministic(self):
        kwargs = dict(
            sizes=(12,), fault_counts=(1,), detectors=("st-pointer",),
            seeds_per_cell=2,
        )
        a = fault_sweep_campaign(rng=make_rng(12), **kwargs)
        b = fault_sweep_campaign(rng=make_rng(12), **kwargs)
        assert a == b


class TestGapSemantics:
    """Bursts in a gap detector's don't-care region owe no detection."""

    def _register_blind_gap_detector(self, monkeypatch):
        from repro.approx.gap import GapLanguage
        from repro.core.labeling import Labeling
        from repro.core.scheme import ProofLabelingScheme
        from repro.selfstab.campaign import CampaignInstance, SWEEP_DETECTORS

        class WideGapLanguage(GapLanguage):
            """Yes iff every state is "ok"; never a no-instance."""

            name = "wide-gap"

            def is_yes(self, config):
                return all(
                    config.state(v) == "ok" for v in config.graph.nodes
                )

            def is_no(self, config):
                return False  # the whole complement is the gap

            def canonical_labeling(self, graph, ids=None, rng=None):
                return Labeling({v: "ok" for v in graph.nodes})

            def random_corruption(self, node, state, rng):
                return "bad"

        class BlindScheme(ProofLabelingScheme):
            """Accepts everything — legal only because nothing is α-far."""

            name = "blind-gap"

            def prove(self, config):
                return {v: 0 for v in config.graph.nodes}

            def verify(self, view):
                return True

        def build(graph, rng):
            scheme = BlindScheme(WideGapLanguage())
            config = scheme.language.member_configuration(graph, rng=rng)
            protocol = FrozenCertifiedProtocol(scheme, config)
            return CampaignInstance(
                network=Network(graph),
                protocol=protocol,
                detector=PlsDetector(scheme, protocol),
            )

        monkeypatch.setitem(SWEEP_DETECTORS, "blind-gap", build)

    def test_gap_bursts_are_not_false_negatives(self, monkeypatch):
        self._register_blind_gap_detector(monkeypatch)
        records = fault_sweep_campaign(
            sizes=(10,),
            fault_counts=(1, 2),
            detectors=("blind-gap",),
            seeds_per_cell=4,
            rng=make_rng(17),
        )
        total_gap = sum(r.gap_runs for r in records)
        for record in records:
            # Nothing is ever α-far, so no burst may count as illegal —
            # and the never-alarming verifier must not be charged a
            # false negative for don't-care configurations.
            assert record.illegal_runs == 0
            assert record.detected == 0
            assert record.false_negatives == 0
        # Output-corrupting bursts do land in the gap and are tallied.
        assert total_gap >= 1


class TestExperimentF4b:
    def test_experiment_runs_and_notes_ratio(self):
        from repro.analysis.experiments import experiment_f4b_fault_sweep

        result = experiment_f4b_fault_sweep(
            sizes=(12,),
            fault_counts=(1,),
            detectors=("st-pointer", "leader"),
            seeds_per_cell=2,
            rng=make_rng(13),
        )
        assert len(result.rows) == 2
        col = result.headers.index
        for row in result.rows:
            assert row[col("detected")] == row[col("illegal")]
            assert row[col("false neg")] == 0
        assert any("fewer views" in note for note in result.notes)


class TestParamOverrides:
    def test_params_reach_the_built_scheme(self):
        graph = connected_gnp(12, 0.3, make_rng(13))
        default = build_campaign_instance(
            "approx-dominating-set", graph, make_rng(14)
        )
        tightened = build_campaign_instance(
            "approx-dominating-set", graph, make_rng(14), params={"eps": "0.5"}
        )
        assert default.detector.scheme.alpha == 2.0
        assert tightened.detector.scheme.alpha == 1.5

    def test_plain_builds_keep_the_legacy_builder_signature(self, monkeypatch):
        """Externally registered two-argument builders keep working as
        long as no params are passed."""
        calls = []

        def legacy_builder(graph, rng):
            calls.append((graph, rng))
            return build_campaign_instance("st-pointer", graph, rng)

        monkeypatch.setitem(SWEEP_DETECTORS, "legacy", legacy_builder)
        graph = connected_gnp(10, 0.3, make_rng(15))
        instance = build_campaign_instance("legacy", graph, make_rng(16))
        assert calls and instance is not None

    def test_campaign_forwards_params_deterministically(self):
        kwargs = dict(
            sizes=(12,), fault_counts=(1,), seeds_per_cell=1,
            detectors=("approx-dominating-set",),
            params={"eps": "0.5"},
        )
        a = fault_sweep_campaign(rng=make_rng(17), **kwargs)
        b = fault_sweep_campaign(rng=make_rng(17), **kwargs)
        assert a == b
        for record in a:
            assert record.false_negatives == 0
