"""Tests for the self-stabilization substrate and PLS detection."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.graphs.generators import connected_gnp, cycle_graph, path_graph
from repro.graphs.traversal import eccentricity
from repro.local.network import Network
from repro.schemes.bfs_tree import BfsTreeScheme
from repro.schemes.spanning_tree import SpanningTreePointerScheme
from repro.selfstab import (
    MaxRootBfsProtocol,
    PlsDetector,
    inject_faults,
    run_guarded,
    run_until_silent,
    run_with_global_reset,
    synchronous_round,
)
from repro.selfstab.model import SelfStabProtocol
from repro.util.rng import make_rng


class TestMaxRootBfs:
    def test_clean_start_stabilizes_to_bfs_tree(self, rng):
        g = connected_gnp(16, 0.25, rng)
        net = Network(g)
        protocol = MaxRootBfsProtocol()
        trace = run_until_silent(net, protocol)
        assert trace.silent
        # The stabilized output is a legitimate BFS tree rooted at the
        # max-uid node.
        detector = PlsDetector(BfsTreeScheme(), protocol)
        report = detector.sweep(net, trace.states)
        assert report.legitimate
        assert not report.alarmed
        root_node = max(g.nodes, key=lambda v: net.ids[v])
        assert trace.states[root_node][1] is None

    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_stabilizes_from_arbitrary_states(self, seed):
        rng = make_rng(seed)
        g = connected_gnp(14, 0.3, rng)
        net = Network(g)
        protocol = MaxRootBfsProtocol()
        contexts = net.contexts()
        chaos = {v: protocol.random_state(contexts[v], rng) for v in g.nodes}
        trace = run_until_silent(net, protocol, chaos, max_rounds=2000)
        detector = PlsDetector(SpanningTreePointerScheme(), protocol)
        report = detector.sweep(net, trace.states)
        assert report.legitimate
        assert not report.alarmed

    def test_stabilization_time_scales_with_graph(self, rng):
        protocol = MaxRootBfsProtocol()
        g = path_graph(20)
        net = Network(g)
        trace = run_until_silent(net, protocol)
        # The wave travels from the max-uid end across the path.
        assert trace.rounds <= 2 * g.n
        assert trace.rounds >= eccentricity(g, max(g.nodes, key=lambda v: net.ids[v]))

    def test_synchronous_round_is_pure(self, rng):
        g = cycle_graph(5)
        net = Network(g)
        protocol = MaxRootBfsProtocol()
        states = {v: protocol.initial_state(net.context(v)) for v in g.nodes}
        frozen = dict(states)
        synchronous_round(net, protocol, states)
        assert states == frozen  # input untouched


class TestDetection:
    def _silent_network(self, rng, n=18):
        g = connected_gnp(n, 0.25, rng)
        net = Network(g)
        protocol = MaxRootBfsProtocol()
        trace = run_until_silent(net, protocol)
        return g, net, protocol, trace.states

    def test_faults_detected_in_one_sweep(self, rng):
        g, net, protocol, states = self._silent_network(rng)
        detector = PlsDetector(SpanningTreePointerScheme(), protocol)
        for k in (1, 3, 5):
            faulted = inject_faults(net, protocol, states, k, rng)
            report = detector.sweep(net, faulted)
            if not report.legitimate:
                assert report.alarmed  # soundness: one sweep suffices
                assert not report.false_negative

    def test_no_false_negatives_over_many_seeds(self):
        protocol = MaxRootBfsProtocol()
        detector_scheme = SpanningTreePointerScheme()
        for seed in range(20):
            rng = make_rng(seed)
            g = connected_gnp(12, 0.3, rng)
            net = Network(g)
            detector = PlsDetector(detector_scheme, protocol)
            states = run_until_silent(net, protocol).states
            faulted = inject_faults(net, protocol, states, 2, rng)
            report = detector.sweep(net, faulted)
            assert not report.false_negative

    def test_clean_state_not_alarmed(self, rng):
        g, net, protocol, states = self._silent_network(rng)
        detector = PlsDetector(SpanningTreePointerScheme(), protocol)
        report = detector.sweep(net, states)
        assert report.legitimate and not report.alarmed


class TestRecovery:
    def test_guarded_recovery_reaches_certified_silence(self, rng):
        g = connected_gnp(20, 0.2, rng)
        net = Network(g)
        protocol = MaxRootBfsProtocol()
        detector = PlsDetector(SpanningTreePointerScheme(), protocol)
        states = run_until_silent(net, protocol).states
        faulted = inject_faults(net, protocol, states, 4, rng)
        trace = run_guarded(net, protocol, detector, faulted)
        assert trace.stabilized
        final = detector.sweep(net, trace.states)
        assert final.legitimate and not final.alarmed

    def test_guarded_on_clean_state_is_free(self, rng):
        g = connected_gnp(12, 0.3, rng)
        net = Network(g)
        protocol = MaxRootBfsProtocol()
        detector = PlsDetector(SpanningTreePointerScheme(), protocol)
        states = run_until_silent(net, protocol).states
        trace = run_guarded(net, protocol, detector, states)
        assert trace.rounds == 0
        assert trace.total_moves == 0
        assert not trace.escalated

    def test_global_reset_always_recovers(self, rng):
        g = connected_gnp(16, 0.25, rng)
        net = Network(g)
        protocol = MaxRootBfsProtocol()
        detector = PlsDetector(SpanningTreePointerScheme(), protocol)
        states = run_until_silent(net, protocol).states
        faulted = inject_faults(net, protocol, states, 6, rng)
        trace = run_with_global_reset(net, protocol, detector, faulted)
        assert trace.stabilized
        final = detector.sweep(net, trace.states)
        assert final.legitimate and not final.alarmed

    def test_global_reset_noop_when_clean(self, rng):
        g = cycle_graph(8)
        net = Network(g)
        protocol = MaxRootBfsProtocol()
        detector = PlsDetector(SpanningTreePointerScheme(), protocol)
        states = run_until_silent(net, protocol).states
        trace = run_with_global_reset(net, protocol, detector, states)
        assert trace.rounds == 0 and trace.total_moves == 0


class TestModelGuards:
    def test_nonterminating_protocol_raises(self, rng):
        class Flipper(SelfStabProtocol):
            name = "flipper"

            def initial_state(self, ctx):
                return 0

            def random_state(self, ctx, rng):
                return rng.randrange(2)

            def step(self, ctx, state, neighbor_states):
                return 1 - state

            def output(self, ctx, state):
                return state

            def certificate(self, ctx, state):
                return state

        net = Network(path_graph(4))
        with pytest.raises(SimulationError):
            run_until_silent(net, Flipper(), max_rounds=50)

    def test_stabilization_round_property(self, rng):
        g = path_graph(6)
        net = Network(g)
        protocol = MaxRootBfsProtocol()
        trace = run_until_silent(net, protocol)
        assert 0 < trace.stabilization_round <= trace.rounds
