"""Tests for the silent leader-election protocol."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs.generators import connected_gnp, path_graph
from repro.local.network import Network
from repro.schemes.leader import LeaderScheme
from repro.selfstab import (
    PlsDetector,
    SilentLeaderProtocol,
    inject_faults,
    run_guarded,
    run_until_silent,
)
from repro.util.idspace import random_ids
from repro.util.rng import make_rng


class TestStabilization:
    def test_elects_max_uid(self, rng):
        g = connected_gnp(15, 0.25, rng)
        net = Network(g, ids=random_ids(list(g.nodes), 1000, rng))
        protocol = SilentLeaderProtocol()
        trace = run_until_silent(net, protocol)
        assert trace.silent
        max_node = max(g.nodes, key=lambda v: net.ids[v])
        contexts = net.contexts()
        outputs = {
            v: protocol.output(contexts[v], trace.states[v]) for v in g.nodes
        }
        assert outputs[max_node] is True
        assert sum(outputs.values()) == 1

    @settings(
        max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_stabilizes_from_garbage(self, seed):
        rng = make_rng(seed)
        g = connected_gnp(12, 0.3, rng)
        net = Network(g)
        protocol = SilentLeaderProtocol()
        contexts = net.contexts()
        chaos = {v: protocol.random_state(contexts[v], rng) for v in g.nodes}
        trace = run_until_silent(net, protocol, chaos, max_rounds=2000)
        detector = PlsDetector(LeaderScheme(), protocol)
        report = detector.sweep(net, trace.states)
        assert report.legitimate and not report.alarmed


class TestDetectionWithLeaderScheme:
    def test_stabilized_registers_verify(self, rng):
        g = path_graph(10)
        net = Network(g)
        protocol = SilentLeaderProtocol()
        detector = PlsDetector(LeaderScheme(), protocol)
        trace = run_until_silent(net, protocol)
        report = detector.sweep(net, trace.states)
        assert report.legitimate and not report.alarmed

    def test_faults_detected_and_recovered(self, rng):
        g = connected_gnp(16, 0.25, rng)
        net = Network(g)
        protocol = SilentLeaderProtocol()
        detector = PlsDetector(LeaderScheme(), protocol)
        silent = run_until_silent(net, protocol).states
        faulted = inject_faults(net, protocol, silent, 3, rng)
        report = detector.sweep(net, faulted)
        assert not report.false_negative
        recovery = run_guarded(net, protocol, detector, faulted)
        assert recovery.stabilized
        final = detector.sweep(net, recovery.states)
        assert final.legitimate and not final.alarmed

    def test_two_protocols_one_detector_framework(self, rng):
        """The same detector class binds either protocol to its scheme."""
        from repro.schemes.spanning_tree import SpanningTreePointerScheme
        from repro.selfstab import MaxRootBfsProtocol

        g = connected_gnp(12, 0.3, rng)
        net = Network(g)
        for protocol, scheme in (
            (SilentLeaderProtocol(), LeaderScheme()),
            (MaxRootBfsProtocol(), SpanningTreePointerScheme()),
        ):
            detector = PlsDetector(scheme, protocol)
            trace = run_until_silent(net, protocol)
            report = detector.sweep(net, trace.states)
            assert report.legitimate and not report.alarmed
