"""The flagship schemes on structured topologies.

Grids, tori, hypercubes, stars, lollipops and double-cliques exercise
different degree/diameter regimes than the random sweeps: high-degree
hubs (echo costs), long induced paths (deep counters), dense cores with
sparse tails (fragment shapes in Borůvka).
"""

from __future__ import annotations

import pytest

from repro.core.soundness import completeness_holds
from repro.graphs.generators import (
    caterpillar,
    complete_graph,
    double_clique,
    grid_graph,
    hypercube,
    lollipop,
    star_graph,
    torus_graph,
)
from repro.graphs.weighted import weighted_copy
from repro.schemes import (
    BfsTreeScheme,
    LeaderScheme,
    MstScheme,
    SpanningTreePointerScheme,
)
from repro.util.rng import make_rng

TOPOLOGIES = {
    "grid": grid_graph(4, 5),
    "torus": torus_graph(4, 4),
    "hypercube": hypercube(4),
    "star": star_graph(17),
    "lollipop": lollipop(6, 8),
    "double_clique": double_clique(6),
    "caterpillar": caterpillar(6, 2),
    "clique": complete_graph(10),
}

TREE_SCHEMES = {
    "spanning-tree": SpanningTreePointerScheme,
    "bfs-tree": BfsTreeScheme,
    "leader": LeaderScheme,
}


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@pytest.mark.parametrize("scheme_name", sorted(TREE_SCHEMES))
class TestTreeSchemesOnTopologies:
    def test_completeness(self, scheme_name, topology):
        rng = make_rng(hash((scheme_name, topology)) & 0xFFFF)
        scheme = TREE_SCHEMES[scheme_name]()
        graph = TOPOLOGIES[topology]
        config = scheme.language.member_configuration(graph, rng=rng)
        assert completeness_holds(scheme, config)

    def test_corruption_detected(self, scheme_name, topology):
        rng = make_rng(hash((scheme_name, topology, "bad")) & 0xFFFF)
        scheme = TREE_SCHEMES[scheme_name]()
        graph = TOPOLOGIES[topology]
        try:
            bad = scheme.language.corrupted_configuration(graph, 1, rng=rng)
        except Exception:
            pytest.skip("corruption stayed legal on this topology")
        assert not scheme.run(bad).all_accept


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
class TestMstOnTopologies:
    def test_completeness(self, topology):
        rng = make_rng(hash((topology, "mst")) & 0xFFFF)
        graph = weighted_copy(TOPOLOGIES[topology], rng)
        scheme = MstScheme()
        config = scheme.language.member_configuration(graph, rng=rng)
        assert completeness_holds(scheme, config)

    def test_corruption_detected(self, topology):
        rng = make_rng(hash((topology, "mst-bad")) & 0xFFFF)
        graph = weighted_copy(TOPOLOGIES[topology], rng)
        scheme = MstScheme()
        try:
            bad = scheme.language.corrupted_configuration(graph, 1, rng=rng)
        except Exception:
            pytest.skip("corruption stayed legal on this topology")
        assert not scheme.run(bad).all_accept
