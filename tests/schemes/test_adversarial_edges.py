"""Targeted adversarial probes at individual verifier checks.

Each test forges exactly one certificate field and asserts the specific
check that must catch it — pinning the soundness argument's case
analysis to code, branch by branch.
"""

from __future__ import annotations

import pytest

from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.graphs.weighted import weighted_copy
from repro.schemes.leader import LeaderScheme
from repro.schemes.mst import MstScheme
from repro.schemes.spanning_tree import (
    SpanningTreeListScheme,
    SpanningTreePointerScheme,
)


class TestSpanningTreeBranches:
    def _config(self, rng):
        scheme = SpanningTreePointerScheme()
        g = cycle_graph(6)
        return scheme, scheme.language.member_configuration(g, rng=rng)

    def test_negative_distance_rejected(self, rng):
        scheme, config = self._config(rng)
        certs = dict(scheme.prove(config))
        victim = next(v for v in config.graph.nodes if config.state(v) is not None)
        certs[victim] = (certs[victim][0], -1)
        assert victim in scheme.run(config, certificates=certs).rejects

    def test_wrong_root_uid_at_root_rejected(self, rng):
        scheme, config = self._config(rng)
        certs = dict(scheme.prove(config))
        root = next(v for v in config.graph.nodes if config.state(v) is None)
        forged = {v: (999_999, certs[v][1]) for v in certs}
        verdict = scheme.run(config, certificates=forged)
        assert root in verdict.rejects  # uid pin at the root

    def test_skipping_distance_rejected(self, rng):
        scheme, config = self._config(rng)
        certs = dict(scheme.prove(config))
        victim = next(
            v for v in config.graph.nodes
            if config.state(v) is not None and certs[v][1] >= 2
        )
        certs[victim] = (certs[victim][0], certs[victim][1] + 1)
        assert not scheme.run(config, certificates=certs).all_accept

    def test_malformed_neighbor_cert_rejected(self, rng):
        scheme, config = self._config(rng)
        certs = dict(scheme.prove(config))
        certs[0] = "garbage"
        verdict = scheme.run(config, certificates=certs)
        assert 0 in verdict.rejects
        # And its neighbors reject too (they cannot parse the root field).
        assert any(
            nb in verdict.rejects for nb in config.graph.neighbors(0)
        )


class TestSpanningTreeListBranches:
    def test_non_tree_listed_edge_rejected(self, rng):
        """Listing an extra mutual edge that is neither parent nor child
        of either endpoint must fail the parent/child pinning."""
        scheme = SpanningTreeListScheme()
        g = cycle_graph(5)
        config = scheme.language.member_configuration(g, rng=rng)
        # Add the one non-tree edge to both endpoint lists.
        from repro.graphs.subgraphs import edges_from_lists

        lists = {
            v: frozenset(g.neighbor_at(v, p) for p in config.state(v))
            for v in g.nodes
        }
        missing = next(
            e for e in g.edges() if e not in edges_from_lists(lists)
        )
        u, w = missing
        new_states = dict(config.labeling)
        new_states[u] = config.state(u) | {g.port(u, w)}
        new_states[w] = config.state(w) | {g.port(w, u)}
        bad = config.with_labeling(new_states)
        assert not scheme.language.is_member(bad)
        assert not scheme.run(bad).all_accept

    def test_echo_must_match_state(self, rng):
        scheme = SpanningTreeListScheme()
        g = path_graph(4)
        config = scheme.language.member_configuration(g, rng=rng)
        certs = dict(scheme.prove(config))
        root_uid, parent_uid, dist, _echo = certs[1]
        certs[1] = (root_uid, parent_uid, dist, (999,))
        assert 1 in scheme.run(config, certificates=certs).rejects


class TestLeaderBranches:
    def test_unmarked_distance_zero_rejected(self, rng):
        scheme = LeaderScheme()
        g = star_graph(4)
        config = scheme.language.member_configuration(g, rng=rng)
        certs = dict(scheme.prove(config))
        victim = next(v for v in g.nodes if config.state(v) is False)
        leader_uid = certs[victim][0]
        certs[victim] = (leader_uid, config.uid(victim), 0)
        assert victim in scheme.run(config, certificates=certs).rejects

    def test_parent_must_be_a_neighbor(self, rng):
        scheme = LeaderScheme()
        g = path_graph(5)
        config = scheme.language.member_configuration(g, rng=rng)
        certs = dict(scheme.prove(config))
        victim = next(v for v in g.nodes if certs[v][2] > 0)
        certs[victim] = (certs[victim][0], 424242, certs[victim][2])
        assert victim in scheme.run(config, certificates=certs).rejects


class TestMstBranches:
    def _config(self, rng, n=6):
        scheme = MstScheme()
        g = weighted_copy(cycle_graph(n), rng)
        return scheme, g, scheme.language.member_configuration(g, rng=rng)

    def test_fragment_disagreeing_on_moe_rejected(self, rng):
        scheme, g, config = self._config(rng, n=12)
        certs = dict(scheme.prove(config))
        # Find two adjacent nodes sharing a fragment past phase 0.
        tag, root_uid, dist, echo, phases = certs[0]
        if len(phases) < 3:
            pytest.skip("needs a multi-phase run")
        i = 1
        partner = next(
            (nb for nb in g.neighbors(0)
             if certs[nb][4][i][0] == phases[i][0]),
            None,
        )
        if partner is None:
            pytest.skip("no same-fragment neighbor at phase 1")
        entry = list(phases[i])
        if entry[3] is None:
            pytest.skip("last phase selected")
        w, a, b = entry[3]
        entry[3] = (w + 500, a, b)
        new_phases = phases[:i] + (tuple(entry),) + phases[i + 1:]
        certs[0] = (tag, root_uid, dist, echo, new_phases)
        assert not scheme.run(config, certificates=certs).all_accept

    def test_final_phase_split_rejected(self, rng):
        scheme, g, config = self._config(rng)
        certs = dict(scheme.prove(config))
        tag, root_uid, dist, echo, phases = certs[0]
        last = list(phases[-1])
        last[0] = 777_777  # a fragment id nobody else shares
        certs[0] = (tag, root_uid, dist, echo, phases[:-1] + (tuple(last),))
        assert not scheme.run(config, certificates=certs).all_accept

    def test_t1_orphan_rejected(self, rng):
        scheme, g, config = self._config(rng)
        certs = dict(scheme.prove(config))
        # Point a node's fragment parent at a non-existent uid.
        victim = next(
            v for v in g.nodes if certs[v][4][-1][1] is not None
        )
        tag, root_uid, dist, echo, phases = certs[victim]
        last = list(phases[-1])
        last[1] = 888_888
        certs[victim] = (tag, root_uid, dist, echo, phases[:-1] + (tuple(last),))
        assert victim in scheme.run(config, certificates=certs).rejects
