"""Tests for the MST language and the O(log² n) Borůvka scheme."""

from __future__ import annotations

import math

import pytest

from repro.core.labeling import Configuration
from repro.core.soundness import attack, completeness_holds
from repro.errors import LanguageError
from repro.graphs.generators import connected_gnp, cycle_graph, path_graph
from repro.graphs.mst import kruskal
from repro.graphs.subgraphs import pointers_from_tree
from repro.graphs.weighted import weighted_copy
from repro.schemes.mst import MstLanguage, MstScheme
from repro.util.rng import make_rng


def _pointer_states(graph, tree, root=0):
    pointers = pointers_from_tree(graph, tree, root)
    return {
        v: None if p is None else graph.port(v, p) for v, p in pointers.items()
    }


class TestMstLanguage:
    def test_member_is_the_mst(self, weighted_graph, rng):
        lang = MstLanguage()
        config = lang.member_configuration(weighted_graph, rng=rng)
        assert lang.is_member(config)

    def test_non_mst_spanning_tree_rejected(self, rng):
        lang = MstLanguage()
        g = weighted_copy(cycle_graph(6), rng)
        mst = kruskal(g)
        # The unique non-MST spanning tree of a cycle: drop a different edge.
        heaviest = max(g.edges(), key=lambda e: g.weight(*e))
        other = set(g.edges()) - {min(g.edges(), key=lambda e: g.weight(*e))}
        config = Configuration.build(g, _pointer_states(g, other))
        assert set(other) != set(mst)
        assert not lang.is_member(config)

    def test_unweighted_graph_not_member(self):
        lang = MstLanguage()
        g = path_graph(3)
        config = Configuration.build(g, {0: None, 1: 0, 2: 0})
        assert not lang.is_member(config)

    def test_canonical_requires_weights(self):
        with pytest.raises(LanguageError):
            MstLanguage().canonical_labeling(path_graph(4))

    def test_canonical_requires_distinct_weights(self):
        g = path_graph(3).with_weights({(0, 1): 1, (1, 2): 1})
        with pytest.raises(LanguageError):
            MstLanguage().canonical_labeling(g)

    def test_disconnected_pointers_rejected(self, rng):
        lang = MstLanguage()
        g = weighted_copy(cycle_graph(5), rng)
        config = Configuration.build(g, {v: None for v in g.nodes})
        assert not lang.is_member(config)


class TestMstSchemeCompleteness:
    @pytest.mark.parametrize("n", [2, 3, 5, 9, 16, 25])
    def test_completeness_across_sizes(self, n):
        rng = make_rng(n)
        scheme = MstScheme()
        g = weighted_copy(connected_gnp(n, 0.4, rng), rng)
        config = scheme.language.member_configuration(g, rng=rng)
        assert completeness_holds(scheme, config)

    def test_single_node(self):
        scheme = MstScheme()
        from repro.graphs.graph import Graph

        g = Graph(1, [], {})
        config = scheme.language.member_configuration(g)
        assert completeness_holds(scheme, config)

    def test_proof_size_polylog(self):
        scheme = MstScheme()
        sizes = []
        for n in (8, 64):
            rng = make_rng(n)
            g = weighted_copy(connected_gnp(n, 3.0 / n, rng), rng)
            config = scheme.language.member_configuration(g, rng=rng)
            bits = scheme.proof_size_bits(config)
            sizes.append(bits / (math.log2(g.n) ** 2))
        # bits / log^2 n stays within a modest constant band.
        assert 0.2 < sizes[1] / sizes[0] < 5


class TestMstSchemeSoundness:
    def test_wrong_spanning_tree_detected(self, rng):
        scheme = MstScheme()
        g = weighted_copy(cycle_graph(7), rng)
        mst = kruskal(g)
        cheapest = min(g.edges(), key=lambda e: g.weight(*e))
        wrong_tree = set(g.edges()) - {cheapest}  # drops the cheapest: not MST
        assert frozenset(wrong_tree) != mst
        config = Configuration.build(g, _pointer_states(g, wrong_tree))
        assert not scheme.language.is_member(config)
        member = scheme.language.member_configuration(g, rng=rng)
        result = attack(scheme, config, rng=rng, trials=60, related=[member])
        assert not result.fooled

    def test_broken_tree_detected(self, rng):
        scheme = MstScheme()
        g = weighted_copy(connected_gnp(9, 0.4, rng), rng)
        bad = scheme.language.corrupted_configuration(g, 2, rng=rng)
        result = attack(scheme, bad, rng=rng, trials=40)
        assert not result.fooled

    def test_forged_moe_weight_rejected(self, rng):
        scheme = MstScheme()
        g = weighted_copy(cycle_graph(5), rng)
        config = scheme.language.member_configuration(g, rng=rng)
        certs = dict(scheme.prove(config))
        # Tamper with phase 0's claimed minimum outgoing edge everywhere.
        def forge(cert):
            tag, root_uid, dist, echo, phases = cert
            entry = phases[0]
            if entry[3] is None:
                return cert
            w, a, b = entry[3]
            bumped = (w + 1000, a, b)
            forged_entry = (entry[0], entry[1], entry[2], bumped, entry[4], entry[5])
            return (tag, root_uid, dist, echo, (forged_entry,) + phases[1:])

        forged = {v: forge(c) for v, c in certs.items()}
        assert not scheme.run(config, certificates=forged).all_accept

    def test_pointer_echo_must_be_truthful(self, rng):
        scheme = MstScheme()
        g = weighted_copy(path_graph(4), rng)
        config = scheme.language.member_configuration(g, rng=rng)
        certs = dict(scheme.prove(config))
        victim = next(v for v in g.nodes if config.state(v) is not None)
        tag, root_uid, dist, echo, phases = certs[victim]
        certs[victim] = (tag, root_uid, dist, 10_000, phases)
        verdict = scheme.run(config, certificates=certs)
        assert victim in verdict.rejects

    def test_phase_zero_must_be_singletons(self, rng):
        scheme = MstScheme()
        g = weighted_copy(cycle_graph(4), rng)
        config = scheme.language.member_configuration(g, rng=rng)
        certs = dict(scheme.prove(config))
        tag, root_uid, dist, echo, phases = certs[0]
        entry = phases[0]
        forged_entry = (999, entry[1], entry[2], entry[3], entry[4], entry[5])
        certs[0] = (tag, root_uid, dist, echo, (forged_entry,) + phases[1:])
        assert not scheme.run(config, certificates=certs).all_accept

    def test_phase_count_disagreement_rejected(self, rng):
        scheme = MstScheme()
        g = weighted_copy(connected_gnp(8, 0.5, rng), rng)
        config = scheme.language.member_configuration(g, rng=rng)
        certs = dict(scheme.prove(config))
        tag, root_uid, dist, echo, phases = certs[0]
        certs[0] = (tag, root_uid, dist, echo, phases + (phases[-1],))
        assert not scheme.run(config, certificates=certs).all_accept

    def test_malformed_certificates_rejected(self, rng):
        scheme = MstScheme()
        g = weighted_copy(path_graph(3), rng)
        config = scheme.language.member_configuration(g, rng=rng)
        for junk in (None, 7, ("mst",), ("mst", 1, -1, None, ())):
            verdict = scheme.run(config, certificates={v: junk for v in g.nodes})
            assert not verdict.all_accept

    def test_non_tree_moe_claim_rejected(self, rng):
        """A certificate claiming a non-tree edge as a selection must fail
        at the T2 root's exhibit check."""
        scheme = MstScheme()
        g = weighted_copy(cycle_graph(5), rng)
        config = scheme.language.member_configuration(g, rng=rng)
        certs = dict(scheme.prove(config))
        # Find the non-tree edge (the heaviest on a cycle).
        tree_edges = set()
        from repro.schemes.acyclic import pointers_from_ports
        from repro.graphs.subgraphs import edges_from_pointers

        tree_edges = edges_from_pointers(pointers_from_ports(config))
        non_tree = next(e for e in g.edges() if e not in tree_edges)
        u, v = non_tree
        tag, root_uid, dist, echo, phases = certs[u]
        entry = phases[0]
        forged = (
            entry[0], entry[1], entry[2],
            (g.weight(u, v), config.uid(u), config.uid(v)),
            None, 0,
        )
        certs[u] = (tag, root_uid, dist, echo, (forged,) + phases[1:])
        assert not scheme.run(config, certificates=certs).all_accept
