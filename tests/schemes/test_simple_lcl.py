"""Tests for the locally checkable predicates: coloring, bipartite,
independent set, dominating set, matching."""

from __future__ import annotations

import pytest

from repro.core.labeling import Configuration
from repro.core.soundness import attack, completeness_holds
from repro.errors import LanguageError
from repro.graphs.generators import (
    complete_graph,
    connected_gnp,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.schemes.bipartite import BipartiteLanguage, BipartiteScheme, two_coloring
from repro.schemes.coloring import (
    ColoringEchoScheme,
    ColoringFullScheme,
    ProperColoringLanguage,
)
from repro.schemes.dominating_set import DominatingSetLanguage, DominatingSetScheme
from repro.schemes.independent_set import (
    IndependentSetLanguage,
    IndependentSetScheme,
)
from repro.schemes.matching import MatchingLanguage, MatchingScheme, greedy_matching


class TestColoring:
    def test_member_and_nonmember(self):
        lang = ProperColoringLanguage(colors=3)
        good = Configuration.build(path_graph(3), {0: 0, 1: 1, 2: 0})
        bad = Configuration.build(path_graph(3), {0: 0, 1: 0, 2: 1})
        assert lang.is_member(good)
        assert not lang.is_member(bad)

    def test_color_bound_enforced(self):
        lang = ProperColoringLanguage(colors=2)
        config = Configuration.build(path_graph(2), {0: 0, 1: 5})
        assert not lang.is_member(config)

    def test_canonical_greedy(self, rng):
        lang = ProperColoringLanguage(colors=8)
        g = connected_gnp(12, 0.3, rng)
        config = Configuration.build(g, lang.canonical_labeling(g))
        assert lang.is_member(config)

    def test_canonical_fails_without_colors(self):
        lang = ProperColoringLanguage(colors=2)
        with pytest.raises(LanguageError):
            lang.canonical_labeling(complete_graph(4))

    def test_echo_scheme_completeness(self, rng):
        scheme = ColoringEchoScheme()
        config = scheme.language.member_configuration(
            connected_gnp(10, 0.3, rng), rng=rng
        )
        assert completeness_holds(scheme, config)

    def test_full_scheme_zero_bits(self, rng):
        scheme = ColoringFullScheme()
        config = scheme.language.member_configuration(cycle_graph(6), rng=rng)
        assert completeness_holds(scheme, config)
        assert scheme.proof_size_bits(config) == 0

    def test_monochromatic_edge_detected_both_models(self):
        config = Configuration.build(path_graph(3), {0: 1, 1: 1, 2: 0})
        for scheme in (ColoringEchoScheme(), ColoringFullScheme()):
            verdict = scheme.run(config)
            assert {0, 1} & verdict.rejects

    def test_echo_lies_detected(self, rng):
        scheme = ColoringEchoScheme()
        config = Configuration.build(path_graph(2), {0: 1, 1: 1})
        verdict = scheme.run(config, certificates={0: 1, 1: 0})
        assert 1 in verdict.rejects  # node 1's echo disagrees with its state


class TestBipartite:
    def test_two_coloring_helper(self):
        assert two_coloring(grid_graph(3, 3)) is not None
        assert two_coloring(cycle_graph(5)) is None

    def test_membership_is_graph_property(self):
        lang = BipartiteLanguage()
        good = Configuration.build(cycle_graph(6))
        bad = Configuration.build(cycle_graph(5))
        assert lang.is_member(good)
        assert not lang.is_member(bad)

    def test_states_must_be_none(self):
        lang = BipartiteLanguage()
        config = Configuration.build(path_graph(2), {0: 1, 1: None})
        assert not lang.is_member(config)

    def test_canonical_on_odd_cycle_raises(self):
        with pytest.raises(LanguageError):
            BipartiteLanguage().canonical_labeling(cycle_graph(7))

    def test_scheme_completeness_one_bit(self, rng):
        scheme = BipartiteScheme()
        config = scheme.language.member_configuration(grid_graph(3, 4), rng=rng)
        assert completeness_holds(scheme, config)
        assert scheme.proof_size_bits(config) == 1

    def test_odd_cycle_always_detected(self, rng):
        scheme = BipartiteScheme()
        config = Configuration.build(cycle_graph(7))
        result = attack(scheme, config, rng=rng, trials=60)
        assert not result.fooled


class TestIndependentSet:
    def test_membership(self):
        lang = IndependentSetLanguage()
        good = Configuration.build(
            path_graph(4), {0: True, 1: False, 2: True, 3: False}
        )
        bad = Configuration.build(path_graph(4), {0: True, 1: True, 2: False, 3: False})
        assert lang.is_member(good)
        assert not lang.is_member(bad)

    def test_maximality_variant(self):
        lang = IndependentSetLanguage(maximal=True)
        not_maximal = Configuration.build(
            path_graph(5), {v: False for v in range(5)}
        )
        assert not lang.is_member(not_maximal)
        maximal = Configuration.build(
            path_graph(5), {0: True, 1: False, 2: True, 3: False, 4: True}
        )
        assert lang.is_member(maximal)

    def test_canonical_is_maximal(self, rng):
        lang = IndependentSetLanguage(maximal=True)
        g = connected_gnp(14, 0.25, rng)
        config = Configuration.build(g, lang.canonical_labeling(g, rng=rng))
        assert lang.is_member(config)

    def test_scheme_detects_adjacent_pair(self):
        scheme = IndependentSetScheme()
        config = Configuration.build(path_graph(3), {0: True, 1: True, 2: False})
        verdict = scheme.run(config)
        assert {0, 1} <= verdict.rejects

    def test_maximal_scheme_detects_hole(self):
        scheme = IndependentSetScheme(IndependentSetLanguage(maximal=True))
        config = Configuration.build(star_graph(4), {v: False for v in range(4)})
        assert not scheme.run(config).all_accept


class TestDominatingSet:
    def test_membership(self):
        lang = DominatingSetLanguage()
        good = Configuration.build(
            star_graph(5), {0: True, **{v: False for v in range(1, 5)}}
        )
        assert lang.is_member(good)
        bad = Configuration.build(path_graph(4), {v: False for v in range(4)})
        assert not lang.is_member(bad)

    def test_canonical_dominates(self, rng):
        lang = DominatingSetLanguage()
        g = connected_gnp(15, 0.2, rng)
        config = Configuration.build(g, lang.canonical_labeling(g, rng=rng))
        assert lang.is_member(config)

    def test_scheme_detects_undominated_node(self):
        scheme = DominatingSetScheme()
        config = Configuration.build(
            path_graph(5), {0: True, 1: False, 2: False, 3: False, 4: True}
        )
        verdict = scheme.run(config)
        assert 2 in verdict.rejects

    def test_attack_resistant(self, rng):
        scheme = DominatingSetScheme()
        graph = connected_gnp(10, 0.25, rng)
        bad = scheme.language.corrupted_configuration(graph, 2, rng=rng)
        assert not attack(scheme, bad, rng=rng, trials=40).fooled


class TestMatching:
    def test_greedy_matching_is_matching(self, rng):
        g = connected_gnp(12, 0.3, rng)
        partner = greedy_matching(g, rng)
        for v, p in partner.items():
            if p is not None:
                assert partner[p] == v

    def test_membership_mutuality(self):
        g = path_graph(4)
        lang = MatchingLanguage()
        good = Configuration.build(
            g, {0: 0, 1: 0, 2: None, 3: None}
        )  # 0-1 matched via ports
        assert lang.is_member(good)
        bad = Configuration.build(g, {0: 0, 1: 1, 2: None, 3: None})
        assert not lang.is_member(bad)

    def test_perfect_variant(self):
        lang = MatchingLanguage(perfect=True)
        g = path_graph(4)
        partial = Configuration.build(g, {0: 0, 1: 0, 2: None, 3: None})
        assert not lang.is_member(partial)
        perfect = Configuration.build(g, {0: 0, 1: 0, 2: 1, 3: 0})
        assert lang.is_member(perfect)

    def test_perfect_canonical_on_even_cycle(self, rng):
        lang = MatchingLanguage(perfect=True)
        config = lang.member_configuration(cycle_graph(8), rng=rng)
        assert lang.is_member(config)

    def test_perfect_canonical_fails_on_odd(self, rng):
        lang = MatchingLanguage(perfect=True)
        with pytest.raises(LanguageError):
            lang.canonical_labeling(cycle_graph(7), rng=rng)

    def test_scheme_detects_one_sided_claim(self):
        scheme = MatchingScheme()
        config = Configuration.build(path_graph(3), {0: 0, 1: 1, 2: None})
        # 0 claims 1, but 1 claims 2 who refuses: both 0 and 1 inconsistent.
        verdict = scheme.run(config)
        assert not verdict.all_accept

    def test_attack_resistant(self, rng):
        scheme = MatchingScheme()
        graph = connected_gnp(10, 0.3, rng)
        bad = scheme.language.corrupted_configuration(graph, 2, rng=rng)
        assert not attack(scheme, bad, rng=rng, trials=40).fooled
