"""Cross-cutting properties every scheme must satisfy.

These are the paper's two defining conditions, machine-checked for every
exact scheme in the catalog over several graph families and random seeds:

* completeness — honest certificates convince every node on members;
* soundness (experimental) — on corrupted members, the budgeted
  adversary never finds an all-accepting assignment, and the honest
  best-effort certificates already leave at least one rejecting node.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.soundness import attack, completeness_holds
from repro.graphs.generators import (
    connected_gnp,
    cycle_graph,
    grid_graph,
    path_graph,
    random_tree,
)
from repro.graphs.weighted import weighted_copy
from repro.core import catalog
from repro.util.rng import make_rng

FAMILIES = {
    "path": lambda n, rng: path_graph(n),
    "cycle": lambda n, rng: cycle_graph(max(3, n)),
    "tree": random_tree,
    "gnp": lambda n, rng: connected_gnp(n, 0.3, rng),
    "grid": lambda n, rng: grid_graph(3, max(2, n // 3)),
}


def _prepare(name, family, n, rng):
    """(scheme, graph) — graph first, so graph-fitted specs can build."""
    graph = FAMILIES[family](n, rng)
    if name == "bipartite" and family in ("cycle", "gnp"):
        graph = grid_graph(3, max(2, n // 3))
    if catalog.get(name).weighted:
        graph = weighted_copy(graph, rng)
    return catalog.build(name, graph=graph), graph


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("name", catalog.names(kind="exact"))
class TestCompleteness:
    def test_all_nodes_accept_members(self, name, family):
        rng = make_rng(hash((name, family)) & 0xFFFFFF)
        scheme, graph = _prepare(name, family, 12, rng)
        if not scheme.language.supports_graph(graph):
            pytest.skip("language not constructible on this family")
        config = scheme.language.member_configuration(graph, rng=rng)
        assert completeness_holds(scheme, config)


@pytest.mark.parametrize("name", catalog.names(kind="exact"))
class TestDetection:
    def test_honest_certificates_detect_corruption(self, name):
        rng = make_rng(hash(name) & 0xFFFFFF)
        scheme, graph = _prepare(name, "gnp", 12, rng)
        if not scheme.language.supports_graph(graph):
            pytest.skip("language not constructible here")
        try:
            bad = scheme.language.corrupted_configuration(graph, 2, rng=rng)
        except Exception:
            pytest.skip("cannot corrupt on this graph")
        verdict = scheme.run(bad)  # honest best-effort prover
        assert not verdict.all_accept

    def test_adversary_never_fools(self, name):
        rng = make_rng(hash((name, "attack")) & 0xFFFFFF)
        scheme, graph = _prepare(name, "gnp", 10, rng)
        if not scheme.language.supports_graph(graph):
            pytest.skip("language not constructible here")
        try:
            bad = scheme.language.corrupted_configuration(graph, 2, rng=rng)
        except Exception:
            pytest.skip("cannot corrupt on this graph")
        member = scheme.language.member_configuration(graph, rng=rng)
        result = attack(scheme, bad, rng=rng, trials=30, related=[member])
        assert not result.fooled
        assert result.min_rejects >= 1


class TestPropertyBased:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        n=st.integers(min_value=4, max_value=16),
        corruptions=st.integers(min_value=1, max_value=3),
    )
    def test_spanning_tree_detection_property(self, seed, n, corruptions):
        """For random graphs, sizes and corruption counts: corrupted
        spanning-tree configurations are rejected somewhere."""
        rng = make_rng(seed)
        scheme = catalog.build("spanning-tree-ptr")
        graph = connected_gnp(n, 0.4, rng)
        try:
            bad = scheme.language.corrupted_configuration(
                graph, corruptions, rng=rng
            )
        except Exception:
            return  # corruption stayed legal; vacuous case
        assert not scheme.run(bad).all_accept

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        n=st.integers(min_value=3, max_value=12),
    )
    def test_mst_completeness_property(self, seed, n):
        """Honest MST certificates verify on random weighted graphs."""
        rng = make_rng(seed)
        scheme = catalog.build("mst")
        graph = weighted_copy(connected_gnp(n, 0.5, rng), rng)
        config = scheme.language.member_configuration(graph, rng=rng)
        assert completeness_holds(scheme, config)

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        n=st.integers(min_value=4, max_value=20),
    )
    def test_leader_completeness_property(self, seed, n):
        rng = make_rng(seed)
        scheme = catalog.build("leader")
        graph = connected_gnp(n, 0.35, rng)
        config = scheme.language.member_configuration(graph, rng=rng)
        assert completeness_holds(scheme, config)
