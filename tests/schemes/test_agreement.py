"""Tests for the agreement language and echo scheme."""

from __future__ import annotations

import pytest

from repro.core.labeling import Configuration
from repro.core.soundness import attack, completeness_holds
from repro.graphs.generators import connected_gnp, path_graph, star_graph
from repro.schemes.agreement import AgreementLanguage, AgreementScheme
from repro.util.rng import make_rng


class TestLanguage:
    def test_member(self):
        lang = AgreementLanguage(domain=10)
        config = Configuration.build(path_graph(3), {0: 4, 1: 4, 2: 4})
        assert lang.is_member(config)

    def test_disagreement_rejected(self):
        lang = AgreementLanguage(domain=10)
        config = Configuration.build(path_graph(3), {0: 4, 1: 4, 2: 5})
        assert not lang.is_member(config)

    def test_out_of_domain_rejected(self):
        lang = AgreementLanguage(domain=4)
        config = Configuration.build(path_graph(2), {0: 9, 1: 9})
        assert not lang.is_member(config)

    def test_non_int_rejected(self):
        lang = AgreementLanguage()
        config = Configuration.build(path_graph(2), {0: "a", 1: "a"})
        assert not lang.is_member(config)

    def test_canonical_uses_rng(self):
        lang = AgreementLanguage(domain=1000)
        lab = lang.canonical_labeling(path_graph(4), rng=make_rng(5))
        assert len(set(lab.values())) == 1

    def test_corruption_changes_value(self):
        lang = AgreementLanguage(domain=8)
        for value in range(8):
            assert lang.random_corruption(0, value, make_rng(value)) != value

    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            AgreementLanguage(domain=0)


class TestScheme:
    def test_completeness(self, rng):
        scheme = AgreementScheme()
        config = scheme.language.member_configuration(
            connected_gnp(10, 0.3, rng), rng=rng
        )
        assert completeness_holds(scheme, config)

    def test_single_disagreeing_node_detected(self):
        scheme = AgreementScheme()
        config = Configuration.build(star_graph(5), {0: 1, 1: 1, 2: 1, 3: 1, 4: 2})
        verdict = scheme.run(config)
        assert not verdict.all_accept

    def test_lying_echo_detected(self):
        scheme = AgreementScheme()
        config = Configuration.build(path_graph(3), {0: 1, 1: 1, 2: 2})
        # The adversary echoes 1 everywhere, hiding node 2's deviation...
        verdict = scheme.run(config, certificates={0: 1, 1: 1, 2: 1})
        # ...but node 2's own echo check catches it.
        assert 2 in verdict.rejects

    def test_attack_resistant(self, rng):
        scheme = AgreementScheme()
        graph = connected_gnp(9, 0.35, rng)
        bad = scheme.language.corrupted_configuration(graph, 2, rng=rng)
        assert not attack(scheme, bad, rng=rng, trials=40).fooled

    def test_proof_size_tracks_value_size(self, rng):
        graph = path_graph(6)
        small = AgreementScheme(AgreementLanguage(domain=2))
        big = AgreementScheme(AgreementLanguage(domain=2**48))
        cfg_small = Configuration.build(graph, {v: 1 for v in graph.nodes})
        cfg_big = Configuration.build(graph, {v: 2**47 for v in graph.nodes})
        assert big.proof_size_bits(cfg_big) > small.proof_size_bits(cfg_small)
