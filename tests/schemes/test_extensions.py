"""Tests for the extension schemes: vertex cover, bounded eccentricity,
and the radius-t coarse acyclicity tradeoff."""

from __future__ import annotations

import pytest

from repro.core.labeling import Configuration
from repro.core.soundness import attack, completeness_holds
from repro.errors import LanguageError
from repro.graphs.generators import (
    connected_gnp,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.schemes.eccentricity import (
    BoundedEccentricityLanguage,
    BoundedEccentricityScheme,
)
from repro.schemes.radius_acyclic import CoarseAcyclicScheme
from repro.schemes.vertex_cover import VertexCoverLanguage, VertexCoverScheme


class TestVertexCover:
    def test_membership(self):
        lang = VertexCoverLanguage()
        g = path_graph(4)
        good = Configuration.build(g, {0: False, 1: True, 2: True, 3: False})
        bad = Configuration.build(g, {0: True, 1: False, 2: False, 3: True})
        assert lang.is_member(good)
        assert not lang.is_member(bad)  # edge (1, 2) uncovered

    def test_canonical_covers(self, rng):
        lang = VertexCoverLanguage()
        g = connected_gnp(14, 0.3, rng)
        config = Configuration.build(g, lang.canonical_labeling(g, rng=rng))
        assert lang.is_member(config)

    def test_completeness(self, rng):
        scheme = VertexCoverScheme()
        config = scheme.language.member_configuration(
            connected_gnp(10, 0.3, rng), rng=rng
        )
        assert completeness_holds(scheme, config)

    def test_uncovered_edge_detected_at_both_ends(self):
        scheme = VertexCoverScheme()
        g = path_graph(3)
        config = Configuration.build(g, {0: True, 1: False, 2: False})
        verdict = scheme.run(config)
        assert {1, 2} <= verdict.rejects

    def test_attack_resistant(self, rng):
        scheme = VertexCoverScheme()
        graph = connected_gnp(10, 0.3, rng)
        bad = scheme.language.corrupted_configuration(graph, 2, rng=rng)
        assert not attack(scheme, bad, rng=rng, trials=40).fooled


class TestBoundedEccentricity:
    def test_membership_by_radius(self):
        lang = BoundedEccentricityLanguage(1)
        assert lang.is_member(Configuration.build(star_graph(6)))
        assert not lang.is_member(Configuration.build(path_graph(6)))

    def test_rejects_negative_bound(self):
        with pytest.raises(ValueError):
            BoundedEccentricityLanguage(-1)

    def test_canonical_raises_on_large_radius(self):
        lang = BoundedEccentricityLanguage(2)
        with pytest.raises(LanguageError):
            lang.canonical_labeling(path_graph(12))

    def test_completeness(self, rng):
        lang = BoundedEccentricityLanguage(3)
        scheme = BoundedEccentricityScheme(lang)
        config = lang.member_configuration(grid_graph(3, 4), rng=rng)
        assert completeness_holds(scheme, config)

    def test_far_graph_detected_under_attack(self, rng):
        lang = BoundedEccentricityLanguage(2)
        scheme = BoundedEccentricityScheme(lang)
        config = Configuration.build(path_graph(10))  # radius 4–5 > 2
        assert not lang.is_member(config)
        assert not attack(scheme, config, rng=rng, trials=60).fooled

    def test_distance_over_bound_rejected(self, rng):
        lang = BoundedEccentricityLanguage(2)
        scheme = BoundedEccentricityScheme(lang)
        config = lang.member_configuration(star_graph(5), rng=rng)
        certs = dict(scheme.prove(config))
        center_uid = certs[0][0]
        certs[3] = (center_uid, 5)  # above the bound
        assert not scheme.run(config, certificates=certs).all_accept

    def test_fake_center_rejected(self, rng):
        lang = BoundedEccentricityLanguage(3)
        scheme = BoundedEccentricityScheme(lang)
        config = lang.member_configuration(cycle_graph(6), rng=rng)
        # A center uid nobody owns: the dist-0 anchor cannot exist, and
        # without it, some minimum-distance node lacks a parent.
        certs = {v: (9999, 1) for v in config.graph.nodes}
        assert not scheme.run(config, certificates=certs).all_accept


class TestCoarseAcyclic:
    def _deep_path(self, n):
        g = path_graph(n)
        states = {0: None, **{i: g.port(i, i - 1) for i in range(1, n)}}
        return Configuration.build(g, states)

    @pytest.mark.parametrize("t", [1, 2, 4, 8])
    def test_completeness_on_deep_chain(self, t):
        scheme = CoarseAcyclicScheme(t)
        assert scheme.run(self._deep_path(40)).all_accept

    @pytest.mark.parametrize("t", [1, 2, 4, 8])
    def test_pointer_cycle_rejected(self, t, rng):
        scheme = CoarseAcyclicScheme(t)
        g = cycle_graph(12)
        looped = Configuration.build(
            g, {i: g.port(i, (i + 1) % 12) for i in range(12)}
        )
        result = attack(scheme, looped, rng=rng, trials=40)
        assert not result.fooled

    def test_bits_shrink_with_radius(self):
        deep = self._deep_path(128)
        sizes = [CoarseAcyclicScheme(t).proof_size_bits(deep) for t in (1, 4, 16)]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[-1] < sizes[0]

    def test_random_forests_complete(self, rng):
        scheme = CoarseAcyclicScheme(3)
        config = scheme.language.member_configuration(
            connected_gnp(15, 0.3, rng), rng=rng
        )
        assert scheme.run(config).all_accept

    def test_matches_radius_one_semantics(self):
        # t=1 coarse counters are exact depths: same accept behaviour as
        # the classic scheme on a legal forest.
        deep = self._deep_path(10)
        assert CoarseAcyclicScheme(1).run(deep).all_accept

    def test_rejects_invalid_radius(self):
        with pytest.raises(ValueError):
            CoarseAcyclicScheme(0)

    def test_wrong_coarse_counter_rejected(self):
        scheme = CoarseAcyclicScheme(2)
        config = self._deep_path(9)
        certs = dict(scheme.prove(config))
        certs[8] = certs[8] + 3
        assert not scheme.run(config, certificates=certs).all_accept
