"""Tests for acyclic, leader, spanning-tree and BFS-tree schemes."""

from __future__ import annotations


from repro.core.labeling import Configuration
from repro.core.soundness import attack, completeness_holds
from repro.core.verifier import Visibility
from repro.graphs.generators import (
    connected_gnp,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graphs.subgraphs import edges_from_pointers
from repro.schemes.acyclic import AcyclicLanguage, AcyclicScheme, pointers_from_ports
from repro.schemes.bfs_tree import BfsTreeLanguage, BfsTreeScheme
from repro.schemes.leader import LeaderLanguage, LeaderScheme
from repro.schemes.spanning_tree import (
    SpanningTreeListLanguage,
    SpanningTreeListScheme,
    SpanningTreePointerLanguage,
    SpanningTreePointerScheme,
)
from repro.util.rng import make_rng


class TestAcyclic:
    def test_membership(self):
        lang = AcyclicLanguage()
        g = cycle_graph(4)
        forest = Configuration.build(g, {0: None, 1: 0, 2: 0, 3: None})
        assert lang.is_member(forest)
        # All nodes pointing clockwise: a directed pointer cycle.
        looped = Configuration.build(g, {0: 1, 1: 1, 2: 1, 3: 0})
        assert not lang.is_member(looped)

    def test_pointers_from_ports_decodes(self):
        g = path_graph(3)
        config = Configuration.build(g, {0: 0, 1: None, 2: 0})
        assert pointers_from_ports(config) == {0: 1, 1: None, 2: 1}

    def test_completeness(self, rng):
        scheme = AcyclicScheme()
        config = scheme.language.member_configuration(
            connected_gnp(12, 0.3, rng), rng=rng
        )
        assert completeness_holds(scheme, config)

    def test_cycle_always_detected_under_attack(self, rng):
        scheme = AcyclicScheme()
        g = cycle_graph(6)
        looped = Configuration.build(g, {i: g.port(i, (i + 1) % 6) for i in range(6)})
        result = attack(scheme, looped, rng=rng, trials=60)
        assert not result.fooled

    def test_counter_must_decrease(self):
        scheme = AcyclicScheme()
        g = path_graph(2)
        config = Configuration.build(g, {0: 0, 1: None})
        verdict = scheme.run(config, certificates={0: 5, 1: 3})
        assert 0 in verdict.rejects

    def test_negative_counter_rejected(self):
        scheme = AcyclicScheme()
        config = Configuration.build(path_graph(2), {0: None, 1: None})
        verdict = scheme.run(config, certificates={0: -1, 1: 0})
        assert 0 in verdict.rejects


class TestLeader:
    def test_membership_counts_marks(self):
        lang = LeaderLanguage()
        g = path_graph(3)
        assert lang.is_member(Configuration.build(g, {0: True, 1: False, 2: False}))
        assert not lang.is_member(Configuration.build(g, {0: True, 1: True, 2: False}))
        assert not lang.is_member(
            Configuration.build(g, {0: False, 1: False, 2: False})
        )

    def test_completeness(self, rng):
        scheme = LeaderScheme()
        config = scheme.language.member_configuration(
            connected_gnp(11, 0.3, rng), rng=rng
        )
        assert completeness_holds(scheme, config)

    def test_no_leader_detected_under_attack(self, rng):
        scheme = LeaderScheme()
        g = cycle_graph(8)
        config = Configuration.build(g, {v: False for v in g.nodes})
        related = [
            scheme.language.member_configuration(g, rng=make_rng(s)) for s in range(3)
        ]
        result = attack(scheme, config, rng=rng, trials=60, related=related)
        assert not result.fooled

    def test_two_leaders_detected_under_attack(self, rng):
        scheme = LeaderScheme()
        g = path_graph(8)
        config = Configuration.build(
            g, {0: True, 7: True, **{v: False for v in range(1, 7)}}
        )
        related = [
            scheme.language.member_configuration(g, rng=make_rng(s)) for s in range(3)
        ]
        result = attack(scheme, config, rng=rng, trials=60, related=related)
        assert not result.fooled

    def test_marked_node_must_be_at_distance_zero(self):
        scheme = LeaderScheme()
        g = path_graph(2)
        config = Configuration.build(g, {0: True, 1: True})
        leader_uid = config.uid(0)
        certs = {
            0: (leader_uid, leader_uid, 0),
            1: (leader_uid, leader_uid, 1),
        }
        verdict = scheme.run(config, certificates=certs)
        assert 1 in verdict.rejects


class TestSpanningTreePointer:
    def test_membership(self, rng):
        lang = SpanningTreePointerLanguage()
        g = cycle_graph(5)
        tree = Configuration.build(
            g,
            {
                0: None,
                1: g.port(1, 0),
                2: g.port(2, 1),
                3: g.port(3, 2),
                4: g.port(4, 0),
            },
        )
        assert lang.is_member(tree)
        all_pointing = Configuration.build(
            g, {i: g.port(i, (i + 1) % 5) for i in range(5)}
        )
        assert not lang.is_member(all_pointing)

    def test_canonical_encodes_bfs(self, rng):
        lang = SpanningTreePointerLanguage()
        g = connected_gnp(10, 0.3, rng)
        config = Configuration.build(g, lang.canonical_labeling(g, rng=rng))
        assert lang.is_member(config)
        pointers = pointers_from_ports(config)
        assert len(edges_from_pointers(pointers)) == g.n - 1

    def test_completeness(self, rng):
        scheme = SpanningTreePointerScheme()
        config = scheme.language.member_configuration(
            connected_gnp(12, 0.25, rng), rng=rng
        )
        assert completeness_holds(scheme, config)

    def test_two_trees_detected_under_attack(self, rng):
        scheme = SpanningTreePointerScheme()
        g = path_graph(8)
        half = {i: g.port(i, i - 1) for i in range(1, 4)}
        other = {i: g.port(i, i + 1) for i in range(4, 7)}
        config = Configuration.build(g, {0: None, 7: None, **half, **other})
        related = [
            scheme.language.member_configuration(g, rng=make_rng(s)) for s in range(4)
        ]
        result = attack(scheme, config, rng=rng, trials=80, related=related)
        assert not result.fooled

    def test_distance_zero_reserved_for_root(self):
        scheme = SpanningTreePointerScheme()
        g = path_graph(2)
        config = Configuration.build(g, {0: None, 1: 0})
        root_uid = config.uid(0)
        verdict = scheme.run(config, certificates={0: (root_uid, 0), 1: (root_uid, 0)})
        assert 1 in verdict.rejects

    def test_root_id_disagreement_detected(self):
        scheme = SpanningTreePointerScheme()
        g = path_graph(3)
        config = Configuration.build(g, {0: None, 1: 0, 2: 0})
        certs = {0: (1, 0), 1: (1, 1), 2: (99, 2)}
        verdict = scheme.run(config, certificates=certs)
        assert not verdict.all_accept


class TestSpanningTreeList:
    def _tree_config(self, rng, n=10):
        lang = SpanningTreeListLanguage()
        g = connected_gnp(n, 0.3, rng)
        return lang, Configuration.build(g, lang.canonical_labeling(g, rng=rng))

    def test_membership(self, rng):
        lang, config = self._tree_config(rng)
        assert lang.is_member(config)

    def test_asymmetric_listing_rejected(self):
        lang = SpanningTreeListLanguage()
        g = path_graph(3)
        config = Configuration.build(
            g, {0: frozenset({0}), 1: frozenset(), 2: frozenset()}
        )
        assert not lang.is_member(config)

    def test_extra_edge_rejected(self):
        lang = SpanningTreeListLanguage()
        g = cycle_graph(4)
        config = Configuration.build(
            g, {v: frozenset(range(g.degree(v))) for v in g.nodes}
        )
        assert not lang.is_member(config)  # whole cycle is not a tree

    def test_kkp_scheme_completeness(self, rng):
        lang, config = self._tree_config(rng)
        scheme = SpanningTreeListScheme(lang, visibility=Visibility.KKP)
        assert completeness_holds(scheme, config)

    def test_full_scheme_completeness(self, rng):
        lang, config = self._tree_config(rng)
        scheme = SpanningTreeListScheme(lang, visibility=Visibility.FULL)
        assert completeness_holds(scheme, config)

    def test_echo_makes_kkp_larger_than_full(self, rng):
        lang = SpanningTreeListLanguage()
        g = star_graph(12)
        config = Configuration.build(g, lang.canonical_labeling(g, rng=rng))
        kkp = SpanningTreeListScheme(lang, visibility=Visibility.KKP)
        full = SpanningTreeListScheme(lang, visibility=Visibility.FULL)
        assert kkp.proof_size_bits(config) > full.proof_size_bits(config)

    def test_attack_resistant(self, rng):
        lang = SpanningTreeListLanguage()
        g = connected_gnp(8, 0.4, rng)
        scheme = SpanningTreeListScheme(lang)
        bad = lang.corrupted_configuration(g, 2, rng=rng)
        assert not attack(scheme, bad, rng=rng, trials=50).fooled


class TestBfsTree:
    def test_membership_requires_shortest_paths(self, rng):
        lang = BfsTreeLanguage()
        g = cycle_graph(6)
        bfs_config = Configuration.build(g, lang.canonical_labeling(g, rng=rng))
        assert lang.is_member(bfs_config)
        # A spanning tree that is NOT a BFS tree: the path all the way
        # around the cycle.
        snake = Configuration.build(
            g, {0: None, **{i: g.port(i, i - 1) for i in range(1, 6)}}
        )
        assert not lang.is_member(snake)

    def test_completeness(self, rng):
        scheme = BfsTreeScheme()
        config = scheme.language.member_configuration(
            connected_gnp(12, 0.3, rng), rng=rng
        )
        assert completeness_holds(scheme, config)

    def test_non_bfs_spanning_tree_detected_under_attack(self, rng):
        scheme = BfsTreeScheme()
        g = cycle_graph(8)
        snake = Configuration.build(
            g, {0: None, **{i: g.port(i, i - 1) for i in range(1, 8)}}
        )
        assert not scheme.language.is_member(snake)
        related = [
            scheme.language.member_configuration(g, rng=make_rng(s)) for s in range(3)
        ]
        result = attack(scheme, snake, rng=rng, trials=80, related=related)
        assert not result.fooled

    def test_lipschitz_violation_rejected(self):
        scheme = BfsTreeScheme()
        g = cycle_graph(4)
        config = scheme.language.member_configuration(g, rng=make_rng(1))
        certs = dict(scheme.prove(config))
        root_uid = certs[0][0]
        # Claim a distance far larger than any neighbor's.
        victim = max(config.graph.nodes)
        certs[victim] = (root_uid, 10)
        assert not scheme.run(config, certificates=certs).all_accept
