"""F6 — the space–radius tradeoff (extension experiment).

The paper verifies at radius 1; allowing radius-t verification trades
communication locality for certificate bits.  On acyclicity, coarse
⌊depth/t⌋ counters stay sound (pointer cycles still force an infinite
descent every t hops) while shrinking as log(n/t).
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_f6_radius_tradeoff
from repro.util.rng import make_rng


def test_fig6_radius_tradeoff(benchmark, report):
    result = benchmark.pedantic(
        experiment_f6_radius_tradeoff,
        kwargs=dict(n=256, radii=(1, 2, 4, 8, 16), rng=make_rng(8)),
        iterations=1,
        rounds=1,
    )
    report(result)
    bits = [row[1] for row in result.rows]
    assert bits == sorted(bits, reverse=True)  # monotone shrink
    assert bits[-1] < bits[0]
    assert all(row[3] is False for row in result.rows)  # never fooled
