"""F4 — self-stabilization with PLS detection.

Paper claim (the motivating application): a scheme's verifier detects
any illegal configuration within one round, enabling detection-triggered
resets.  Regenerated: detection latency, alarmed-node counts, and the
work of guarded local correction vs the global-reset baseline.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_f4_selfstab


def test_fig4_selfstab(benchmark, report):
    result = benchmark.pedantic(
        experiment_f4_selfstab,
        kwargs=dict(n=32, fault_counts=(1, 2, 4, 8), seeds=range(5)),
        iterations=1,
        rounds=1,
    )
    report(result)
    assert result.rows
    for row in result.rows:
        k, runs, latency, rejects, g_rounds, g_moves, esc, r_rounds, r_moves = row
        assert latency == 0  # alarms on the very first sweep
        assert rejects >= 1
