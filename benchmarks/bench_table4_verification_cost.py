"""T4 — communication cost of the verification round.

Paper claim: verification is one communication round; the traffic per
edge is the two endpoint certificates.  Regenerated through the actual
message-passing simulator with bit-level accounting.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_t4_verification_cost
from repro.util.rng import make_rng


def test_table4_verification_cost(benchmark, report):
    result = benchmark.pedantic(
        experiment_t4_verification_cost,
        kwargs=dict(n=24, rng=make_rng(6)),
        iterations=1,
        rounds=1,
    )
    report(result)
    assert all(row[1] == 1 for row in result.rows)  # single round
    # Traffic per edge is within a small factor of the proof size (plus
    # uid/port framing).
    for row in result.rows:
        _, _, _, total_bits, per_edge, proof_bits = row
        assert per_edge <= 4 * (proof_bits + 64)
