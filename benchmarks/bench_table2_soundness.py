"""T2 — completeness and attacked soundness for every scheme.

Paper claims: honest certificates convince every node on legal
configurations; on illegal configurations every certificate assignment
leaves at least one rejecting node.  The budgeted adversary (random +
greedy + replay pool) must never reach zero rejections.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_t2_soundness
from repro.util.rng import make_rng


def test_table2_soundness(benchmark, report):
    result = benchmark.pedantic(
        experiment_t2_soundness,
        kwargs=dict(n=12, corruption_levels=(1, 2, 4), trials=40, rng=make_rng(2)),
        iterations=1,
        rounds=1,
    )
    report(result)
    fooled = [row[3] for row in result.rows if row[3] != "-"]
    assert fooled and all(f is False for f in fooled)
    complete = [row[1] for row in result.rows]
    assert all(complete)
