"""Sanity-check the committed benchmark snapshots against the docs.

The experiment book (``docs/EXPERIMENTS.md``) links committed table
snapshots under ``benchmarks/results/``; nothing else stops a snapshot
from going missing or silently drifting out of schema when an
experiment gains or renames a column.  This script fails CI when:

* a ``benchmarks/results/*.txt`` file referenced by the docs does not
  exist, or exists but is not a parseable experiment table;
* a committed snapshot's header row no longer matches the column
  schema its experiment currently produces (the ``*_HEADERS``
  constants in :mod:`repro.analysis.experiments` — single-sourced with
  the experiment functions, so a schema change must regenerate the
  snapshot in the same commit);
* a committed snapshot is not referenced by the docs at all (dead
  weight the book does not explain);
* a ``BENCH_*.json`` perf-ratchet snapshot (see
  ``benchmarks/bench_metrics.py``) is missing, malformed, or thinner
  than the floor the ratchet promises (>= 8 schemes at >= 3 sizes,
  every cell a non-negative integer), or is not referenced by the docs;
* the wall-clock (``bench_wallclock.py``), certification-service
  (``bench_service.py``), or concurrency (``bench_concurrency.py``)
  ceiling snapshot is missing, malformed, or committed with cells
  above the acceptance ceilings.

Run it from the repository root::

    PYTHONPATH=src python benchmarks/check_results.py
"""

from __future__ import annotations

import json
import pathlib
import re
import sys

from repro.analysis.experiments import (
    ADV_HEADERS,
    ES_HEADERS,
    F4B_HEADERS,
    F4_HEADERS,
    T5_HEADERS,
)

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = ROOT / "benchmarks" / "results"
DOCS = ROOT / "docs" / "EXPERIMENTS.md"

#: snapshot stem -> (title prefix, header schema of the producing experiment).
SCHEMAS: dict[str, tuple[str, tuple[str, ...]]] = {
    "adv": ("ADV", ADV_HEADERS),
    "es": ("ES", ES_HEADERS),
    "f4": ("F4", F4_HEADERS),
    "f4b": ("F4b", F4B_HEADERS),
    "t5": ("T5", T5_HEADERS),
}


#: BENCH ratchet snapshots: filename -> metric they must declare.
BENCH_SNAPSHOTS = {
    "BENCH_views.json": "views.built",
    "BENCH_messages.json": "messages.sent",
}
BENCH_SCHEMA = "bench-metrics/v1"
BENCH_MIN_SCHEMES = 8
BENCH_MIN_SIZES = 3

#: Certification-service ceiling snapshot (see ``benchmarks/bench_service.py``).
SERVICE_SNAPSHOT = "BENCH_service.json"
SERVICE_SCHEMA = "bench-service/v1"
SERVICE_METRICS = ("cached_s", "cold_s")
#: The committed grid must reach the paper-facing size...
SERVICE_MIN_LARGEST_N = 100_000
#: ...the cold side must sit under the cold acceptance ceiling...
SERVICE_COLD_CEILING_S = 20.0
#: ...and the cached side under the size-independent O(1) ceiling.
SERVICE_CACHED_CEILING_S = 0.05

#: Concurrency ceiling snapshot (see ``benchmarks/bench_concurrency.py``).
CONCURRENCY_SNAPSHOT = "BENCH_concurrency.json"
CONCURRENCY_SCHEMA = "bench-concurrency/v1"
CONCURRENCY_METRICS = ("serial_s", "threaded_s")
CONCURRENCY_WORKLOADS = ("cold", "cached")
#: Every committed cell must sit under the acceptance ceiling.
CONCURRENCY_CEILING_S = 30.0

#: Wall-clock ceiling snapshots (see ``benchmarks/bench_wallclock.py``).
WALLCLOCK_SNAPSHOT = "BENCH_wallclock.json"
WALLCLOCK_SCHEMA = "bench-wallclock/v2"
WALLCLOCK_METRIC = "certify.seconds"
WALLCLOCK_MIN_SCHEMES = 3
#: The committed grid must reach the paper-facing size...
WALLCLOCK_MIN_LARGEST_N = 100_000
#: ...and every committed cell must sit under the acceptance ceiling.
WALLCLOCK_CEILING_S = 10.0
#: The v2 end-to-end sub-grid: generate + prove + decide per instance.
WALLCLOCK_E2E_METRIC = "endtoend.seconds"
#: The end-to-end grid must reach the generation-layer headline size...
WALLCLOCK_E2E_MIN_LARGEST_N = 1_000_000
#: ...under its own acceptance ceiling.
WALLCLOCK_E2E_CEILING_S = 60.0


def referenced_snapshots() -> set[str]:
    """Snapshot filenames the experiment book links to."""
    text = DOCS.read_text(encoding="utf-8")
    return set(re.findall(r"benchmarks/results/([\w.-]+\.(?:txt|json))", text))


def check_bench_snapshot(path: pathlib.Path, metric: str) -> list[str]:
    """Schema failures for one committed BENCH_*.json ratchet snapshot."""
    name = path.name
    if not path.is_file():
        return [f"{name}: missing — run `bench_metrics.py --write` and commit"]
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        return [f"{name}: not valid JSON ({error})"]
    failures: list[str] = []
    if data.get("schema") != BENCH_SCHEMA:
        failures.append(f"{name}: schema {data.get('schema')!r} != {BENCH_SCHEMA!r}")
    if data.get("metric") != metric:
        failures.append(f"{name}: metric {data.get('metric')!r} != {metric!r}")
    tolerance = data.get("tolerance")
    if not isinstance(tolerance, (int, float)) or not 0 < tolerance < 1:
        failures.append(f"{name}: tolerance {tolerance!r} not in (0, 1)")
    sizes = data.get("sizes")
    if not isinstance(sizes, list) or len(sizes) < BENCH_MIN_SIZES:
        failures.append(f"{name}: needs >= {BENCH_MIN_SIZES} sizes, got {sizes!r}")
        sizes = []
    schemes = data.get("schemes")
    if not isinstance(schemes, dict) or len(schemes) < BENCH_MIN_SCHEMES:
        count = len(schemes) if isinstance(schemes, dict) else schemes
        failures.append(f"{name}: needs >= {BENCH_MIN_SCHEMES} schemes, got {count!r}")
        return failures
    expected_keys = {str(n) for n in sizes}
    for scheme, cells in sorted(schemes.items()):
        if not isinstance(cells, dict) or set(cells) != expected_keys:
            failures.append(
                f"{name}: {scheme} cells {sorted(cells)} != "
                f"sizes {sorted(expected_keys)}"
            )
            continue
        for n, value in cells.items():
            if not isinstance(value, int) or value < 0:
                failures.append(
                    f"{name}: {scheme} n={n} value {value!r} is not a "
                    "non-negative integer"
                )
    return failures


def _check_wallclock_grid(
    name: str,
    label: str,
    data: dict,
    min_largest_n: int,
    ceiling_s: float,
) -> list[str]:
    """Schema failures for one wall-clock grid (certify or endtoend)."""
    failures: list[str] = []
    sizes = data.get("sizes")
    if (
        not isinstance(sizes, list)
        or not sizes
        or not all(isinstance(n, int) and n > 0 for n in sizes)
    ):
        failures.append(
            f"{name}: {label} sizes {sizes!r} is not a list of positive ints"
        )
        sizes = []
    elif max(sizes) < min_largest_n:
        failures.append(
            f"{name}: {label} largest size {max(sizes)} < the paper-facing "
            f"{min_largest_n}"
        )
    schemes = data.get("schemes")
    if not isinstance(schemes, dict) or len(schemes) < WALLCLOCK_MIN_SCHEMES:
        count = len(schemes) if isinstance(schemes, dict) else schemes
        failures.append(
            f"{name}: {label} needs >= {WALLCLOCK_MIN_SCHEMES} schemes, "
            f"got {count!r}"
        )
        return failures
    expected_keys = {str(n) for n in sizes}
    for scheme, cells in sorted(schemes.items()):
        if not isinstance(cells, dict) or set(cells) != expected_keys:
            failures.append(
                f"{name}: {label} {scheme} cells {sorted(cells)} != "
                f"sizes {sorted(expected_keys)}"
            )
            continue
        for n, value in cells.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                failures.append(
                    f"{name}: {label} {scheme} n={n} value {value!r} is not "
                    "a number"
                )
            elif not 0 < value <= ceiling_s:
                failures.append(
                    f"{name}: {label} {scheme} n={n} committed {value}s "
                    f"outside (0, {ceiling_s:.0f}s] — the acceptance "
                    "ceiling must hold at commit time"
                )
    return failures


def check_wallclock_snapshot(path: pathlib.Path) -> list[str]:
    """Schema failures for the committed wall-clock ceiling snapshot."""
    name = path.name
    if not path.is_file():
        return [f"{name}: missing — run `bench_wallclock.py --write` and commit"]
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        return [f"{name}: not valid JSON ({error})"]
    failures: list[str] = []
    if data.get("schema") != WALLCLOCK_SCHEMA:
        failures.append(
            f"{name}: schema {data.get('schema')!r} != {WALLCLOCK_SCHEMA!r}"
        )
    if data.get("metric") != WALLCLOCK_METRIC:
        failures.append(
            f"{name}: metric {data.get('metric')!r} != {WALLCLOCK_METRIC!r}"
        )
    failures.extend(
        _check_wallclock_grid(
            name, "certify", data, WALLCLOCK_MIN_LARGEST_N, WALLCLOCK_CEILING_S
        )
    )
    endtoend = data.get("endtoend")
    if not isinstance(endtoend, dict):
        failures.append(
            f"{name}: endtoend grid missing — the v2 schema commits the "
            "generate + prove + decide ceiling alongside certify"
        )
        return failures
    if endtoend.get("metric") != WALLCLOCK_E2E_METRIC:
        failures.append(
            f"{name}: endtoend metric {endtoend.get('metric')!r} != "
            f"{WALLCLOCK_E2E_METRIC!r}"
        )
    failures.extend(
        _check_wallclock_grid(
            name,
            "endtoend",
            endtoend,
            WALLCLOCK_E2E_MIN_LARGEST_N,
            WALLCLOCK_E2E_CEILING_S,
        )
    )
    return failures


def check_service_snapshot(path: pathlib.Path) -> list[str]:
    """Schema failures for the committed service ceiling snapshot."""
    name = path.name
    if not path.is_file():
        return [f"{name}: missing — run `bench_service.py --write` and commit"]
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        return [f"{name}: not valid JSON ({error})"]
    failures: list[str] = []
    if data.get("schema") != SERVICE_SCHEMA:
        failures.append(f"{name}: schema {data.get('schema')!r} != {SERVICE_SCHEMA!r}")
    sizes = data.get("sizes")
    if (
        not isinstance(sizes, list)
        or not sizes
        or not all(isinstance(n, int) and n > 0 for n in sizes)
    ):
        failures.append(f"{name}: sizes {sizes!r} is not a list of positive ints")
        sizes = []
    elif max(sizes) < SERVICE_MIN_LARGEST_N:
        failures.append(
            f"{name}: largest size {max(sizes)} < the paper-facing "
            f"{SERVICE_MIN_LARGEST_N}"
        )
    metrics = data.get("metrics")
    if not isinstance(metrics, dict) or set(metrics) != set(SERVICE_METRICS):
        keys = sorted(metrics) if isinstance(metrics, dict) else metrics
        failures.append(f"{name}: metrics {keys!r} != {sorted(SERVICE_METRICS)}")
        return failures
    ceilings = {
        "cold_s": SERVICE_COLD_CEILING_S,
        "cached_s": SERVICE_CACHED_CEILING_S,
    }
    expected_keys = {str(n) for n in sizes}
    for metric, cells in sorted(metrics.items()):
        if not isinstance(cells, dict) or set(cells) != expected_keys:
            failures.append(
                f"{name}: {metric} cells {sorted(cells)} != "
                f"sizes {sorted(expected_keys)}"
            )
            continue
        for n, value in cells.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                failures.append(
                    f"{name}: {metric} n={n} value {value!r} is not a number"
                )
            elif not 0 < value <= ceilings[metric]:
                failures.append(
                    f"{name}: {metric} n={n} committed {value}s outside "
                    f"(0, {ceilings[metric]:g}s] — the acceptance ceiling "
                    "must hold at commit time"
                )
    return failures


def check_concurrency_snapshot(path: pathlib.Path) -> list[str]:
    """Schema failures for the committed concurrency ceiling snapshot."""
    name = path.name
    if not path.is_file():
        return [
            f"{name}: missing — run `bench_concurrency.py --write` and commit"
        ]
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        return [f"{name}: not valid JSON ({error})"]
    failures: list[str] = []
    if data.get("schema") != CONCURRENCY_SCHEMA:
        failures.append(
            f"{name}: schema {data.get('schema')!r} != {CONCURRENCY_SCHEMA!r}"
        )
    threads = data.get("client_threads")
    if not isinstance(threads, int) or threads < 2:
        failures.append(
            f"{name}: client_threads {threads!r} — the threaded side must "
            "actually be concurrent (>= 2)"
        )
    metrics = data.get("metrics")
    if not isinstance(metrics, dict) or set(metrics) != set(
        CONCURRENCY_METRICS
    ):
        keys = sorted(metrics) if isinstance(metrics, dict) else metrics
        failures.append(
            f"{name}: metrics {keys!r} != {sorted(CONCURRENCY_METRICS)}"
        )
        return failures
    expected_keys = set(CONCURRENCY_WORKLOADS)
    for metric, cells in sorted(metrics.items()):
        if not isinstance(cells, dict) or set(cells) != expected_keys:
            failures.append(
                f"{name}: {metric} cells {sorted(cells)} != "
                f"workloads {sorted(expected_keys)}"
            )
            continue
        for workload, value in cells.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                failures.append(
                    f"{name}: {metric} {workload} value {value!r} is not a "
                    "number"
                )
            elif not 0 < value <= CONCURRENCY_CEILING_S:
                failures.append(
                    f"{name}: {metric} {workload} committed {value}s outside "
                    f"(0, {CONCURRENCY_CEILING_S:g}s] — the acceptance "
                    "ceiling must hold at commit time"
                )
    return failures


def parse_table(path: pathlib.Path) -> tuple[str, tuple[str, ...], int]:
    """(title, headers, data row count) of a rendered experiment table."""
    lines = path.read_text(encoding="utf-8").splitlines()
    if len(lines) < 4:
        raise ValueError("too short to be an experiment table")
    title = lines[0]
    if not (title.startswith("== ") and title.endswith(" ==")):
        raise ValueError(f"first line is not a table title: {title!r}")
    headers = tuple(re.split(r"\s{2,}", lines[1].strip()))
    if not re.fullmatch(r"[-\s]+", lines[2]):
        raise ValueError("third line is not a header separator")
    data_rows = 0
    for line in lines[3:]:
        if line.startswith("* ") or not line.strip():
            break
        data_rows += 1
    if not data_rows:
        raise ValueError("table has no data rows")
    return title[3:-3], headers, data_rows


def main() -> int:
    failures: list[str] = []
    referenced = referenced_snapshots()
    if not referenced:
        failures.append(f"{DOCS}: no benchmarks/results/ links found")
    for name, metric in sorted(BENCH_SNAPSHOTS.items()):
        failures.extend(check_bench_snapshot(RESULTS_DIR / name, metric))
        if name not in referenced:
            failures.append(
                f"{name}: ratchet snapshot not referenced by docs/EXPERIMENTS.md"
            )
    failures.extend(check_wallclock_snapshot(RESULTS_DIR / WALLCLOCK_SNAPSHOT))
    if WALLCLOCK_SNAPSHOT not in referenced:
        failures.append(
            f"{WALLCLOCK_SNAPSHOT}: ceiling snapshot not referenced by "
            "docs/EXPERIMENTS.md"
        )
    failures.extend(check_service_snapshot(RESULTS_DIR / SERVICE_SNAPSHOT))
    if SERVICE_SNAPSHOT not in referenced:
        failures.append(
            f"{SERVICE_SNAPSHOT}: ceiling snapshot not referenced by "
            "docs/EXPERIMENTS.md"
        )
    failures.extend(
        check_concurrency_snapshot(RESULTS_DIR / CONCURRENCY_SNAPSHOT)
    )
    if CONCURRENCY_SNAPSHOT not in referenced:
        failures.append(
            f"{CONCURRENCY_SNAPSHOT}: ceiling snapshot not referenced by "
            "docs/EXPERIMENTS.md"
        )
    for name in sorted(referenced):
        path = RESULTS_DIR / name
        if name.endswith(".json"):
            if name not in BENCH_SNAPSHOTS and name not in (
                WALLCLOCK_SNAPSHOT,
                SERVICE_SNAPSHOT,
                CONCURRENCY_SNAPSHOT,
            ):
                failures.append(
                    f"{name}: JSON snapshot not registered in "
                    "benchmarks/check_results.py"
                )
            continue
        if not path.is_file():
            failures.append(f"{name}: referenced by docs/EXPERIMENTS.md but missing")
            continue
        try:
            title, headers, data_rows = parse_table(path)
        except ValueError as error:
            failures.append(f"{name}: unparseable snapshot ({error})")
            continue
        schema = SCHEMAS.get(path.stem)
        if schema is None:
            failures.append(
                f"{name}: no schema registered in benchmarks/check_results.py "
                "(add it next to the experiment's *_HEADERS constant)"
            )
            continue
        prefix, expected = schema
        if not title.startswith(prefix):
            failures.append(
                f"{name}: table title {title!r} does not start with {prefix!r}"
            )
        if headers != expected:
            failures.append(
                f"{name}: stale schema — snapshot columns {list(headers)} != "
                f"experiment columns {list(expected)}; regenerate with "
                f"`pytest benchmarks/ --benchmark-only`"
            )
    committed = {
        path.name
        for pattern in ("*.txt", "*.json")
        for path in RESULTS_DIR.glob(pattern)
    }
    for name in sorted(committed - referenced):
        failures.append(
            f"{name}: committed under benchmarks/results/ but never referenced "
            "by docs/EXPERIMENTS.md"
        )
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    print(
        f"ok: {len(referenced)} committed snapshots match their schemas "
        f"(incl. {len(BENCH_SNAPSHOTS)} perf-ratchet files and the "
        "wall-clock, service, and concurrency ceilings)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
