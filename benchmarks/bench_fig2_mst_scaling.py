"""F2 — MST proof size vs n, and Borůvka phase counts.

Paper claims: O(log² n)-bit certificates built from at most
⌈log₂ n⌉ phases of parallel Borůvka.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_f2_mst_scaling
from repro.util.rng import make_rng


def test_fig2_mst_scaling(benchmark, report):
    result = benchmark.pedantic(
        experiment_f2_mst_scaling,
        kwargs=dict(sizes=(8, 16, 32, 64, 128), rng=make_rng(4)),
        iterations=1,
        rounds=1,
    )
    report(result)
    for row in result.rows:
        n, bits, ratio, phases, bound = row
        assert phases <= bound
    # Super-logarithmic but polylog: bits/log² n bounded, bits/log n grows.
    first, last = result.rows[0], result.rows[-1]
    assert last[2] < 4 * first[2]
    assert not any("VIOLATION" in note for note in result.notes)
