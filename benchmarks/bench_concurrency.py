"""Serial vs threaded front-end throughput: the concurrency ceiling.

PR "thread-safe observability + concurrent certification front end"
made the HTTP server a :class:`~http.server.ThreadingHTTPServer`.  The
claim worth a committed ceiling is operational, not a speedup boast:
pushing a workload through the threaded front end with several
keep-alive clients must (a) decide every envelope correctly with a
balanced stats ledger, and (b) stay inside a wall-clock ceiling on
both the serial and the concurrent path — a lock-contention regression
(say, the obs root lock serializing whole submits, or the gate turning
into a convoy) shows up here as a threaded cell blowing past its
committed time.

Two workloads, each timed end-to-end over real HTTP round trips:

``cold``
    :data:`COLD_ENVELOPES` distinct envelopes, every one a full
    validate/rebuild/decide, submitted by 1 client vs
    :data:`CLIENT_THREADS` concurrent clients (disjoint slices).
``cached``
    One body certified once, then :data:`CACHED_RESUBMITS` fresh-nonce
    resubmissions — the O(1) hot path, where wall clock is dominated by
    HTTP round trips and the locks this PR added.

Correctness is asserted inline before any timing is recorded: every
verdict accepted, zero replays, ``server.errors`` empty, and the stats
ledger exactly balanced (hits + misses == submits).

Like the sibling benchmarks, the committed snapshot at
``benchmarks/results/BENCH_concurrency.json`` is a *ceiling*:
``--check`` fails only on cells slower than ``HEADROOM`` x committed
(past the noise floor) or past the absolute ceiling.  Faster runs
always pass; ``--write`` re-anchors.

Usage::

    PYTHONPATH=src python benchmarks/bench_concurrency.py --check
    PYTHONPATH=src python benchmarks/bench_concurrency.py --write
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import threading
import time
from typing import Any, Mapping

from repro.graphs.generators import random_tree
from repro.service import CertificationService, build_envelope
from repro.service.client import CertifyClient
from repro.service.httpd import make_server
from repro.util.rng import make_rng

ROOT = pathlib.Path(__file__).resolve().parent
RESULTS_DIR = ROOT / "results"
SNAPSHOT_PATH = RESULTS_DIR / "BENCH_concurrency.json"

SCHEMA = "bench-concurrency/v1"
SCHEME = "spanning-tree-ptr"
N = 64
WORKLOADS = ("cold", "cached")
METRICS = ("serial_s", "threaded_s")
#: Concurrent keep-alive clients on the threaded path.
CLIENT_THREADS = 4
#: Distinct bodies in the ``cold`` workload.
COLD_ENVELOPES = 32
#: Fresh-nonce resubmissions in the ``cached`` workload.
CACHED_RESUBMITS = 256
#: Ratio ceiling against the committed snapshot (wall clock is noisy).
HEADROOM = 4.0
#: Cells faster than this are never failed on ratio alone.
NOISE_FLOOR_S = 0.25
#: Absolute ceiling for any cell — saturation convoys and lock storms
#: land far past this; honest runs sit far below.
ABSOLUTE_CEILING_S = 30.0
#: Timing repetitions per cell; the minimum is recorded.
REPS = 3


def _cold_payloads(tag: str) -> list[bytes]:
    # explicit per-seed random trees: some catalog samplers are
    # deterministic in the seed, and cold means every body must miss
    # the verdict cache
    return [
        build_envelope(
            SCHEME,
            n=N,
            seed=100 + index,
            nonce=f"{tag}-{index}",
            graph=random_tree(N, make_rng(100 + index)),
        ).to_bytes()
        for index in range(COLD_ENVELOPES)
    ]


def _timed_run(
    payloads: list[bytes],
    clients: int,
    warm: bytes | None = None,
    expect_hits: int = 0,
) -> float:
    """Wall seconds to push ``payloads`` through a fresh threaded server.

    ``clients`` keep-alive clients split the payloads round-robin
    (1 = the serial baseline).  ``warm`` is submitted once before the
    clock starts (priming the verdict cache); ``expect_hits`` pins how
    many of the timed submissions must be served from it.
    """
    service = CertificationService()
    server = make_server(port=0, service=service, max_inflight=clients + 4)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = "http://%s:%d" % server.server_address[:2]
    try:
        if warm is not None:
            with CertifyClient(url) as client:
                if not client.submit(warm).accepted:
                    raise SystemExit("concurrency: warmup envelope rejected")
        slices = [payloads[index::clients] for index in range(clients)]
        failures: list[str] = []
        barrier = threading.Barrier(clients + 1)

        def make_worker(chunk: list[bytes]):
            def worker() -> None:
                try:
                    with CertifyClient(url) as client:
                        barrier.wait()
                        for payload in chunk:
                            if not client.submit(payload).accepted:
                                failures.append("verdict rejected")
                except Exception as error:  # pragma: no cover - on failure
                    failures.append(repr(error))

            return worker

        threads = [
            threading.Thread(target=make_worker(chunk)) for chunk in slices
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        if failures:
            raise SystemExit(f"concurrency: {failures[0]}")
        if server.errors:
            raise SystemExit(f"concurrency: handler error {server.errors[0]}")
        stats = service.metrics()["stats"]
        submitted = len(payloads) + (1 if warm is not None else 0)
        if stats["submitted"] != submitted or stats["replays_rejected"]:
            raise SystemExit(
                f"concurrency: ledger counted {stats['submitted']} submits "
                f"({stats['replays_rejected']} replays), expected {submitted}"
            )
        if stats["cache_hits"] + stats["cache_misses"] != submitted:
            raise SystemExit("concurrency: hits + misses != submits")
        if stats["cache_hits"] != expect_hits:
            raise SystemExit(
                f"concurrency: {stats['cache_hits']} cache hits, "
                f"expected {expect_hits}"
            )
        return elapsed
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def measure_cell(workload: str) -> dict[str, float]:
    serial = threaded = float("inf")
    for rep in range(REPS):
        if workload == "cold":
            serial = min(
                serial, _timed_run(_cold_payloads(f"s{rep}"), clients=1)
            )
            threaded = min(
                threaded,
                _timed_run(_cold_payloads(f"t{rep}"), clients=CLIENT_THREADS),
            )
        else:
            base = build_envelope(SCHEME, n=N, seed=77)
            hot = [
                base.with_nonce(f"{rep}-{index}").to_bytes()
                for index in range(CACHED_RESUBMITS)
            ]
            kwargs = dict(warm=base.to_bytes(), expect_hits=CACHED_RESUBMITS)
            serial = min(serial, _timed_run(hot, clients=1, **kwargs))
            threaded = min(
                threaded, _timed_run(hot, clients=CLIENT_THREADS, **kwargs)
            )
    return {"serial_s": round(serial, 4), "threaded_s": round(threaded, 4)}


def measure_all() -> dict[str, dict[str, float]]:
    grid: dict[str, dict[str, float]] = {metric: {} for metric in METRICS}
    for workload in WORKLOADS:
        cell = measure_cell(workload)
        for metric in METRICS:
            grid[metric][workload] = cell[metric]
        count = COLD_ENVELOPES if workload == "cold" else CACHED_RESUBMITS
        print(
            f"measured {workload}: serial {cell['serial_s']:.3f}s "
            f"({count / cell['serial_s']:.0f}/s), threaded x{CLIENT_THREADS} "
            f"{cell['threaded_s']:.3f}s ({count / cell['threaded_s']:.0f}/s)"
        )
    return grid


def snapshot(cells: Mapping[str, Mapping[str, float]]) -> dict[str, Any]:
    return {
        "schema": SCHEMA,
        "scheme": SCHEME,
        "n": N,
        "client_threads": CLIENT_THREADS,
        "cold_envelopes": COLD_ENVELOPES,
        "cached_resubmits": CACHED_RESUBMITS,
        "headroom": HEADROOM,
        "noise_floor_s": NOISE_FLOOR_S,
        "ceiling_s": ABSOLUTE_CEILING_S,
        "workloads": list(WORKLOADS),
        "metrics": {metric: dict(cells[metric]) for metric in sorted(cells)},
    }


def compare(
    committed: Mapping[str, Any], measured: Mapping[str, Mapping[str, float]]
) -> list[str]:
    """Failure messages (empty = within every ceiling)."""
    headroom = float(committed.get("headroom", HEADROOM))
    floor = float(committed.get("noise_floor_s", NOISE_FLOOR_S))
    ceiling = float(committed.get("ceiling_s", ABSOLUTE_CEILING_S))
    failures: list[str] = []
    old_cells = {
        (metric, workload): value
        for metric, workloads in committed.get("metrics", {}).items()
        for workload, value in workloads.items()
    }
    new_cells = {
        (metric, workload): value
        for metric, workloads in measured.items()
        for workload, value in workloads.items()
    }
    for key in sorted(old_cells.keys() - new_cells.keys()):
        failures.append(f"concurrency: committed cell {key} no longer measured")
    for key in sorted(new_cells.keys() - old_cells.keys()):
        failures.append(f"concurrency: new cell {key} missing from the snapshot")
    for key in sorted(old_cells.keys() & new_cells.keys()):
        old, new = old_cells[key], new_cells[key]
        metric, workload = key
        if new > ceiling:
            failures.append(
                f"concurrency: {metric} {workload} took {new:.4f}s > "
                f"absolute ceiling {ceiling:g}s"
            )
        elif new > floor and new > old * headroom:
            failures.append(
                f"concurrency: {metric} {workload} took {new:.4f}s > "
                f"{headroom:.0f}x the committed {old:.4f}s"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--write", action="store_true", help="measure and commit the snapshot"
    )
    action.add_argument(
        "--check", action="store_true", help="measure and compare to the snapshot"
    )
    args = parser.parse_args(argv)

    grid = measure_all()
    if args.write:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        SNAPSHOT_PATH.write_text(
            json.dumps(snapshot(grid), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {SNAPSHOT_PATH.relative_to(ROOT.parent)}")
        return 0

    if not SNAPSHOT_PATH.is_file():
        print(
            f"FAIL {SNAPSHOT_PATH.name}: missing — run "
            "bench_concurrency.py --write",
            file=sys.stderr,
        )
        return 1
    committed = json.loads(SNAPSHOT_PATH.read_text(encoding="utf-8"))
    failures = compare(committed, grid)
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    print(
        f"ok: cold serial {grid['serial_s']['cold']:.3f}s vs threaded "
        f"{grid['threaded_s']['cold']:.3f}s; cached serial "
        f"{grid['serial_s']['cached']:.3f}s vs threaded "
        f"{grid['threaded_s']['cached']:.3f}s (ceiling {ABSOLUTE_CEILING_S:g}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
