"""Deterministic cost-unit benchmarks and the committed perf ratchet.

Every cell measures one scheme at one size in the flight recorder's
deterministic counters (:mod:`repro.obs`) — never wall clock:

* ``views.built`` — LocalView constructions for a full certify (view
  build + decide over prebuilt views) plus one incremental resweep
  after a single-node change (``refresh_views`` over the node's ball).
  This is the audited unit of every incremental-engine claim, so the
  ratchet guards both the from-scratch cost and the reuse path.
* ``messages.sent`` — delivered messages of one distributed
  verification round (:func:`repro.local.verification_round.
  distributed_verification`) under the same seeded instance.

Graphs come from each spec's own sampler under a cell-deterministic
seed, so the measured numbers are bit-stable across runs and machines.

The committed snapshots live at ``benchmarks/results/BENCH_views.json``
and ``benchmarks/results/BENCH_messages.json``.  CI runs ``--check``:
any cell more than ``TOLERANCE`` (10%) above its committed value fails
the build — a perf regression in the audited unit must either be fixed
or be justified and re-committed via ``--write`` in the same change.
Cells *below* the snapshot (improvements) are reported but pass; run
``--write`` to ratchet them down.

Usage::

    PYTHONPATH=src python benchmarks/bench_metrics.py --check
    PYTHONPATH=src python benchmarks/bench_metrics.py --write
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import zlib
from typing import Any, Mapping

from repro.core import catalog
from repro.local.verification_round import distributed_verification
from repro.obs import metrics as obs
from repro.util.rng import make_rng

ROOT = pathlib.Path(__file__).resolve().parent
RESULTS_DIR = ROOT / "results"
VIEWS_PATH = RESULTS_DIR / "BENCH_views.json"
MESSAGES_PATH = RESULTS_DIR / "BENCH_messages.json"

SCHEMA = "bench-metrics/v1"
#: A cell may grow by at most this fraction over its committed value.
TOLERANCE = 0.10

#: The benchmarked grid: catalog names x network sizes.  At least 8
#: schemes and 3 sizes (benchmarks/check_results.py enforces this on
#: the committed snapshots).
SCHEMES = (
    "agreement",
    "leader",
    "bfs-tree",
    "spanning-tree-ptr",
    "spanning-tree-list",
    "mst",
    "coloring-echo",
    "bipartite",
    "independent-set",
    "matching",
)
SIZES = (16, 32, 64)


def _cell_seed(name: str, n: int) -> int:
    """Deterministic per-cell seed (crc32, not ``hash`` — that's salted)."""
    return zlib.crc32(f"{name}:{n}".encode()) & 0x7FFFFFFF


def measure_cell(name: str, n: int) -> dict[str, int]:
    """Deterministic counters for one (scheme, n) cell."""
    spec = catalog.get(name)
    rng = make_rng(_cell_seed(name, n))
    graph = spec.sample_graph(n, rng)
    scheme = catalog.build(name, graph=graph, rng=rng)
    config = scheme.language.member_configuration(graph, rng=rng)
    certificates = scheme.prove(config)

    with obs.collect("bench.views", scheme=name, n=n) as view_metrics:
        views = scheme.build_views(config, certificates)
        scheme.run(config, certificates, views=views)
        # Incremental resweep: one node "changes", only its ball rebuilds.
        victim = min(graph.nodes)
        refreshed = scheme.refresh_views(
            config, certificates, views, [victim]
        )
        scheme.run(config, certificates, views=refreshed)

    with obs.collect("bench.messages", scheme=name, n=n) as message_metrics:
        distributed_verification(scheme, config, certificates)

    return {
        "views.built": int(view_metrics.counter("views.built")),
        "messages.sent": int(message_metrics.counter("messages.sent")),
    }


def measure_all() -> dict[str, dict[str, dict[str, int]]]:
    """``{metric: {scheme: {str(n): value}}}`` over the whole grid."""
    grid: dict[str, dict[str, dict[str, int]]] = {
        "views.built": {},
        "messages.sent": {},
    }
    for name in SCHEMES:
        for metric in grid:
            grid[metric][name] = {}
        for n in SIZES:
            cell = measure_cell(name, n)
            for metric, value in cell.items():
                grid[metric][name][str(n)] = value
    return grid


def snapshot(metric: str, cells: Mapping[str, Mapping[str, int]]) -> dict[str, Any]:
    return {
        "schema": SCHEMA,
        "metric": metric,
        "tolerance": TOLERANCE,
        "sizes": list(SIZES),
        "schemes": {name: dict(cells[name]) for name in sorted(cells)},
    }


def compare(
    committed: Mapping[str, Any],
    measured: Mapping[str, Mapping[str, int]],
    tolerance: float | None = None,
) -> list[str]:
    """Regression messages (empty = the ratchet holds).

    A cell regresses when its measured value exceeds the committed one
    by more than ``tolerance``; grid drift (a committed cell that was
    not measured, or vice versa) is also a failure — the snapshot must
    be regenerated in the same change that alters the grid.
    """
    tolerance = float(
        committed.get("tolerance", TOLERANCE) if tolerance is None else tolerance
    )
    metric = committed.get("metric", "?")
    failures: list[str] = []
    old_cells = {
        (name, n): value
        for name, sizes in committed.get("schemes", {}).items()
        for n, value in sizes.items()
    }
    new_cells = {
        (name, n): value
        for name, sizes in measured.items()
        for n, value in sizes.items()
    }
    for key in sorted(old_cells.keys() - new_cells.keys()):
        failures.append(f"{metric}: committed cell {key} no longer measured")
    for key in sorted(new_cells.keys() - old_cells.keys()):
        failures.append(
            f"{metric}: new cell {key} missing from the committed snapshot"
        )
    for key in sorted(old_cells.keys() & new_cells.keys()):
        old, new = old_cells[key], new_cells[key]
        if new > old * (1.0 + tolerance):
            name, n = key
            failures.append(
                f"{metric}: {name} n={n} regressed {old} -> {new} "
                f"(+{(new / max(1, old) - 1) * 100:.1f}%, tolerance "
                f"{tolerance * 100:.0f}%)"
            )
    return failures


def _improvements(
    committed: Mapping[str, Any], measured: Mapping[str, Mapping[str, int]]
) -> list[str]:
    metric = committed.get("metric", "?")
    notes = []
    for name, sizes in sorted(committed.get("schemes", {}).items()):
        for n, old in sorted(sizes.items(), key=lambda kv: int(kv[0])):
            new = measured.get(name, {}).get(n)
            if new is not None and new < old:
                notes.append(f"{metric}: {name} n={n} improved {old} -> {new}")
    return notes


def _write(grid: Mapping[str, Mapping[str, Mapping[str, int]]]) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    for metric, path in (
        ("views.built", VIEWS_PATH),
        ("messages.sent", MESSAGES_PATH),
    ):
        path.write_text(
            json.dumps(snapshot(metric, grid[metric]), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        print(f"wrote {path.relative_to(ROOT.parent)}")


def _check(grid: Mapping[str, Mapping[str, Mapping[str, int]]]) -> int:
    failures: list[str] = []
    for metric, path in (
        ("views.built", VIEWS_PATH),
        ("messages.sent", MESSAGES_PATH),
    ):
        if not path.is_file():
            failures.append(
                f"{path.name}: missing — run bench_metrics.py --write"
            )
            continue
        committed = json.loads(path.read_text(encoding="utf-8"))
        failures.extend(compare(committed, grid[metric]))
        for note in _improvements(committed, grid[metric]):
            print(f"note: {note} (run --write to ratchet down)")
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    cells = len(SCHEMES) * len(SIZES)
    print(f"ok: {cells} cells x 2 metrics within {TOLERANCE * 100:.0f}% "
          "of the committed ratchet")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="deterministic cost-unit perf ratchet"
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--check", action="store_true",
        help="measure and fail on >10%% regression vs the committed snapshots",
    )
    mode.add_argument(
        "--write", action="store_true",
        help="measure and (re)write the committed snapshots",
    )
    args = parser.parse_args(argv)
    grid = measure_all()
    if args.write:
        _write(grid)
        return 0
    return _check(grid)


if __name__ == "__main__":
    sys.exit(main())
