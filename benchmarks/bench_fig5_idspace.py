"""F5 — proof size vs value domain and identifier universe.

Paper claim: agreement certificates carry the value (Θ(s) bits for a
2^s-value domain); tree certificates carry a root identifier (Θ(log N)
bits for ids from [1, N]).
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_f5_idspace
from repro.util.rng import make_rng


def test_fig5_idspace(benchmark, report):
    result = benchmark.pedantic(
        experiment_f5_idspace,
        kwargs=dict(
            n=32,
            domains=(2, 2**4, 2**8, 2**16, 2**32),
            universes=(64, 2**10, 2**20, 2**40),
            rng=make_rng(7),
        ),
        iterations=1,
        rounds=1,
    )
    report(result)
    agreement = [r for r in result.rows if r[0].startswith("agreement")]
    trees = [r for r in result.rows if r[0] == "spanning-tree-ptr"]
    # Proof sizes are monotone in the domain/universe and grow by tens of
    # bits, not factors of n.
    assert agreement[0][3] < agreement[-1][3]
    assert trees[0][3] < trees[-1][3]
    assert trees[-1][3] < 200
