"""Certification-service wall clock: cold submits vs the O(1) hot path.

The service exists for one operational claim: a configuration that has
been certified once is re-certified in O(1) — a resubmission under a
fresh nonce re-hashes only the memoised part hashes, hits the verdict
LRU, and runs **no decider work at all**.  This benchmark measures both
sides of that claim on the headline workload (``spanning-tree-ptr`` on
``random_tree`` instances up to n = 100 000):

``cold_s``
    One full cold submission of a parsed envelope: parameter
    validation, nullifier spend, deterministic scheme rebuild, and the
    batched array decider.
``cached_s``
    The same envelope resubmitted under a fresh nonce.  The measurement
    asserts — via the ``service.cache.hit`` and ``decide.calls``
    counters — that the verdict came from the LRU with zero decider
    work, and the committed cell pins the O(1) claim: the ceiling is
    absolute and size-independent.

Correctness is asserted inline before any timing is recorded: the cold
served verdict must match the in-process ``decide()`` verdict
node-for-node (honest accepted; corrupted rejections identical).

Like :mod:`bench_wallclock`, the committed snapshot at
``benchmarks/results/BENCH_service.json`` is a *ceiling*: ``--check``
fails only on cells slower than ``HEADROOM`` x committed (and past the
noise floor), or past the absolute ceilings.  Faster runs always pass;
``--write`` re-anchors.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py --check
    PYTHONPATH=src python benchmarks/bench_service.py --write
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
import zlib
from typing import Any, Mapping

from repro.core import catalog
from repro.core.batch import try_batch_verdict
from repro.core.labeling import Configuration
from repro.graphs.generators import random_tree
from repro.obs import metrics as obs
from repro.service import CertificationService, build_envelope
from repro.service.server import _rng_seed
from repro.util.rng import make_rng

ROOT = pathlib.Path(__file__).resolve().parent
RESULTS_DIR = ROOT / "results"
SNAPSHOT_PATH = RESULTS_DIR / "BENCH_service.json"

SCHEMA = "bench-service/v1"
SCHEME = "spanning-tree-ptr"
SIZES = (10_000, 100_000)
METRICS = ("cold_s", "cached_s")
#: Ratio ceiling against the committed snapshot (wall clock is noisy).
HEADROOM = 4.0
#: Cells faster than this are never failed on ratio alone.
NOISE_FLOOR_S = 0.25
#: Absolute ceiling for a cold n=100 000 submission.
COLD_CEILING_S = 20.0
#: Absolute, size-independent ceiling for the hot path — this *is* the
#: O(1) claim: the same bound applies at every n.
CACHED_CEILING_S = 0.05
#: Timing repetitions per cell; the minimum is recorded.
REPS = 3


def _cell_seed(n: int) -> int:
    return zlib.crc32(f"service:{SCHEME}:{n}".encode()) & 0x7FFFFFFF


def _assert_cold_matches_in_process(envelope, result) -> None:
    """The served verdict must equal decide() on the same rebuild."""
    spec = catalog.get(envelope.scheme)
    scheme = spec.build(
        graph=envelope.graph,
        rng=make_rng(_rng_seed(envelope.body_hash)),
        **spec.resolve_params(envelope.params),
    )
    config = Configuration.build(envelope.graph, envelope.labeling)
    verdict = try_batch_verdict(scheme, config, envelope.certificates)
    if verdict is None:
        raise SystemExit(f"{SCHEME}: batched decider fell back — grid stale")
    if result.accepted != verdict.all_accept or result.rejections != len(
        verdict.rejects
    ):
        raise SystemExit(
            f"{SCHEME}: served verdict diverges from in-process decide()"
        )


def measure_cell(n: int) -> dict[str, float]:
    """(cold_s, cached_s) for one n, with inline correctness assertions."""
    seed = _cell_seed(n)
    # The scheme's own sampler is a G(n, p) pair loop — fine for the
    # catalog's sweep sizes, quadratic at n = 1e5.  The headline rides
    # the same random_tree family as bench_wallclock.
    graph = random_tree(n, make_rng(seed))
    envelope = build_envelope(SCHEME, n=n, seed=seed, graph=graph)
    service = CertificationService()

    cold = float("inf")
    for rep in range(REPS):
        fresh = CertificationService() if rep else service
        probe = envelope.with_nonce(f"cold-{rep}") if rep else envelope
        start = time.perf_counter()
        result = fresh.submit(probe)
        cold = min(cold, time.perf_counter() - start)
        if result.cache_hit or not result.accepted:
            raise SystemExit(f"{SCHEME} n={n}: cold submit not cold/accepted")
        if rep == 0:
            _assert_cold_matches_in_process(envelope, result)

    cached = float("inf")
    for rep in range(REPS):
        probe = envelope.with_nonce(f"hot-{rep}")
        with obs.collect("bench") as metrics:
            start = time.perf_counter()
            result = service.submit(probe)
            cached = min(cached, time.perf_counter() - start)
        if not result.cache_hit:
            raise SystemExit(f"{SCHEME} n={n}: resubmission missed the cache")
        if metrics.counter("service.cache.hit") != 1:
            raise SystemExit(f"{SCHEME} n={n}: cache.hit counter not charged")
        if metrics.counter("decide.calls") != 0:
            raise SystemExit(f"{SCHEME} n={n}: hot path ran decider work")
    return {"cold_s": round(cold, 4), "cached_s": round(cached, 6)}


def measure_all() -> dict[str, dict[str, float]]:
    grid: dict[str, dict[str, float]] = {m: {} for m in METRICS}
    for n in SIZES:
        cell = measure_cell(n)
        for metric in METRICS:
            grid[metric][str(n)] = cell[metric]
        print(
            f"measured {SCHEME} n={n}: cold {cell['cold_s']:.3f}s, "
            f"cached {cell['cached_s'] * 1e3:.2f}ms"
        )
    return grid


def snapshot(cells: Mapping[str, Mapping[str, float]]) -> dict[str, Any]:
    return {
        "schema": SCHEMA,
        "scheme": SCHEME,
        "headroom": HEADROOM,
        "noise_floor_s": NOISE_FLOOR_S,
        "cold_ceiling_s": COLD_CEILING_S,
        "cached_ceiling_s": CACHED_CEILING_S,
        "sizes": list(SIZES),
        "metrics": {m: dict(cells[m]) for m in sorted(cells)},
    }


def compare(
    committed: Mapping[str, Any], measured: Mapping[str, Mapping[str, float]]
) -> list[str]:
    """Failure messages (empty = within every ceiling)."""
    headroom = float(committed.get("headroom", HEADROOM))
    floor = float(committed.get("noise_floor_s", NOISE_FLOOR_S))
    ceilings = {
        "cold_s": float(committed.get("cold_ceiling_s", COLD_CEILING_S)),
        "cached_s": float(committed.get("cached_ceiling_s", CACHED_CEILING_S)),
    }
    failures: list[str] = []
    old_cells = {
        (metric, n): value
        for metric, sizes in committed.get("metrics", {}).items()
        for n, value in sizes.items()
    }
    new_cells = {
        (metric, n): value
        for metric, sizes in measured.items()
        for n, value in sizes.items()
    }
    for key in sorted(old_cells.keys() - new_cells.keys()):
        failures.append(f"service: committed cell {key} no longer measured")
    for key in sorted(new_cells.keys() - old_cells.keys()):
        failures.append(f"service: new cell {key} missing from the snapshot")
    for key in sorted(old_cells.keys() & new_cells.keys()):
        old, new = old_cells[key], new_cells[key]
        metric, n = key
        ceiling = ceilings.get(metric, COLD_CEILING_S)
        if new > ceiling:
            failures.append(
                f"service: {metric} n={n} took {new:.4f}s > absolute "
                f"ceiling {ceiling:g}s"
            )
        elif new > floor and new > old * headroom:
            failures.append(
                f"service: {metric} n={n} took {new:.4f}s > {headroom:.0f}x "
                f"the committed {old:.4f}s"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--write", action="store_true", help="measure and commit the snapshot"
    )
    action.add_argument(
        "--check", action="store_true", help="measure and compare to the snapshot"
    )
    args = parser.parse_args(argv)

    grid = measure_all()
    if args.write:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        SNAPSHOT_PATH.write_text(
            json.dumps(snapshot(grid), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {SNAPSHOT_PATH.relative_to(ROOT.parent)}")
        return 0

    if not SNAPSHOT_PATH.is_file():
        print(
            f"FAIL {SNAPSHOT_PATH.name}: missing — run bench_service.py --write",
            file=sys.stderr,
        )
        return 1
    committed = json.loads(SNAPSHOT_PATH.read_text(encoding="utf-8"))
    failures = compare(committed, grid)
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    largest = str(max(SIZES))
    print(
        f"ok: cold n={largest} {grid['cold_s'][largest]:.2f}s; cached "
        f"{grid['cached_s'][largest] * 1e3:.2f}ms (O(1) ceiling "
        f"{CACHED_CEILING_S * 1e3:.0f}ms at every n)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
