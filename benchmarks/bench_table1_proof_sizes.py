"""T1 — the results summary table: proof size per scheme per n.

Paper claims: Θ(log n) for leader/acyclic/spanning tree/BFS tree,
O(log² n) for MST, Θ(s)/O(1) for the locally checkable predicates.
The regenerated table reports measured bits plus the best-fit shape.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_t1_proof_sizes
from repro.util.rng import make_rng


def test_table1_proof_sizes(benchmark, report):
    result = benchmark.pedantic(
        experiment_t1_proof_sizes,
        kwargs=dict(sizes=(16, 32, 64, 128), rng=make_rng(1)),
        iterations=1,
        rounds=1,
    )
    report(result)
    from repro.core import catalog

    assert len(result.rows) == len(catalog.specs(kind="exact")) * 4
    # Shape check: spanning-tree bits grow sub-linearly (doubling n far
    # less than doubles the certificate).
    st_rows = [r for r in result.rows if r[0] == "spanning-tree-ptr"]
    assert st_rows[-1][3] < 2 * st_rows[0][3]
