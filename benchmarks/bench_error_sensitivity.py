"""ES — error-sensitive soundness across the scheme catalog.

Extension workload (Feuilloley–Fraigniaud 2017): corrupt certified
systems at a sweep of edit distances, bracket each configuration's true
distance to the language, attack the certificates, and estimate β —
rejections per edit — per catalog scheme.  Regenerated: the distance ×
rejection table, per-scheme β̂ and classification, the
``spanning-tree-ptr`` negative (glued orientations: Θ(n) edits, O(1)
rejections) and its registered ``es-spanning-tree`` repair.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_es_sensitivity


def test_error_sensitivity(benchmark, report):
    result = benchmark.pedantic(
        experiment_es_sensitivity,
        kwargs=dict(
            n=24, distances=(1, 2, 4, 8, 16), samples_per_distance=2,
            attack_trials=24,
        ),
        iterations=1,
        rounds=1,
    )
    report(result)
    assert result.rows
    col = result.headers.index
    by_scheme: dict[str, list] = {}
    for row in result.rows:
        by_scheme.setdefault(row[col("scheme")], []).append(row)
    # The FF17 negative: the pattern row shows O(1) rejections at the
    # pattern's exact Theta(n) distance.
    pattern_rows = [
        r for r in by_scheme["spanning-tree-ptr"] if r[col("kind")] == "pattern"
    ]
    assert pattern_rows, "spanning-tree-ptr must carry its adversarial pattern"
    for row in pattern_rows:
        assert row[col("beta_d")] < 0.2, f"negative not demonstrated: {row}"
    # The registered repair: rejections scale on every sampled distance.
    for row in by_scheme["es-spanning-tree"]:
        assert row[col("beta_d")] >= 0.2, f"repair fell below threshold: {row}"
    # The catalog-wide accounting: every scheme classified, none
    # contradicting its declared metadata.
    assert any("declaration mismatches: none" in note for note in result.notes)
