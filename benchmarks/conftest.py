"""Benchmark-suite plumbing.

Each benchmark regenerates one of the paper's tables/figures via
:mod:`repro.analysis.experiments`.  The ``report`` fixture collects the
rendered tables; they are written under ``benchmarks/results/`` and
echoed into the terminal summary, so ``pytest benchmarks/
--benchmark-only | tee bench_output.txt`` captures both the timings and
the regenerated tables.
"""

from __future__ import annotations

import pathlib

import pytest

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_COLLECTED: list[tuple[str, str]] = []


@pytest.fixture
def report():
    """Record an ExperimentResult for the terminal summary and disk."""

    def _record(result):
        table = result.to_table()
        name = result.experiment.split(":")[0].strip().lower().replace(" ", "_")
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / f"{name}.txt").write_text(table + "\n", encoding="utf-8")
        _COLLECTED.append((result.experiment, table))
        return result

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _COLLECTED:
        return
    terminalreporter.section("regenerated paper tables/figures")
    for _, table in _COLLECTED:
        terminalreporter.write_line("")
        for line in table.splitlines():
            terminalreporter.write_line(line)
