"""F4b — fault-injection sweep over the incremental detection engine.

Extension workload: corrupt exactly k registers of certified silent
systems across an n × fault-count × detector grid (exact schemes on live
protocols, approximate schemes on frozen certified states) and verify
every burst twice — incrementally through a DetectionSession and from
scratch.  Regenerated: detection/false-positive counts, view-build
accounting (the incremental engine's O(ball(k)) vs O(n) claim), and
guarded recovery cost.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_f4b_fault_sweep


def test_fig4b_fault_sweep(benchmark, report):
    result = benchmark.pedantic(
        experiment_f4b_fault_sweep,
        kwargs=dict(sizes=(32, 128), fault_counts=(1, 2, 4), seeds_per_cell=3),
        iterations=1,
        rounds=1,
    )
    report(result)
    assert result.rows
    col = result.headers.index
    for row in result.rows:
        # One-round detection on every burst that actually obliges an
        # alarm (gap-region bursts owe nothing and are excluded).
        assert row[col("detected")] == row[col("illegal")]
        assert row[col("false neg")] == 0
    # The incremental engine's acceptance bar: at n=128 every sweep of a
    # small burst must build >= 3x fewer views than a full rebuild.
    large = [row for row in result.rows if row[col("n")] == 128]
    assert large
    for row in large:
        assert row[col("view ratio")] >= 3.0, f"incremental win too small: {row}"
