"""Large-n certify wall clock and its committed ceiling.

The array-native core exists for one headline number per layer:

* **certify** — one full verification round (``scheme.run`` over honest
  certificates, dispatching to the batched CSR decider) on
  ``random_tree`` instances up to n = 100 000;
* **endtoend** — the whole pipeline per instance — vectorized
  ``member_configuration`` (the batched marker), batched ``prove``, and
  the verification round — up to n = 1 000 000, which is the size the
  generation layer was vectorized for.

Wall clock is machine-dependent, so unlike the deterministic counter
ratchet (:mod:`bench_metrics`) the committed snapshot at
``benchmarks/results/BENCH_wallclock.json`` is a *ceiling*, not a
bit-stable value.  ``--check`` fails only when a cell is slower than
``HEADROOM`` (4x) times its committed value *and* slower than
``NOISE_FLOOR_S`` in absolute terms, or slower than the paper-facing
absolute ceiling for its grid (10 s for a verification round at
n = 100 000; 60 s for the full pipeline at n = 1 000 000).  Faster runs
always pass.

``--write`` keeps committed cells **bit-identical**: cells already in
the snapshot are carried over verbatim and only missing cells (a new
scheme or size joining a grid) are measured — so regenerating the file
on any machine is a no-op unless the grids changed shape.  Re-anchor
every ceiling to this machine's timings with ``--write --reanchor``.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py --check
    PYTHONPATH=src python benchmarks/bench_wallclock.py --write
    PYTHONPATH=src python benchmarks/bench_wallclock.py --check --json-out measured.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
import zlib
from typing import Any, Mapping

from repro.core import catalog
from repro.core.batch import batch_prove, supports_batch, supports_batch_marker
from repro.graphs.generators import random_tree
from repro.util.rng import make_rng

ROOT = pathlib.Path(__file__).resolve().parent
RESULTS_DIR = ROOT / "results"
SNAPSHOT_PATH = RESULTS_DIR / "BENCH_wallclock.json"

SCHEMA = "bench-wallclock/v2"
METRIC = "certify.seconds"
#: A cell fails only beyond HEADROOM x committed (wall clock is noisy
#: and machine-dependent; 4x separates "different machine" from "the
#: fast path fell off").
HEADROOM = 4.0
#: Cells faster than this are never failed on ratio alone.
NOISE_FLOOR_S = 0.5
#: The paper-facing acceptance ceiling at the largest certify size.
ABS_CEILING_S = 10.0
#: Timing repetitions per cell; the minimum is recorded.
REPS = 3

#: The measured grid: batch-capable schemes on spanning trees.
SCHEMES = ("spanning-tree-ptr", "leader", "bfs-tree")
SIZES = (1_000, 10_000, 100_000)

#: The end-to-end grid: generate + prove + decide, one instance each.
E2E_METRIC = "endtoend.seconds"
E2E_SIZES = (10_000, 100_000, 1_000_000)
#: The acceptance ceiling for the full pipeline at n = 1 000 000.
E2E_ABS_CEILING_S = 60.0
#: The pipeline is slower per rep than a bare verification round, so
#: fewer repetitions keep --check affordable in CI.
E2E_REPS = 2


def _cell_seed(name: str, n: int) -> int:
    return zlib.crc32(f"wallclock:{name}:{n}".encode()) & 0x7FFFFFFF


def measure_cell(name: str, n: int) -> float:
    """Best-of-``REPS`` seconds for one full verification round."""
    spec = catalog.get(name)
    rng = make_rng(_cell_seed(name, n))
    graph = random_tree(n, rng)
    scheme = spec.build(graph=graph, rng=rng)
    if not supports_batch(scheme):
        raise SystemExit(f"{name}: no batched decider — wall-clock grid is stale")
    config = scheme.language.member_configuration(graph, rng=rng)
    certificates = batch_prove(scheme, config)
    graph.csr()  # cache the CSR mirror: build cost is per graph, not per run
    best = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        verdict = scheme.run(config, certificates)
        best = min(best, time.perf_counter() - start)
        if not verdict.all_accept:
            raise SystemExit(f"{name} n={n}: honest certificates rejected")
    return round(best, 4)


def measure_e2e_cell(name: str, n: int) -> float:
    """Best-of-``E2E_REPS`` seconds for generate + prove + decide.

    The graph (and its CSR mirror) is built once outside the timed
    region — instance *sampling* is a pure-Python generator and not part
    of the pipeline this grid ratchets.  Each rep restarts the rng so
    every rep generates the identical configuration.
    """
    spec = catalog.get(name)
    graph = random_tree(n, make_rng(_cell_seed(name, n)))
    scheme = spec.build(graph=graph, rng=make_rng(_cell_seed(name, n)))
    if not supports_batch_marker(scheme.language):
        raise SystemExit(f"{name}: no batched marker — end-to-end grid is stale")
    graph.csr()
    best = float("inf")
    for _rep in range(E2E_REPS):
        rng = make_rng(_cell_seed(name, n) + 1)
        start = time.perf_counter()
        config = scheme.language.member_configuration(graph, rng=rng)
        certificates = batch_prove(scheme, config)
        verdict = scheme.run(config, certificates)
        best = min(best, time.perf_counter() - start)
        if not verdict.all_accept:
            raise SystemExit(f"{name} n={n}: end-to-end round rejected")
    return round(best, 4)


def measure_all(
    committed: Mapping[str, Any] | None = None,
) -> dict[str, dict[str, dict[str, float]]]:
    """Both grids, as ``{"certify": {...}, "endtoend": {...}}``.

    With ``committed``, cells already present in the snapshot are copied
    over bit-identically instead of re-measured (the ``--write``
    contract); pass ``None`` to measure everything.
    """
    old_certify = (committed or {}).get("schemes", {})
    old_e2e = (committed or {}).get("endtoend", {}).get("schemes", {})
    grids: dict[str, dict[str, dict[str, float]]] = {"certify": {}, "endtoend": {}}
    for name in SCHEMES:
        grids["certify"][name] = {}
        for n in SIZES:
            kept = old_certify.get(name, {}).get(str(n))
            if kept is not None:
                grids["certify"][name][str(n)] = kept
                print(f"kept {name} n={n}: {kept:.3f}s (committed)")
            else:
                grids["certify"][name][str(n)] = measure_cell(name, n)
                print(f"measured {name} n={n}: {grids['certify'][name][str(n)]:.3f}s")
    for name in SCHEMES:
        grids["endtoend"][name] = {}
        for n in E2E_SIZES:
            kept = old_e2e.get(name, {}).get(str(n))
            if kept is not None:
                grids["endtoend"][name][str(n)] = kept
                print(f"kept endtoend {name} n={n}: {kept:.3f}s (committed)")
            else:
                grids["endtoend"][name][str(n)] = measure_e2e_cell(name, n)
                print(
                    f"measured endtoend {name} n={n}: "
                    f"{grids['endtoend'][name][str(n)]:.3f}s"
                )
    return grids


def snapshot(grids: Mapping[str, Mapping[str, Mapping[str, float]]]) -> dict[str, Any]:
    return {
        "schema": SCHEMA,
        "metric": METRIC,
        "headroom": HEADROOM,
        "noise_floor_s": NOISE_FLOOR_S,
        "abs_ceiling_s": ABS_CEILING_S,
        "sizes": list(SIZES),
        "schemes": {name: dict(grids["certify"][name]) for name in sorted(SCHEMES)},
        "endtoend": {
            "metric": E2E_METRIC,
            "abs_ceiling_s": E2E_ABS_CEILING_S,
            "sizes": list(E2E_SIZES),
            "schemes": {
                name: dict(grids["endtoend"][name]) for name in sorted(SCHEMES)
            },
        },
    }


def _compare_grid(
    metric: str,
    old_schemes: Mapping[str, Mapping[str, float]],
    new_schemes: Mapping[str, Mapping[str, float]],
    headroom: float,
    floor: float,
    ceiling: float,
) -> list[str]:
    failures: list[str] = []
    old_cells = {
        (name, n): value
        for name, sizes in old_schemes.items()
        for n, value in sizes.items()
    }
    new_cells = {
        (name, n): value
        for name, sizes in new_schemes.items()
        for n, value in sizes.items()
    }
    for key in sorted(old_cells.keys() - new_cells.keys()):
        failures.append(f"{metric}: committed cell {key} no longer measured")
    for key in sorted(new_cells.keys() - old_cells.keys()):
        failures.append(f"{metric}: new cell {key} missing from the snapshot")
    for key in sorted(old_cells.keys() & new_cells.keys()):
        old, new = old_cells[key], new_cells[key]
        name, n = key
        if new > ceiling:
            failures.append(
                f"{metric}: {name} n={n} took {new:.2f}s > absolute "
                f"ceiling {ceiling:.0f}s"
            )
        elif new > floor and new > old * headroom:
            failures.append(
                f"{metric}: {name} n={n} took {new:.2f}s > {headroom:.0f}x "
                f"the committed {old:.2f}s"
            )
    return failures


def compare(
    committed: Mapping[str, Any],
    grids: Mapping[str, Mapping[str, Mapping[str, float]]],
) -> list[str]:
    """Failure messages (empty = within the ceilings)."""
    headroom = float(committed.get("headroom", HEADROOM))
    floor = float(committed.get("noise_floor_s", NOISE_FLOOR_S))
    failures = _compare_grid(
        METRIC,
        committed.get("schemes", {}),
        grids["certify"],
        headroom,
        floor,
        float(committed.get("abs_ceiling_s", ABS_CEILING_S)),
    )
    e2e = committed.get("endtoend", {})
    failures.extend(
        _compare_grid(
            E2E_METRIC,
            e2e.get("schemes", {}),
            grids["endtoend"],
            headroom,
            floor,
            float(e2e.get("abs_ceiling_s", E2E_ABS_CEILING_S)),
        )
    )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--write",
        action="store_true",
        help="commit the snapshot, carrying committed cells over verbatim",
    )
    action.add_argument(
        "--check", action="store_true", help="measure and compare to the snapshot"
    )
    parser.add_argument(
        "--reanchor",
        action="store_true",
        help="with --write: re-measure every cell instead of keeping "
        "committed values",
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        default=None,
        help="also dump the measured grids as JSON (CI failure artifact)",
    )
    args = parser.parse_args(argv)
    if args.reanchor and not args.write:
        parser.error("--reanchor only makes sense with --write")

    committed: dict[str, Any] | None = None
    if SNAPSHOT_PATH.is_file():
        committed = json.loads(SNAPSHOT_PATH.read_text(encoding="utf-8"))

    keep_from = committed if args.write and not args.reanchor else None
    grids = measure_all(keep_from)
    if args.json_out:
        pathlib.Path(args.json_out).write_text(
            json.dumps(snapshot(grids), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.write:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        SNAPSHOT_PATH.write_text(
            json.dumps(snapshot(grids), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {SNAPSHOT_PATH.relative_to(ROOT.parent)}")
        return 0

    if committed is None:
        print(
            f"FAIL {SNAPSHOT_PATH.name}: missing — run bench_wallclock.py --write",
            file=sys.stderr,
        )
        return 1
    failures = compare(committed, grids)
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    largest = max(E2E_SIZES)
    worst = max(grids["endtoend"][name][str(largest)] for name in SCHEMES)
    print(
        f"ok: certify {len(SCHEMES)}x{len(SIZES)} and endtoend "
        f"{len(SCHEMES)}x{len(E2E_SIZES)} cells within ceiling; worst "
        f"endtoend n={largest} cell {worst:.2f}s "
        f"(acceptance: < {E2E_ABS_CEILING_S:.0f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
