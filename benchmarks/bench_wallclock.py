"""Large-n certify wall clock and its committed ceiling.

The array-native verification core exists for one headline number:
certifying a spanning tree on a 100 000-node graph in seconds, not
minutes.  This benchmark measures that number directly — wall-clock
seconds for one full verification round (``scheme.run`` over honest
certificates, which dispatches to the batched CSR decider) on
``random_tree`` instances — for the three schemes the array core
advertises as its fast path.

Wall clock is machine-dependent, so unlike the deterministic counter
ratchet (:mod:`bench_metrics`) the committed snapshot at
``benchmarks/results/BENCH_wallclock.json`` is a *ceiling*, not a
bit-stable value.  ``--check`` fails only when a cell is slower than
``HEADROOM`` (4x) times its committed value *and* slower than
``NOISE_FLOOR_S`` in absolute terms, or slower than the paper-facing
``ABS_CEILING_S`` (10 s — the acceptance criterion for n = 100 000).
Faster runs always pass; ``--write`` re-anchors the ceiling.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py --check
    PYTHONPATH=src python benchmarks/bench_wallclock.py --write
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
import zlib
from typing import Any, Mapping

from repro.core import catalog
from repro.core.batch import supports_batch
from repro.graphs.generators import random_tree
from repro.util.rng import make_rng

ROOT = pathlib.Path(__file__).resolve().parent
RESULTS_DIR = ROOT / "results"
SNAPSHOT_PATH = RESULTS_DIR / "BENCH_wallclock.json"

SCHEMA = "bench-wallclock/v1"
METRIC = "certify.seconds"
#: A cell fails only beyond HEADROOM x committed (wall clock is noisy
#: and machine-dependent; 4x separates "different machine" from "the
#: fast path fell off").
HEADROOM = 4.0
#: Cells faster than this are never failed on ratio alone.
NOISE_FLOOR_S = 0.5
#: The paper-facing acceptance ceiling at the largest size.
ABS_CEILING_S = 10.0
#: Timing repetitions per cell; the minimum is recorded.
REPS = 3

#: The measured grid: batch-capable schemes on spanning trees.
SCHEMES = ("spanning-tree-ptr", "leader", "bfs-tree")
SIZES = (1_000, 10_000, 100_000)


def _cell_seed(name: str, n: int) -> int:
    return zlib.crc32(f"wallclock:{name}:{n}".encode()) & 0x7FFFFFFF


def measure_cell(name: str, n: int) -> float:
    """Best-of-``REPS`` seconds for one full verification round."""
    spec = catalog.get(name)
    rng = make_rng(_cell_seed(name, n))
    graph = random_tree(n, rng)
    scheme = spec.build(graph=graph, rng=rng)
    if not supports_batch(scheme):
        raise SystemExit(f"{name}: no batched decider — wall-clock grid is stale")
    config = scheme.language.member_configuration(graph, rng=rng)
    certificates = scheme.prove(config)
    graph.csr()  # cache the CSR mirror: build cost is per graph, not per run
    best = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        verdict = scheme.run(config, certificates)
        best = min(best, time.perf_counter() - start)
        if not verdict.all_accept:
            raise SystemExit(f"{name} n={n}: honest certificates rejected")
    return round(best, 4)


def measure_all() -> dict[str, dict[str, float]]:
    grid: dict[str, dict[str, float]] = {}
    for name in SCHEMES:
        grid[name] = {}
        for n in SIZES:
            grid[name][str(n)] = measure_cell(name, n)
            print(f"measured {name} n={n}: {grid[name][str(n)]:.3f}s")
    return grid


def snapshot(cells: Mapping[str, Mapping[str, float]]) -> dict[str, Any]:
    return {
        "schema": SCHEMA,
        "metric": METRIC,
        "headroom": HEADROOM,
        "noise_floor_s": NOISE_FLOOR_S,
        "abs_ceiling_s": ABS_CEILING_S,
        "sizes": list(SIZES),
        "schemes": {name: dict(cells[name]) for name in sorted(cells)},
    }


def compare(
    committed: Mapping[str, Any], measured: Mapping[str, Mapping[str, float]]
) -> list[str]:
    """Failure messages (empty = within the ceiling)."""
    headroom = float(committed.get("headroom", HEADROOM))
    floor = float(committed.get("noise_floor_s", NOISE_FLOOR_S))
    ceiling = float(committed.get("abs_ceiling_s", ABS_CEILING_S))
    failures: list[str] = []
    old_cells = {
        (name, n): value
        for name, sizes in committed.get("schemes", {}).items()
        for n, value in sizes.items()
    }
    new_cells = {
        (name, n): value
        for name, sizes in measured.items()
        for n, value in sizes.items()
    }
    for key in sorted(old_cells.keys() - new_cells.keys()):
        failures.append(f"{METRIC}: committed cell {key} no longer measured")
    for key in sorted(new_cells.keys() - old_cells.keys()):
        failures.append(f"{METRIC}: new cell {key} missing from the snapshot")
    for key in sorted(old_cells.keys() & new_cells.keys()):
        old, new = old_cells[key], new_cells[key]
        name, n = key
        if new > ceiling:
            failures.append(
                f"{METRIC}: {name} n={n} took {new:.2f}s > absolute "
                f"ceiling {ceiling:.0f}s"
            )
        elif new > floor and new > old * headroom:
            failures.append(
                f"{METRIC}: {name} n={n} took {new:.2f}s > {headroom:.0f}x "
                f"the committed {old:.2f}s"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--write", action="store_true", help="measure and commit the snapshot"
    )
    action.add_argument(
        "--check", action="store_true", help="measure and compare to the snapshot"
    )
    args = parser.parse_args(argv)

    grid = measure_all()
    if args.write:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        SNAPSHOT_PATH.write_text(
            json.dumps(snapshot(grid), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {SNAPSHOT_PATH.relative_to(ROOT.parent)}")
        return 0

    if not SNAPSHOT_PATH.is_file():
        print(
            f"FAIL {SNAPSHOT_PATH.name}: missing — run bench_wallclock.py --write",
            file=sys.stderr,
        )
        return 1
    committed = json.loads(SNAPSHOT_PATH.read_text(encoding="utf-8"))
    failures = compare(committed, grid)
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    largest = max(SIZES)
    worst = max(grid[name][str(largest)] for name in SCHEMES)
    print(
        f"ok: {len(SCHEMES)}x{len(SIZES)} cells within ceiling; worst "
        f"n={largest} cell {worst:.2f}s (acceptance: < {ABS_CEILING_S:.0f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
