"""ADV — adversarial fault placement and detection-latency distributions.

Extension workload: stress the self-stabilizing detectors with three
fault-placement strategies (uniform random, greedy targeted, Byzantine
persistently-lying registers) under a partial-activation daemon, across
the exact/approx/error-sensitive detector mix.  Regenerated: rejection
counts per adversary (the targeted adversary must be strictly quieter
than random on the non-error-sensitive pointer scheme), detection
latency distributions, Byzantine containment outcomes, and the
incremental message-passing simulator's view-build saving at n=128.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_adversary_latency


def test_adversary_latency(benchmark, report):
    result = benchmark.pedantic(
        experiment_adversary_latency,
        iterations=1,
        rounds=1,
    )
    report(result)
    assert result.rows
    col = result.headers.index

    def st_pointer_cells(adversary):
        return {
            (row[col("n")], row[col("k faults")]): row[col("mean rejects")]
            for row in result.rows
            if row[col("adversary")] == adversary
            and row[col("detector")] == "st-pointer"
            and row[col("illegal")]
        }

    # The acceptance bar: at equal fault budget the targeted adversary
    # reaches strictly fewer rejecting nodes than random on the FF17
    # non-error-sensitive spanning-tree-ptr scheme.
    random_cells = st_pointer_cells("random")
    targeted_cells = st_pointer_cells("targeted")
    shared = set(random_cells) & set(targeted_cells)
    assert shared, "no comparable st-pointer cells"
    for key in sorted(shared):
        assert targeted_cells[key] < random_cells[key], (
            f"targeted not quieter at (n, k)={key}: "
            f"{targeted_cells[key]} vs {random_cells[key]}"
        )

    # Every illegal burst is caught within the latency cap, even under
    # partial activation (seeded, so this is stable).
    for row in result.rows:
        assert row[col("detected")] == row[col("illegal")], row

    # Byzantine lies are contained by the frozen certified detectors.
    for row in result.rows:
        if row[col("adversary")] == "byzantine" and row[col("detector")] in (
            "approx-dominating-set",
            "es-spanning-tree",
        ):
            assert row[col("contained")] == row[col("illegal")], row

    # The incremental message-passing simulator's measured saving at the
    # largest n rides along as a note.
    assert any(
        "incremental message-passing simulator at n=128" in note
        for note in result.notes
    )
