"""T5 — approximate (gap) schemes vs. exact verification.

Extension claims (Emek–Gil 2020, Feuilloley–Fraigniaud 2017): relaxing
soundness to a factor-α gap certifies optimization predicates with
certificates exponentially smaller than exact verification (generically
the universal Θ(n²) scheme).  The regenerated table compares measured
approximate vs. exact proof sizes and one-round message cost across
graph families.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_t5_approx
from repro.util.rng import make_rng


def test_table5_approx(benchmark, report):
    result = benchmark.pedantic(
        experiment_t5_approx,
        kwargs=dict(
            sizes=(12, 20), families=("gnp_sparse", "random_tree"),
            eps_values=(0.25, 1.0, 3.0), rng=make_rng(9)
        ),
        iterations=1,
        rounds=1,
    )
    report(result)
    from repro.core import catalog

    # One (family, n) grid per approx spec, times the eps sweep for the
    # (1+eps)-parametrised counter families.
    sweeps = sum(
        3 if spec.has_param("eps") else 1
        for spec in catalog.specs(kind="approx")
    )
    assert len(result.rows) == sweeps * 2 * 2
    # The acceptance claim: approximate certificates strictly smaller
    # than their exact counterparts, on every family in the sweep.
    for row in result.rows:
        approx_bits, exact_bits = row[4], row[5]
        assert approx_bits < exact_bits
