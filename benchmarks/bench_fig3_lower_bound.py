"""F3 — the Ω(log n) lower-bound mechanism, executed.

Paper claim: no scheme with o(log n)-bit certificates certifies spanning
trees.  Regenerated evidence: the cut-and-plug adversaries fool every
truncated budget below ~log₂ of the identifier universe; the strict
truncation instead loses completeness at depth 2^b; the full scheme
survives.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_f3_lower_bound


def test_fig3_lower_bound(benchmark, report):
    result = benchmark.pedantic(
        experiment_f3_lower_bound,
        kwargs=dict(sizes=(8, 16, 32, 64, 128)),
        iterations=1,
        rounds=1,
    )
    report(result)
    for row in result.rows:
        n, cycle_b, path_b, surviving, log_universe = row
        assert cycle_b >= 1
        assert path_b >= 1
        assert surviving == path_b + 1  # threshold right above the attacks
        assert abs(surviving - log_universe) <= 1
