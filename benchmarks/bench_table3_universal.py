"""T3 — the universal scheme: any language, Θ(n²)-bit certificates.

Paper claim: every decidable, constructible language has a scheme with
O(n² + n·s)-bit proofs.  Regenerated on the regular-subgraph language
(which has no compact scheme), checking acceptance behaviour and the
quadratic size shape.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_t3_universal
from repro.util.rng import make_rng


def test_table3_universal(benchmark, report):
    result = benchmark.pedantic(
        experiment_t3_universal,
        kwargs=dict(sizes=(6, 10, 14, 20, 28), rng=make_rng(5)),
        iterations=1,
        rounds=1,
    )
    report(result)
    for row in result.rows:
        assert row[3] is True and row[4] is True
    assert any("n^2" in note for note in result.notes)
