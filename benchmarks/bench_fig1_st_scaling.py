"""F1 — spanning-tree proof size vs n across graph families.

Paper claim: Θ(log n) bits.  The regenerated series reports measured
bits and the per-family best-fit curve, which must be logarithmic.
"""

from __future__ import annotations

from repro.analysis.experiments import experiment_f1_st_scaling
from repro.util.rng import make_rng


def test_fig1_st_scaling(benchmark, report):
    result = benchmark.pedantic(
        experiment_f1_st_scaling,
        kwargs=dict(sizes=(8, 16, 32, 64, 128, 256), rng=make_rng(3)),
        iterations=1,
        rounds=1,
    )
    report(result)
    # Every family gains a positive, modest number of bits per doubling
    # of n — the finite-range signature of Theta(log n).
    import re

    slopes = [
        float(re.search(r"\+ ?([0-9.]+) \* log2", note).group(1))
        for note in result.notes
    ]
    assert all(0.4 <= s <= 12 for s in slopes)
    # bits / log2 n stays within a narrow band across two orders of n.
    ratios = [row[3] for row in result.rows]
    assert max(ratios) < 4 * min(ratios)
