"""Executable lower-bound machinery (the paper's Ω(log n) theorem).

The source paper proves no o(log n)-bit scheme certifies spanning
trees via a cut-and-plug counting argument; this package *runs* that
argument — budget-truncated schemes, pointer-cycle and two-root-path
splicing adversaries, and exhaustive replay checks on small instances.
"""

from repro.lowerbounds.bruteforce import (
    all_legal_configurations,
    exhaustive_soundness_check,
    per_node_candidates,
)
from repro.lowerbounds.crossing import (
    FoolingResult,
    completeness_failure_depth,
    minimum_surviving_budget,
    pointer_cycle_attack,
    signature_collision_profile,
    two_root_path_attack,
)
from repro.lowerbounds.truncated import TruncatedSpanningTreeScheme

__all__ = [
    "FoolingResult",
    "TruncatedSpanningTreeScheme",
    "all_legal_configurations",
    "completeness_failure_depth",
    "exhaustive_soundness_check",
    "minimum_surviving_budget",
    "per_node_candidates",
    "pointer_cycle_attack",
    "signature_collision_profile",
    "two_root_path_attack",
]
