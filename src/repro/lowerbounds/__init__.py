"""Executable lower-bound machinery: truncated schemes, cut-and-plug
adversaries, and exhaustive replay checks."""

from repro.lowerbounds.bruteforce import (
    all_legal_configurations,
    exhaustive_soundness_check,
    per_node_candidates,
)
from repro.lowerbounds.crossing import (
    FoolingResult,
    completeness_failure_depth,
    minimum_surviving_budget,
    pointer_cycle_attack,
    signature_collision_profile,
    two_root_path_attack,
)
from repro.lowerbounds.truncated import TruncatedSpanningTreeScheme

__all__ = [
    "FoolingResult",
    "TruncatedSpanningTreeScheme",
    "all_legal_configurations",
    "completeness_failure_depth",
    "exhaustive_soundness_check",
    "minimum_surviving_budget",
    "per_node_candidates",
    "pointer_cycle_attack",
    "signature_collision_profile",
    "two_root_path_attack",
]
