"""Exhaustive soundness verification on tiny instances.

Complementing the constructive adversaries of
:mod:`repro.lowerbounds.crossing`, this module checks soundness by brute
force where that is feasible: enumerate, for each node, every certificate
the scheme ever emits on *any* legal labeling of the same graph (plus a
few mutants), and try the full product of assignments.  On a 4-cycle
that is thousands of assignments — cheap — and a scheme that survives it
has no "replayed certificate" counterexample at that size at all.
"""

from __future__ import annotations

import random
from typing import Any, Iterable

from repro.core.labeling import Configuration
from repro.core.scheme import ProofLabelingScheme
from repro.core.soundness import AttackResult, exhaustive_attack, mutate_certificate
from repro.graphs.graph import Graph
from repro.util.bits import encode_obj
from repro.util.rng import make_rng

__all__ = [
    "all_legal_configurations",
    "exhaustive_soundness_check",
    "per_node_candidates",
]


def all_legal_configurations(
    language,
    graph: Graph,
    ids: dict[int, int] | None = None,
    state_candidates: Iterable[Any] | None = None,
    limit: int = 200_000,
) -> list[Configuration]:
    """Every legal labeling of ``graph`` over per-node candidate states.

    Candidates default to the states that can syntactically occur for
    port-pointer languages: ``None`` and each port.  The search space is
    the full product, so this is for small graphs only (guarded by
    ``limit``).
    """
    import itertools

    nodes = sorted(graph.nodes)
    if state_candidates is None:
        per_node = {
            v: [None] + list(range(graph.degree(v))) for v in nodes
        }
    else:
        fixed = list(state_candidates)
        per_node = {v: fixed for v in nodes}
    space = 1
    for v in nodes:
        space *= max(1, len(per_node[v]))
        if space > limit:
            raise ValueError(f"legal-labeling space exceeds {limit}")
    members: list[Configuration] = []
    for combo in itertools.product(*(per_node[v] for v in nodes)):
        config = Configuration.build(graph, dict(zip(nodes, combo)), ids=ids)
        if language.is_member(config):
            members.append(config)
    return members


def per_node_candidates(
    scheme: ProofLabelingScheme,
    legal_configs: Iterable[Configuration],
    rng: random.Random | None = None,
    mutants_per_cert: int = 1,
) -> dict[int, list[Any]]:
    """For each node: every certificate it receives across legal runs.

    This is the candidate universe of the replay adversary — the
    strongest adversary the counting argument cares about — optionally
    padded with structural mutants.
    """
    rng = rng or make_rng()
    candidates: dict[int, list[Any]] = {}
    seen: dict[int, set[str]] = {}
    for config in legal_configs:
        certs = scheme.prove(config)
        for node, cert in certs.items():
            pool = candidates.setdefault(node, [])
            keys = seen.setdefault(node, set())
            variants = [cert] + [
                mutate_certificate(cert, rng) for _ in range(mutants_per_cert)
            ]
            for variant in variants:
                key = encode_obj(variant)
                if key not in keys:
                    keys.add(key)
                    pool.append(variant)
    return candidates


def exhaustive_soundness_check(
    scheme: ProofLabelingScheme,
    illegal_config: Configuration,
    legal_configs: Iterable[Configuration],
    rng: random.Random | None = None,
    limit: int = 250_000,
) -> AttackResult:
    """Replay adversary with full product search.

    Returns the attack result; ``result.fooled`` must be ``False`` for a
    sound scheme, and ``result.min_rejects`` is the tightest rejection
    count any replayed assignment achieves.
    """
    candidates = per_node_candidates(scheme, legal_configs, rng=rng)
    for node in illegal_config.graph.nodes:
        candidates.setdefault(node, [None])
    return exhaustive_attack(scheme, illegal_config, candidates, limit=limit)
