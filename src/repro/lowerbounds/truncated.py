"""Budget-truncated spanning-tree schemes.

The paper's ``Ω(log n)`` lower bounds say that *no* scheme with
``o(log n)``-bit certificates can certify spanning trees (or leader, or
acyclicity).  A lower bound quantifies over all schemes, so it cannot be
"run"; what can be run is its *mechanism*: below ``log₂ n`` bits, the
certificate space is too small to carry distance-to-root counters, and
the two failure modes predicted by the counting argument materialise:

* keep the classic verifier semantics on truncated counters
  (:class:`TruncatedSpanningTreeScheme` with ``strict_root=True``) and
  **completeness breaks** as soon as a legal tree is deeper than ``2^b``
  (an honest non-root node wraps to counter 0 and trips the
  "0 is reserved for the root" check);
* weaken the semantics to modular arithmetic (``strict_root=False``) so
  completeness survives, and **soundness breaks**: the cut-and-plug
  adversaries of :mod:`repro.lowerbounds.crossing` construct accepted
  pointer cycles and two-root paths.

The experiments sweep the budget ``b`` and locate the crossover at
``b ≈ log₂ n`` — the empirical face of the lower bound.
"""

from __future__ import annotations

from typing import Any

from repro.core.labeling import Configuration
from repro.core.scheme import ProofLabelingScheme
from repro.core.verifier import LocalView
from repro.graphs.subgraphs import pointer_structure
from repro.schemes.acyclic import pointers_from_ports
from repro.schemes.spanning_tree import SpanningTreePointerLanguage

__all__ = ["TruncatedSpanningTreeScheme"]


class TruncatedSpanningTreeScheme(ProofLabelingScheme):
    """The ``(root_uid, dist)`` scheme squeezed into ``2 * bits`` bits.

    Both certificate fields are reduced modulo ``2**bits``.  With
    ``strict_root=True`` the verifier keeps the full scheme's "counter 0
    belongs to the root" rule; with ``strict_root=False`` it only checks
    the modular decrement along pointers (and modular root agreement).
    """

    size_bound = "2b (truncated)"

    def __init__(self, bits: int, strict_root: bool = True) -> None:
        super().__init__(SpanningTreePointerLanguage())
        if bits < 1:
            raise ValueError("bit budget must be at least 1")
        self.bits = bits
        self.modulus = 1 << bits
        self.strict_root = strict_root
        flavour = "strict" if strict_root else "lax"
        self.name = f"spanning-tree-ptr-trunc{bits}-{flavour}"

    def prove(self, config: Configuration) -> dict[int, Any]:
        pointers = pointers_from_ports(config)
        structure = pointer_structure(pointers)
        roots = sorted(structure.roots)
        root_uid = config.uid(roots[0]) if roots else config.uid(0)
        m = self.modulus
        return {
            v: (root_uid % m, structure.depth.get(v, 0) % m)
            for v in config.graph.nodes
        }

    def verify(self, view: LocalView) -> bool:
        m = self.modulus
        cert = view.certificate
        if not (isinstance(cert, tuple) and len(cert) == 2):
            return False
        root_field, dist = cert
        if not (isinstance(dist, int) and 0 <= dist < m):
            return False
        for glimpse in view.neighbors:
            g_cert = glimpse.certificate
            if not (isinstance(g_cert, tuple) and len(g_cert) == 2):
                return False
            if g_cert[0] != root_field:
                return False
        state = view.state
        if state is None:
            # Both flavours pin the root's identity (mod m); what the lax
            # flavour drops is only the "counter 0 is reserved for the
            # root" rule below.
            return dist == 0 and view.uid % m == root_field
        if not (isinstance(state, int) and 0 <= state < view.degree):
            return False
        if self.strict_root and dist == 0:
            return False  # counter 0 reserved for the root
        parent = view.neighbor_at(state)
        p_cert = parent.certificate
        if not (isinstance(p_cert, tuple) and len(p_cert) == 2):
            return False
        return p_cert[1] == (dist - 1) % m

    def certificate_bits(self, certificate: Any) -> int:
        return 2 * self.bits
