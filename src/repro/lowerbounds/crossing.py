"""Cut-and-plug adversaries: the paper's lower-bound constructions, run.

The ``Ω(log n)`` lower bound argument for spanning tree (and its
relatives) is a counting argument: with ``b``-bit certificates there are
at most ``2^b`` distinct certificates, so on long paths/cycles some cut
must look identical in two different accepting runs; gluing the runs at
such cuts yields an *illegal* instance every node of which sees an
accepting view.  This module makes the construction executable against a
given scheme:

* :func:`pointer_cycle_attack` — an all-clockwise pointer cycle (no root
  at all, maximally illegal) with certificates counting down modulo
  ``2^b``; fools the lax truncated scheme whenever ``2^b`` divides ``n``;
* :func:`two_root_path_attack` — a path whose halves point away from
  each other (two roots), certified by splicing the two legal oriented
  runs; fools any scheme whose root fields collide for the two ends —
  arranged here by choosing end identifiers congruent modulo ``2^b``;
* :func:`completeness_failure_depth` — the dual failure of the *strict*
  truncated scheme: the shallowest legal path it can no longer certify;
* :func:`minimum_surviving_budget` — the empirical threshold sweep: the
  smallest budget at which both attacks fail, to be compared against
  ``log₂ n``;
* :func:`signature_collision_profile` — the raw counting bound: how many
  distinct certificates a scheme actually emits across the instance
  family, versus how many a ``b``-bit budget could express.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.labeling import Configuration
from repro.core.soundness import completeness_holds
from repro.core.verifier import Verdict
from repro.errors import AttackError
from repro.graphs.generators import cycle_graph, path_graph
from repro.lowerbounds.truncated import TruncatedSpanningTreeScheme
from repro.util.bits import encode_obj

__all__ = [
    "FoolingResult",
    "completeness_failure_depth",
    "minimum_surviving_budget",
    "pointer_cycle_attack",
    "signature_collision_profile",
    "two_root_path_attack",
]


@dataclass(frozen=True)
class FoolingResult:
    """A constructed adversarial instance and its verdict."""

    config: Configuration
    certificates: dict[int, Any]
    verdict: Verdict
    illegal: bool

    @property
    def fooled(self) -> bool:
        """True when an illegal instance was fully accepted."""
        return self.illegal and self.verdict.all_accept


def pointer_cycle_attack(n: int, bits: int) -> FoolingResult:
    """All-clockwise pointers on ``C_n`` against the lax ``b``-bit scheme.

    The labeling has no root and a full pointer cycle — Hamming distance
    ``Ω(n)`` from any spanning tree — yet with counters
    ``dist(i) = (-i) mod 2^b`` every modular decrement check passes, as
    long as the wrap-around is consistent, i.e. ``2^b`` divides ``n``.
    Raises :class:`~repro.errors.AttackError` otherwise (the construction
    genuinely needs the divisibility, which is why budgets ``≥ log₂ n``
    survive).
    """
    scheme = TruncatedSpanningTreeScheme(bits, strict_root=False)
    m = scheme.modulus
    if n % m != 0:
        raise AttackError(
            f"pointer-cycle splice needs 2^{bits} | n, got n={n}"
        )
    graph = cycle_graph(n)
    # Node i points clockwise to node (i + 1) % n.
    states = {
        i: graph.port(i, (i + 1) % n) for i in range(n)
    }
    config = Configuration.build(graph, states)
    certificates = {i: (0, (-i) % m) for i in range(n)}
    verdict = scheme.run(config, certificates=certificates)
    illegal = not scheme.language.is_member(config)
    return FoolingResult(config, certificates, verdict, illegal)


def two_root_path_attack(
    n: int, bits: int, universe: int | None = None
) -> FoolingResult:
    """Two-root path splice against the lax ``b``-bit scheme.

    Take ``P_n`` with the left half pointing left (toward node 0) and the
    right half pointing right (toward node ``n-1``): two roots, an
    illegal spanning-tree encoding at Hamming distance ``≈ n/2`` from the
    language.  Certify each half with the certificates of the
    corresponding *legal* one-root orientation.  The only cross-half
    checks are root-field agreement at the middle edge and the root
    identity pins at the two ends — defeated by choosing end identifiers
    congruent modulo ``2^b``.  That choice is the pigeonhole step of the
    paper's argument, and it needs room: the identifiers must fit the
    universe ``[1, N]`` (default ``N = n²``, the polynomial-id regime).
    With ``2^b ≥ N`` no colliding pair exists and the attack is
    impossible — raising :class:`~repro.errors.AttackError` — which is
    exactly the ``Ω(log N)`` bound.
    """
    if n < 4:
        raise AttackError("need n >= 4 for a two-root path")
    scheme = TruncatedSpanningTreeScheme(bits, strict_root=False)
    m = scheme.modulus
    universe = universe if universe is not None else n * n
    if 1 + m + n > universe:
        raise AttackError(
            f"no colliding identifiers in universe [1, {universe}] "
            f"for 2^{bits}-bit root fields"
        )
    graph = path_graph(n)
    # Identifiers: ends congruent mod 2^b, everything distinct (interior
    # ids start above 1 + m so they cannot collide with the ends).
    ids = {i: m + 2 + i for i in range(n)}
    ids[0] = 1
    ids[n - 1] = 1 + m
    half = n // 2
    states: dict[int, Any] = {}
    for i in range(n):
        if i == 0 or i == n - 1:
            states[i] = None
        elif i < half:
            states[i] = graph.port(i, i - 1)  # point left
        else:
            states[i] = graph.port(i, i + 1)  # point right
    config = Configuration.build(graph, states, ids=ids)
    # Certificates spliced from the two legal runs: distances to the
    # respective root, root fields collide by construction.
    root_field = 1 % m
    certificates = {
        i: (root_field, (i if i < half else n - 1 - i) % m) for i in range(n)
    }
    verdict = scheme.run(config, certificates=certificates)
    illegal = not scheme.language.is_member(config)
    return FoolingResult(config, certificates, verdict, illegal)


def completeness_failure_depth(bits: int, max_n: int = 4096) -> int | None:
    """Smallest path length the *strict* ``b``-bit scheme cannot certify.

    Returns ``None`` when no failure occurs up to ``max_n``.  The
    theoretical answer is ``2^bits + 1``: the first path (rooted at an
    end) containing an honest node at depth ``2^bits``, whose truncated
    counter collides with the root's 0 and trips the reserved-counter
    rule.
    """
    scheme = TruncatedSpanningTreeScheme(bits, strict_root=True)
    n = 3
    while n <= max_n:
        graph = path_graph(n)
        # Deterministic root at node 0 (a path end) so the deepest honest
        # counter is exactly n - 1.
        labeling = scheme.language.canonical_labeling(graph)
        config = Configuration.build(graph, labeling)
        if not completeness_holds(scheme, config):
            return n
        n += 1
    return None


def minimum_surviving_budget(
    n: int, universe: int | None = None, max_bits: int = 40
) -> int:
    """Smallest budget ``b`` at which both splice attacks fail on size
    ``n`` with identifiers from ``[1, universe]`` (default ``n²``).

    The lower-bound experiments compare this against ``log₂`` of the
    identifier universe: certificates must be able to name the root.
    """
    universe = universe if universe is not None else n * n
    for bits in range(1, max_bits + 1):
        fooled = False
        modulus = 1 << bits
        if n % modulus == 0:
            fooled |= pointer_cycle_attack(n, bits).fooled
        if not fooled and n >= 4:
            try:
                fooled |= two_root_path_attack(n, bits, universe=universe).fooled
            except AttackError:
                fooled = False
        if not fooled:
            return bits
    raise AttackError(f"attacks still succeed at {max_bits} bits on n={n}")


def signature_collision_profile(
    scheme,
    configs,
) -> dict[int, int]:
    """Distinct-certificate counts under truncation to each bit width.

    Harvests every honest certificate emitted on ``configs`` and reports,
    for each width ``b``, how many distinct values survive truncating the
    canonical encodings to ``b`` bits.  When the count at width ``b`` is
    below the number of cut positions, the pigeonhole step of the
    cut-and-plug argument applies — this is the counting bound plotted in
    the lower-bound figure.
    """
    encodings: list[str] = []
    for config in configs:
        for cert in scheme.prove(config).values():
            encodings.append(encode_obj(cert))
    widths = range(1, max((len(e) for e in encodings), default=1) + 1)
    profile: dict[int, int] = {}
    for b in widths:
        profile[b] = len({e[:b] for e in encodings})
    return profile
