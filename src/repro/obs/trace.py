"""JSONL trace sink and reader for instrumentation scopes.

A trace is a flat JSON-lines file: one record per line, every record
carrying a ``"type"`` field.  The format is deliberately boring — it is
meant to be grepped, loaded into pandas, or diffed between runs — and
:func:`read_trace`/:func:`validate_record` pin it as a schema the test
suite round-trips.

Record types
------------
``begin``
    Opens a scope: ``{"type": "begin", "scope": name, "labels": {...}}``.
``span``
    One finished span: ``name``, wall-clock ``seconds`` (float),
    ``depth`` (1 = outermost), and the span's ``labels``.
``event``
    A structured marker emitted by :func:`repro.obs.metrics.event` —
    campaign cells, chosen parameters, phase boundaries.
``metrics``
    The scope's final snapshot (labels, counters, span aggregates);
    always the last record a sink writes.

Timestamps are wall-clock and therefore *not* reproducible; every
deterministic quantity a consumer should assert on lives in the
``metrics`` record's counters.

Threading contract: a sink normally belongs to the one scope (and so
the one thread) that opened it — the scope stacks in
:mod:`repro.obs.metrics` are thread-local.  Record writes are
nevertheless serialized by a per-sink lock, so a sink deliberately
shared across threads (one trace file for a threaded server run)
interleaves *whole records*, never partial lines, and a close racing a
write degrades to a silent drop rather than a torn file.
"""

from __future__ import annotations

import io
import json
import pathlib
import threading
from typing import Any, Mapping

__all__ = ["TRACE_TYPES", "TraceSink", "read_trace", "validate_record"]

#: Every record type a sink writes, with the fields each must carry.
TRACE_TYPES: dict[str, tuple[str, ...]] = {
    "begin": ("scope", "labels"),
    "span": ("name", "seconds", "depth", "labels"),
    "event": ("name", "fields"),
    "metrics": ("scope", "labels", "counters", "spans"),
}


class TraceSink:
    """Append-only JSONL writer bound to one instrumentation scope.

    ``target`` is a filesystem path (opened for writing, parent
    directories created) or any file-like object with ``write``; a
    file-like target is not closed by :meth:`close`, so callers can
    hand in ``io.StringIO`` and read the trace back.
    """

    __slots__ = ("_fh", "_owns", "_lock")

    def __init__(self, target: Any) -> None:
        if hasattr(target, "write"):
            self._fh = target
            self._owns = False
        else:
            path = pathlib.Path(target)
            if path.parent and not path.parent.exists():
                path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = path.open("w", encoding="utf-8")
            self._owns = True
        self._lock = threading.Lock()

    # -- record writers -----------------------------------------------------

    def _write(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self._lock:
            if self._fh is None:
                return
            self._fh.write(line)

    def begin(self, scope: str, labels: Mapping[str, Any]) -> None:
        self._write({"type": "begin", "scope": scope, "labels": dict(labels)})

    def span(
        self,
        name: str,
        seconds: float,
        depth: int,
        labels: Mapping[str, Any],
    ) -> None:
        self._write(
            {
                "type": "span",
                "name": name,
                "seconds": seconds,
                "depth": depth,
                "labels": dict(labels),
            }
        )

    def event(self, name: str, fields: Mapping[str, Any]) -> None:
        self._write({"type": "event", "name": name, "fields": dict(fields)})

    def metrics(self, snapshot: Mapping[str, Any]) -> None:
        self._write({"type": "metrics", **snapshot})

    def close(self) -> None:
        with self._lock:
            if self._fh is not None and self._owns:
                self._fh.close()
            self._fh = None


def validate_record(record: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``record`` matches the trace schema."""
    kind = record.get("type")
    if kind not in TRACE_TYPES:
        raise ValueError(f"unknown trace record type {kind!r}")
    missing = [field for field in TRACE_TYPES[kind] if field not in record]
    if missing:
        raise ValueError(f"{kind} record missing fields {missing}")
    if kind == "span":
        if not isinstance(record["seconds"], (int, float)) or record["seconds"] < 0:
            raise ValueError("span seconds must be a non-negative number")
        if not isinstance(record["depth"], int) or record["depth"] < 1:
            raise ValueError("span depth must be a positive integer")
    if kind == "metrics" and not isinstance(record["counters"], Mapping):
        raise ValueError("metrics counters must be a mapping")


def read_trace(source: Any) -> list[dict[str, Any]]:
    """Parse and validate a JSONL trace from a path, file, or string.

    Returns the records in file order; raises ``ValueError`` on a
    malformed line or a record outside the schema, with the offending
    line number in the message.
    """
    if hasattr(source, "read"):
        text = source.read()
    elif isinstance(source, str) and "\n" in source:
        text = source
    else:
        text = pathlib.Path(source).read_text(encoding="utf-8")
    records: list[dict[str, Any]] = []
    for lineno, line in enumerate(io.StringIO(text), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"trace line {lineno}: invalid JSON ({error})") from None
        try:
            validate_record(record)
        except ValueError as error:
            raise ValueError(f"trace line {lineno}: {error}") from None
        records.append(record)
    return records
