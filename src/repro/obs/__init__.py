"""``repro.obs`` — the flight recorder for the verification stack.

Korman–Kutten–Peleg's results are statements about costs (proof size,
verifier work, detection time), so the reproduction meters its own
engines in one place.  This package provides:

* :class:`~repro.obs.metrics.MetricsCollector` — named counters
  (``views.built``, ``messages.sent``, ``decide.calls``,
  ``registers.written``, …) plus per-span wall-clock aggregates;
* scope management — :func:`~repro.obs.metrics.collect` pushes a
  collector for a ``with`` block; scopes nest and each sees exactly the
  costs incurred while it was open.  Scope stacks are **thread-local**
  (a scope sees only its own thread's costs) while the root's counters
  are lock-protected, so process-lifetime totals stay exact under the
  threaded certification front end — see the threading contract in
  :mod:`repro.obs.metrics`;
* :func:`~repro.obs.metrics.span` — nested wall-clock timers
  (``with obs.span("decide", scheme=...)``) that cost nothing when no
  scope is open;
* a JSONL trace sink (:mod:`repro.obs.trace`) streaming span/event
  records plus a final counter snapshot — ``--trace out.jsonl`` on the
  CLI;
* the zero-overhead null path: outside any scope, spans are a shared
  no-op and only the always-on **root** collector (the process-lifetime
  cost ledger behind :func:`repro.core.verifier.view_build_count`)
  accumulates.

Deterministic counters are the contract: the committed
``benchmarks/results/BENCH_*.json`` snapshots and their CI ratchet are
built on counters alone, never on wall-clock spans.
"""

from repro.obs.metrics import (
    NULL,
    MetricsCollector,
    NullCollector,
    SpanStat,
    active,
    add,
    collect,
    counter_total,
    event,
    inc,
    instrumented,
    record_view_builds,
    scoped,
    span,
    view_build_total,
)
from repro.obs.trace import TRACE_TYPES, TraceSink, read_trace, validate_record

__all__ = [
    "MetricsCollector",
    "NULL",
    "NullCollector",
    "SpanStat",
    "TRACE_TYPES",
    "TraceSink",
    "active",
    "add",
    "collect",
    "counter_total",
    "event",
    "inc",
    "instrumented",
    "read_trace",
    "record_view_builds",
    "scoped",
    "span",
    "validate_record",
    "view_build_total",
]
