"""Scope-aware metrics: named counters, nested span timers, scopes.

The verification stack is judged by *costs* — LocalView constructions,
messages, verifier evaluations — and this module is the one place those
costs are recorded.  The design splits into two layers:

Root accounting (always on, process-wide)
    A process-global **root collector** sits permanently underneath
    every scope.  Deterministic cost units (view builds, decide calls,
    message counts) accumulate there from import on, which is what
    keeps :func:`repro.core.verifier.view_build_count` — the audited
    unit every incremental-engine claim is stated in — bit-identical to
    the historical process-global counter.  Root bumps are serialized
    by one lock, so :func:`view_build_total`/:func:`counter_total`
    stay process-lifetime-exact even when many threads (the threaded
    certification front end) bump concurrently: the total is always
    the exact sum of every thread's increments, never a lost update.

Scoped collection (opt in, per thread)
    :func:`collect` pushes a fresh :class:`MetricsCollector` onto the
    **calling thread's** scope stack for the duration of a ``with``
    block.  Counters bumped inside the block accumulate into every
    collector on that thread's stack (plus the root), so a scope's
    counter reads exactly like a before/after delta of the root — the
    property the campaign tests pin — *for single-threaded sections*.
    Scopes may nest (a per-cell scope inside a per-run trace scope);
    each sees its own deltas.

Threading contract
    Scope and span stacks are **thread-local**: a scope opened in one
    thread is invisible to every other thread — its collector sees
    exactly the costs its own thread incurs, and concurrent request
    threads can each open scopes without seeing each other's deltas.
    The root is the one shared sink and its counters are
    lock-protected, so root totals are exact under any interleaving.
    A :class:`MetricsCollector` instance itself is *not* thread-safe;
    don't share one scope across threads (each thread opens its own).
    :func:`_reset_for_tests` and :func:`iter_stack` act on the calling
    thread's stack only (plus the shared root).

Spans and trace events exist only inside a scope: :func:`span` returns
a shared no-op context manager when the calling thread has nothing
scoped, so the uninstrumented hot path pays one thread-local read and
nothing else — the **null-collector** contract the equivalence tests
enforce.

Wall-clock span durations are measurement, never logic: no verdict,
counter, or committed snapshot may depend on them (the perf ratchet
snapshots deterministic counters only).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterator, Mapping

__all__ = [
    "MetricsCollector",
    "NullCollector",
    "NULL",
    "SpanStat",
    "active",
    "add",
    "collect",
    "counter_total",
    "event",
    "inc",
    "record_view_builds",
    "scoped",
    "span",
    "view_build_total",
]


class SpanStat:
    """Aggregate of one span name inside a collector: calls and seconds."""

    __slots__ = ("calls", "seconds")

    def __init__(self) -> None:
        self.calls = 0
        self.seconds = 0.0

    def record(self, duration: float) -> None:
        self.calls += 1
        self.seconds += duration

    def __repr__(self) -> str:
        return f"SpanStat(calls={self.calls}, seconds={self.seconds:.6f})"


class MetricsCollector:
    """Named counters plus span aggregates for one instrumentation scope.

    Instances are handed out by :func:`collect`; while the scope is
    open every :func:`inc`/:func:`add` *on the opening thread* lands
    here (and in every enclosing scope of that thread), every finished
    :func:`span` records its duration here, and — when the scope was
    opened with a trace sink — span and event records stream to the
    sink as JSONL.  A collector belongs to the thread that opened it;
    it is not itself synchronized.
    """

    __slots__ = ("name", "labels", "counters", "spans", "sink")

    def __init__(
        self,
        name: str = "scope",
        labels: Mapping[str, Any] | None = None,
        sink: Any | None = None,
    ) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.counters: dict[str, int | float] = {}
        self.spans: dict[str, SpanStat] = {}
        self.sink = sink

    # -- counters -----------------------------------------------------------

    def add(self, counter: str, value: int | float = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + value

    def counter(self, name: str, default: int | float = 0) -> int | float:
        """Current value of one counter (0 when never bumped)."""
        return self.counters.get(name, default)

    # -- spans --------------------------------------------------------------

    def record_span(
        self,
        name: str,
        duration: float,
        depth: int,
        labels: Mapping[str, Any],
    ) -> None:
        stat = self.spans.get(name)
        if stat is None:
            stat = self.spans[name] = SpanStat()
        stat.record(duration)
        if self.sink is not None:
            self.sink.span(name, duration, depth, labels)

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready summary: labels, counters, span aggregates."""
        return {
            "scope": self.name,
            "labels": dict(self.labels),
            "counters": dict(self.counters),
            "spans": {
                name: {"calls": stat.calls, "seconds": stat.seconds}
                for name, stat in sorted(self.spans.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"MetricsCollector({self.name!r}, "
            f"{len(self.counters)} counters, {len(self.spans)} spans)"
        )


class NullCollector:
    """The do-nothing collector: every recording method is a no-op.

    :func:`active` returns the shared :data:`NULL` instance when no
    scope is open, so code that wants an explicit collector handle can
    hold one unconditionally and still pay nothing uninstrumented.  Its
    ``counters``/``spans`` read as empty and never grow.
    """

    __slots__ = ()

    name = "null"
    labels: dict[str, Any] = {}
    sink = None

    @property
    def counters(self) -> dict[str, int | float]:
        return {}

    @property
    def spans(self) -> dict[str, SpanStat]:
        return {}

    def add(self, counter: str, value: int | float = 1) -> None:
        pass

    def counter(self, name: str, default: int | float = 0) -> int | float:
        return default

    def record_span(
        self,
        name: str,
        duration: float,
        depth: int,
        labels: Mapping[str, Any],
    ) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {"scope": "null", "labels": {}, "counters": {}, "spans": {}}

    def __repr__(self) -> str:
        return "NullCollector()"


#: The shared null collector (see :class:`NullCollector`).
NULL = NullCollector()

#: The always-on root collector: deterministic cost units accumulate
#: here from import on (``view_build_total`` et al. read it).  Shared
#: by every thread; bumps and reads go through :data:`_ROOT_LOCK`.
_ROOT = MetricsCollector(name="root")

#: Serializes every root counter mutation (and total read), so the
#: process-lifetime ledger is exact under concurrent bumps.
_ROOT_LOCK = threading.Lock()

#: Thread-local instrumentation state: ``scopes`` is the calling
#: thread's stack of scoped collectors (innermost last; the shared
#: root is *not* stored here), ``span_names`` its open-span names.
_TLS = threading.local()


def _scopes() -> list[MetricsCollector]:
    """The calling thread's scoped-collector stack (innermost last)."""
    scopes = getattr(_TLS, "scopes", None)
    if scopes is None:
        scopes = _TLS.scopes = []
    return scopes


def _span_names() -> list[str]:
    """The calling thread's open-span names, innermost last."""
    names = getattr(_TLS, "span_names", None)
    if names is None:
        names = _TLS.span_names = []
    return names


# ---------------------------------------------------------------------------
# Scope management.
# ---------------------------------------------------------------------------


class _Scope:
    """Context manager pushing one collector for the ``with`` block.

    Enter and exit must happen on the same thread: the collector is
    pushed onto the entering thread's stack, and a mispaired exit from
    another thread is a no-op there (it pops by identity and finds
    nothing) — it can never strip a different thread's scopes, and
    never the root.
    """

    __slots__ = ("collector", "_trace_path")

    def __init__(self, collector: MetricsCollector, trace_path: Any) -> None:
        self.collector = collector
        self._trace_path = trace_path

    def __enter__(self) -> MetricsCollector:
        collector = self.collector
        if self._trace_path is not None and collector.sink is None:
            from repro.obs.trace import TraceSink

            collector.sink = TraceSink(self._trace_path)
            collector.sink.begin(collector.name, collector.labels)
        _scopes().append(collector)
        return collector

    def __exit__(self, exc_type, exc, tb) -> None:
        # Pop by identity from the calling thread's stack only: a
        # mispaired or cross-thread exit must not strip anything else.
        scopes = _scopes()
        for index in range(len(scopes) - 1, -1, -1):
            if scopes[index] is self.collector:
                del scopes[index]
                break
        else:
            return  # exited on a thread that never entered: no-op
        sink = self.collector.sink
        if sink is not None:
            sink.metrics(self.collector.snapshot())
            sink.close()
            self.collector.sink = None


def collect(
    name: str = "scope",
    trace: Any | None = None,
    **labels: Any,
) -> _Scope:
    """Open an instrumentation scope::

        with obs.collect("certify", scheme="mst") as metrics:
            ...
        metrics.counter("views.built")

    ``trace`` (a path or file-like object) attaches a JSONL
    :class:`~repro.obs.trace.TraceSink` for the scope's lifetime: span
    records stream as they close and the final counter snapshot is the
    last record.  Scopes nest; each collector sees the counters bumped
    while it was on the stack.  The scope is **thread-local**: only
    costs incurred by the opening thread land in it, and other threads
    neither see it nor disturb it.
    """
    return _Scope(MetricsCollector(name=name, labels=labels), trace)


def scoped() -> bool:
    """True when the calling thread has at least one open scope."""
    return bool(getattr(_TLS, "scopes", None))


def active() -> MetricsCollector | NullCollector:
    """The calling thread's innermost collector, or :data:`NULL`."""
    scopes = getattr(_TLS, "scopes", None)
    return scopes[-1] if scopes else NULL


# ---------------------------------------------------------------------------
# Counters.
# ---------------------------------------------------------------------------


def inc(counter: str, value: int | float = 1) -> None:
    """Bump ``counter`` in the root and every scope of this thread.

    The root bump is lock-protected (exact under concurrent callers);
    the scoped bumps touch only thread-local collectors and need no
    lock.
    """
    with _ROOT_LOCK:
        counters = _ROOT.counters
        counters[counter] = counters.get(counter, 0) + value
    for collector in _scopes():
        counters = collector.counters
        counters[counter] = counters.get(counter, 0) + value


#: ``add`` is ``inc`` — both spellings read naturally at call sites
#: (``inc("decide.calls")`` vs ``add("messages.sent", k)``).
add = inc


def record_view_builds(count: int = 1) -> None:
    """Charge ``count`` LocalView constructions to every active scope.

    The one hot-path entry point :mod:`repro.core.verifier` (and the
    message-simulator's view assembly) calls per view built.  Kept as a
    named function — not a partial of :func:`inc` — so tests can
    monkeypatch it to model accounting regressions (the perf-ratchet
    suite injects a 2x over-count through exactly this seam).
    """
    with _ROOT_LOCK:
        counters = _ROOT.counters
        counters["views.built"] = counters.get("views.built", 0) + count
    for collector in _scopes():
        counters = collector.counters
        counters["views.built"] = counters.get("views.built", 0) + count


def counter_total(name: str) -> int | float:
    """The root collector's (process-lifetime) value of one counter.

    Read under the root lock, so a total observed between two points
    with no concurrent bumps is exact — the conservation identities
    the concurrency tests assert (root delta == sum of per-thread
    bumps) hold bit-for-bit.
    """
    with _ROOT_LOCK:
        return _ROOT.counters.get(name, 0)


def view_build_total() -> int:
    """Process-lifetime LocalView constructions (the root counter)."""
    with _ROOT_LOCK:
        return int(_ROOT.counters.get("views.built", 0))


# ---------------------------------------------------------------------------
# Spans.
# ---------------------------------------------------------------------------


class _NullSpan:
    """Reusable no-op span for the unscoped fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: times the block for every scope of its thread.

    Enter and exit must happen on one thread; depth and nesting come
    from that thread's own span stack, so concurrent threads' spans
    never interleave each other's depths.
    """

    __slots__ = ("name", "labels", "_start")

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self._start = 0.0

    def __enter__(self) -> "_Span":
        _span_names().append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        names = _span_names()
        depth = len(names)
        if names and names[-1] == self.name:
            names.pop()
        for collector in _scopes():
            collector.record_span(self.name, duration, depth, self.labels)


def span(name: str, **labels: Any) -> _Span | _NullSpan:
    """Time a block under ``name``::

        with obs.span("decide", scheme=scheme.name):
            ...

    When the calling thread has no open scope this returns a shared
    no-op context manager — no timestamps are read, nothing allocates
    per label — so spans can annotate hot paths without taxing
    uninstrumented runs.  Inside a scope the duration lands in every
    scoped collector's span table *on this thread* (and streams to the
    trace sink when one is attached).  Spans nest per thread; the
    recorded depth reflects the enclosing spans of the same thread at
    exit.
    """
    if not getattr(_TLS, "scopes", None):
        return _NULL_SPAN
    return _Span(name, labels)


# ---------------------------------------------------------------------------
# Events.
# ---------------------------------------------------------------------------


def event(name: str, **fields: Any) -> None:
    """Emit a structured trace event to every scoped collector's sink.

    Events are trace-only (no counter side effects): campaign loops use
    them to label cells — detector, n, fault count, chosen scheme
    parameters — so a trace file is self-describing.  A no-op on a
    thread with no open scope, and cheap inside scopes without sinks.
    """
    scopes = getattr(_TLS, "scopes", None)
    if not scopes:
        return
    for collector in scopes:
        if collector.sink is not None:
            collector.sink.event(name, fields)


# ---------------------------------------------------------------------------
# Test support.
# ---------------------------------------------------------------------------


def _reset_for_tests(hard: bool = False) -> None:
    """Drop this thread's scoped collectors (optionally zero the root).

    Test-suite plumbing: a test that errors out of a ``with collect()``
    block through a code path that swallows the exit must not leak its
    scope into the next test.  Thread-local by design — it clears only
    the *calling thread's* scope and span stacks (worker threads own
    their stacks and drop them when they exit).  ``hard=True``
    additionally zeroes the shared root under its lock — only
    meaningful for tests that assert absolute totals, and only safe
    when no other thread is bumping concurrently.
    """
    _scopes().clear()
    _span_names().clear()
    if hard:
        with _ROOT_LOCK:
            _ROOT.counters.clear()
            _ROOT.spans.clear()


def instrumented(
    fn: Callable[..., Any], *args: Any, **kwargs: Any
) -> tuple[Any, MetricsCollector]:
    """Run ``fn`` under a fresh scope; return (result, collector)."""
    with collect(name=getattr(fn, "__name__", "call")) as metrics:
        result = fn(*args, **kwargs)
    return result, metrics


def iter_stack() -> Iterator[MetricsCollector]:
    """This thread's collector stack, root first (read-only diagnostic).

    The shared root leads; the calling thread's scoped collectors
    follow, innermost last.  Other threads' scopes never appear.
    """
    return iter((_ROOT, *_scopes()))
