"""Scope-aware metrics: named counters, nested span timers, scopes.

The verification stack is judged by *costs* — LocalView constructions,
messages, verifier evaluations — and this module is the one place those
costs are recorded.  The design splits into two layers:

Root accounting (always on)
    A process-global **root collector** sits permanently at the bottom
    of the scope stack.  Deterministic cost units (view builds, decide
    calls, message counts) accumulate there from import on, which is
    what keeps :func:`repro.core.verifier.view_build_count` — the
    audited unit every incremental-engine claim is stated in —
    bit-identical to the historical process-global counter.  A counter
    bump is a dict increment per active collector; with only the root
    active that is the same order of work as the old ``global`` int.

Scoped collection (opt in)
    :func:`collect` pushes a fresh :class:`MetricsCollector` onto the
    stack for the duration of a ``with`` block.  Counters bumped inside
    the block accumulate into *every* collector on the stack, so a
    scope's counter reads exactly like a before/after delta of the root
    — the property the campaign tests pin.  Scopes may nest (a per-cell
    scope inside a per-run trace scope); each sees its own deltas.

Spans and trace events exist only inside a scope: :func:`span` returns
a shared no-op context manager when nothing is scoped, so the
uninstrumented hot path pays one truthiness check and nothing else —
the **null-collector** contract the equivalence tests enforce.

Wall-clock span durations are measurement, never logic: no verdict,
counter, or committed snapshot may depend on them (the perf ratchet
snapshots deterministic counters only).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator, Mapping

__all__ = [
    "MetricsCollector",
    "NullCollector",
    "NULL",
    "SpanStat",
    "active",
    "add",
    "collect",
    "counter_total",
    "event",
    "inc",
    "record_view_builds",
    "scoped",
    "span",
    "view_build_total",
]


class SpanStat:
    """Aggregate of one span name inside a collector: calls and seconds."""

    __slots__ = ("calls", "seconds")

    def __init__(self) -> None:
        self.calls = 0
        self.seconds = 0.0

    def record(self, duration: float) -> None:
        self.calls += 1
        self.seconds += duration

    def __repr__(self) -> str:
        return f"SpanStat(calls={self.calls}, seconds={self.seconds:.6f})"


class MetricsCollector:
    """Named counters plus span aggregates for one instrumentation scope.

    Instances are handed out by :func:`collect`; while the scope is
    open every :func:`inc`/:func:`add` lands here (and in every
    enclosing scope), every finished :func:`span` records its duration
    here, and — when the scope was opened with a trace sink — span and
    event records stream to the sink as JSONL.
    """

    __slots__ = ("name", "labels", "counters", "spans", "sink")

    def __init__(
        self,
        name: str = "scope",
        labels: Mapping[str, Any] | None = None,
        sink: Any | None = None,
    ) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.counters: dict[str, int | float] = {}
        self.spans: dict[str, SpanStat] = {}
        self.sink = sink

    # -- counters -----------------------------------------------------------

    def add(self, counter: str, value: int | float = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + value

    def counter(self, name: str, default: int | float = 0) -> int | float:
        """Current value of one counter (0 when never bumped)."""
        return self.counters.get(name, default)

    # -- spans --------------------------------------------------------------

    def record_span(
        self,
        name: str,
        duration: float,
        depth: int,
        labels: Mapping[str, Any],
    ) -> None:
        stat = self.spans.get(name)
        if stat is None:
            stat = self.spans[name] = SpanStat()
        stat.record(duration)
        if self.sink is not None:
            self.sink.span(name, duration, depth, labels)

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready summary: labels, counters, span aggregates."""
        return {
            "scope": self.name,
            "labels": dict(self.labels),
            "counters": dict(self.counters),
            "spans": {
                name: {"calls": stat.calls, "seconds": stat.seconds}
                for name, stat in sorted(self.spans.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"MetricsCollector({self.name!r}, "
            f"{len(self.counters)} counters, {len(self.spans)} spans)"
        )


class NullCollector:
    """The do-nothing collector: every recording method is a no-op.

    :func:`active` returns the shared :data:`NULL` instance when no
    scope is open, so code that wants an explicit collector handle can
    hold one unconditionally and still pay nothing uninstrumented.  Its
    ``counters``/``spans`` read as empty and never grow.
    """

    __slots__ = ()

    name = "null"
    labels: dict[str, Any] = {}
    sink = None

    @property
    def counters(self) -> dict[str, int | float]:
        return {}

    @property
    def spans(self) -> dict[str, SpanStat]:
        return {}

    def add(self, counter: str, value: int | float = 1) -> None:
        pass

    def counter(self, name: str, default: int | float = 0) -> int | float:
        return default

    def record_span(
        self,
        name: str,
        duration: float,
        depth: int,
        labels: Mapping[str, Any],
    ) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {"scope": "null", "labels": {}, "counters": {}, "spans": {}}

    def __repr__(self) -> str:
        return "NullCollector()"


#: The shared null collector (see :class:`NullCollector`).
NULL = NullCollector()

#: The always-on root collector: deterministic cost units accumulate
#: here from import on (``view_build_total`` et al. read it).
_ROOT = MetricsCollector(name="root")

#: The scope stack.  Index 0 is the root and never pops; :func:`collect`
#: pushes/pops scoped collectors above it.
_STACK: list[MetricsCollector] = [_ROOT]

#: Names of open spans, innermost last (gives spans their depth/parent).
_SPAN_STACK: list[str] = []


# ---------------------------------------------------------------------------
# Scope management.
# ---------------------------------------------------------------------------


class _Scope:
    """Context manager pushing one collector for the ``with`` block."""

    __slots__ = ("collector", "_trace_path")

    def __init__(self, collector: MetricsCollector, trace_path: Any) -> None:
        self.collector = collector
        self._trace_path = trace_path

    def __enter__(self) -> MetricsCollector:
        collector = self.collector
        if self._trace_path is not None and collector.sink is None:
            from repro.obs.trace import TraceSink

            collector.sink = TraceSink(self._trace_path)
            collector.sink.begin(collector.name, collector.labels)
        _STACK.append(collector)
        return collector

    def __exit__(self, exc_type, exc, tb) -> None:
        # Pop by identity: a mispaired exit must not strip the root.
        for index in range(len(_STACK) - 1, 0, -1):
            if _STACK[index] is self.collector:
                del _STACK[index]
                break
        sink = self.collector.sink
        if sink is not None:
            sink.metrics(self.collector.snapshot())
            sink.close()
            self.collector.sink = None


def collect(
    name: str = "scope",
    trace: Any | None = None,
    **labels: Any,
) -> _Scope:
    """Open an instrumentation scope::

        with obs.collect("certify", scheme="mst") as metrics:
            ...
        metrics.counter("views.built")

    ``trace`` (a path or file-like object) attaches a JSONL
    :class:`~repro.obs.trace.TraceSink` for the scope's lifetime: span
    records stream as they close and the final counter snapshot is the
    last record.  Scopes nest; each collector sees the counters bumped
    while it was on the stack.
    """
    return _Scope(MetricsCollector(name=name, labels=labels), trace)


def scoped() -> bool:
    """True when at least one :func:`collect` scope is open."""
    return len(_STACK) > 1


def active() -> MetricsCollector | NullCollector:
    """The innermost scoped collector, or :data:`NULL` outside any scope."""
    return _STACK[-1] if len(_STACK) > 1 else NULL


# ---------------------------------------------------------------------------
# Counters.
# ---------------------------------------------------------------------------


def inc(counter: str, value: int | float = 1) -> None:
    """Bump ``counter`` by ``value`` in every collector on the stack."""
    for collector in _STACK:
        counters = collector.counters
        counters[counter] = counters.get(counter, 0) + value


#: ``add`` is ``inc`` — both spellings read naturally at call sites
#: (``inc("decide.calls")`` vs ``add("messages.sent", k)``).
add = inc


def record_view_builds(count: int = 1) -> None:
    """Charge ``count`` LocalView constructions to every active scope.

    The one hot-path entry point :mod:`repro.core.verifier` (and the
    message-simulator's view assembly) calls per view built.  Kept as a
    named function — not a partial of :func:`inc` — so tests can
    monkeypatch it to model accounting regressions (the perf-ratchet
    suite injects a 2x over-count through exactly this seam).
    """
    for collector in _STACK:
        counters = collector.counters
        counters["views.built"] = counters.get("views.built", 0) + count


def counter_total(name: str) -> int | float:
    """The root collector's (process-lifetime) value of one counter."""
    return _ROOT.counters.get(name, 0)


def view_build_total() -> int:
    """Process-lifetime LocalView constructions (the root counter)."""
    return int(_ROOT.counters.get("views.built", 0))


# ---------------------------------------------------------------------------
# Spans.
# ---------------------------------------------------------------------------


class _NullSpan:
    """Reusable no-op span for the unscoped fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: times the block and reports to every scoped collector."""

    __slots__ = ("name", "labels", "_start")

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self._start = 0.0

    def __enter__(self) -> "_Span":
        _SPAN_STACK.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        depth = len(_SPAN_STACK)
        if _SPAN_STACK and _SPAN_STACK[-1] == self.name:
            _SPAN_STACK.pop()
        for collector in _STACK[1:]:
            collector.record_span(self.name, duration, depth, self.labels)


def span(name: str, **labels: Any) -> _Span | _NullSpan:
    """Time a block under ``name``::

        with obs.span("decide", scheme=scheme.name):
            ...

    Outside any scope this returns a shared no-op context manager —
    no timestamps are read, nothing allocates per label — so spans can
    annotate hot paths without taxing uninstrumented runs.  Inside a
    scope the duration lands in every scoped collector's span table
    (and streams to the trace sink when one is attached).  Spans nest;
    the recorded depth reflects the enclosing spans at exit.
    """
    if len(_STACK) == 1:
        return _NULL_SPAN
    return _Span(name, labels)


# ---------------------------------------------------------------------------
# Events.
# ---------------------------------------------------------------------------


def event(name: str, **fields: Any) -> None:
    """Emit a structured trace event to every scoped collector's sink.

    Events are trace-only (no counter side effects): campaign loops use
    them to label cells — detector, n, fault count, chosen scheme
    parameters — so a trace file is self-describing.  A no-op outside
    any scope, and cheap inside scopes without sinks.
    """
    if len(_STACK) == 1:
        return
    for collector in _STACK[1:]:
        if collector.sink is not None:
            collector.sink.event(name, fields)


# ---------------------------------------------------------------------------
# Test support.
# ---------------------------------------------------------------------------


def _reset_for_tests(hard: bool = False) -> None:
    """Drop any scoped collectors (and optionally the root's counters).

    Test-suite plumbing: a test that errors out of a ``with collect()``
    block through a code path that swallows the exit must not leak its
    scope into the next test.  ``hard=True`` additionally zeroes the
    root — only meaningful for tests that assert absolute totals.
    """
    del _STACK[1:]
    _SPAN_STACK.clear()
    if hard:
        _ROOT.counters.clear()
        _ROOT.spans.clear()


def instrumented(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> tuple[Any, MetricsCollector]:
    """Run ``fn`` under a fresh scope; return (result, collector)."""
    with collect(name=getattr(fn, "__name__", "call")) as metrics:
        result = fn(*args, **kwargs)
    return result, metrics


def iter_stack() -> Iterator[MetricsCollector]:
    """The current collector stack, root first (read-only diagnostic)."""
    return iter(tuple(_STACK))
