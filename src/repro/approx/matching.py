"""2-APLS for maximum matching: maximality as a local certificate.

Exactly certifying "this matching is *maximum*" is globally rigid —
augmenting paths are arbitrarily long, and the generic exact scheme is
the universal Θ(n²) one.  The gap version leans on the folklore fact
that any *maximal* matching is a 2-approximation of the maximum:

* **yes-instances** — the partner-port states encode a valid matching
  ``M`` that is maximal (no edge joins two unmatched nodes);
* **no-instances** — the states do not encode a matching at all, or
  ``α·|M| < ν(G)`` (the matching misses more than the α = 2 factor);
* the certificate is the node's ``(uid, partner uid)`` echo.

Local checks: echoes name their true owner (the uid is ground truth),
partner claims are mutual, and an unmatched node must see *only* matched
neighbors.  All-accept makes ``M`` a genuine maximal matching, hence
``|M| ≥ ν/2`` — soundness across the gap with ``O(log N)`` bits.
"""

from __future__ import annotations

import random
from typing import Any

from repro.approx.gap import GapLanguage
from repro.approx.optima import maximum_matching_size
from repro.approx.scheme import ApproxScheme
from repro.core.labeling import Configuration, Labeling
from repro.core.verifier import LocalView
from repro.graphs.graph import Graph
from repro.schemes.matching import greedy_matching

__all__ = ["GapMaximumMatchingLanguage", "ApproxMatchingScheme"]


class GapMaximumMatchingLanguage(GapLanguage):
    """Gap predicate: maximal matching vs. below half of maximum."""

    name = "gap-maximum-matching"
    alpha = 2.0

    def _valid_matching(self, config: Configuration) -> bool:
        graph = config.graph
        for v in graph.nodes:
            if not self.validate_state(graph, v, config.state(v)):
                return False
        for v in graph.nodes:
            state = config.state(v)
            if state is None:
                continue
            mate = graph.neighbor_at(v, state)
            mate_state = config.state(mate)
            if mate_state is None or graph.neighbor_at(mate, mate_state) != v:
                return False
        return True

    def _is_maximal(self, config: Configuration) -> bool:
        graph = config.graph
        unmatched = {v for v in graph.nodes if config.state(v) is None}
        return not any(u in unmatched and v in unmatched for u, v in graph.edges())

    def _size(self, config: Configuration) -> int:
        return sum(
            1 for v in config.graph.nodes if config.state(v) is not None
        ) // 2

    def is_yes(self, config: Configuration) -> bool:
        return self._valid_matching(config) and self._is_maximal(config)

    def is_no(self, config: Configuration) -> bool:
        if not self._valid_matching(config):
            return True
        size = self._size(config)
        if size == 0:
            # α·0 < ν iff the graph has any edge at all.
            return config.graph.num_edges > 0
        return self.alpha * size < maximum_matching_size(config.graph)

    def canonical_labeling(
        self,
        graph: Graph,
        ids: dict[int, int] | None = None,
        rng: random.Random | None = None,
    ) -> Labeling:
        partner = greedy_matching(graph, rng)
        return Labeling(
            {
                v: (None if partner[v] is None else graph.port(v, partner[v]))
                for v in graph.nodes
            }
        )

    def no_labeling(self, graph: Graph, rng: random.Random) -> dict | None:
        if graph.num_edges == 0:
            return None  # nothing to miss: every valid matching is maximal
        # The empty matching misses everything — the canonical far side.
        return {v: None for v in graph.nodes}

    def validate_state(self, graph: Graph, node: int, state: Any) -> bool:
        if state is None:
            return True
        return isinstance(state, int) and 0 <= state < graph.degree(node)

    def random_corruption(self, node: int, state: Any, rng: random.Random) -> Any:
        choices: list[Any] = [None] + list(range(8))
        choices = [c for c in choices if c != state]
        return rng.choice(choices)


class ApproxMatchingScheme(ApproxScheme):
    """Echo ``(uid, partner uid)``; unmatched nodes demand matched ones."""

    name = "approx-matching"
    size_bound = "O(log N) vs exact O(n^2)"

    def __init__(self, language: GapMaximumMatchingLanguage | None = None) -> None:
        super().__init__(language or GapMaximumMatchingLanguage())

    def prove(self, config: Configuration) -> dict[int, Any]:
        graph = config.graph
        certs: dict[int, Any] = {}
        for v in graph.nodes:
            state = config.state(v)
            if isinstance(state, int) and 0 <= state < graph.degree(v):
                partner_uid = config.uid(graph.neighbor_at(v, state))
            else:
                partner_uid = None
            certs[v] = (config.uid(v), partner_uid)
        return certs

    def verify(self, view: LocalView) -> bool:
        cert = view.certificate
        if not (isinstance(cert, tuple) and len(cert) == 2):
            return False
        echo_uid, partner_uid = cert
        if echo_uid != view.uid:
            return False
        state = view.state
        if state is None:
            if partner_uid is not None:
                return False
            # Maximality: every neighbor must be (truthfully) matched.
            for glimpse in view.neighbors:
                g_cert = glimpse.certificate
                if not (isinstance(g_cert, tuple) and len(g_cert) == 2):
                    return False
                if g_cert[0] != glimpse.uid or g_cert[1] is None:
                    return False
            return True
        if not (isinstance(state, int) and 0 <= state < view.degree):
            return False
        mate = view.neighbor_at(state)
        if partner_uid != mate.uid:
            return False
        mate_cert = mate.certificate
        if not (isinstance(mate_cert, tuple) and len(mate_cert) == 2):
            return False
        # Mutuality through the partner's own pinned echo.
        return mate_cert[0] == mate.uid and mate_cert[1] == view.uid
