"""2-APLS for bounded diameter: one BFS cone instead of n distance maps.

Exactly certifying "diameter ≤ D" is expensive — known proof-labeling
lower bounds for exact diameter are near-linear in n, and the generic
exact scheme here is the universal Θ(n²) one.  The gap version is the
triangle inequality as a certificate:

* **yes-instances** — ``diam(G) ≤ D`` (states carry nothing);
* **no-instances** — ``diam(G) > 2·D``;
* the scheme certifies a *single* BFS cone: ``(center uid, distance)``
  with every distance ≤ D.

Completeness: when ``diam ≤ D`` every node works as the center.
Soundness: all-accept puts every node within ``D`` real hops of one
common center, so any two nodes are within ``2D`` — the configuration
cannot be a no-instance.  ``O(log n + log D)`` bits, and the α = 2 is
exactly the triangle-inequality factor.
"""

from __future__ import annotations

import random
from typing import Any

from repro.approx.gap import GapLanguage
from repro.approx.scheme import ApproxScheme
from repro.core.labeling import Configuration, Labeling
from repro.core.verifier import LocalView
from repro.errors import LanguageError
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs, diameter, eccentricity

__all__ = ["GapDiameterLanguage", "ApproxDiameterScheme"]


class GapDiameterLanguage(GapLanguage):
    """Gap graph property: diameter ≤ D vs. diameter > 2·D."""

    alpha = 2.0

    def __init__(self, bound: int) -> None:
        if bound < 1:
            raise LanguageError(f"diameter bound must be positive, got {bound}")
        self.bound = bound
        self.name = f"gap-diameter<={bound}"

    def is_yes(self, config: Configuration) -> bool:
        if any(config.state(v) is not None for v in config.graph.nodes):
            return False
        return diameter(config.graph) <= self.bound

    def is_no(self, config: Configuration) -> bool:
        if any(config.state(v) is not None for v in config.graph.nodes):
            return True
        return diameter(config.graph) > self.alpha * self.bound

    def canonical_labeling(
        self,
        graph: Graph,
        ids: dict[int, int] | None = None,
        rng: random.Random | None = None,
    ) -> Labeling:
        if diameter(graph) > self.bound:
            raise LanguageError(f"graph diameter exceeds {self.bound}")
        return Labeling.uniform(graph.nodes, None)

    def no_configuration(
        self,
        graph: Graph,
        rng: random.Random | None = None,
        attempts: int = 64,
    ) -> Configuration:
        """A graph property cannot be relabeled across the gap: the
        *graph itself* must be far (diameter > 2·D)."""
        config = Configuration.build(graph)
        if not self.is_no(config):
            raise LanguageError(
                f"graph diameter {diameter(graph)} is not beyond "
                f"{self.alpha} * {self.bound}; supply a farther graph"
            )
        return config

    def validate_state(self, graph: Graph, node: int, state: Any) -> bool:
        return state is None

    def random_corruption(self, node: int, state: Any, rng: random.Random) -> Any:
        return ("noise", rng.randrange(4))


class ApproxDiameterScheme(ApproxScheme):
    """Certify one center's BFS cone of depth ≤ D."""

    size_bound = "O(log n + log D) vs exact O(n^2)"

    def __init__(self, language: GapDiameterLanguage) -> None:
        super().__init__(language)
        self.name = f"approx-diameter<={language.bound}"

    def prove(self, config: Configuration) -> dict[int, Any]:
        graph = config.graph
        center = min(
            graph.nodes, key=lambda v: (eccentricity(graph, v), config.uid(v))
        )
        dist, _ = bfs(graph, center)
        center_uid = config.uid(center)
        return {v: (center_uid, dist.get(v, 0)) for v in graph.nodes}

    def verify(self, view: LocalView) -> bool:
        lang: GapDiameterLanguage = self.gap_language  # type: ignore[assignment]
        if view.state is not None:
            return False
        cert = view.certificate
        if not (isinstance(cert, tuple) and len(cert) == 2):
            return False
        center_uid, dist = cert
        if not (isinstance(dist, int) and 0 <= dist <= lang.bound):
            return False
        for glimpse in view.neighbors:
            g_cert = glimpse.certificate
            if not (isinstance(g_cert, tuple) and len(g_cert) == 2):
                return False
            if g_cert[0] != center_uid:
                return False
        if dist == 0:
            return view.uid == center_uid
        return any(
            isinstance(g.certificate, tuple)
            and len(g.certificate) == 2
            and g.certificate[1] == dist - 1
            for g in view.neighbors
        )
