"""2-APLS for vertex cover: a matching pointer per node.

Exactly certifying "the marked set is a *minimum* vertex cover" is not
locally checkable — the only general exact scheme is the universal
Θ(n²)-bit one.  The gap relaxation is the textbook 2-approximation
argument turned into a certificate (Emek–Gil style):

* **yes-instances** — the marked set ``S`` is a vertex cover that is
  *matching-certifiable*: ``S`` is exactly the endpoint set of some
  matching ``M ⊆ G[S]``.  (The classic 2-approximation — endpoints of a
  maximal matching — always produces such covers, and every such cover
  has ``|S| = 2|M| ≤ 2·OPT``.)
* **no-instances** — ``S`` is not a cover at all, or ``|S| > 2·OPT``.

The certificate at a marked node is the *port* of its matching partner;
every node also echoes its membership bit.  Local checks: echoes are
truthful, unmarked nodes see only marked neighbors (the cover
condition), and partner claims are mutual (ports cross-checked against
the network's ground-truth back-ports).  If every node accepts, the
marked set is a cover equal to the endpoints of a real matching, hence
within factor 2 of minimum — soundness across the gap with
``O(log Δ)``-bit certificates instead of Θ(n²).
"""

from __future__ import annotations

import random
from typing import Any

from repro.approx.gap import GapLanguage
from repro.approx.optima import minimum_vertex_cover_size
from repro.approx.scheme import ApproxScheme
from repro.core.labeling import Configuration, Labeling
from repro.core.verifier import LocalView
from repro.graphs.graph import Graph
from repro.util.rng import make_rng

__all__ = ["GapVertexCoverLanguage", "ApproxVertexCoverScheme"]


def _saturating_matching(
    graph: Graph, marked: set[int], rng: random.Random | None = None
) -> dict[int, int] | None:
    """A matching within ``G[marked]`` covering every marked node.

    Randomised greedy first (almost always enough for covers produced by
    the 2-approximation), then exact backtracking over the lowest
    unmatched marked node.  Returns a node -> partner map or ``None``.
    """
    rng = rng or make_rng(0)
    inner_edges = [
        (u, v) for u, v in graph.edges() if u in marked and v in marked
    ]
    for _ in range(8):
        rng.shuffle(inner_edges)
        partner: dict[int, int] = {}
        for u, v in inner_edges:
            if u not in partner and v not in partner:
                partner[u] = v
                partner[v] = u
        if len(partner) == len(marked):
            return partner

    adjacency: dict[int, list[int]] = {v: [] for v in marked}
    for u, v in inner_edges:
        adjacency[u].append(v)
        adjacency[v].append(u)
    matched: dict[int, int] = {}

    def backtrack() -> bool:
        free = next((v for v in sorted(marked) if v not in matched), None)
        if free is None:
            return True
        for nb in adjacency[free]:
            if nb not in matched:
                matched[free] = nb
                matched[nb] = free
                if backtrack():
                    return True
                del matched[free]
                del matched[nb]
        return False

    return dict(matched) if backtrack() else None


class GapVertexCoverLanguage(GapLanguage):
    """Gap predicate for 2-approximate minimum vertex cover."""

    name = "gap-vertex-cover"
    alpha = 2.0

    def is_yes(self, config: Configuration) -> bool:
        graph = config.graph
        for v in graph.nodes:
            if not isinstance(config.state(v), bool):
                return False
        if not all(config.state(u) or config.state(v) for u, v in graph.edges()):
            return False
        marked = {v for v in graph.nodes if config.state(v)}
        return _saturating_matching(graph, marked) is not None

    def is_no(self, config: Configuration) -> bool:
        graph = config.graph
        for v in graph.nodes:
            if not isinstance(config.state(v), bool):
                return True  # malformed states: not a cover of anything
        if not all(config.state(u) or config.state(v) for u, v in graph.edges()):
            return True
        marked = sum(1 for v in graph.nodes if config.state(v))
        return marked > self.alpha * minimum_vertex_cover_size(graph)

    def canonical_labeling(
        self,
        graph: Graph,
        ids: dict[int, int] | None = None,
        rng: random.Random | None = None,
    ) -> Labeling:
        """The classic 2-approximation: endpoints of a greedy maximal
        matching (always matching-certifiable by construction)."""
        order = list(graph.edges())
        if rng is not None:
            rng.shuffle(order)
        covered: set[int] = set()
        for u, v in order:
            if u not in covered and v not in covered:
                covered.add(u)
                covered.add(v)
        return Labeling({v: v in covered for v in graph.nodes})

    def no_labeling(self, graph: Graph, rng: random.Random) -> dict | None:
        # Mark everything when that overshoots 2·OPT (the interesting
        # far side: a real cover that is too fat); otherwise unmark
        # everything (not a cover as soon as there is an edge).
        if graph.num_edges == 0:
            return None  # edgeless: every bool labeling is a yes-instance
        if graph.n <= 24 and graph.n > self.alpha * minimum_vertex_cover_size(graph):
            if rng.random() < 0.5:
                return {v: True for v in graph.nodes}
        return {v: False for v in graph.nodes}

    def validate_state(self, graph: Graph, node: int, state: Any) -> bool:
        return isinstance(state, bool)

    def random_corruption(self, node: int, state: Any, rng: random.Random) -> Any:
        return not state


class ApproxVertexCoverScheme(ApproxScheme):
    """Matching-pointer certificates: ``(membership echo, partner port)``."""

    name = "approx-vertex-cover"
    size_bound = "O(log Delta) vs exact O(n^2)"

    def __init__(self, language: GapVertexCoverLanguage | None = None) -> None:
        super().__init__(language or GapVertexCoverLanguage())

    def prove(self, config: Configuration) -> dict[int, Any]:
        graph = config.graph
        marked = {
            v
            for v in graph.nodes
            if isinstance(config.state(v), bool) and config.state(v)
        }
        partner = _saturating_matching(graph, marked) or {}
        certs: dict[int, Any] = {}
        for v in graph.nodes:
            if v in marked and v in partner:
                certs[v] = (True, graph.port(v, partner[v]))
            else:
                # Best-effort off the yes-set: echo the bit, claim nothing.
                certs[v] = (bool(config.state(v)), None)
        return certs

    def verify(self, view: LocalView) -> bool:
        cert = view.certificate
        if not (isinstance(cert, tuple) and len(cert) == 2):
            return False
        echo, partner_port = cert
        if not isinstance(view.state, bool) or echo != view.state:
            return False
        if not view.state:
            if partner_port is not None:
                return False
            # Cover condition: every incident edge covered from the far side.
            return all(
                isinstance(g.certificate, tuple)
                and len(g.certificate) == 2
                and g.certificate[0] is True
                for g in view.neighbors
            )
        # Marked: exhibit a mutual matching partner, itself marked.
        if not (isinstance(partner_port, int) and 0 <= partner_port < view.degree):
            return False
        mate = view.neighbor_at(partner_port)
        mate_cert = mate.certificate
        if not (isinstance(mate_cert, tuple) and len(mate_cert) == 2):
            return False
        # The partner is marked and points back through this very edge
        # (its back-port is network ground truth, so mutuality is real).
        return mate_cert[0] is True and mate_cert[1] == mate.back_port
