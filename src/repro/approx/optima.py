"""Exact optimization references for gap decisions.

Deciding whether a configuration is a *no-instance* of an optimization
gap language ("this cover is more than α times minimum") requires the
true optimum.  These are deliberately small exact solvers — branch and
bound with classic reductions — used by ``is_no`` checks, no-instance
generators and the test-suite, all of which run at modest n.  They guard
against accidental use at experiment scale: certifying large instances
never needs the optimum (that is the whole point of the gap), only
*judging* an adversary's playground does.
"""

from __future__ import annotations

from repro.errors import SchemeError
from repro.graphs.graph import Graph

__all__ = ["maximum_matching_size", "minimum_vertex_cover_size"]

#: Exact solvers refuse graphs larger than this (exponential worst case).
EXACT_NODE_LIMIT = 64


def minimum_vertex_cover_size(graph: Graph) -> int:
    """Size of a minimum vertex cover (exact; test-scale graphs only).

    Branching on a maximum-degree vertex (take it, or take its whole
    neighborhood) with degree-0/1 reductions — fast on the sparse
    instances the experiments use.
    """
    if graph.n > EXACT_NODE_LIMIT:
        raise SchemeError(
            f"exact vertex cover limited to n <= {EXACT_NODE_LIMIT}, "
            f"got n = {graph.n}"
        )
    adj = {v: set(graph.neighbors(v)) for v in graph.nodes}

    def solve(active: frozenset[int]) -> int:
        degrees = {
            u: len(adj[u] & active) for u in active if adj[u] & active
        }
        if not degrees:
            return 0
        # Degree-1 reduction: taking the unique neighbor is optimal.
        for u, degree in degrees.items():
            if degree == 1:
                (v,) = adj[u] & active
                return 1 + solve(active - {u, v})
        u = max(degrees, key=degrees.get)
        neighborhood = adj[u] & active
        with_u = 1 + solve(active - {u})
        without_u = len(neighborhood) + solve(active - {u} - neighborhood)
        return min(with_u, without_u)

    return solve(frozenset(graph.nodes))


def maximum_matching_size(graph: Graph) -> int:
    """Size of a maximum matching (exact; test-scale graphs only).

    Branches on the lowest active vertex with an edge: leave it
    unmatched, or match it to each neighbor in turn.
    """
    if graph.n > EXACT_NODE_LIMIT:
        raise SchemeError(
            f"exact matching limited to n <= {EXACT_NODE_LIMIT}, "
            f"got n = {graph.n}"
        )
    adj = {v: set(graph.neighbors(v)) for v in graph.nodes}

    def solve(active: frozenset[int]) -> int:
        pick = None
        for u in sorted(active):
            if adj[u] & active:
                pick = u
                break
        if pick is None:
            return 0
        best = solve(active - {pick})  # pick stays unmatched
        for v in sorted(adj[pick] & active):
            best = max(best, 1 + solve(active - {pick, v}))
        return best

    return solve(frozenset(graph.nodes))
