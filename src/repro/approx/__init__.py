"""Approximate proof labeling schemes: gap verification.

This subsystem implements **α-APLS** — proof labeling schemes whose
soundness is relaxed to a gap (after Emek & Gil 2020 and the
error-sensitive line of Feuilloley & Fraigniaud 2017): the verifier must
accept honest certificates on *yes*-instances and reject every
certificate on *no*-instances that miss the predicate by the factor α,
while anything may happen in between.  That slack is what makes
optimization predicates ("this cover/matching/tree is good") certifiable
with exponentially smaller proofs than exact verification.

Layout:

* :mod:`repro.approx.gap` — :class:`GapLanguage`, the promise-problem
  counterpart of :class:`~repro.core.language.DistributedLanguage`;
* :mod:`repro.approx.scheme` — :class:`ApproxScheme`, the base class
  plugging gap languages into the existing prover/verifier engine;
* :mod:`repro.approx.counters` — rounded counters, the bit-saving
  aggregation primitive;
* one module per concrete α-APLS (vertex cover, dominating set,
  matching, diameter, spanning-tree weight).

Every scheme registers in the unified catalog
(:mod:`repro.core.catalog`); graph-fitted builders derive instance
budgets (a diameter bound, a cardinality or weight budget) from the
graph passed to ``catalog.build(name, graph=...)``.  The two
counter-based schemes form the **(1+ε)-parametrised APLS family**: their
rounded counters accept any gap α = 1 + ε (``eps`` is a declared
catalog parameter), trading certificate bits against approximation
slack — the mantissa width grows as ε shrinks
(:func:`~repro.approx.counters.mantissa_bits_for`).
"""

from __future__ import annotations

from repro.approx.counters import (
    counter_value,
    is_counter,
    mantissa_bits_for,
    round_up_counter,
)
from repro.approx.diameter import ApproxDiameterScheme, GapDiameterLanguage
from repro.approx.dominating_set import (
    ApproxDominatingSetScheme,
    GapDominatingSetLanguage,
    greedy_dominating_set,
)
from repro.approx.gap import GapLanguage
from repro.approx.matching import ApproxMatchingScheme, GapMaximumMatchingLanguage
from repro.approx.mst_weight import ApproxTreeWeightScheme, GapTreeWeightLanguage
from repro.approx.optima import maximum_matching_size, minimum_vertex_cover_size
from repro.approx.scheme import ApproxScheme
from repro.approx.vertex_cover import ApproxVertexCoverScheme, GapVertexCoverLanguage
from repro.core.catalog import ParamSpec, register_scheme
from repro.core.verifier import Visibility
from repro.errors import SchemeError
from repro.graphs.mst import mst_weight
from repro.graphs.traversal import diameter

__all__ = [
    "ApproxDiameterScheme",
    "ApproxDominatingSetScheme",
    "ApproxMatchingScheme",
    "ApproxScheme",
    "ApproxTreeWeightScheme",
    "ApproxVertexCoverScheme",
    "GapDiameterLanguage",
    "GapDominatingSetLanguage",
    "GapLanguage",
    "GapMaximumMatchingLanguage",
    "GapTreeWeightLanguage",
    "GapVertexCoverLanguage",
    "counter_value",
    "greedy_dominating_set",
    "is_counter",
    "mantissa_bits_for",
    "maximum_matching_size",
    "minimum_vertex_cover_size",
    "round_up_counter",
]


# ---------------------------------------------------------------------------
# Catalog registrations.
# ---------------------------------------------------------------------------


@register_scheme(
    "approx-vertex-cover",
    kind="approx",
    summary="cover within 2x minimum via matching pointers",
)
def _build_vertex_cover(graph, rng, **_params):
    return ApproxVertexCoverScheme()


@register_scheme(
    "approx-matching",
    kind="approx",
    summary="matching within 2x maximum via maximality echoes",
)
def _build_matching(graph, rng, **_params):
    return ApproxMatchingScheme()


@register_scheme(
    "approx-diameter",
    kind="approx",
    summary="diameter within 2x bound via one BFS cone",
    graph_fitted=True,
    size_bound="O(log n + log D) vs exact O(n^2)",
    visibility=Visibility.KKP,
    radius=1,
    weighted=False,
    alpha=2.0,
)
def _build_diameter(graph, rng, **_params):
    return ApproxDiameterScheme(GapDiameterLanguage(max(1, diameter(graph))))


#: ε for the (1+ε)-parametrised counter families: gap α = 1 + ε.  The
#: default ε = 1 reproduces the classic α = 2 schemes.
_EPS_PARAM = ParamSpec(
    "eps",
    1.0,
    doc="gap slack: soundness applies beyond alpha = 1 + eps",
    minimum=0.0,
    exclusive=True,
)


@register_scheme(
    "approx-dominating-set",
    kind="approx",
    summary="dominating set within (1+eps)x budget via rounded counters",
    graph_fitted=True,
    size_bound="O(log n) tree + O(log depth + log log k) counter",
    visibility=Visibility.KKP,
    radius=1,
    weighted=False,
    alpha=2.0,
    params=(_EPS_PARAM,),
    batch=True,
    generate=True,
)
def _build_dominating_set(graph, rng, *, eps=1.0):
    # Budget from the deterministic greedy order, which the language's
    # canonical labeling can always fall back to.
    budget = max(1, len(greedy_dominating_set(graph, None)))
    return ApproxDominatingSetScheme(
        GapDominatingSetLanguage(budget, alpha=1.0 + eps)
    )


@register_scheme(
    "approx-tree-weight",
    kind="approx",
    summary="spanning-tree weight within (1+eps)x budget via rounded sums",
    graph_fitted=True,
    size_bound="O(log n + log log W) vs exact O(log^2 n)",
    visibility=Visibility.KKP,
    radius=1,
    weighted=True,
    alpha=2.0,
    params=(_EPS_PARAM,),
    batch=True,
    generate=True,
)
def _build_tree_weight(graph, rng, *, eps=1.0):
    if not graph.is_weighted:
        raise SchemeError("approx-tree-weight needs a weighted graph")
    return ApproxTreeWeightScheme(
        GapTreeWeightLanguage(mst_weight(graph), alpha=1.0 + eps)
    )
