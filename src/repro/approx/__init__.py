"""Approximate proof labeling schemes: gap verification.

This subsystem implements **α-APLS** — proof labeling schemes whose
soundness is relaxed to a gap (after Emek & Gil 2020 and the
error-sensitive line of Feuilloley & Fraigniaud 2017): the verifier must
accept honest certificates on *yes*-instances and reject every
certificate on *no*-instances that miss the predicate by the factor α,
while anything may happen in between.  That slack is what makes
optimization predicates ("this cover/matching/tree is good") certifiable
with exponentially smaller proofs than exact verification.

Layout:

* :mod:`repro.approx.gap` — :class:`GapLanguage`, the promise-problem
  counterpart of :class:`~repro.core.language.DistributedLanguage`;
* :mod:`repro.approx.scheme` — :class:`ApproxScheme`, the base class
  plugging gap languages into the existing prover/verifier engine;
* :mod:`repro.approx.counters` — rounded counters, the bit-saving
  aggregation primitive;
* one module per concrete α-APLS (vertex cover, dominating set,
  matching, diameter, spanning-tree weight);
* :data:`APPROX_SCHEME_BUILDERS` — the registry.  Approximate schemes
  are typically parametrised by an instance-derived budget (a diameter
  bound, a cardinality or weight budget), so the registry holds
  *builders* ``(graph, rng) -> ApproxScheme`` that fit those parameters
  to a concrete graph, rather than the zero-argument factories of
  ``repro.schemes.ALL_SCHEME_FACTORIES``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.approx.counters import (
    counter_value,
    is_counter,
    mantissa_bits_for,
    round_up_counter,
)
from repro.approx.diameter import ApproxDiameterScheme, GapDiameterLanguage
from repro.approx.dominating_set import (
    ApproxDominatingSetScheme,
    GapDominatingSetLanguage,
    greedy_dominating_set,
)
from repro.approx.gap import GapLanguage
from repro.approx.matching import ApproxMatchingScheme, GapMaximumMatchingLanguage
from repro.approx.mst_weight import ApproxTreeWeightScheme, GapTreeWeightLanguage
from repro.approx.optima import maximum_matching_size, minimum_vertex_cover_size
from repro.approx.scheme import ApproxScheme
from repro.approx.vertex_cover import ApproxVertexCoverScheme, GapVertexCoverLanguage
from repro.errors import SchemeError
from repro.graphs.graph import Graph
from repro.graphs.mst import mst_weight
from repro.graphs.traversal import diameter
from repro.util.rng import make_rng

__all__ = [
    "APPROX_SCHEME_BUILDERS",
    "ApproxDiameterScheme",
    "ApproxDominatingSetScheme",
    "ApproxMatchingScheme",
    "ApproxScheme",
    "ApproxSchemeBuilder",
    "ApproxTreeWeightScheme",
    "ApproxVertexCoverScheme",
    "GapDiameterLanguage",
    "GapDominatingSetLanguage",
    "GapLanguage",
    "GapMaximumMatchingLanguage",
    "GapTreeWeightLanguage",
    "GapVertexCoverLanguage",
    "build_approx_scheme",
    "counter_value",
    "greedy_dominating_set",
    "is_counter",
    "mantissa_bits_for",
    "maximum_matching_size",
    "minimum_vertex_cover_size",
    "round_up_counter",
]


@dataclass(frozen=True)
class ApproxSchemeBuilder:
    """Registry entry: fits an α-APLS to a concrete graph.

    ``build(graph, rng)`` derives any instance parameters (budgets,
    bounds) from the graph and returns a ready scheme whose language
    admits the graph as a yes-instance.
    """

    name: str
    alpha: float
    size_bound: str
    weighted: bool
    summary: str
    build: Callable[[Graph, random.Random], ApproxScheme]


def _build_vertex_cover(graph: Graph, rng: random.Random) -> ApproxScheme:
    return ApproxVertexCoverScheme()


def _build_dominating_set(graph: Graph, rng: random.Random) -> ApproxScheme:
    # Budget from the deterministic greedy order, which the language's
    # canonical labeling can always fall back to.
    budget = max(1, len(greedy_dominating_set(graph, None)))
    return ApproxDominatingSetScheme(GapDominatingSetLanguage(budget))


def _build_matching(graph: Graph, rng: random.Random) -> ApproxScheme:
    return ApproxMatchingScheme()


def _build_diameter(graph: Graph, rng: random.Random) -> ApproxScheme:
    return ApproxDiameterScheme(GapDiameterLanguage(max(1, diameter(graph))))


def _build_tree_weight(graph: Graph, rng: random.Random) -> ApproxScheme:
    if not graph.is_weighted:
        raise SchemeError("approx-tree-weight needs a weighted graph")
    return ApproxTreeWeightScheme(GapTreeWeightLanguage(mst_weight(graph)))


#: Name -> builder for every shipped α-APLS.
APPROX_SCHEME_BUILDERS: dict[str, ApproxSchemeBuilder] = {
    "approx-vertex-cover": ApproxSchemeBuilder(
        name="approx-vertex-cover",
        alpha=2.0,
        size_bound="O(log Delta)",
        weighted=False,
        summary="cover within 2x minimum via matching pointers",
        build=_build_vertex_cover,
    ),
    "approx-dominating-set": ApproxSchemeBuilder(
        name="approx-dominating-set",
        alpha=2.0,
        size_bound="O(log n)",
        weighted=False,
        summary="dominating set within 2x budget via rounded counters",
        build=_build_dominating_set,
    ),
    "approx-matching": ApproxSchemeBuilder(
        name="approx-matching",
        alpha=2.0,
        size_bound="O(log N)",
        weighted=False,
        summary="matching within 2x maximum via maximality echoes",
        build=_build_matching,
    ),
    "approx-diameter": ApproxSchemeBuilder(
        name="approx-diameter",
        alpha=2.0,
        size_bound="O(log n + log D)",
        weighted=False,
        summary="diameter within 2x bound via one BFS cone",
        build=_build_diameter,
    ),
    "approx-tree-weight": ApproxSchemeBuilder(
        name="approx-tree-weight",
        alpha=2.0,
        size_bound="O(log n + log log W)",
        weighted=True,
        summary="spanning-tree weight within 2x budget via rounded sums",
        build=_build_tree_weight,
    ),
}


def build_approx_scheme(
    name: str, graph: Graph, rng: random.Random | None = None
) -> ApproxScheme:
    """Instantiate a registered α-APLS fitted to ``graph``."""
    if name not in APPROX_SCHEME_BUILDERS:
        raise SchemeError(
            f"unknown approx scheme {name!r}; "
            f"known: {sorted(APPROX_SCHEME_BUILDERS)}"
        )
    return APPROX_SCHEME_BUILDERS[name].build(graph, rng or make_rng())
