"""The approximate-scheme base class.

An :class:`ApproxScheme` is a :class:`~repro.core.scheme.ProofLabelingScheme`
whose language is a :class:`~repro.approx.gap.GapLanguage`:

* **completeness** — on every yes-instance the honest prover convinces
  every node (inherited unchanged; ``is_member`` is the yes-set);
* **gap soundness** — on every *no*-instance (α-far) some node rejects,
  no matter the certificates.  Inside the gap, anything goes.

Each concrete scheme also names its **exact counterpart**: a scheme
verifying the yes-predicate exactly, with no gap to lean on.  For
optimization predicates that counterpart is generically the universal
Θ(n²)-bit scheme (minimality is not locally checkable), which is
precisely the comparison the ``experiment_t5_approx`` table draws —
what the α of slack buys in certificate bits.
"""

from __future__ import annotations

from repro.approx.gap import GapLanguage
from repro.core.labeling import Configuration
from repro.core.scheme import ProofLabelingScheme
from repro.core.universal import UniversalScheme
from repro.errors import SchemeError

__all__ = ["ApproxScheme"]


class ApproxScheme(ProofLabelingScheme):
    """Base class for α-APLS implementations.

    Subclasses implement ``prove``/``verify`` as usual; the language must
    be a :class:`GapLanguage`.  ``size_bound`` documents the approximate
    certificate; :meth:`exact_counterpart` supplies the exact-verification
    baseline for proof-size comparisons (default: the universal scheme on
    the same yes-predicate).
    """

    def __init__(self, language: GapLanguage) -> None:
        if not isinstance(language, GapLanguage):
            raise SchemeError(
                f"{type(self).__name__} needs a GapLanguage, got {language!r}"
            )
        super().__init__(language)

    @property
    def alpha(self) -> float:
        """The approximation factor this scheme's soundness is gapped by."""
        return self.gap_language.alpha

    @property
    def gap_language(self) -> GapLanguage:
        """The language, typed as a gap language."""
        language = self.language
        assert isinstance(language, GapLanguage)
        return language

    def exact_counterpart(self) -> ProofLabelingScheme:
        """A scheme deciding the yes-predicate exactly (no gap).

        The default is the paper's universal scheme over the same
        language — the generic price of exactness.  Subclasses with a
        tighter natural exact baseline (e.g. exact counters instead of
        rounded ones) override this.
        """
        return UniversalScheme(self.language)

    def certifies(self, config: Configuration) -> bool:
        """Honest prove + verify round-trip (convenience for reports)."""
        return self.run(config).all_accept

    def __repr__(self) -> str:
        return (
            f"<approx-scheme {self.name} alpha={self.alpha} "
            f"for {self.language.name}>"
        )
