"""Gap languages: the promise problems behind approximate schemes.

An *approximate proof labeling scheme* (α-APLS, after Emek–Gil 2020 and
the error-sensitive line of Feuilloley–Fraigniaud 2017) relaxes exact
verification to a **gap**: configurations are split into

* **yes-instances** — the predicate holds (often: the configured object
  is optimal, or meets a budget);
* **no-instances** — the predicate fails by at least the approximation
  factor ``α`` (the object is worse than ``α`` times the budget/optimum,
  or is not even feasible);
* a **don't-care gap** in between, where the verifier may answer either
  way.

Completeness is required on yes-instances, soundness only on
no-instances.  Giving the verifier this slack is what buys exponentially
smaller certificates for optimization predicates: certifying "this
vertex cover is minimum" needs the universal Θ(n²) machinery, while
certifying "this vertex cover is within factor 2 of minimum" costs a
matching pointer per node.

:class:`GapLanguage` extends :class:`~repro.core.language.DistributedLanguage`
with ``is_yes`` / ``is_no`` and α.  ``is_member`` is aliased to
``is_yes`` so that all existing engine machinery — canonical labelings,
``member_configuration``, completeness checks — operates on
yes-instances unchanged, and the gap-aware soundness adversary
(:func:`repro.core.soundness.gap_attack`) targets
:meth:`no_configuration`.
"""

from __future__ import annotations

import random
from abc import abstractmethod

from repro.core.labeling import Configuration
from repro.core.language import DistributedLanguage
from repro.errors import LanguageError
from repro.graphs.graph import Graph
from repro.util.rng import make_rng

__all__ = ["GapLanguage"]


class GapLanguage(DistributedLanguage):
    """A distributed language with a yes/no gap of factor ``alpha``.

    Subclasses set :attr:`alpha` (> 1), implement :meth:`is_yes` and
    :meth:`is_no`, and inherit the ``DistributedLanguage`` contract for
    yes-instances (``canonical_labeling`` must produce one).  The two
    predicates must be disjoint; everything in neither is the gap.
    """

    #: Approximation factor α > 1 separating yes- from no-instances.
    alpha: float = 2.0

    # -- the gap -------------------------------------------------------------

    @abstractmethod
    def is_yes(self, config: Configuration) -> bool:
        """The predicate holds outright (completeness applies here)."""

    @abstractmethod
    def is_no(self, config: Configuration) -> bool:
        """The predicate fails by factor ≥ α (soundness applies here)."""

    def is_member(self, config: Configuration) -> bool:
        """Members of the language proper are the yes-instances."""
        return self.is_yes(config)

    def in_gap(self, config: Configuration) -> bool:
        """Neither yes nor no: the verifier owes nothing here."""
        return not self.is_yes(config) and not self.is_no(config)

    def classify(self, config: Configuration) -> str:
        """``"yes"``, ``"no"``, or ``"gap"`` — the promise-problem region.

        The one place gap ground truth is decided; the fault campaigns
        and the error-sensitivity sweeps both use it so that a burst
        landing in the don't-care region is never misread as a detection
        obligation.
        """
        if self.is_no(config):
            return "no"
        if self.is_yes(config):
            return "yes"
        return "gap"

    # -- no-instance construction --------------------------------------------

    def no_labeling(self, graph: Graph, rng: random.Random) -> dict | None:
        """States making ``graph`` a no-instance, or ``None`` if this
        language cannot reach the gap's far side by relabeling alone
        (graph properties override :meth:`no_configuration` instead)."""
        return None

    def no_configuration(
        self,
        graph: Graph,
        rng: random.Random | None = None,
        attempts: int = 64,
    ) -> Configuration:
        """A configuration on ``graph`` that is α-far (a no-instance).

        Tries, in order: a language-specific :meth:`no_labeling`; random
        corruption of a yes-instance, kept only when it crosses the whole
        gap (plain corruption usually lands in the don't-care middle);
        finally gives up with :class:`~repro.errors.LanguageError`.
        """
        rng = rng or make_rng()
        direct = self.no_labeling(graph, rng)
        if direct is not None:
            config = Configuration.build(graph, direct)
            if not self.is_no(config):
                raise LanguageError(
                    f"{self.name}: no_labeling produced a non-no-instance (bug)"
                )
            return config
        base = self.member_configuration(graph, rng=rng)
        for round_ in range(attempts):
            corruptions = 1 + round_ * max(1, graph.n // 8) % max(2, graph.n)
            corrupted = base.labeling.corrupted(
                rng, min(corruptions, graph.n), self.random_corruption
            )
            config = base.with_labeling(corrupted)
            if self.is_no(config):
                return config
        raise LanguageError(
            f"{self.name}: failed to corrupt across the α={self.alpha} gap "
            f"in {attempts} attempts"
        )

    # -- sanity --------------------------------------------------------------

    def check_gap_consistency(self, config: Configuration) -> bool:
        """The yes and no sets must be disjoint on every configuration."""
        return not (self.is_yes(config) and self.is_no(config))

    def __repr__(self) -> str:
        return f"<gap-language {self.name} alpha={self.alpha}>"
