"""2-APLS for spanning-tree weight: rounded weight aggregation.

The predicate is budgeted optimization over a weighted graph: "the
parent-port states form a spanning tree ``T`` with ``w(T) ≤ W``".  The
exact machinery for MST-hood costs O(log² n) bits (the Borůvka trace of
:mod:`repro.schemes.mst`); even the plain weight bound needs exact
``Θ(log W_total)``-bit subtree sums.  The gap version:

* **yes-instances** — the states form a spanning tree of weight ≤ W;
* **no-instances** — the states do not form a spanning tree, or the
  tree's weight exceeds α·W;
* the certificate is the classic spanning-tree layer — root uid,
  distance, a pinned echo of the parent pointer — plus a **rounded
  counter** (:mod:`repro.approx.counters`) bounding the weight of the
  node's subtree (its subtree's tree edges).

Soundness is exact: decoded counters upper-bound true subtree weights
edge by edge against ground-truth glimpse weights, so an accepted root
proves ``w(T) ≤ α·W``.  Rounding inflates only the honest bound, within
the α the gap grants, cutting the counter from ``Θ(log W_total)`` to
``O(log depth + log log W_total)`` bits.  Integer weights are assumed
(the experiment generators produce them); fractional weights are rounded
up by the prover, which stays sound and costs completeness only on
instances within one unit of the budget.
"""

from __future__ import annotations

import math
import random
from typing import Any

from repro.approx.counters import (
    counter_value,
    is_counter,
    mantissa_bits_for,
    round_up_counter,
)
from repro.approx.gap import GapLanguage
from repro.approx.scheme import ApproxScheme
from repro.core.labeling import Configuration, Labeling
from repro.core.verifier import LocalView
from repro.errors import LanguageError
from repro.graphs.graph import Graph
from repro.graphs.mst import kruskal, mst_weight
from repro.graphs.subgraphs import (
    pointer_structure,
    pointers_form_spanning_tree,
    pointers_from_tree,
)
from repro.schemes.acyclic import pointers_from_ports

__all__ = ["GapTreeWeightLanguage", "ApproxTreeWeightScheme"]


class GapTreeWeightLanguage(GapLanguage):
    """Gap predicate: spanning tree within weight budget vs. α over."""

    weighted = True

    def __init__(self, budget: float, alpha: float = 2.0) -> None:
        if budget <= 0:
            raise LanguageError(f"weight budget must be positive, got {budget}")
        if alpha <= 1.0:
            raise LanguageError(f"gap factor must exceed 1, got {alpha}")
        self.budget = budget
        self.alpha = float(alpha)
        self.name = f"gap-tree-weight<={budget:g}"

    def _tree_weight(self, config: Configuration) -> float | None:
        """Weight of the state-encoded spanning tree, or ``None``."""
        graph = config.graph
        if not graph.is_weighted:
            return None
        for v in graph.nodes:
            if not self.validate_state(graph, v, config.state(v)):
                return None
        pointers = pointers_from_ports(config)
        if not pointers_form_spanning_tree(graph, pointers):
            return None
        return sum(
            graph.weight(v, t) for v, t in pointers.items() if t is not None
        )

    def is_yes(self, config: Configuration) -> bool:
        weight = self._tree_weight(config)
        return weight is not None and weight <= self.budget

    def is_no(self, config: Configuration) -> bool:
        weight = self._tree_weight(config)
        return weight is None or weight > self.alpha * self.budget

    def canonical_labeling(
        self,
        graph: Graph,
        ids: dict[int, int] | None = None,
        rng: random.Random | None = None,
    ) -> Labeling:
        if not graph.is_weighted:
            raise LanguageError("tree-weight language needs a weighted graph")
        tree = kruskal(graph)
        if mst_weight(graph, tree) > self.budget:
            raise LanguageError(
                f"even the MST exceeds the weight budget {self.budget:g}"
            )
        root = rng.randrange(graph.n) if rng is not None else 0
        pointers = pointers_from_tree(graph, tree, root)
        return Labeling(
            {
                v: None if p is None else graph.port(v, p)
                for v, p in pointers.items()
            }
        )

    def no_labeling(self, graph: Graph, rng: random.Random) -> dict | None:
        # Prefer the interesting far side: a genuine spanning tree that
        # is α-overweight (the maximum spanning tree, if heavy enough).
        if graph.is_weighted:
            heavy = kruskal(
                graph.with_weights({e: -graph.weight(*e) for e in graph.edges()})
            )
            if mst_weight(graph, heavy) > self.alpha * self.budget:
                root = rng.randrange(graph.n)
                pointers = pointers_from_tree(graph, heavy, root)
                return {
                    v: None if p is None else graph.port(v, p)
                    for v, p in pointers.items()
                }
        if graph.n < 2:
            return None
        # Fallback: no pointers at all — not a spanning tree.
        return {v: None for v in graph.nodes}

    def validate_state(self, graph: Graph, node: int, state: Any) -> bool:
        if state is None:
            return True
        return isinstance(state, int) and 0 <= state < graph.degree(node)

    def random_corruption(self, node: int, state: Any, rng: random.Random) -> Any:
        choices: list[Any] = [None] + list(range(6))
        choices = [c for c in choices if c != state]
        return rng.choice(choices)


_TAG = "apx-tw"


class ApproxTreeWeightScheme(ApproxScheme):
    """Spanning-tree layer + rounded subtree-weight counters."""

    size_bound = "O(log n + log log W) vs exact O(log^2 n)"

    def __init__(self, language: GapTreeWeightLanguage) -> None:
        super().__init__(language)
        self.name = f"approx-tree-weight<={language.budget:g}"

    # -- prover ---------------------------------------------------------------

    def prove(self, config: Configuration) -> dict[int, Any]:
        graph = config.graph
        pointers = pointers_from_ports(config)
        structure = pointer_structure(pointers)
        roots = sorted(structure.roots)
        root = roots[0] if roots else 0
        root_uid = config.uid(root)
        depth = structure.depth

        children: dict[int, list[int]] = {v: [] for v in graph.nodes}
        for v, target in pointers.items():
            if target is not None and v in depth:
                children.setdefault(target, []).append(v)

        max_depth = max(depth.values(), default=0)
        mantissa = mantissa_bits_for(max_depth, self.alpha)
        counters: dict[int, tuple[int, int]] = {}
        for v in sorted(graph.nodes, key=lambda u: -depth.get(u, 0)):
            total = 0
            for child in children.get(v, []):
                # ``get`` guards the best-effort path on pointer cycles,
                # where the depth order above is not topological.
                total += counter_value(counters.get(child, (0, 0)))
                total += math.ceil(graph.weight(child, v)) if graph.is_weighted else 0
            counters[v] = round_up_counter(total, mantissa)

        certs: dict[int, Any] = {}
        for v in graph.nodes:
            target = pointers.get(v)
            certs[v] = (
                _TAG,
                root_uid,
                depth.get(v, 0),
                None if target is None else config.uid(target),
                counters.get(v, (0, 0)),
            )
        return certs

    # -- verifier -------------------------------------------------------------

    @staticmethod
    def _parse(cert: Any) -> tuple | None:
        if not (isinstance(cert, tuple) and len(cert) == 5 and cert[0] == _TAG):
            return None
        _, root_uid, dist, ptr_echo, counter = cert
        if not (isinstance(dist, int) and dist >= 0):
            return None
        if not is_counter(counter):
            return None
        return root_uid, dist, ptr_echo, counter

    def verify(self, view: LocalView) -> bool:
        lang: GapTreeWeightLanguage = self.gap_language  # type: ignore[assignment]
        mine = self._parse(view.certificate)
        if mine is None:
            return False
        root_uid, dist, ptr_echo, counter = mine

        parsed = []
        for glimpse in view.neighbors:
            entry = self._parse(glimpse.certificate)
            if entry is None:
                return False
            if entry[0] != root_uid:
                return False
            if glimpse.weight is None:
                return False  # a weight bound needs a weighted network
            parsed.append(entry)

        # Spanning-tree layer (the paper's Θ(log n) argument).
        state = view.state
        if state is None:
            if ptr_echo is not None or dist != 0 or view.uid != root_uid:
                return False
        else:
            if not (isinstance(state, int) and 0 <= state < view.degree):
                return False
            if dist == 0:
                return False
            parent = view.neighbor_at(state)
            if ptr_echo != parent.uid:
                return False  # the echo must truthfully name my pointer
            if parsed[state][1] != dist - 1:
                return False

        # Counter layer: my bound covers every child subtree plus the
        # ground-truth weight of the child edge itself.
        total = 0.0
        for glimpse, entry in zip(view.neighbors, parsed):
            if entry[2] == view.uid:
                total += counter_value(entry[3]) + glimpse.weight
        if counter_value(counter) < total:
            return False

        # The root compares against the α-relaxed budget — the gap.
        if dist == 0 and counter_value(counter) > lang.alpha * lang.budget:
            return False
        return True
