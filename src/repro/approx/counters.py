"""Rounded counters: the bit-saving engine of gap certification.

The counting schemes (dominating-set size, spanning-tree weight)
aggregate a sum up a tree: each node certifies an upper bound on its
subtree's total, checked locally against its children's bounds.  Exact
sums need ``Θ(log total)`` bits per node.  With an α gap to spend, the
bound can instead be stored as a **rounded counter** — a floating-point
number ``mantissa · 2^exponent`` with a short mantissa:

* **soundness is exact**: the verifier compares *decoded* values, and
  every accepted root still carries a true upper bound on the real sum —
  rounding never helps an adversary;
* **rounding taxes only completeness**: the honest prover rounds *up* at
  every level, inflating the root bound by at most
  ``(1 + 1/(2^(m-1) - 1))`` per tree level.  Choosing the mantissa width
  ``m`` from the tree depth (:func:`mantissa_bits_for`) keeps the total
  inflation within the α the gap grants.

So a certificate that must survive comparison against ``α · budget``
needs ``O(log depth + log log total)`` counter bits instead of
``O(log total)`` — the quantitative heart of the approximate schemes.
"""

from __future__ import annotations

import math
from typing import Any

from repro.errors import SchemeError

__all__ = [
    "counter_value",
    "is_counter",
    "mantissa_bits_for",
    "round_up_counter",
]


def round_up_counter(value: int, mantissa_bits: int) -> tuple[int, int]:
    """Smallest ``(mantissa, exponent)`` with ``mantissa < 2^m`` whose
    decoded value ``mantissa · 2^exponent`` is ≥ ``value``.

    Normalised: the exponent is the least one admitting an in-range
    mantissa, so small values are represented exactly and large ones
    within a relative error of ``1/(2^(m-1) - 1)``.
    """
    if mantissa_bits < 2:
        raise SchemeError("rounded counters need a mantissa of >= 2 bits")
    if value < 0:
        raise SchemeError(f"counters are non-negative, got {value}")
    if value == 0:
        return (0, 0)
    exponent = max(0, value.bit_length() - mantissa_bits)
    mantissa = (value + (1 << exponent) - 1) >> exponent  # ceil division
    if mantissa >> mantissa_bits:
        # Rounding overflowed the mantissa range: shift one more.
        exponent += 1
        mantissa = (value + (1 << exponent) - 1) >> exponent
    return (mantissa, exponent)


def counter_value(counter: tuple[int, int]) -> int:
    """Decode ``(mantissa, exponent)`` to the integer it upper-bounds."""
    mantissa, exponent = counter
    return mantissa << exponent


def is_counter(obj: Any) -> bool:
    """Shape check for adversary-supplied counters (verifier side)."""
    return (
        isinstance(obj, tuple)
        and len(obj) == 2
        and isinstance(obj[0], int)
        and isinstance(obj[1], int)
        and not isinstance(obj[0], bool)
        and not isinstance(obj[1], bool)
        and obj[0] >= 0
        and 0 <= obj[1] <= 4096
    )


def mantissa_bits_for(depth: int, alpha: float = 2.0) -> int:
    """Mantissa width keeping ``depth + 1`` levels of round-up within α.

    Each level multiplies the honest bound by at most
    ``1 + 1/(2^(m-1) - 1)``; this picks the least ``m`` with
    ``(1 + 1/(2^(m-1) - 1))^(depth+1) <= alpha`` (via the sufficient
    condition ``(depth+1)/(2^(m-1)-1) <= ln(alpha)``).
    """
    if alpha <= 1.0:
        raise SchemeError(f"gap factor must exceed 1, got {alpha}")
    needed = 1.0 + (depth + 1) / math.log(alpha)
    return max(2, 1 + math.ceil(math.log2(needed)))
