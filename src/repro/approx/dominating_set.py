"""2-APLS for budgeted dominating sets: rounded tree counters.

The predicate is *budgeted* optimization: "the marked set ``S``
dominates the graph and ``|S| ≤ k``".  Domination is locally checkable
for free (echo bits), but the cardinality bound is a global sum — the
exact scheme aggregates exact subtree counts up a certified spanning
tree.  The gap version replaces the exact counts with **rounded
counters** (:mod:`repro.approx.counters`):

* **yes-instances** — ``S`` dominates and ``|S| ≤ k``;
* **no-instances** — ``S`` does not dominate (or is malformed), or
  ``|S| > α·k``;
* the verifier compares the root's decoded counter against ``α·k``.

Soundness is exact — decoded counters still upper-bound the true count,
so an accepted root proves ``|S| ≤ α·k``.  Rounding only inflates the
*honest* root bound, by at most α when the mantissa width is chosen from
the tree depth — which is exactly the slack the gap provides.  The
counter shrinks from ``Θ(log k)`` to ``O(log depth + log log k)`` bits.
"""

from __future__ import annotations

import random
from typing import Any

from repro.approx.counters import (
    counter_value,
    is_counter,
    mantissa_bits_for,
    round_up_counter,
)
from repro.approx.gap import GapLanguage
from repro.approx.scheme import ApproxScheme
from repro.core.labeling import Configuration, Labeling
from repro.core.verifier import LocalView
from repro.errors import LanguageError
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs

__all__ = ["GapDominatingSetLanguage", "ApproxDominatingSetScheme"]


def greedy_dominating_set(graph: Graph, rng: random.Random | None = None) -> set[int]:
    """A greedy dominating set (node order optionally randomised)."""
    order = list(graph.nodes)
    if rng is not None:
        rng.shuffle(order)
    chosen: set[int] = set()
    dominated: set[int] = set()
    for v in order:
        if v not in dominated:
            chosen.add(v)
            dominated.add(v)
            dominated.update(graph.neighbors(v))
    return chosen


class GapDominatingSetLanguage(GapLanguage):
    """Gap predicate: dominating and within budget vs. α over budget."""

    def __init__(self, budget: int, alpha: float = 2.0) -> None:
        if budget < 1:
            raise LanguageError(f"budget must be positive, got {budget}")
        if alpha <= 1.0:
            raise LanguageError(f"gap factor must exceed 1, got {alpha}")
        self.budget = budget
        self.alpha = float(alpha)
        self.name = f"gap-dominating-set<={budget}"

    def _well_formed(self, config: Configuration) -> bool:
        return all(
            isinstance(config.state(v), bool) for v in config.graph.nodes
        )

    def _dominates(self, config: Configuration) -> bool:
        graph = config.graph
        return all(
            config.state(v) or any(config.state(u) for u in graph.neighbors(v))
            for v in graph.nodes
        )

    def _marked(self, config: Configuration) -> int:
        return sum(1 for v in config.graph.nodes if config.state(v))

    def is_yes(self, config: Configuration) -> bool:
        return (
            self._well_formed(config)
            and self._dominates(config)
            and self._marked(config) <= self.budget
        )

    def is_no(self, config: Configuration) -> bool:
        if not self._well_formed(config) or not self._dominates(config):
            return True
        return self._marked(config) > self.alpha * self.budget

    def canonical_labeling(
        self,
        graph: Graph,
        ids: dict[int, int] | None = None,
        rng: random.Random | None = None,
    ) -> Labeling:
        chosen = greedy_dominating_set(graph, rng)
        if len(chosen) > self.budget:
            # A shuffled greedy can overshoot a budget fitted to the
            # deterministic order; fall back to that order.
            chosen = greedy_dominating_set(graph, None)
        if len(chosen) > self.budget:
            raise LanguageError(
                f"greedy dominating set ({len(chosen)}) exceeds budget "
                f"{self.budget} on this graph"
            )
        return Labeling({v: v in chosen for v in graph.nodes})

    def no_labeling(self, graph: Graph, rng: random.Random) -> dict | None:
        if graph.n > self.alpha * self.budget and rng.random() < 0.5:
            # A perfectly good dominating set that blows the budget.
            return {v: True for v in graph.nodes}
        # The empty set dominates nothing: a no-instance on any graph.
        return {v: False for v in graph.nodes}

    def validate_state(self, graph: Graph, node: int, state: Any) -> bool:
        return isinstance(state, bool)

    def random_corruption(self, node: int, state: Any, rng: random.Random) -> Any:
        return not state


_TAG = "apx-ds"


class ApproxDominatingSetScheme(ApproxScheme):
    """Echo bits + certified spanning tree + rounded subtree counts."""

    size_bound = "O(log n) tree + O(log depth + log log k) counter"

    def __init__(self, language: GapDominatingSetLanguage) -> None:
        super().__init__(language)
        self.name = f"approx-dominating-set<={language.budget}"

    # -- prover ---------------------------------------------------------------

    def prove(self, config: Configuration) -> dict[int, Any]:
        graph = config.graph
        root = min(graph.nodes, key=config.uid)
        dist, parent = bfs(graph, root)
        depth = max(dist.values(), default=0)
        mantissa = mantissa_bits_for(depth, self.alpha)

        children: dict[int, list[int]] = {v: [] for v in graph.nodes}
        for v, p in parent.items():
            if p is not None:
                children[p].append(v)

        counters: dict[int, tuple[int, int]] = {}
        for v in sorted(graph.nodes, key=lambda u: -dist.get(u, 0)):
            total = 1 if config.state(v) else 0
            total += sum(counter_value(counters[c]) for c in children[v])
            counters[v] = round_up_counter(total, mantissa)

        root_uid = config.uid(root)
        certs: dict[int, Any] = {}
        for v in graph.nodes:
            p = parent.get(v)
            certs[v] = (
                _TAG,
                bool(config.state(v)),
                root_uid,
                dist.get(v, 0),
                None if p is None else config.uid(p),
                counters[v],
            )
        return certs

    # -- verifier -------------------------------------------------------------

    @staticmethod
    def _parse(cert: Any) -> tuple | None:
        if not (isinstance(cert, tuple) and len(cert) == 6 and cert[0] == _TAG):
            return None
        _, bit, root_uid, dist, parent_uid, counter = cert
        if not isinstance(bit, bool):
            return None
        if not (isinstance(dist, int) and dist >= 0):
            return None
        if not is_counter(counter):
            return None
        return bit, root_uid, dist, parent_uid, counter

    def verify(self, view: LocalView) -> bool:
        lang: GapDominatingSetLanguage = self.gap_language  # type: ignore[assignment]
        mine = self._parse(view.certificate)
        if mine is None:
            return False
        bit, root_uid, dist, parent_uid, counter = mine
        if not isinstance(view.state, bool) or bit != view.state:
            return False

        parsed = []
        for glimpse in view.neighbors:
            entry = self._parse(glimpse.certificate)
            if entry is None:
                return False
            if entry[1] != root_uid:
                return False  # everyone must agree on the tree's root
            parsed.append(entry)

        # Domination from truthful echoes.
        if not bit and not any(entry[0] for entry in parsed):
            return False

        # Spanning-tree layer: root anchors, others name a real parent
        # one hop closer.
        if dist == 0:
            if view.uid != root_uid or parent_uid is not None:
                return False
        else:
            ok = any(
                glimpse.uid == parent_uid and entry[2] == dist - 1
                for glimpse, entry in zip(view.neighbors, parsed)
            )
            if not ok:
                return False

        # Counter layer: my bound covers my own bit plus every child's
        # bound (children = neighbors whose parent pointer names me).
        total = 1 if bit else 0
        total += sum(
            counter_value(entry[4])
            for entry in parsed
            if entry[3] == view.uid
        )
        if counter_value(counter) < total:
            return False

        # The root compares against the α-relaxed budget — the gap.
        if dist == 0 and counter_value(counter) > lang.alpha * lang.budget:
            return False
        return True
