"""Stdlib client for the certification service: one connection, many envelopes.

:class:`CertifyClient` is the other half of the threaded front end
(:mod:`repro.service.httpd`): a small, dependency-free HTTP/1.1 client
that streams many envelopes over **one keep-alive connection** —
the shape heavy traffic actually takes, where per-request TCP setup
would dominate the O(1) cached hot path — and that understands the
server's backpressure contract:

* **409** (replayed nullifier) raises
  :class:`~repro.errors.ReplayError`;
* **400** (malformed / unservable) raises
  :class:`~repro.errors.ServiceError`;
* **429** (saturated) is retried with a bounded budget, honouring the
  server's ``Retry-After`` hint but capped per attempt; a budget spent
  raises :class:`~repro.errors.ServiceUnavailableError` — the
  submission was never admitted, so retrying later is legal and is
  not a replay;
* a dropped keep-alive connection (the server reaps idle ones at its
  read timeout) is re-dialled once per request, transparently.

:meth:`CertifyClient.submit_many` posts a whole batch to
``/certify-batch`` in one round trip and returns **settled outcomes**
— one :class:`~repro.service.server.CertificationResult` *or* one
typed exception instance per envelope, in order, errors as values so a
mid-batch replay cannot hide the verdicts behind it.

Threading contract: one client owns one socket — share nothing, or
give each thread its own client (the stress tests and the CLI do the
latter).
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Any, Callable, Iterable

from repro.errors import ReplayError, ServiceError, ServiceUnavailableError
from repro.service.envelope import ProofEnvelope
from repro.service.server import CertificationResult

__all__ = ["CertifyClient"]

#: Retries after the first 429 before giving up.
DEFAULT_RETRIES = 8

#: Per-attempt sleep cap (seconds): the server's ``Retry-After`` hint
#: is honoured up to this bound, so a misbehaving hint cannot park the
#: client for minutes.
MAX_RETRY_WAIT_S = 1.0

#: Wait (seconds) assumed when a 429 carries no parseable Retry-After.
RETRY_AFTER_FALLBACK = 0.2


def _wire_obj(envelope: Any) -> Any:
    """An envelope in wire-object form (dict), from any accepted shape."""
    if isinstance(envelope, ProofEnvelope):
        return envelope.to_obj()
    if isinstance(envelope, (bytes, bytearray)):
        return json.loads(envelope.decode("utf-8"))
    if isinstance(envelope, str):
        return json.loads(envelope)
    return envelope


class CertifyClient:
    """Keep-alive client for a running certification server.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of a server started by ``repro serve`` /
        :func:`repro.service.httpd.make_server`.
    timeout:
        Socket timeout (seconds) for connect and each response read.
    retries:
        Bounded retry budget for 429 responses (0 = fail fast).
    sleep:
        Injection point for the retry wait (tests pass a recorder); the
        wait honours the server's ``Retry-After`` up to
        :data:`MAX_RETRY_WAIT_S`.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        retries: int = DEFAULT_RETRIES,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        parsed = urllib.parse.urlsplit(base_url if "//" in base_url
                                       else f"http://{base_url}")
        if parsed.scheme not in ("", "http"):
            raise ValueError(
                f"only plain http is supported, got {parsed.scheme!r}"
            )
        if not parsed.hostname:
            raise ValueError(f"no host in base url {base_url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self.retries = retries
        self._sleep = sleep
        self._conn: http.client.HTTPConnection | None = None

    # -- connection lifecycle ------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "CertifyClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- transport -----------------------------------------------------------

    def _round_trip(
        self, method: str, path: str, body: bytes | None
    ) -> tuple[int, dict[str, str], Any]:
        """One request/response on the kept-alive connection.

        A connection the server has since closed (idle reap, a 429's
        ``Connection: close``) surfaces as a send error or an empty
        response; it is re-dialled exactly once per call.
        """
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                payload = response.read()
                return (
                    response.status,
                    dict(response.getheaders()),
                    json.loads(payload) if payload else None,
                )
            except (
                ConnectionError,
                http.client.RemoteDisconnected,
                http.client.CannotSendRequest,
                BrokenPipeError,
            ):
                self.close()
                if attempt:
                    raise
            except OSError:
                self.close()
                raise

    def _request(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, Any]:
        """A round trip with the bounded 429 retry loop applied."""
        for attempt in range(self.retries + 1):
            status, headers, obj = self._round_trip(method, path, body)
            if status != 429:
                return status, obj
            if attempt >= self.retries:
                break
            try:
                hint = float(headers.get("Retry-After", RETRY_AFTER_FALLBACK))
            except ValueError:
                hint = RETRY_AFTER_FALLBACK
            self._sleep(min(max(hint, 0.0), MAX_RETRY_WAIT_S))
        raise ServiceUnavailableError(
            f"server saturated after {self.retries + 1} attempts on {path}"
        )

    @staticmethod
    def _raise_for(status: int, obj: Any) -> None:
        message = (obj or {}).get("error", f"HTTP {status}")
        if status == 409:
            raise ReplayError(message)
        raise ServiceError(message)

    # -- API -----------------------------------------------------------------

    def healthz(self) -> bool:
        status, obj = self._request("GET", "/healthz")
        return status == 200 and bool((obj or {}).get("ok"))

    def metrics(self) -> dict[str, Any]:
        status, obj = self._request("GET", "/metrics")
        if status != 200:
            self._raise_for(status, obj)
        return obj

    def schemes(self) -> list[dict[str, Any]]:
        status, obj = self._request("GET", "/schemes")
        if status != 200:
            self._raise_for(status, obj)
        return obj["schemes"]

    def submit(self, envelope: Any) -> CertificationResult:
        """Certify one envelope (instance, wire bytes/str, or wire dict).

        Returns the served :class:`CertificationResult` for any decided
        verdict; raises :class:`ReplayError` on 409,
        :class:`ServiceError` on 400, and
        :class:`ServiceUnavailableError` once the 429 retry budget is
        spent.
        """
        if isinstance(envelope, ProofEnvelope):
            body = envelope.to_bytes()
        elif isinstance(envelope, (bytes, bytearray)):
            body = bytes(envelope)
        elif isinstance(envelope, str):
            body = envelope.encode("utf-8")
        else:
            body = json.dumps(envelope).encode("utf-8")
        status, obj = self._request("POST", "/certify", body)
        if status != 200:
            self._raise_for(status, obj)
        return CertificationResult.from_obj(obj)

    def submit_many(
        self, envelopes: Iterable[Any]
    ) -> list[CertificationResult | ServiceError]:
        """Certify a batch in one ``/certify-batch`` round trip.

        Outcomes come back in submission order, settled: a
        :class:`CertificationResult` where the service decided, a
        :class:`ReplayError` instance for a spent nullifier, a
        :class:`ServiceError` instance for the 400 class — errors as
        values, never raised, so one bad envelope cannot hide the
        verdicts around it.  (Transport-level failures and a spent 429
        budget still raise.)
        """
        body = json.dumps(
            {"envelopes": [_wire_obj(envelope) for envelope in envelopes]}
        ).encode("utf-8")
        status, obj = self._request("POST", "/certify-batch", body)
        if status != 200:
            self._raise_for(status, obj)
        outcomes: list[CertificationResult | ServiceError] = []
        for item in obj["results"]:
            if item["status"] == 200:
                outcomes.append(CertificationResult.from_obj(item["result"]))
            elif item["status"] == 409:
                outcomes.append(ReplayError(item["error"]))
            else:
                outcomes.append(ServiceError(item["error"]))
        return outcomes
