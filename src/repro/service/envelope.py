"""Canonical proof envelopes and the anti-replay nullifier registry.

A :class:`ProofEnvelope` is the durable form of one certification
request: *scheme name + coerced params + graph + labeling [+
certificates] + client nonce*, all under the deterministic tagged
encoding of :mod:`repro.util.canonical`.  Its canonical byte form
round-trips exactly (``from_bytes(env.to_bytes()) == env``), which gives
three derived identities, each in its own hash domain:

``body_hash`` (domain ``PLS_ENVELOPE/v1``)
    Content identity *excluding the nonce*: two envelopes asking for the
    same verification of the same configuration share a body hash, which
    is the service's cache key and the seed for deterministic scheme
    builds.  Computed over the *part hashes* (graph, labeling,
    certificates) rather than the payloads, so a resubmission under a
    fresh nonce re-hashes O(1) data, not O(n).

``nullifier`` (domain ``PLS_NULLIFIER/v1``)
    Anti-replay identity *including the nonce*: the
    :class:`NullifierRegistry` spends each nullifier once, so replaying
    a captured envelope verbatim is rejected while honest resubmission
    under a fresh nonce is served (from cache, after the first time).

``graph_hash`` (domain ``PLS_GRAPH/v1``)
    The graph payload travels with its own content hash binding; a
    mismatch (payload tampered after hashing) fails envelope parsing.

Certificates are optional: an envelope without them asks the service to
run the scheme's own marker (honest prover) before deciding; an envelope
with them asks for verification of exactly that assignment — the
corrupted-labeling and adversarial workflows.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.core.labeling import Labeling
from repro.errors import CanonicalError, EnvelopeError, ReplayError
from repro.graphs.graph import Graph
from repro.graphs.serialize import graph_from_obj, graph_hash, graph_to_obj
from repro.util.canonical import (
    canonical_bytes,
    decode_value,
    domain_hash,
    encode_value,
)

__all__ = [
    "ENVELOPE_FORMAT",
    "ENVELOPE_HASH_DOMAIN",
    "NULLIFIER_DOMAIN",
    "NullifierRegistry",
    "ProofEnvelope",
]

#: Version tag carried inside every serialized envelope.
ENVELOPE_FORMAT = "pls-envelope/v1"

#: Domain tag for envelope body (content) hashes — the cache key domain.
ENVELOPE_HASH_DOMAIN = "PLS_ENVELOPE/v1"

#: Domain tag for labeling part hashes inside the body hash.
LABELING_HASH_DOMAIN = "PLS_LABELING/v1"

#: Domain tag for certificate-assignment part hashes inside the body hash.
CERTS_HASH_DOMAIN = "PLS_CERTS/v1"

#: Domain tag for anti-replay nullifiers (body hash + nonce).
NULLIFIER_DOMAIN = "PLS_NULLIFIER/v1"


def _encode_assignment(certificates: Mapping[int, Any]) -> list:
    """Node-sorted ``[[node, encoded_cert], ...]`` (the labeling shape)."""
    return [
        [node, encode_value(cert)]
        for node, cert in sorted(certificates.items())
    ]


def _decode_assignment(obj: Any) -> dict[int, Any]:
    if not isinstance(obj, list):
        raise EnvelopeError(
            f"certificates must be a list of [node, value] pairs, "
            f"got {type(obj).__name__}"
        )
    certificates: dict[int, Any] = {}
    for pair in obj:
        if (
            not isinstance(pair, (list, tuple))
            or len(pair) != 2
            or not isinstance(pair[0], int)
            or isinstance(pair[0], bool)
        ):
            raise EnvelopeError(f"malformed certificate entry {pair!r}")
        if pair[0] in certificates:
            raise EnvelopeError(f"duplicate certificate for node {pair[0]}")
        certificates[pair[0]] = decode_value(pair[1])
    return certificates


@dataclass(frozen=True)
class ProofEnvelope:
    """One certification request in canonical, durable form.

    ``params`` must already be coerced (plain numbers, as
    :meth:`repro.core.catalog.SchemeSpec.resolve_params` returns them);
    the service re-validates against the spec on submission regardless.
    ``certificates`` of ``None`` means "run the honest marker".
    """

    scheme: str
    params: dict[str, Any]
    graph: Graph
    labeling: Labeling
    certificates: dict[int, Any] | None = None
    nonce: str = ""
    version: str = ENVELOPE_FORMAT
    #: Memoised part hashes (graph/labeling/certs/body), shared across
    #: :meth:`with_nonce` copies so a fresh-nonce resubmission re-hashes
    #: O(1) data.  Not part of equality.
    _hashes: dict[str, str] = field(
        default_factory=dict, repr=False, compare=False
    )

    # -- part hashes ---------------------------------------------------------

    def _part(self, key: str, domain: str, payload_fn) -> str:
        cached = self._hashes.get(key)
        if cached is None:
            cached = domain_hash(domain, payload_fn())
            self._hashes[key] = cached
        return cached

    @property
    def graph_hash(self) -> str:
        """Domain-separated content hash of the graph payload."""
        return self._graph_hash()

    def _graph_hash(self) -> str:
        cached = self._hashes.get("graph")
        if cached is None:
            cached = graph_hash(self.graph)
            self._hashes["graph"] = cached
        return cached

    @property
    def labeling_hash(self) -> str:
        """Domain-separated content hash of the labeling payload."""
        return self._part(
            "labeling",
            LABELING_HASH_DOMAIN,
            lambda: canonical_bytes(self.labeling.to_obj()),
        )

    @property
    def certificates_hash(self) -> str:
        """Content hash of the certificate assignment (``-`` when absent)."""
        if self.certificates is None:
            return "-"
        return self._part(
            "certs",
            CERTS_HASH_DOMAIN,
            lambda: canonical_bytes(_encode_assignment(self.certificates)),
        )

    @property
    def body_hash(self) -> str:
        """Content identity excluding the nonce — the service cache key.

        Covers (version, scheme, params, graph hash, labeling hash,
        certificates hash); O(1) to recompute once the part hashes are
        memoised.
        """
        cached = self._hashes.get("body")
        if cached is None:
            body = {
                "format": self.version,
                "scheme": self.scheme,
                "params": encode_value(dict(self.params)),
                "graph_hash": self._graph_hash(),
                "labeling_hash": self.labeling_hash,
                "certificates_hash": self.certificates_hash,
            }
            cached = domain_hash(ENVELOPE_HASH_DOMAIN, canonical_bytes(body))
            self._hashes["body"] = cached
        return cached

    @property
    def nullifier(self) -> str:
        """Anti-replay identity: body hash bound to this nonce."""
        payload = f"{self.body_hash}:{self.nonce}".encode("utf-8")
        return domain_hash(NULLIFIER_DOMAIN, payload)

    # -- derived envelopes ---------------------------------------------------

    def with_nonce(self, nonce: str) -> "ProofEnvelope":
        """Copy under a fresh nonce, sharing the memoised part hashes."""
        return replace(self, nonce=nonce, _hashes=self._hashes)

    # -- wire form -----------------------------------------------------------

    def to_obj(self) -> dict[str, Any]:
        """The full JSON-able wire object (payloads plus hash bindings)."""
        return {
            "format": self.version,
            "scheme": self.scheme,
            "params": encode_value(dict(self.params)),
            "graph": graph_to_obj(self.graph),
            "graph_hash": self._graph_hash(),
            "labeling": self.labeling.to_obj(),
            "certificates": (
                None
                if self.certificates is None
                else _encode_assignment(self.certificates)
            ),
            "nonce": self.nonce,
        }

    def to_bytes(self) -> bytes:
        """Canonical byte form (round-trips through :meth:`from_bytes`)."""
        return canonical_bytes(self.to_obj())

    @classmethod
    def from_obj(
        cls,
        obj: Any,
        graph_cache: Mapping[str, Graph] | None = None,
    ) -> "ProofEnvelope":
        """Parse and validate a wire object.

        Strict: unknown format tags, malformed sections, non-string
        nonces, and a graph payload that does not hash to its declared
        binding all raise :class:`~repro.errors.EnvelopeError`.

        ``graph_cache`` maps graph hashes to already-parsed graphs; when
        the wire object's declared ``graph_hash`` is present there, the
        cached :class:`~repro.graphs.graph.Graph` (with whatever CSR
        mirror it has accumulated) is reused and the O(m) payload parse
        and re-hash are skipped — the warm path of the service's
        graph-affine workers.
        """
        if not isinstance(obj, dict):
            raise EnvelopeError(
                f"envelope must be an object, got {type(obj).__name__}"
            )
        if obj.get("format") != ENVELOPE_FORMAT:
            raise EnvelopeError(
                f"unsupported envelope format {obj.get('format')!r} "
                f"(expected {ENVELOPE_FORMAT!r})"
            )
        scheme = obj.get("scheme")
        if not isinstance(scheme, str) or not scheme:
            raise EnvelopeError(f"scheme name {scheme!r} is not a string")
        nonce = obj.get("nonce", "")
        if not isinstance(nonce, str):
            raise EnvelopeError(f"nonce {nonce!r} is not a string")
        declared = obj.get("graph_hash")
        cached_graph = None
        if graph_cache is not None and isinstance(declared, str):
            cached_graph = graph_cache.get(declared)
        try:
            params = decode_value(obj.get("params"))
            graph = (
                cached_graph
                if cached_graph is not None
                else graph_from_obj(obj.get("graph"))
            )
            labeling = Labeling.from_obj(obj.get("labeling"))
        except CanonicalError as error:
            raise EnvelopeError(str(error)) from None
        if not isinstance(params, dict) or not all(
            isinstance(k, str) for k in params
        ):
            raise EnvelopeError("params must decode to a string-keyed dict")
        certificates = None
        if obj.get("certificates") is not None:
            try:
                certificates = _decode_assignment(obj["certificates"])
            except CanonicalError as error:
                raise EnvelopeError(str(error)) from None
        envelope = cls(
            scheme=scheme,
            params=params,
            graph=graph,
            labeling=labeling,
            certificates=certificates,
            nonce=nonce,
        )
        if cached_graph is not None:
            # The cache key *is* the verified hash of this graph.
            envelope._hashes["graph"] = declared
        elif declared is not None and declared != envelope._graph_hash():
            raise EnvelopeError(
                "graph payload does not match its content-hash binding"
            )
        return envelope

    @classmethod
    def from_bytes(
        cls,
        payload: bytes | str,
        graph_cache: Mapping[str, Graph] | None = None,
    ) -> "ProofEnvelope":
        """Parse an envelope from its canonical JSON byte form."""
        try:
            obj = json.loads(payload)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise EnvelopeError(f"envelope is not valid JSON: {error}") from None
        return cls.from_obj(obj, graph_cache=graph_cache)

    def __repr__(self) -> str:
        certs = "honest" if self.certificates is None else "supplied"
        return (
            f"ProofEnvelope({self.scheme}, n={self.graph.n}, "
            f"certificates={certs}, nonce={self.nonce[:8]!r})"
        )


class NullifierRegistry:
    """Spent-nullifier set with bounded memory and FIFO eviction.

    Thread-safe; :meth:`spend` registers a nullifier exactly once and
    raises :class:`~repro.errors.ReplayError` on resubmission.  Bounding
    the registry keeps the service's memory flat under sustained
    traffic — the oldest nullifiers age out first, which bounds the
    replay-protection *window* rather than the protection itself (the
    cache in front absorbs honest resubmissions long before then).
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._spent: dict[str, None] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._spent)

    def seen(self, nullifier: str) -> bool:
        with self._lock:
            return nullifier in self._spent

    def spend(self, nullifier: str) -> None:
        """Register ``nullifier``; raise :class:`ReplayError` if spent."""
        with self._lock:
            if nullifier in self._spent:
                raise ReplayError(
                    f"nullifier {nullifier[:16]}... already spent "
                    f"(replayed envelope)"
                )
            self._spent[nullifier] = None
            while len(self._spent) > self.capacity:
                self._spent.pop(next(iter(self._spent)))
