"""Stdlib-only threaded HTTP front end for the certification service.

A deliberately small surface over :class:`~repro.service.server.
CertificationService` — five routes, JSON in and out, no dependencies
beyond :mod:`http.server`:

==================  ======  ==============================================
``/healthz``        GET     liveness probe (``{"ok": true}``)
``/schemes``        GET     the machine-readable catalog (``list-schemes
                            --json`` shape)
``/metrics``        GET     service counters, cache occupancy, queue
                            depth, in-flight requests
``/certify``        POST    one :class:`~repro.service.envelope.
                            ProofEnvelope` in wire form; returns the
                            :class:`~repro.service.server.
                            CertificationResult`
``/certify-batch``  POST    ``{"envelopes": [wire, ...]}``; returns
                            ``{"results": [...]}`` with one settled
                            outcome per envelope, in order
==================  ======  ==============================================

Status codes carry the verdict taxonomy: **200** for any decided
verdict (acceptance is in the body — a sound rejection is a successful
certification; a batch response is 200 with per-item statuses inside),
**400** for envelopes the service refuses to decide (malformed, unknown
scheme, invalid parameters) and for bodies the server refuses to read
(missing/invalid ``Content-Length``, chunked transfer encoding),
**408** when a client stalls past the per-request read timeout, **409**
for replayed nullifiers, **429** (+ ``Retry-After``) when the in-flight
bound is saturated, **404**/**405** for unknown routes and methods.

Threading model (requests are served concurrently since the
:mod:`repro.obs` scope stacks went thread-local):

* :class:`CertifyHTTPServer` is a :class:`~http.server.
  ThreadingHTTPServer` — one daemon thread per connection, many
  requests per connection over HTTP/1.1 keep-alive.  The
  :class:`~repro.service.server.CertificationService` underneath is
  thread-safe (see its module docstring for the lock ordering).
* A **bounded in-flight semaphore** (``max_inflight``) gates the POST
  routes: past the bound the server answers 429 immediately with
  ``Retry-After`` instead of queueing unbounded decider work — the
  backpressure contract (:class:`~repro.errors.ServiceUnavailableError`
  on the client side).  GET routes bypass the gate so health and
  metrics stay readable under saturation.
* A **per-request read timeout** (``request_timeout``, applied to the
  connection socket) bounds how long a stalled client can pin a worker
  thread: a half-sent body turns into 408, an idle keep-alive
  connection is reaped.
* Client disconnects mid-response (``BrokenPipeError``/
  ``ConnectionResetError``) are routine, not errors: replies swallow
  them and :meth:`CertifyHTTPServer.handle_error` keeps them off
  stderr.  Anything *else* escaping a handler thread is recorded on
  ``server.errors`` (a bounded deque) so tests and operators can
  assert the storm stayed clean.
"""

from __future__ import annotations

import json
import sys
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.errors import ReplayError, ServiceError
from repro.obs import metrics as _metrics
from repro.service.server import CertificationService

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_REQUEST_TIMEOUT",
    "CertifyHTTPServer",
    "make_server",
    "serve",
]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8423

#: Largest accepted request body; a 10^6-node envelope is ~tens of MB,
#: so this bounds memory without constraining the benchmark sizes.
MAX_BODY_BYTES = 256 * 1024 * 1024

#: Most envelopes accepted in one ``/certify-batch`` body.
MAX_BATCH_ENVELOPES = 1024

#: Concurrent POSTs admitted past the gate before 429s start.
DEFAULT_MAX_INFLIGHT = 8

#: Seconds a stalled client may pin a worker thread (socket timeout).
DEFAULT_REQUEST_TIMEOUT = 30.0

#: ``Retry-After`` hint (seconds) sent with every 429.
RETRY_AFTER_S = 1

#: Exceptions that mean "the peer went away", not "the handler broke".
_DISCONNECTS = (BrokenPipeError, ConnectionResetError, TimeoutError)


class CertifyHTTPServer(ThreadingHTTPServer):
    """Threaded server owning the service, the gate, and the error log."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: CertificationService,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        request_timeout: float | None = DEFAULT_REQUEST_TIMEOUT,
        verbose: bool = False,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        super().__init__(address, _Handler)
        self.service = service
        self.max_inflight = max_inflight
        self.request_timeout = request_timeout
        self.verbose = verbose
        #: Bounds concurrently admitted POST work (the backpressure gate).
        self.gate = threading.BoundedSemaphore(max_inflight)
        #: Unexpected handler-thread exceptions (disconnects excluded);
        #: bounded so a pathological client cannot grow it without limit.
        self.errors: deque[str] = deque(maxlen=64)

    def handle_error(self, request, client_address) -> None:
        """Keep routine disconnects quiet; record real handler failures.

        The stock implementation dumps a traceback to stderr for every
        exception a handler thread raises — under a client that hangs
        up mid-response that floods the log with ``BrokenPipeError``
        noise.  Disconnect classes are swallowed here (the reply path
        already treats them as normal); anything else is appended to
        :attr:`errors` and printed only when ``verbose``.
        """
        exc = sys.exc_info()[1]
        if isinstance(exc, _DISCONNECTS):
            return
        self.errors.append(f"{client_address}: {exc!r}")
        if self.verbose:  # pragma: no cover - diagnostic path
            super().handle_error(request, client_address)


class _Handler(BaseHTTPRequestHandler):
    """One request, one JSON response; the service hangs off the server."""

    server_version = "pls-certifyd/2"
    protocol_version = "HTTP/1.1"
    # Replies go out as two writes (header block, then payload); with
    # Nagle on, the second write waits out the peer's delayed ACK and
    # every keep-alive round trip stalls ~40 ms.
    disable_nagle_algorithm = True

    @property
    def service(self) -> CertificationService:
        return self.server.service  # type: ignore[attr-defined]

    def setup(self) -> None:
        # StreamRequestHandler applies ``self.timeout`` to the socket,
        # which bounds every blocking read below — the per-request read
        # timeout (and the idle keep-alive reaper).
        self.timeout = self.server.request_timeout  # type: ignore[attr-defined]
        super().setup()

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # -- plumbing -----------------------------------------------------------

    def _reply(
        self, status: int, obj: Any, retry_after: int | None = None
    ) -> None:
        """Send one JSON response; a vanished client is not an error.

        A peer that hangs up between our read and our write raises
        ``BrokenPipeError``/``ConnectionResetError`` (or times out) on
        the send path.  Handler threads must survive that silently —
        the verdict is already computed and cached; there is nobody
        left to tell — so the connection is simply marked closed.
        """
        payload = json.dumps(obj).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            if retry_after is not None:
                self.send_header("Retry-After", str(retry_after))
            if self.close_connection:
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(payload)
        except _DISCONNECTS:
            self.close_connection = True

    def _error(self, status: int, message: str, **extra: Any) -> None:
        self._reply(status, {"error": message, **extra})

    def _refuse(self, status: int, message: str) -> None:
        """A body-framing refusal: reply and drop the connection.

        Whenever the declared body cannot be read (missing/invalid
        length, chunked encoding, truncation, timeout), any bytes the
        client still sends would be misparsed as the next request on a
        kept-alive connection — so framing errors always close.
        """
        self.close_connection = True
        self._error(status, message)

    def _read_body(self) -> bytes | None:
        """The request body, or ``None`` after a 4xx refusal was sent.

        Strict framing keeps worker threads unstoppable by malformed
        clients: a chunked or length-less POST is refused with 400
        *before* any blocking read (``rfile.read`` on a chunked body
        would wait forever for bytes the header never promised), a
        stalled body hits the socket timeout and turns into 408, and a
        short read (client closed early) is a clean 400.
        """
        encoding = self.headers.get("Transfer-Encoding", "")
        if "chunked" in encoding.lower():
            self._refuse(400, "chunked transfer encoding is not supported")
            return None
        declared = self.headers.get("Content-Length")
        if declared is None:
            self._refuse(400, "missing Content-Length")
            return None
        try:
            length = int(declared)
        except ValueError:
            self._refuse(400, f"bad Content-Length {declared!r}")
            return None
        if length <= 0 or length > MAX_BODY_BYTES:
            self._refuse(400, f"body length {length} out of bounds")
            return None
        try:
            body = self.rfile.read(length)
        except TimeoutError:
            self._refuse(408, "timed out reading request body")
            return None
        if len(body) != length:
            self._refuse(
                400, f"truncated body: {len(body)} of {length} bytes"
            )
            return None
        return body

    # -- routes -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._reply(200, {"ok": True})
        elif self.path == "/schemes":
            self._reply(200, {"schemes": self.service.describe_catalog()})
        elif self.path == "/metrics":
            body = self.service.metrics()
            gate = self.server.gate  # type: ignore[attr-defined]
            body["max_inflight"] = self.server.max_inflight  # type: ignore[attr-defined]
            body["inflight"] = self.server.max_inflight - gate._value  # type: ignore[attr-defined]
            self._reply(200, body)
        else:
            self._error(404, f"no route {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path not in ("/certify", "/certify-batch"):
            self._error(404, f"no route {self.path!r}")
            return
        gate = self.server.gate  # type: ignore[attr-defined]
        if not gate.acquire(blocking=False):
            # Saturated: refuse before reading the body (whose bytes
            # are in flight regardless — hence the connection close).
            _metrics.inc("service.http.throttled")
            self.close_connection = True
            self._reply(
                429,
                {"error": "server saturated; retry later",
                 "retry_after": RETRY_AFTER_S},
                retry_after=RETRY_AFTER_S,
            )
            return
        try:
            body = self._read_body()
            if body is None:
                return
            if self.path == "/certify":
                self._certify(body)
            else:
                self._certify_batch(body)
        finally:
            gate.release()

    def _certify(self, body: bytes) -> None:
        try:
            result = self.service.submit(body)
        except ReplayError as error:
            self._error(409, str(error), replay=True)
        except ServiceError as error:
            # EnvelopeError is a ServiceError: malformed and unservable
            # submissions share the 400 class.
            self._error(400, str(error))
        else:
            self._reply(200, result.to_obj())

    def _certify_batch(self, body: bytes) -> None:
        try:
            obj = json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self._error(400, f"batch body is not valid JSON: {error}")
            return
        envelopes = obj.get("envelopes") if isinstance(obj, dict) else None
        if not isinstance(envelopes, list):
            self._error(400, 'batch body must be {"envelopes": [...]}')
            return
        if len(envelopes) > MAX_BATCH_ENVELOPES:
            self._error(
                400,
                f"batch of {len(envelopes)} exceeds the "
                f"{MAX_BATCH_ENVELOPES}-envelope bound",
            )
            return
        results = []
        for kind, payload in self.service.submit_settled(envelopes):
            if kind == "ok":
                results.append({"status": 200, "result": payload.to_obj()})
            elif kind == "replay":
                results.append(
                    {"status": 409, "error": payload, "replay": True}
                )
            else:
                results.append({"status": 400, "error": payload})
        self._reply(200, {"results": results})


def make_server(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    service: CertificationService | None = None,
    verbose: bool = False,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    request_timeout: float | None = DEFAULT_REQUEST_TIMEOUT,
) -> CertifyHTTPServer:
    """A ready (not yet serving) HTTP server bound to ``host:port``.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``) — the shape the tests and the CI smoke
    job use.  The caller owns the service's lifetime.  ``max_inflight``
    bounds concurrently admitted POSTs (429 past it);
    ``request_timeout`` is the per-request socket read timeout in
    seconds (``None`` disables it).
    """
    return CertifyHTTPServer(
        (host, port),
        service or CertificationService(),
        max_inflight=max_inflight,
        request_timeout=request_timeout,
        verbose=verbose,
    )


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    service: CertificationService | None = None,
    verbose: bool = False,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    request_timeout: float | None = DEFAULT_REQUEST_TIMEOUT,
) -> None:
    """Serve forever (the ``repro serve`` entry point)."""
    server = make_server(
        host,
        port,
        service=service,
        verbose=verbose,
        max_inflight=max_inflight,
        request_timeout=request_timeout,
    )
    owned = server.service
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()
        owned.close()
