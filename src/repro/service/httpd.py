"""Stdlib-only HTTP front end for the certification service.

A deliberately small surface over :class:`~repro.service.server.
CertificationService` — four routes, JSON in and out, no dependencies
beyond :mod:`http.server`:

============  ======  ====================================================
``/healthz``  GET     liveness probe (``{"ok": true}``)
``/schemes``  GET     the machine-readable catalog (``list-schemes
                      --json`` shape)
``/metrics``  GET     service counters, cache occupancy, queue depth
``/certify``  POST    one :class:`~repro.service.envelope.ProofEnvelope`
                      in wire form; returns the
                      :class:`~repro.service.server.CertificationResult`
============  ======  ====================================================

Status codes carry the verdict taxonomy: **200** for any decided
verdict (acceptance is in the body — a sound rejection is a successful
certification), **400** for envelopes the service refuses to decide
(malformed, unknown scheme, invalid parameters), **409** for replayed
nullifiers, **404**/**405** for unknown routes and methods.

The server is intentionally single-threaded (plain
:class:`http.server.HTTPServer`): the observability ledger's scope stack
is process-global, and requests are CPU-bound decider runs — concurrency
belongs to the service's own sharded worker pool, not to request
threads.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Any

from repro.errors import ReplayError, ServiceError
from repro.service.server import CertificationService

__all__ = ["DEFAULT_HOST", "DEFAULT_PORT", "make_server", "serve"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8423

#: Largest accepted request body; a 10^6-node envelope is ~tens of MB,
#: so this bounds memory without constraining the benchmark sizes.
MAX_BODY_BYTES = 256 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """One request, one JSON response; the service hangs off the server."""

    server_version = "pls-certifyd/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> CertificationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # -- plumbing -----------------------------------------------------------

    def _reply(self, status: int, obj: Any) -> None:
        payload = json.dumps(obj).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _error(self, status: int, message: str, **extra: Any) -> None:
        self._reply(status, {"error": message, **extra})

    # -- routes -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._reply(200, {"ok": True})
        elif self.path == "/schemes":
            self._reply(200, {"schemes": self.service.describe_catalog()})
        elif self.path == "/metrics":
            self._reply(200, self.service.metrics())
        else:
            self._error(404, f"no route {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/certify":
            self._error(404, f"no route {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._error(400, "bad Content-Length")
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            self._error(400, f"body length {length} out of bounds")
            return
        body = self.rfile.read(length)
        try:
            result = self.service.submit(body)
        except ReplayError as error:
            self._error(409, str(error), replay=True)
        except ServiceError as error:
            # EnvelopeError is a ServiceError: malformed and unservable
            # submissions share the 400 class.
            self._error(400, str(error))
        else:
            self._reply(200, result.to_obj())


def make_server(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    service: CertificationService | None = None,
    verbose: bool = False,
) -> HTTPServer:
    """A ready (not yet serving) HTTP server bound to ``host:port``.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``) — the shape the tests and the CI smoke
    job use.  The caller owns the service's lifetime.
    """
    server = HTTPServer((host, port), _Handler)
    server.service = service or CertificationService()  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    service: CertificationService | None = None,
    verbose: bool = False,
) -> None:
    """Serve forever (the ``repro serve`` entry point)."""
    server = make_server(host, port, service=service, verbose=verbose)
    owned = server.service  # type: ignore[attr-defined]
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()
        owned.close()
