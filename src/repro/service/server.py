"""The certification service: validate, dispatch, decide, cache, shard.

:class:`CertificationService` is the long-running half of the PLS
split.  One :meth:`~CertificationService.submit` call takes a
:class:`~repro.service.envelope.ProofEnvelope` (or its wire form) and
returns a structured :class:`CertificationResult`:

1. **Validate** — the envelope's scheme name must be registered and its
   parameters must satisfy the per-scheme schema derived from the
   catalog's declared :class:`~repro.core.catalog.ParamSpec` list
   (unknown names, out-of-bound values, and non-numbers are rejected
   before any graph work).
2. **Anti-replay** — the envelope's nullifier is spent in the
   :class:`~repro.service.envelope.NullifierRegistry`; a replayed
   envelope raises :class:`~repro.errors.ReplayError` and charges the
   ``service.nullifier.rejected`` counter.
3. **Cache** — results live in a bounded LRU keyed by the envelope's
   ``body_hash`` (scheme + params + graph hash + labeling hash +
   certificates hash), so a hot configuration resubmitted under a fresh
   nonce is served in O(1) with zero decider work (``service.cache.hit``
   vs ``service.cache.miss``).
4. **Decide** — cold misses build the scheme through
   :func:`repro.core.catalog.build` (rng seeded deterministically from
   the body hash, so served verdicts are reproducible bit-for-bit),
   prove honestly when the envelope carries no certificates, and decide
   on the batched array path (:func:`repro.core.batch.try_batch_verdict`)
   with automatic per-node fallback.  Per-stage wall-clock timings are
   recorded through :mod:`repro.obs` spans and returned in the result.

With ``workers > 0`` cold misses run on a **sharded process pool**: one
single-process executor per shard, envelopes routed by graph hash, so
each worker's module-level graph cache (and the CSR mirror cached on
the :class:`~repro.graphs.graph.Graph` it holds) stays warm for the
graphs it owns.  ``service.queue.enqueued`` / ``service.queue.completed``
counters make queue depth readable as a ledger delta.

Threading contract: :meth:`~CertificationService.submit` (and the
batch entry points) may be called from many threads at once — the
threaded HTTP front end does exactly that.  Two locks are involved,
with a strict ordering (see docs/ARCHITECTURE.md, "Threading model"):

* ``self._lock`` guards the stats dict and the verdict LRU;
* the :class:`~repro.service.envelope.NullifierRegistry` has its own
  internal lock, making each ``spend`` atomic — concurrent submissions
  of one replayed nullifier admit exactly one winner.

``self._lock`` is never held while the nullifier lock is taken (or
while any decider work runs), so the pair cannot deadlock and a
cache-hit response never waits on a cold decide.  Two threads cold-
missing the same ``body_hash`` simultaneously may both decide it —
duplicate work, identical deterministic results, last store wins —
which trades a little CPU for never blocking a request on another
request's miss.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, replace
from threading import Lock
from typing import Any, Iterable, Mapping

from repro.core import catalog
from repro.core.labeling import Configuration, Labeling
from repro.errors import (
    CanonicalError,
    CatalogError,
    EnvelopeError,
    LabelingError,
    LanguageError,
    ReplayError,
    ServiceError,
)
from repro.graphs.graph import Graph
from repro.obs import metrics as _metrics
from repro.service.envelope import NullifierRegistry, ProofEnvelope
from repro.util.rng import make_rng

__all__ = [
    "CertificationResult",
    "CertificationService",
    "build_envelope",
]

#: At most this many rejecting nodes are reported back (the count is
#: always exact; the sample keeps results O(1)-sized on huge graphs).
REJECT_SAMPLE = 16

#: Per-worker graph cache entries (graphs owned by one shard at a time).
_WORKER_GRAPH_CAPACITY = 8


@dataclass(frozen=True)
class CertificationResult:
    """Structured verdict for one submitted envelope."""

    scheme: str
    params: dict[str, Any]
    n: int
    accepted: bool
    #: Exact number of rejecting nodes.
    rejections: int
    #: First :data:`REJECT_SAMPLE` rejecting nodes, ascending.
    rejecting: tuple[int, ...]
    #: ``"array"`` (batched decider) or ``"views"`` (per-node oracle).
    backend: str
    cache_hit: bool
    body_hash: str
    nullifier: str
    #: Per-stage wall-clock seconds (validate/build/prove/decide, plus
    #: ``total``); empty on cache hits — no stages ran.
    timings: dict[str, float]

    def to_obj(self) -> dict[str, Any]:
        """JSON-ready form (the HTTP response body)."""
        return {
            "scheme": self.scheme,
            "params": dict(self.params),
            "n": self.n,
            "accepted": self.accepted,
            "rejections": self.rejections,
            "rejecting": list(self.rejecting),
            "backend": self.backend,
            "cache_hit": self.cache_hit,
            "body_hash": self.body_hash,
            "nullifier": self.nullifier,
            "timings": {k: round(v, 6) for k, v in self.timings.items()},
        }

    @classmethod
    def from_obj(cls, obj: Mapping[str, Any]) -> "CertificationResult":
        return cls(
            scheme=obj["scheme"],
            params=dict(obj["params"]),
            n=obj["n"],
            accepted=obj["accepted"],
            rejections=obj["rejections"],
            rejecting=tuple(obj["rejecting"]),
            backend=obj["backend"],
            cache_hit=obj["cache_hit"],
            body_hash=obj["body_hash"],
            nullifier=obj["nullifier"],
            timings=dict(obj["timings"]),
        )


@contextmanager
def _stage(timings: dict[str, float], name: str):
    """Time one submit stage: an obs span plus a result-local reading."""
    with _metrics.span(f"service.{name}"):
        start = time.perf_counter()
        yield
        timings[name] = time.perf_counter() - start


def _rng_seed(body_hash: str) -> int:
    """Deterministic build seed from the envelope's content identity."""
    return int(body_hash[:12], 16)


def _execute(envelope: ProofEnvelope, timings: dict[str, float]) -> dict[str, Any]:
    """Validate + build + (prove) + decide one envelope, no caching.

    Returns a plain JSON-able dict so the same function runs in-process
    and inside pool workers.  Raises :class:`ServiceError` subclasses on
    invalid submissions.
    """
    with _stage(timings, "validate"):
        try:
            spec = catalog.get(envelope.scheme)
            params = spec.resolve_params(envelope.params)
        except CatalogError as error:
            raise ServiceError(str(error)) from None
        try:
            config = Configuration.build(envelope.graph, envelope.labeling)
        except LabelingError as error:
            raise EnvelopeError(
                f"labeling does not fit the graph: {error}"
            ) from None
    with _stage(timings, "build"):
        try:
            scheme = spec.build(
                graph=envelope.graph,
                rng=make_rng(_rng_seed(envelope.body_hash)),
                **params,
            )
        except (CatalogError, LanguageError) as error:
            raise ServiceError(
                f"cannot build {envelope.scheme} on this graph: {error}"
            ) from None
    certificates = envelope.certificates
    if certificates is None:
        with _stage(timings, "prove"):
            from repro.core.batch import batch_prove

            certificates = batch_prove(scheme, config)
    with _stage(timings, "decide"):
        from repro.core.batch import try_batch_verdict

        verdict = try_batch_verdict(scheme, config, certificates)
        backend = "array"
        if verdict is None:
            from repro.core.verifier import decide

            backend = "views"
            verdict = decide(
                scheme.verify,
                config,
                certificates,
                scheme.visibility,
                scheme.radius,
            )
    rejecting = sorted(verdict.rejects)
    return {
        "scheme": envelope.scheme,
        "params": params,
        "n": envelope.graph.n,
        "accepted": not rejecting,
        "rejections": len(rejecting),
        "rejecting": rejecting[:REJECT_SAMPLE],
        "backend": backend,
    }


# ---------------------------------------------------------------------------
# Worker side of the sharded pool.
# ---------------------------------------------------------------------------

#: Per-process graph cache: graph hash -> Graph (whose CSR mirror stays
#: cached on the instance).  Shard affinity keeps this hot: a worker
#: only ever sees the graph hashes routed to its shard.
_WORKER_GRAPHS: "OrderedDict[str, Graph]" = OrderedDict()


def _worker_certify(payload: bytes) -> dict[str, Any]:
    """Pool entry point: parse (against the warm graph cache) and execute."""
    envelope = ProofEnvelope.from_bytes(payload, graph_cache=_WORKER_GRAPHS)
    _WORKER_GRAPHS[envelope.graph_hash] = envelope.graph
    _WORKER_GRAPHS.move_to_end(envelope.graph_hash)
    while len(_WORKER_GRAPHS) > _WORKER_GRAPH_CAPACITY:
        _WORKER_GRAPHS.popitem(last=False)
    timings: dict[str, float] = {}
    result = _execute(envelope, timings)
    result["timings"] = timings
    return result


class _ShardPool:
    """Graph-hash-affine pool: one single-process executor per shard.

    Routing by graph hash (not round-robin) is what makes the worker
    graph caches effective: every envelope over one graph lands on the
    same worker, whose parsed :class:`Graph` — and the CSR mirror cached
    on it — stays warm across submissions.
    """

    def __init__(self, workers: int) -> None:
        self._shards = [
            ProcessPoolExecutor(max_workers=1) for _ in range(workers)
        ]

    def __len__(self) -> int:
        return len(self._shards)

    def shard_of(self, envelope: ProofEnvelope) -> int:
        return int(envelope.graph_hash[:8], 16) % len(self._shards)

    def submit(self, envelope: ProofEnvelope):
        executor = self._shards[self.shard_of(envelope)]
        return executor.submit(_worker_certify, envelope.to_bytes())

    def shutdown(self) -> None:
        for executor in self._shards:
            executor.shutdown(wait=False, cancel_futures=True)


# ---------------------------------------------------------------------------
# The service.
# ---------------------------------------------------------------------------


class CertificationService:
    """Long-running verification front end over the scheme catalog.

    Parameters
    ----------
    cache_size:
        Bounded LRU capacity (results, keyed by envelope body hash).
    workers:
        ``0`` decides cold misses in-process (the default — and the
        right choice under tests and single-request CLIs); ``> 0``
        shards cold misses over that many single-process executors by
        graph hash.
    nullifier_capacity:
        Size of the anti-replay window (see
        :class:`~repro.service.envelope.NullifierRegistry`).
    """

    def __init__(
        self,
        cache_size: int = 256,
        workers: int = 0,
        nullifier_capacity: int = 100_000,
    ) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be positive, got {cache_size}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.cache_size = cache_size
        self.nullifiers = NullifierRegistry(nullifier_capacity)
        self._cache: "OrderedDict[str, CertificationResult]" = OrderedDict()
        self._lock = Lock()
        self._pool = _ShardPool(workers) if workers else None
        #: Service-lifetime tallies (also charged to the obs ledger).
        self.stats: dict[str, int] = {
            "submitted": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "replays_rejected": 0,
            "enqueued": 0,
            "completed": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "CertificationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def workers(self) -> int:
        return len(self._pool) if self._pool is not None else 0

    # -- introspection -------------------------------------------------------

    def describe_catalog(self) -> list[dict[str, Any]]:
        """The machine-readable catalog (``list-schemes --json`` shape)."""
        return [spec.describe() for spec in catalog.specs()]

    def metrics(self) -> dict[str, Any]:
        """A JSON-ready service health snapshot."""
        with self._lock:
            stats = dict(self.stats)
            cached = len(self._cache)
        return {
            "stats": stats,
            "queue_depth": stats["enqueued"] - stats["completed"],
            "cache_entries": cached,
            "cache_size": self.cache_size,
            "nullifiers_spent": len(self.nullifiers),
            "workers": self.workers,
        }

    def cached(self, body_hash: str) -> bool:
        with self._lock:
            return body_hash in self._cache

    # -- submission ----------------------------------------------------------

    def _parse(self, envelope: Any) -> ProofEnvelope:
        if isinstance(envelope, ProofEnvelope):
            return envelope
        if isinstance(envelope, (bytes, str)):
            return ProofEnvelope.from_bytes(envelope)
        return ProofEnvelope.from_obj(envelope)

    def submit(
        self,
        envelope: Any,
        _prelaunched: dict[str, Any] | None = None,
    ) -> CertificationResult:
        """Certify one envelope (wire bytes, wire object, or instance).

        Raises :class:`~repro.errors.ReplayError` on a spent nullifier
        and :class:`~repro.errors.ServiceError` (or its
        :class:`~repro.errors.EnvelopeError` subclass) on invalid
        submissions; every other path returns a
        :class:`CertificationResult`.
        """
        timings: dict[str, float] = {}
        start = time.perf_counter()
        _metrics.inc("service.submit")
        with self._lock:
            self.stats["submitted"] += 1
        with _stage(timings, "parse"):
            parsed = self._parse(envelope)
            body_hash = parsed.body_hash
            nullifier = parsed.nullifier
        try:
            self.nullifiers.spend(nullifier)
        except Exception:
            _metrics.inc("service.nullifier.rejected")
            with self._lock:
                self.stats["replays_rejected"] += 1
            raise
        with self._lock:
            hit = self._cache.get(body_hash)
            if hit is not None:
                self._cache.move_to_end(body_hash)
                self.stats["cache_hits"] += 1
        if hit is not None:
            _metrics.inc("service.cache.hit")
            return replace(
                hit, cache_hit=True, nullifier=nullifier, timings={}
            )
        _metrics.inc("service.cache.miss")
        with self._lock:
            self.stats["cache_misses"] += 1
        future = None
        if _prelaunched is not None:
            future = _prelaunched.pop(body_hash, None)
        if future is None and self._pool is not None:
            _metrics.inc("service.queue.enqueued")
            with self._lock:
                self.stats["enqueued"] += 1
            future = self._pool.submit(parsed)
        if future is not None:
            raw = self._collect(future)
        else:
            raw = _execute(parsed, timings)
        timings["total"] = time.perf_counter() - start
        result = CertificationResult(
            scheme=raw["scheme"],
            params=raw["params"],
            n=raw["n"],
            accepted=raw["accepted"],
            rejections=raw["rejections"],
            rejecting=tuple(raw["rejecting"]),
            backend=raw["backend"],
            cache_hit=False,
            body_hash=body_hash,
            nullifier=nullifier,
            timings={**raw.get("timings", {}), **timings},
        )
        self._store(body_hash, result)
        return result

    def submit_many(self, envelopes: Iterable[Any]) -> list[CertificationResult]:
        """Submit a batch; with a pool, cold misses run concurrently.

        Results come back in submission order, and each envelope is
        admitted exactly as :meth:`submit` would admit it (a replayed
        nullifier still raises, at its position) — batching changes
        scheduling, never semantics.  Distinct graphs land on distinct
        shards, so a mixed batch fans out across the pool.
        """
        if self._pool is None:
            return [self.submit(envelope) for envelope in envelopes]
        parsed = [self._parse(envelope) for envelope in envelopes]
        prelaunched = self._prelaunch(parsed)
        try:
            return [
                self.submit(envelope, _prelaunched=prelaunched)
                for envelope in parsed
            ]
        finally:
            self._drain(prelaunched)

    def submit_settled(
        self, envelopes: Iterable[Any]
    ) -> list[tuple[str, Any]]:
        """Submit a batch, settling every outcome instead of raising.

        The wire form of :meth:`submit_many` — the ``/certify-batch``
        route needs one outcome *per envelope* even when some are
        replays or malformed, where :meth:`submit_many` (the in-process
        API) raises at the offending position.  Each envelope is
        admitted exactly as :meth:`submit` would admit it; outcomes
        come back in submission order as ``(kind, payload)``:

        ``("ok", CertificationResult)``
            a decided verdict (accepted or not);
        ``("replay", message)``
            the nullifier was already spent;
        ``("invalid", message)``
            malformed or unservable (the 400 class).

        With a worker pool, distinct cold bodies prelaunch concurrently
        just like :meth:`submit_many`.
        """
        parsed: list[Any] = []
        for envelope in envelopes:
            try:
                parsed.append(self._parse(envelope))
            except ServiceError as error:
                parsed.append(error)
        prelaunched = self._prelaunch(
            [item for item in parsed if isinstance(item, ProofEnvelope)]
        )
        outcomes: list[tuple[str, Any]] = []
        try:
            for item in parsed:
                if isinstance(item, ServiceError):
                    outcomes.append(("invalid", str(item)))
                    continue
                try:
                    outcomes.append(
                        ("ok", self.submit(item, _prelaunched=prelaunched))
                    )
                except ReplayError as error:
                    outcomes.append(("replay", str(error)))
                except ServiceError as error:
                    outcomes.append(("invalid", str(error)))
        finally:
            self._drain(prelaunched)
        return outcomes

    def _prelaunch(self, parsed: list[ProofEnvelope]) -> dict[str, Any]:
        """Launch distinct, uncached, unspent cold bodies on the pool."""
        prelaunched: dict[str, Any] = {}
        if self._pool is None:
            return prelaunched
        for envelope in parsed:
            body_hash = envelope.body_hash
            if (
                body_hash in prelaunched
                or self.cached(body_hash)
                or self.nullifiers.seen(envelope.nullifier)
            ):
                continue
            _metrics.inc("service.queue.enqueued")
            with self._lock:
                self.stats["enqueued"] += 1
            prelaunched[body_hash] = self._pool.submit(envelope)
        return prelaunched

    def _drain(self, prelaunched: dict[str, Any]) -> None:
        """Collect leftover futures so queue counters always balance.

        A mid-batch raise (e.g. a replayed nullifier in
        :meth:`submit_many`) must not strand launched work.
        """
        for future in prelaunched.values():
            try:
                self._collect(future)
            except Exception:
                pass

    def _collect(self, future) -> dict[str, Any]:
        try:
            return future.result()
        finally:
            _metrics.inc("service.queue.completed")
            with self._lock:
                self.stats["completed"] += 1

    def _store(self, body_hash: str, result: CertificationResult) -> None:
        with self._lock:
            self._cache[body_hash] = result
            self._cache.move_to_end(body_hash)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)


# ---------------------------------------------------------------------------
# Envelope construction helper (CLI, tests, benchmarks).
# ---------------------------------------------------------------------------


def build_envelope(
    scheme_name: str,
    *,
    n: int = 32,
    seed: int = 0,
    params: Mapping[str, Any] | None = None,
    corrupt: int = 0,
    honest_certificates: bool = True,
    nonce: str | None = None,
    graph: Graph | None = None,
) -> ProofEnvelope:
    """A ready-to-submit envelope for any catalog scheme.

    Builds the scheme's own sample instance, the canonical member
    labeling, and (by default) the honest certificates.  ``corrupt > 0``
    corrupts that many node states *after* proving — the stale-prover
    configuration the self-stabilization campaigns study, which a sound
    scheme must reject.  The nonce defaults to a deterministic
    derivation from the seed, so rebuilt envelopes replay-collide on
    purpose; pass a fresh ``nonce`` to resubmit content legitimately.
    """
    spec = catalog.get(scheme_name)
    rng = make_rng(seed)
    values = spec.resolve_params(dict(params or {}))
    if graph is None:
        graph = spec.sample_graph(n, rng)
    scheme = spec.build(graph=graph, rng=rng, **values)
    try:
        member = scheme.language.member_configuration(graph, rng=rng)
    except LanguageError as error:
        raise ServiceError(
            f"no member configuration on this graph: {error}"
        ) from None
    from repro.core.batch import batch_prove

    certificates = dict(batch_prove(scheme, member)) if honest_certificates else None
    labeling = member.labeling
    if corrupt:
        labeling = labeling.corrupted(
            rng, corrupt, scheme.language.random_corruption
        )
    if nonce is None:
        nonce = f"{rng.getrandbits(128):032x}"
    try:
        return ProofEnvelope(
            scheme=scheme_name,
            params=values,
            graph=graph,
            labeling=labeling,
            certificates=certificates,
            nonce=nonce,
        )
    except CanonicalError as error:  # pragma: no cover - defensive
        raise ServiceError(f"instance is not serializable: {error}") from None
