"""Certification as a service: durable proof envelopes, served verdicts.

The PLS model (Korman–Kutten–Peleg 2005) is built for exactly this
split: a marker hands out labels *once*, and verification is cheap,
repeatable, and locationless.  This package turns the in-process scheme
catalog into a long-running verification service:

* :mod:`repro.service.envelope` — the canonical
  :class:`~repro.service.envelope.ProofEnvelope` (scheme name, coerced
  params, graph payload bound by a domain-separated content hash,
  labeling, optional certificates, client nonce) with deterministic
  byte forms, and the anti-replay
  :class:`~repro.service.envelope.NullifierRegistry`;
* :mod:`repro.service.server` — the
  :class:`~repro.service.server.CertificationService`: per-scheme
  parameter validation derived from :class:`~repro.core.catalog.ParamSpec`,
  dispatch through :func:`repro.core.catalog.build`, batched array
  deciders with per-node fallback, a bounded LRU keyed by envelope
  content so hot configurations certify in O(1), and an optional
  graph-hash-affine sharded worker pool for cold misses;
* :mod:`repro.service.httpd` — a stdlib-only threaded HTTP front end
  (``repro serve`` / ``repro submit`` on the CLI) with a bounded
  in-flight gate that answers 429 past saturation;
* :mod:`repro.service.client` — a keep-alive stdlib client
  (:class:`~repro.service.client.CertifyClient`) that streams many
  envelopes over one connection and retries 429s within a bounded
  budget.

Cache hits, misses, nullifier rejections, and queue depth all flow
through the :mod:`repro.obs` metrics ledger under ``service.*``
counters.
"""

from repro.service.client import CertifyClient
from repro.service.envelope import (
    ENVELOPE_FORMAT,
    NullifierRegistry,
    ProofEnvelope,
)
from repro.service.server import (
    CertificationResult,
    CertificationService,
    build_envelope,
)

__all__ = [
    "CertificationResult",
    "CertificationService",
    "CertifyClient",
    "ENVELOPE_FORMAT",
    "NullifierRegistry",
    "ProofEnvelope",
    "build_envelope",
]
