"""Synchronous round executor for the LOCAL model.

Runs a :class:`~repro.local.algorithm.SynchronousAlgorithm` on a
:class:`~repro.local.network.Network` until every node halts (or a round
budget runs out, which raises — silent non-termination is a bug, not a
result).  Message counts and total message *bits* (canonical codec) are
accounted so experiments can report communication costs.

Incremental re-execution
------------------------
The self-stabilization story re-runs the *same* verification algorithm
over register files that differ at a handful of nodes, forever.  A
from-scratch :func:`run_synchronous` pays O(n) sends and receives per
sweep regardless of how little changed.  :class:`SimulationSession`
is the message-passing analogue of
:class:`~repro.selfstab.detector.DetectionSession`: it caches one full
run round by round — entry states, outgoing messages, inboxes, halt
pattern — and :meth:`~SimulationSession.rerun` re-executes only the
nodes a declared change can reach.  A change at node ``v`` re-runs
``v``'s sends; receivers whose inbox actually changed re-run their
receive; a receive whose new state differs propagates to the next
round.  Work is therefore O(ball(changed)) per round, and the result is
round-for-round identical to a fresh run (outputs, message counts,
message bits — the property tests pin this).  A rerun that diverges
from the cached *halt pattern* falls back to a fresh full run: halting
changes which messages are dropped, and patching that incrementally is
not worth the bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import SimulationError
from repro.local.algorithm import Halted, SynchronousAlgorithm
from repro.local.network import Network
from repro.obs import metrics as _metrics
from repro.util.bits import obj_bit_size

__all__ = ["RunResult", "SimulationSession", "run_synchronous"]


@dataclass
class RunResult:
    """Outcome of a synchronous run.

    ``outputs`` holds each node's :class:`Halted` payload; ``states`` the
    final (pre-halt) states, useful for debugging; message statistics
    cover every *delivered* message of the run (sends addressed to
    already-halted nodes are dropped and not counted).
    """

    outputs: dict[int, Any]
    rounds: int
    message_count: int
    message_bits: int
    states: dict[int, Any] = field(default_factory=dict)

    def output_by_uid(self, network: Network) -> dict[int, Any]:
        """Outputs re-keyed by node identifier."""
        return {network.ids[v]: out for v, out in self.outputs.items()}


def run_synchronous(
    network: Network,
    algorithm: SynchronousAlgorithm,
    max_rounds: int = 10_000,
    count_bits: bool = True,
) -> RunResult:
    """Execute ``algorithm`` on ``network`` to completion.

    Semantics of one round: all active nodes produce their messages from
    the *current* state; messages are delivered simultaneously; all active
    nodes then update their state from their inbox.  A node that returns
    :class:`Halted` stops sending and receiving from the next round on.

    Messages addressed to a halted node are **dropped at delivery and
    excluded from the message statistics**: a halted node no longer
    participates in the communication round, so counting traffic it can
    never read would inflate the reported communication cost (the T4
    tables).  Sending to a halted neighbor is not an error — in the
    LOCAL model a sender cannot know its neighbor halted.

    Raises :class:`~repro.errors.SimulationError` if any node sends on an
    invalid port or if the round budget is exceeded.
    """
    graph = network.graph
    contexts = network.contexts()
    states: dict[int, Any] = {
        v: algorithm.init_state(contexts[v]) for v in graph.nodes
    }
    active: set[int] = set(graph.nodes)
    outputs: dict[int, Any] = {}
    message_count = 0
    message_bits = 0
    dropped = 0

    rounds = 0
    while active:
        if rounds >= max_rounds:
            raise SimulationError(
                f"{algorithm.name}: {len(active)} nodes still active after "
                f"{max_rounds} rounds"
            )
        # Send phase.
        inboxes: dict[int, dict[int, Any]] = {v: {} for v in graph.nodes}
        for v in active:
            ctx = contexts[v]
            outgoing = algorithm.send(ctx, states[v], rounds)
            for port, message in outgoing.items():
                if not 0 <= port < ctx.degree:
                    raise SimulationError(
                        f"{algorithm.name}: node {v} sent on invalid port {port}"
                    )
                if message is None:
                    continue
                target = graph.neighbor_at(v, port)
                if target not in active:
                    dropped += 1
                    continue  # dropped: halted receivers are off the air
                back_port = graph.port(target, v)
                inboxes[target][back_port] = message
                message_count += 1
                if count_bits:
                    message_bits += obj_bit_size(message)
        # Receive phase.
        for v in sorted(active):
            result = algorithm.receive(contexts[v], states[v], inboxes[v], rounds)
            if isinstance(result, Halted):
                outputs[v] = result.output
                active.discard(v)
            else:
                states[v] = result
        rounds += 1

    _metrics.add("messages.sent", message_count)
    _metrics.add("messages.bits", message_bits)
    _metrics.add("messages.dropped", dropped)
    _metrics.add("rounds", rounds)
    return RunResult(
        outputs=outputs,
        rounds=rounds,
        message_count=message_count,
        message_bits=message_bits,
        states=states,
    )


@dataclass
class _RoundCache:
    """Everything one round of a cached run needs to be re-executed locally."""

    #: Nodes active at the start of the round.
    active: frozenset[int]
    #: Entry state per active node (mutated as reruns advance the baseline).
    entry: dict[int, Any]
    #: Outgoing messages per sender: port -> message (``None``s filtered).
    sends: dict[int, dict[int, Any]]
    #: Inbox per active receiver: back-port -> message.
    inboxes: dict[int, dict[int, Any]]
    #: Nodes whose receive returned :class:`Halted` this round.
    halted: set[int]


class SimulationSession:
    """Cached synchronous run that can be incrementally re-executed.

    Construction runs ``algorithm`` to completion (same semantics as
    :func:`run_synchronous`) while recording per-round entry states,
    messages, and the halt pattern.  :meth:`rerun` then advances the
    cache to a *modified* algorithm — typically the same verification
    round over registers that changed at a declared set of nodes — and
    returns the run result, re-executing only nodes the change can
    reach.  The session is its own baseline: consecutive ``rerun`` calls
    diff against the previous rerun, exactly like
    :class:`~repro.selfstab.detector.DetectionSession` diffs register
    files.

    ``changed`` must cover every node whose *algorithm-visible data*
    (certificates baked into the algorithm, inputs patched through
    :meth:`~repro.local.network.Network.update_input`) differs from the
    previous run; the session takes care of downstream propagation
    through messages.  Understating it yields stale results — the same
    contract ``DetectionSession.update`` has.
    """

    def __init__(
        self,
        network: Network,
        algorithm: SynchronousAlgorithm,
        max_rounds: int = 10_000,
        count_bits: bool = True,
    ) -> None:
        self.network = network
        self.max_rounds = max_rounds
        self.count_bits = count_bits
        self._run_full(algorithm)

    # -- full (re)builds ------------------------------------------------------

    def _run_full(self, algorithm: SynchronousAlgorithm) -> None:
        """Execute ``algorithm`` from scratch, rebuilding every cache."""
        graph = self.network.graph
        contexts = self.network.contexts()
        self._algorithm = algorithm
        self._rounds_cache: list[_RoundCache] = []
        self._outputs: dict[int, Any] = {}
        self._final_states: dict[int, Any] = {}
        self._message_count = 0
        self._message_bits = 0
        dropped = 0

        states = {v: algorithm.init_state(contexts[v]) for v in graph.nodes}
        active: set[int] = set(graph.nodes)
        rounds = 0
        while active:
            if rounds >= self.max_rounds:
                raise SimulationError(
                    f"{algorithm.name}: {len(active)} nodes still active after "
                    f"{self.max_rounds} rounds"
                )
            cache = _RoundCache(
                active=frozenset(active),
                entry={v: states[v] for v in active},
                sends={},
                inboxes={v: {} for v in active},
                halted=set(),
            )
            for v in sorted(active):
                outgoing = self._outgoing(algorithm, contexts[v], states[v], rounds)
                cache.sends[v] = outgoing
                for port, message in outgoing.items():
                    target = graph.neighbor_at(v, port)
                    if target not in active:
                        dropped += 1
                        continue  # dropped: halted receivers are off the air
                    cache.inboxes[target][graph.port(target, v)] = message
                    self._message_count += 1
                    if self.count_bits:
                        self._message_bits += obj_bit_size(message)
            for v in sorted(active):
                result = algorithm.receive(
                    contexts[v], states[v], cache.inboxes[v], rounds
                )
                if isinstance(result, Halted):
                    cache.halted.add(v)
                    self._outputs[v] = result.output
                    self._final_states[v] = states[v]
                    active.discard(v)
                else:
                    states[v] = result
            self._rounds_cache.append(cache)
            rounds += 1

        _metrics.add("messages.sent", self._message_count)
        _metrics.add("messages.bits", self._message_bits)
        _metrics.add("messages.dropped", dropped)
        _metrics.add("rounds", rounds)

    def _outgoing(
        self, algorithm: SynchronousAlgorithm, ctx, state: Any, round_index: int
    ) -> dict[int, Any]:
        """One node's validated, ``None``-filtered messages for a round."""
        outgoing: dict[int, Any] = {}
        for port, message in algorithm.send(ctx, state, round_index).items():
            if not 0 <= port < ctx.degree:
                raise SimulationError(
                    f"{algorithm.name}: node {ctx.node} sent on invalid port {port}"
                )
            if message is None:
                continue
            outgoing[port] = message
        return outgoing

    # -- results --------------------------------------------------------------

    @property
    def rounds(self) -> int:
        return len(self._rounds_cache)

    def result(self) -> RunResult:
        """The cached run's result (fresh copies of the mutable parts)."""
        return RunResult(
            outputs=dict(self._outputs),
            rounds=self.rounds,
            message_count=self._message_count,
            message_bits=self._message_bits,
            states=dict(self._final_states),
        )

    # -- incremental re-execution ---------------------------------------------

    def rerun(
        self,
        algorithm: SynchronousAlgorithm | None = None,
        changed: Iterable[int] = (),
    ) -> RunResult:
        """Advance the cache to ``algorithm`` and return the run result.

        ``algorithm`` defaults to the cached one (for callers that mutate
        the algorithm's data in place); ``changed`` names the nodes whose
        algorithm-visible data differs from the previous run.  Only nodes
        reachable from a change — changed senders, receivers whose inbox
        differs, nodes whose propagated state differs — are re-executed;
        everything else is served from the cache.
        """
        algorithm = algorithm if algorithm is not None else self._algorithm
        self._algorithm = algorithm
        dirty_alg = set(changed)
        if not dirty_alg:
            return self.result()
        graph = self.network.graph
        contexts = self.network.contexts()
        count_delta = 0
        bits_delta = 0
        replaced = 0
        replaced_bits = 0

        # Round-0 entry states come from the algorithm, so a changed node
        # may start differently.
        dirty_state: set[int] = set()
        first = self._rounds_cache[0]
        for v in sorted(dirty_alg & first.active):
            entry = algorithm.init_state(contexts[v])
            if entry != first.entry[v]:
                first.entry[v] = entry
                dirty_state.add(v)

        for round_index, cache in enumerate(self._rounds_cache):
            resend = (dirty_alg | dirty_state) & cache.active
            inbox_dirty: set[int] = set()
            for v in sorted(resend):
                outgoing = self._outgoing(
                    algorithm, contexts[v], cache.entry[v], round_index
                )
                previous = cache.sends[v]
                for port in set(previous) | set(outgoing):
                    missing = object()
                    old = previous.get(port, missing)
                    new = outgoing.get(port, missing)
                    if old is not missing and new is not missing and old == new:
                        continue
                    target = graph.neighbor_at(v, port)
                    if target not in cache.active:
                        continue  # dropped either way, never accounted
                    back_port = graph.port(target, v)
                    inbox = cache.inboxes[target]
                    if old is not missing:
                        count_delta -= 1
                        if self.count_bits:
                            bits_delta -= obj_bit_size(old)
                        del inbox[back_port]
                    if new is not missing:
                        count_delta += 1
                        replaced += 1
                        if self.count_bits:
                            size = obj_bit_size(new)
                            bits_delta += size
                            replaced_bits += size
                        inbox[back_port] = new
                    inbox_dirty.add(target)
                cache.sends[v] = outgoing
            next_dirty: set[int] = set()
            for v in sorted((inbox_dirty | dirty_alg | dirty_state) & cache.active):
                entry = cache.entry[v]
                result = algorithm.receive(
                    contexts[v], entry, cache.inboxes[v], round_index
                )
                if isinstance(result, Halted) != (v in cache.halted):
                    # The halt pattern diverged: message drops change from
                    # this round on, so incremental patching is off the
                    # table.  Rebuild from scratch (still correct).
                    self._run_full(algorithm)
                    return self.result()
                if v in cache.halted:
                    self._outputs[v] = result.output
                    self._final_states[v] = entry
                else:
                    following = self._rounds_cache[round_index + 1]
                    if result != following.entry[v]:
                        following.entry[v] = result
                        next_dirty.add(v)
            dirty_state = next_dirty

        self._message_count += count_delta
        self._message_bits += bits_delta
        # Re-executed work, not the (possibly negative) cache delta: reruns
        # charge only the messages they actually re-placed.
        _metrics.add("messages.sent", replaced)
        _metrics.add("messages.bits", replaced_bits)
        return self.result()
