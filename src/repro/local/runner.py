"""Synchronous round executor for the LOCAL model.

Runs a :class:`~repro.local.algorithm.SynchronousAlgorithm` on a
:class:`~repro.local.network.Network` until every node halts (or a round
budget runs out, which raises — silent non-termination is a bug, not a
result).  Message counts and total message *bits* (canonical codec) are
accounted so experiments can report communication costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError
from repro.local.algorithm import Halted, SynchronousAlgorithm
from repro.local.network import Network
from repro.util.bits import obj_bit_size

__all__ = ["RunResult", "run_synchronous"]


@dataclass
class RunResult:
    """Outcome of a synchronous run.

    ``outputs`` holds each node's :class:`Halted` payload; ``states`` the
    final (pre-halt) states, useful for debugging; message statistics
    cover every *delivered* message of the run (sends addressed to
    already-halted nodes are dropped and not counted).
    """

    outputs: dict[int, Any]
    rounds: int
    message_count: int
    message_bits: int
    states: dict[int, Any] = field(default_factory=dict)

    def output_by_uid(self, network: Network) -> dict[int, Any]:
        """Outputs re-keyed by node identifier."""
        return {network.ids[v]: out for v, out in self.outputs.items()}


def run_synchronous(
    network: Network,
    algorithm: SynchronousAlgorithm,
    max_rounds: int = 10_000,
    count_bits: bool = True,
) -> RunResult:
    """Execute ``algorithm`` on ``network`` to completion.

    Semantics of one round: all active nodes produce their messages from
    the *current* state; messages are delivered simultaneously; all active
    nodes then update their state from their inbox.  A node that returns
    :class:`Halted` stops sending and receiving from the next round on.

    Messages addressed to a halted node are **dropped at delivery and
    excluded from the message statistics**: a halted node no longer
    participates in the communication round, so counting traffic it can
    never read would inflate the reported communication cost (the T4
    tables).  Sending to a halted neighbor is not an error — in the
    LOCAL model a sender cannot know its neighbor halted.

    Raises :class:`~repro.errors.SimulationError` if any node sends on an
    invalid port or if the round budget is exceeded.
    """
    graph = network.graph
    contexts = network.contexts()
    states: dict[int, Any] = {
        v: algorithm.init_state(contexts[v]) for v in graph.nodes
    }
    active: set[int] = set(graph.nodes)
    outputs: dict[int, Any] = {}
    message_count = 0
    message_bits = 0

    rounds = 0
    while active:
        if rounds >= max_rounds:
            raise SimulationError(
                f"{algorithm.name}: {len(active)} nodes still active after "
                f"{max_rounds} rounds"
            )
        # Send phase.
        inboxes: dict[int, dict[int, Any]] = {v: {} for v in graph.nodes}
        for v in active:
            ctx = contexts[v]
            outgoing = algorithm.send(ctx, states[v], rounds)
            for port, message in outgoing.items():
                if not 0 <= port < ctx.degree:
                    raise SimulationError(
                        f"{algorithm.name}: node {v} sent on invalid port {port}"
                    )
                if message is None:
                    continue
                target = graph.neighbor_at(v, port)
                if target not in active:
                    continue  # dropped: halted receivers are off the air
                back_port = graph.port(target, v)
                inboxes[target][back_port] = message
                message_count += 1
                if count_bits:
                    message_bits += obj_bit_size(message)
        # Receive phase.
        for v in sorted(active):
            result = algorithm.receive(contexts[v], states[v], inboxes[v], rounds)
            if isinstance(result, Halted):
                outputs[v] = result.output
                active.discard(v)
            else:
                states[v] = result
        rounds += 1

    return RunResult(
        outputs=outputs,
        rounds=rounds,
        message_count=message_count,
        message_bits=message_bits,
        states=states,
    )
