"""Running a scheme's verification round through the message simulator.

The verifier engine in :mod:`repro.core.verifier` builds node views
directly — convenient, but it hides the communication.  This adapter
executes the *actual* one-round protocol: every node sends its
certificate (plus, under FULL visibility, its state; plus the uid and
back-port ground truth the channel provides) to all neighbors, builds
its :class:`~repro.core.verifier.LocalView` from the inbox, and decides.

Because the runner accounts message bits with the canonical codec, this
is how the experiments measure the *communication cost of verification*
(T4): one round, and per edge roughly the two endpoint certificates.

Radius-``t`` schemes (``coarse-acyclic``) verify over a distance-``t``
ball; :class:`BallGatherRound` realises that as ``t`` rounds of
knowledge flooding, after which every node assembles a
:class:`~repro.core.verifier.BallView` from what actually arrived.

Incremental resweeps
--------------------
Self-stabilizing detection re-runs the same verification round over
near-identical register files forever.  :class:`VerificationSession`
keeps the network, the certificates, and the simulator's
:class:`~repro.local.runner.SimulationSession` between sweeps: a
resweep after ``k`` register changes re-executes (and rebuilds the
:class:`~repro.core.verifier.LocalView` of) only the nodes within the
scheme's radius of a change — the message-passing twin of
:class:`~repro.selfstab.detector.DetectionSession`.  View constructions
are charged to :func:`~repro.core.verifier.view_build_count` either
way, so the saving is measurable in the same audited unit as the direct
engine's.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.labeling import Configuration
from repro.core.scheme import ProofLabelingScheme
from repro.core.verifier import (
    BallView,
    LocalView,
    NeighborGlimpse,
    Verdict,
    Visibility,
    record_view_build,
)
from repro.errors import SimulationError
from repro.local.algorithm import Halted, NodeContext, SynchronousAlgorithm
from repro.local.network import Network
from repro.local.runner import RunResult, SimulationSession, run_synchronous
from repro.obs import metrics as _metrics

__all__ = [
    "BallGatherRound",
    "VerificationRound",
    "VerificationSession",
    "distributed_verification",
]


class VerificationRound(SynchronousAlgorithm):
    """One exchange, then a local decision (the paper's radius-1 model)."""

    name = "verification-round"

    def __init__(
        self,
        scheme: ProofLabelingScheme,
        certificates: Mapping[int, Any],
        network: Network,
    ) -> None:
        self.scheme = scheme
        self.certificates = dict(certificates)
        self._network = network

    def init_state(self, ctx: NodeContext) -> Any:
        return None

    def send(self, ctx: NodeContext, state: Any, round_index: int) -> Mapping[int, Any]:
        cert = self.certificates.get(ctx.node)
        payload_state = (
            ctx.input if self.scheme.visibility is Visibility.FULL else None
        )
        messages = {}
        for port in range(ctx.degree):
            # uid and the sender's port number ride along as channel
            # ground truth; the certificate (and echoed state) are the
            # prover-controlled payload.
            messages[port] = (ctx.uid, port, cert, payload_state)
        return messages

    def receive(
        self,
        ctx: NodeContext,
        state: Any,
        inbox: Mapping[int, Any],
        round_index: int,
    ) -> Any:
        glimpses = []
        for port in range(ctx.degree):
            uid, back_port, cert, nb_state = inbox[port]
            weight = ctx.port_weights[port] if ctx.port_weights is not None else None
            glimpses.append(
                NeighborGlimpse(
                    port=port,
                    uid=uid,
                    certificate=cert,
                    state=nb_state,
                    weight=weight,
                    back_port=back_port,
                )
            )
        record_view_build()
        view = LocalView(
            uid=ctx.uid,
            degree=ctx.degree,
            state=ctx.input,
            certificate=self.certificates.get(ctx.node),
            neighbors=tuple(glimpses),
        )
        try:
            ok = bool(self.scheme.verify(view))
        except Exception:
            ok = False
        return Halted(ok)


class BallGatherRound(SynchronousAlgorithm):
    """Radius-``t`` verification: ``t`` flooding rounds, then a decision.

    Each round every node broadcasts everything it knows so far — per
    discovered uid: distance estimate, certificate, state (FULL
    visibility only), the uid's neighbors in port order, and incident
    edge weights.  After ``t`` rounds a node knows exactly its
    distance-``t`` ball and assembles the
    :class:`~repro.core.verifier.BallView` the scheme's verifier
    expects.  Port-order ground truth for a member at distance exactly
    ``t`` may not have arrived (it leaves the member one round after its
    existence does); verifiers only chase pointers through nodes at
    distance < ``t``, which always have it.
    """

    name = "ball-gather-round"

    def __init__(
        self,
        scheme: ProofLabelingScheme,
        certificates: Mapping[int, Any],
        network: Network,
    ) -> None:
        if scheme.radius < 2:
            raise SimulationError(
                f"{scheme.name}: radius-{scheme.radius} verification uses "
                "VerificationRound, not the ball gather"
            )
        self.scheme = scheme
        self.certificates = dict(certificates)
        self._network = network

    def _self_entry(self, ctx: NodeContext, ports: tuple[int, ...] | None) -> tuple:
        full = self.scheme.visibility is Visibility.FULL
        weights = ctx.port_weights if ctx.port_weights is not None else None
        return (
            0,
            self.certificates.get(ctx.node),
            ctx.input if full else None,
            ports,
            weights,
        )

    def init_state(self, ctx: NodeContext) -> Any:
        # Knowledge: uid -> (dist, cert, state, port_uids, port_weights).
        # A node does not yet know its neighbors' uids, so its own
        # port-order entry starts unknown and is filled by round 0.
        return {ctx.uid: self._self_entry(ctx, None)}

    def send(self, ctx: NodeContext, state: Any, round_index: int) -> Mapping[int, Any]:
        return {port: (ctx.uid, port, state) for port in range(ctx.degree)}

    def receive(
        self,
        ctx: NodeContext,
        state: Any,
        inbox: Mapping[int, Any],
        round_index: int,
    ) -> Any:
        radius = self.scheme.radius
        knowledge: dict[int, tuple] = dict(state)
        port_uids: list[int] = []
        for port in range(ctx.degree):
            uid, _back_port, nb_knowledge = inbox[port]
            port_uids.append(uid)
            for member, (dist, cert, nb_state, ports, weights) in nb_knowledge.items():
                entry = (dist + 1, cert, nb_state, ports, weights)
                if dist + 1 > radius:
                    continue
                known = knowledge.get(member)
                if known is None or entry[0] < known[0]:
                    knowledge[member] = entry
                elif known[3] is None and ports is not None:
                    knowledge[member] = (known[0], known[1], known[2], ports, weights)
        # Ground truth learned from the channel: my own port order.
        knowledge[ctx.uid] = self._self_entry(ctx, tuple(port_uids))
        if round_index + 1 < radius:
            return knowledge
        return Halted(self._decide(ctx, knowledge, inbox))

    def _decide(
        self,
        ctx: NodeContext,
        knowledge: Mapping[int, tuple],
        inbox: Mapping[int, Any],
    ) -> bool:
        members = {
            uid: (dist, cert, nb_state)
            for uid, (dist, cert, nb_state, _ports, _weights) in knowledge.items()
        }
        ports = {
            uid: entry[3]
            for uid, entry in knowledge.items()
            if entry[3] is not None
        }
        edges = []
        for uid, entry in sorted(knowledge.items()):
            if entry[3] is None:
                continue
            weights = entry[4]
            for index, other in enumerate(entry[3]):
                if other not in members:
                    continue
                pair = (uid, other) if uid < other else (other, uid)
                weight = weights[index] if weights is not None else None
                edges.append((pair[0], pair[1], weight))
        ball = BallView(
            radius=self.scheme.radius,
            members=members,
            edges=tuple(sorted(set(edges), key=lambda e: (e[0], e[1]))),
            ports=ports,
        )
        glimpses = []
        for port in range(ctx.degree):
            uid, back_port, _knowledge = inbox[port]
            dist, cert, nb_state = members[uid]
            weight = ctx.port_weights[port] if ctx.port_weights is not None else None
            glimpses.append(
                NeighborGlimpse(
                    port=port,
                    uid=uid,
                    certificate=cert,
                    state=nb_state,
                    weight=weight,
                    back_port=back_port,
                )
            )
        record_view_build()
        view = LocalView(
            uid=ctx.uid,
            degree=ctx.degree,
            state=ctx.input,
            certificate=self.certificates.get(ctx.node),
            neighbors=tuple(glimpses),
            ball=ball,
        )
        try:
            return bool(self.scheme.verify(view))
        except Exception:
            return False


def _verification_algorithm(
    scheme: ProofLabelingScheme,
    certificates: Mapping[int, Any],
    network: Network,
) -> SynchronousAlgorithm:
    if scheme.radius > 1:
        return BallGatherRound(scheme, certificates, network)
    return VerificationRound(scheme, certificates, network)


def _verdict_from(result: RunResult) -> Verdict:
    accepts = frozenset(v for v, ok in result.outputs.items() if ok)
    rejects = frozenset(v for v, ok in result.outputs.items() if not ok)
    return Verdict(accepts=accepts, rejects=rejects)


def distributed_verification(
    scheme: ProofLabelingScheme,
    config: Configuration,
    certificates: Mapping[int, Any] | None = None,
) -> tuple[Verdict, RunResult]:
    """Run verification as a real message-passing round.

    Returns the verdict (identical to the direct engine's — asserted by
    the integration tests) together with the run's message statistics.
    """
    with _metrics.span("distributed_verification", scheme=scheme.name):
        if certificates is None:
            certificates = scheme.prove(config)
        network = Network(config.graph, ids=config.ids, inputs=dict(config.labeling))
        algorithm = _verification_algorithm(scheme, certificates, network)
        result = run_synchronous(network, algorithm)
    return _verdict_from(result), result


class VerificationSession:
    """Incremental distributed verification over a mutable register file.

    The message-simulator twin of
    :class:`~repro.selfstab.detector.DetectionSession`: one network, one
    certificate table, one cached :class:`~repro.local.runner.SimulationSession`;
    each :meth:`resweep` patches the declared changes into the network
    inputs and the certificate table, then re-executes only the nodes
    the change can reach.  Verdicts are round-for-round identical to a
    fresh :func:`distributed_verification` of the same registers (the
    property tests pin this) at O(ball(changed)) re-executed nodes —
    and, in :func:`~repro.core.verifier.view_build_count` units,
    O(ball(changed)) view constructions instead of ``n``.
    """

    def __init__(
        self,
        scheme: ProofLabelingScheme,
        config: Configuration,
        certificates: Mapping[int, Any] | None = None,
    ) -> None:
        self.scheme = scheme
        certs = dict(certificates) if certificates is not None else scheme.prove(config)
        self.network = Network(
            config.graph, ids=config.ids, inputs=dict(config.labeling)
        )
        self._algorithm = _verification_algorithm(scheme, certs, self.network)
        self._sim = SimulationSession(self.network, self._algorithm)

    @property
    def certificates(self) -> dict[int, Any]:
        """The certificate table the current verdict was computed under."""
        return dict(self._algorithm.certificates)

    def verdict(self) -> Verdict:
        return _verdict_from(self._sim.result())

    def result(self) -> RunResult:
        return self._sim.result()

    def resweep(
        self,
        states: Mapping[int, Any] | None = None,
        certificates: Mapping[int, Any] | None = None,
        changed: Any = None,
    ) -> tuple[Verdict, RunResult]:
        """Re-verify after localized register changes.

        ``states`` (output labels) and ``certificates`` give the new
        values — either full tables or just the changed entries;
        ``changed`` optionally names a superset of the changed nodes so
        the diff does not have to scan all ``n`` registers.  Nodes whose
        state and certificate both match the session's snapshot cost
        nothing.
        """
        candidates = (
            sorted(set(changed))
            if changed is not None
            else sorted(self.network.graph.nodes)
        )
        certs = self._algorithm.certificates
        touched: list[int] = []
        for v in candidates:
            dirty = False
            if (
                states is not None
                and v in states
                and states[v] != self.network.inputs[v]
            ):
                self.network.update_input(v, states[v])
                dirty = True
            if (
                certificates is not None
                and v in certificates
                and certificates[v] != certs.get(v)
            ):
                certs[v] = certificates[v]
                dirty = True
            if dirty:
                touched.append(v)
        _metrics.add("registers.read", len(candidates))
        _metrics.add("registers.written", len(touched))
        result = self._sim.rerun(changed=touched)
        return _verdict_from(result), result
