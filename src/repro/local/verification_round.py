"""Running a scheme's verification round through the message simulator.

The verifier engine in :mod:`repro.core.verifier` builds node views
directly — convenient, but it hides the communication.  This adapter
executes the *actual* one-round protocol: every node sends its
certificate (plus, under FULL visibility, its state; plus the uid and
back-port ground truth the channel provides) to all neighbors, builds
its :class:`~repro.core.verifier.LocalView` from the inbox, and decides.

Because the runner accounts message bits with the canonical codec, this
is how the experiments measure the *communication cost of verification*
(T4): one round, and per edge roughly the two endpoint certificates.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.labeling import Configuration
from repro.core.scheme import ProofLabelingScheme
from repro.core.verifier import LocalView, NeighborGlimpse, Verdict, Visibility
from repro.local.algorithm import Halted, NodeContext, SynchronousAlgorithm
from repro.local.network import Network
from repro.local.runner import RunResult, run_synchronous

__all__ = ["VerificationRound", "distributed_verification"]


class VerificationRound(SynchronousAlgorithm):
    """One exchange, then a local decision."""

    name = "verification-round"

    def __init__(
        self,
        scheme: ProofLabelingScheme,
        certificates: Mapping[int, Any],
        network: Network,
    ) -> None:
        self.scheme = scheme
        self.certificates = dict(certificates)
        self._network = network

    def init_state(self, ctx: NodeContext) -> Any:
        return None

    def send(self, ctx: NodeContext, state: Any, round_index: int) -> Mapping[int, Any]:
        cert = self.certificates.get(ctx.node)
        payload_state = (
            ctx.input if self.scheme.visibility is Visibility.FULL else None
        )
        messages = {}
        for port in range(ctx.degree):
            # uid and the sender's port number ride along as channel
            # ground truth; the certificate (and echoed state) are the
            # prover-controlled payload.
            messages[port] = (ctx.uid, port, cert, payload_state)
        return messages

    def receive(
        self,
        ctx: NodeContext,
        state: Any,
        inbox: Mapping[int, Any],
        round_index: int,
    ) -> Any:
        glimpses = []
        for port in range(ctx.degree):
            uid, back_port, cert, nb_state = inbox[port]
            weight = ctx.port_weights[port] if ctx.port_weights is not None else None
            glimpses.append(
                NeighborGlimpse(
                    port=port,
                    uid=uid,
                    certificate=cert,
                    state=nb_state,
                    weight=weight,
                    back_port=back_port,
                )
            )
        view = LocalView(
            uid=ctx.uid,
            degree=ctx.degree,
            state=ctx.input,
            certificate=self.certificates.get(ctx.node),
            neighbors=tuple(glimpses),
        )
        try:
            ok = bool(self.scheme.verify(view))
        except Exception:
            ok = False
        return Halted(ok)


def distributed_verification(
    scheme: ProofLabelingScheme,
    config: Configuration,
    certificates: Mapping[int, Any] | None = None,
) -> tuple[Verdict, RunResult]:
    """Run verification as a real message-passing round.

    Returns the verdict (identical to the direct engine's — asserted by
    the integration tests) together with the run's message statistics.
    """
    if certificates is None:
        certificates = scheme.prove(config)
    network = Network(config.graph, ids=config.ids, inputs=dict(config.labeling))
    algorithm = VerificationRound(scheme, certificates, network)
    result = run_synchronous(network, algorithm)
    accepts = frozenset(v for v, ok in result.outputs.items() if ok)
    rejects = frozenset(v for v, ok in result.outputs.items() if not ok)
    return Verdict(accepts=accepts, rejects=rejects), result
