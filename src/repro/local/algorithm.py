"""Algorithm interface for the synchronous LOCAL model.

An algorithm runs at every node of a network in synchronous rounds.  In
each round every active node first *sends* one message per port (or
nothing), then *receives* the messages its neighbors sent it, and updates
its state; a node finishes by returning :class:`Halted` with its output.

Nodes know: their unique identifier, their degree, their input state, and
— the standard assumption the paper makes for markers — the number of
nodes ``n`` (any polynomial upper bound would do; the simulator passes
the exact value).  Everything else must be learned through messages.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["Halted", "NodeContext", "SynchronousAlgorithm", "broadcast"]


@dataclass(frozen=True)
class NodeContext:
    """Immutable per-node knowledge available in every round.

    Attributes
    ----------
    node:
        The simulator's node index.  Algorithms must *not* use it for
        protocol decisions (it is not part of the model); it exists so
        outputs can be keyed.  Use ``uid`` instead.
    uid:
        The node's unique identifier.
    degree:
        Number of incident ports (``0..degree-1``).
    input:
        The node's input state (its part of the configuration labeling).
    n:
        Number of nodes in the network (the "n is known" assumption).
    port_weights:
        For weighted networks, the weight of the edge behind each port;
        ``None`` otherwise.  Edge weights are ground truth in the model.
    """

    node: int
    uid: int
    degree: int
    input: Any
    n: int
    port_weights: tuple[float, ...] | None = None


@dataclass(frozen=True)
class Halted:
    """Returned from :meth:`SynchronousAlgorithm.receive` to finish."""

    output: Any


def broadcast(message: Any, degree: int) -> dict[int, Any]:
    """Convenience: the same message on every port."""
    return {port: message for port in range(degree)}


class SynchronousAlgorithm(ABC):
    """A synchronous message-passing algorithm.

    Subclasses implement the three hooks below.  State objects are opaque
    to the simulator; any value works.  Message *size* is accounted by the
    runner with the canonical bit codec, so messages should be built from
    codec-friendly values (ints, strings, tuples, ...).
    """

    name: str = "algorithm"

    @abstractmethod
    def init_state(self, ctx: NodeContext) -> Any:
        """State of a node before round 0."""

    @abstractmethod
    def send(self, ctx: NodeContext, state: Any, round_index: int) -> Mapping[int, Any]:
        """Messages to emit this round, keyed by port (omit = silence)."""

    @abstractmethod
    def receive(
        self,
        ctx: NodeContext,
        state: Any,
        inbox: Mapping[int, Any],
        round_index: int,
    ) -> Any:
        """Consume this round's inbox; return new state or :class:`Halted`.

        ``inbox`` maps each port to the message received through it this
        round; silent or halted neighbors are simply absent.
        """
