"""Network object binding a graph to identities and input states."""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import SimulationError
from repro.graphs.graph import Graph
from repro.local.algorithm import NodeContext
from repro.util.idspace import contiguous_ids, validate_ids

__all__ = ["Network"]


class Network:
    """A graph with node identifiers and per-node inputs.

    This is the object the LOCAL simulator executes on.  ``ids`` default
    to the contiguous assignment; ``inputs`` default to ``None`` at every
    node.
    """

    def __init__(
        self,
        graph: Graph,
        ids: Mapping[int, int] | None = None,
        inputs: Mapping[int, Any] | None = None,
    ) -> None:
        self.graph = graph
        self.ids: dict[int, int] = (
            dict(ids) if ids is not None else contiguous_ids(list(graph.nodes))
        )
        validate_ids(list(graph.nodes), self.ids)
        if inputs is None:
            self.inputs: dict[int, Any] = {v: None for v in graph.nodes}
        else:
            missing = [v for v in graph.nodes if v not in inputs]
            if missing:
                raise SimulationError(f"inputs missing for nodes {missing[:5]}")
            self.inputs = {v: inputs[v] for v in graph.nodes}
        self._uid_to_node = {uid: node for node, uid in self.ids.items()}
        self._contexts: dict[int, NodeContext] | None = None

    @property
    def n(self) -> int:
        return self.graph.n

    def node_of_uid(self, uid: int) -> int:
        try:
            return self._uid_to_node[uid]
        except KeyError:
            raise SimulationError(f"no node has uid {uid}") from None

    def context(self, node: int) -> NodeContext:
        """The immutable knowledge handed to the algorithm at ``node``."""
        weights = None
        if self.graph.is_weighted:
            weights = tuple(
                self.graph.weight(node, nb) for nb in self.graph.neighbors(node)
            )
        return NodeContext(
            node=node,
            uid=self.ids[node],
            degree=self.graph.degree(node),
            input=self.inputs[node],
            n=self.graph.n,
            port_weights=weights,
        )

    def update_input(self, node: int, value: Any) -> None:
        """Rewrite one node's input, patching the cached context.

        The incremental verification sessions re-verify the same network
        under register files that differ at a handful of nodes; rebuilding
        the whole ``Network`` (and its context cache) for each resweep
        would defeat the reuse.  Only the changed node's context is
        replaced, so mappings previously returned by :meth:`contexts`
        observe the update in place.
        """
        if node not in self.inputs:
            raise SimulationError(f"no node {node} in this network")
        self.inputs[node] = value
        if self._contexts is not None:
            self._contexts[node] = self.context(node)

    def contexts(self) -> dict[int, NodeContext]:
        """Every node's context, built once and cached.

        :class:`NodeContext` is immutable and a pure function of the
        network's graph, ids, and inputs, none of which change after
        construction — so the simulator loops (``synchronous_round``,
        detection sweeps, recovery runs) share one dict instead of
        allocating ``n`` contexts per round.  Callers must treat the
        returned mapping as read-only.
        """
        if self._contexts is None:
            self._contexts = {v: self.context(v) for v in self.graph.nodes}
        return self._contexts
