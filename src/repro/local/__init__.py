"""Synchronous LOCAL-model simulator (the paper's computation model).

Networks with identities and ports, message-passing algorithms, the
round runner, and the distributed verification round that realises the
paper's single certificate exchange as actual messages.
"""

from repro.local.algorithm import Halted, NodeContext, SynchronousAlgorithm, broadcast
from repro.local.network import Network
from repro.local.runner import RunResult, run_synchronous

__all__ = [
    "Halted",
    "Network",
    "NodeContext",
    "RunResult",
    "SynchronousAlgorithm",
    "broadcast",
    "run_synchronous",
]
