"""Synchronous LOCAL-model simulator: networks, algorithms, round runner."""

from repro.local.algorithm import Halted, NodeContext, SynchronousAlgorithm, broadcast
from repro.local.network import Network
from repro.local.runner import RunResult, run_synchronous

__all__ = [
    "Halted",
    "Network",
    "NodeContext",
    "RunResult",
    "SynchronousAlgorithm",
    "broadcast",
    "run_synchronous",
]
