"""Error-sensitive proof labeling schemes (Feuilloley–Fraigniaud 2017).

The source paper's soundness is binary: *some* node rejects every
illegal configuration.  *Error-Sensitive Proof-Labeling Schemes* (PODC
2017) grade it — the number of rejecting nodes should scale linearly
with the configuration's edit distance from the language, so that a
barely corrupted system raises a small local alarm and a thoroughly
corrupted one alarms everywhere.  This subsystem measures that property
across the scheme catalog:

* :mod:`repro.errorsensitive.distance` — the metric:
  :func:`distance_to_language` brackets (or, on small instances with
  complete state spaces, exactly computes) the register-edit distance;
* :mod:`repro.errorsensitive.decider` — the decider:
  :func:`count_rejections` / :class:`RejectionCounter` count rejecting
  nodes over the verifier engine's view-reuse path, and
  :func:`min_rejections` drives the count down adversarially;
* :mod:`repro.errorsensitive.report` — the campaign:
  :func:`measure_scheme_sensitivity` estimates β̂ per scheme over
  randomized register-corruption sweeps (via the ``selfstab`` fault
  machinery) plus registered adversarial patterns
  (:data:`~repro.errorsensitive.report.FAR_PATTERNS`), and
  :func:`error_sensitivity_report` classifies the whole catalog;
* :mod:`repro.errorsensitive.repair` — the FF17 transformation:
  ``es-spanning-tree`` converts the non-error-sensitive pointer scheme
  into an error-sensitive variant by re-encoding the tree as incident
  edge lists with echoed certificates.

Importing this package registers its repaired schemes in the catalog
(:mod:`repro.core.catalog` lists it as a provider module).
"""

from repro.errorsensitive.decider import (
    RejectionCounter,
    count_rejections,
    min_rejections,
)
from repro.errorsensitive.distance import DistanceResult, distance_to_language
from repro.errorsensitive.repair import ErrorSensitiveSpanningTreeScheme
from repro.errorsensitive.report import (
    BETA_THRESHOLD,
    ErrorSensitivityReport,
    FAR_PATTERNS,
    SchemeSensitivity,
    SensitivitySample,
    error_sensitivity_report,
    measure_scheme_sensitivity,
)

__all__ = [
    "BETA_THRESHOLD",
    "DistanceResult",
    "ErrorSensitiveSpanningTreeScheme",
    "ErrorSensitivityReport",
    "FAR_PATTERNS",
    "RejectionCounter",
    "SchemeSensitivity",
    "SensitivitySample",
    "count_rejections",
    "distance_to_language",
    "error_sensitivity_report",
    "measure_scheme_sensitivity",
    "min_rejections",
]
