"""Edit distance from a configuration to a distributed language.

The error-sensitivity framework of Feuilloley–Fraigniaud (*Error-
Sensitive Proof-Labeling Schemes*, PODC 2017) grades soundness by how
*far* an illegal configuration is from the language: the number of
rejecting nodes should scale with the minimum number of register edits
needed to re-enter it.  This module supplies that metric.

``distance_to_language`` returns a :class:`DistanceResult` carrying a
**certified** bracket ``[lower, upper]``:

* ``upper`` is witnessed — the result carries a member labeling at
  exactly that Hamming distance, found by scanning several canonical
  members and then greedily reverting edits back toward the measured
  configuration while membership survives;
* ``lower`` counts the nodes whose states are not even syntactically
  valid (each must change), and is at least 1 off-language;
* on small instances whose language implements the complete
  :meth:`~repro.core.language.DistributedLanguage.state_space` hook, an
  iterative-deepening exhaustive search over edit subsets tightens the
  bracket to the exact distance (``exact=True``).

Distances are measured in *register edits* (node states).  Edge edits
reduce to register edits in this framework: every language here encodes
its subgraph/structure in the node states (parent ports, port sets), so
editing an edge of the described object means editing the O(1) incident
registers — the metric the corruption experiments actually apply.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterable

from repro.core.labeling import Configuration, Labeling
from repro.core.language import DistributedLanguage
from repro.errors import LanguageError
from repro.util.rng import make_rng, spawn

__all__ = ["DistanceResult", "distance_to_language"]


@dataclass(frozen=True)
class DistanceResult:
    """A certified bracket on the edit distance to a language.

    ``witness`` is a member labeling at Hamming distance exactly
    ``upper`` from the measured configuration.  ``exact`` is True when
    the bracket collapsed — either the certified bounds met on their
    own, or the exhaustive search (complete state spaces, within budget)
    proved no closer member exists.  Both bounds are certified either
    way: ``upper`` by the witness, ``lower`` by the invalid-state count.
    """

    lower: int
    upper: int
    exact: bool
    witness: Labeling | None
    evaluations: int

    @property
    def tight(self) -> bool:
        return self.lower == self.upper

    def __repr__(self) -> str:
        kind = "exact" if self.exact else "bounds"
        return f"DistanceResult({self.lower}..{self.upper}, {kind})"


def _greedy_witness(
    config: Configuration,
    language: DistributedLanguage,
    rng: random.Random,
    seeds: int,
    anchors: Iterable[Labeling],
) -> tuple[Labeling, int]:
    """(member labeling, membership checks spent), greedily close to config.

    Starts from the nearest of ``seeds`` canonical members and any
    ``anchors`` (caller-known member labelings — e.g. the uncorrupted
    base of a corruption sweep, which pins the bound at the corruption
    count), then reverts one edited node at a time back to the measured
    state wherever membership survives — every kept reversion shrinks
    the certified upper bound by one.
    """
    evaluations = 0
    best: Labeling | None = None
    best_dist = -1
    candidates: list[Labeling] = []
    for anchor in anchors:
        evaluations += 1
        if language.is_member(config.with_labeling(anchor)):
            candidates.append(anchor)
    for attempt in range(max(1, seeds)):
        try:
            candidates.append(
                language.canonical_labeling(
                    config.graph, ids=dict(config.ids), rng=spawn(rng, attempt)
                )
            )
        except LanguageError:
            continue
    for candidate in candidates:
        dist = config.labeling.hamming_distance(candidate)
        if best is None or dist < best_dist:
            best, best_dist = candidate, dist
    if best is None:
        raise LanguageError(
            f"{language.name}: no canonical member to bound distance from"
        )
    for node in sorted(config.graph.nodes):
        state = config.state(node)
        if best[node] == state:
            continue
        trial = best.with_state(node, state)
        evaluations += 1
        if language.is_member(config.with_labeling(trial)):
            best = trial
    return best, evaluations


def distance_to_language(
    config: Configuration,
    language: DistributedLanguage,
    mode: str = "auto",
    exact_limit: int = 8,
    seeds: int = 4,
    rng: random.Random | None = None,
    budget: int = 200_000,
    anchors: Iterable[Labeling] = (),
) -> DistanceResult:
    """Certified edit distance from ``config`` to ``language``.

    ``mode`` is ``"greedy"`` (bounds only), ``"exact"`` (demand the
    exhaustive search), or ``"auto"`` (exhaustive when ``config.n <=
    exact_limit``).  The exhaustive search requires the language to
    expose complete per-node domains via ``state_space``; without them
    (or past ``budget`` membership checks) the certified bracket is
    returned with ``exact=False``.  ``anchors`` are caller-known member
    labelings that seed the witness search (non-members are ignored).
    """
    if mode not in ("auto", "exact", "greedy"):
        raise LanguageError(f"unknown distance mode {mode!r}")
    rng = rng or make_rng()
    evaluations = 1
    if language.is_member(config):
        return DistanceResult(0, 0, True, config.labeling, evaluations)
    graph = config.graph
    invalid = sum(
        1
        for v in graph.nodes
        if not language.validate_state(graph, v, config.state(v))
    )
    witness, spent = _greedy_witness(config, language, rng, seeds, anchors)
    evaluations += spent
    upper = config.labeling.hamming_distance(witness)
    lower = min(max(1, invalid), upper)

    want_exact = mode == "exact" or (mode == "auto" and graph.n <= exact_limit)
    if not want_exact or lower == upper:
        return DistanceResult(lower, upper, lower == upper, witness, evaluations)

    domains = _domains(language, graph)
    if domains is None:
        return DistanceResult(lower, upper, False, witness, evaluations)

    nodes = sorted(graph.nodes)
    for k in range(lower, upper):
        for subset in itertools.combinations(nodes, k):
            alternatives = [
                [s for s in domains[v] if s != config.state(v)] for v in subset
            ]
            for combo in itertools.product(*alternatives):
                evaluations += 1
                if evaluations > budget:
                    return DistanceResult(lower, upper, False, witness, evaluations)
                trial = config.labeling.with_states(dict(zip(subset, combo)))
                if language.is_member(config.with_labeling(trial)):
                    return DistanceResult(k, k, True, trial, evaluations)
    # No member below the greedy witness's distance: it is optimal.
    return DistanceResult(upper, upper, True, witness, evaluations)


def _domains(language: DistributedLanguage, graph) -> dict[int, tuple] | None:
    """Complete per-node state domains, or ``None`` if any is unbounded."""
    domains = {}
    for v in graph.nodes:
        space = language.state_space(graph, v)
        if space is None:
            return None
        domains[v] = space
    return domains
