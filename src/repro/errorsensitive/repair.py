"""The error-sensitivity repair: re-encode, then certify redundantly.

``spanning-tree-ptr`` is *not* error-sensitive, and no scheme for the
pointer encoding can be: glue the left half of a path pointing toward a
left root onto a right half pointing toward a right root, hand the left
region the honest certificates of the left-rooted member and the right
region those of the right-rooted member, and every node outside the
O(1)-wide seam sees exactly what it would see in a fully legal run — so
completeness forces it to accept.  The configuration is Θ(n) edits from
any spanning tree, yet O(1) nodes reject.  (This is the
Feuilloley–Fraigniaud 2017 negative argument;
``repro.errorsensitive.report`` builds the construction as the
``spanning-tree-ptr`` adversarial pattern.)

The FF17 repair changes the *encoding* before the scheme: describe the
tree by the **set of incident tree edges** at each node (the
``spanning-tree-list`` language) instead of a single parent pointer.
Mixing two differently rooted trees is then no longer far from the
language — on a path the union of both orientations lists every edge,
which is again a spanning tree — and every genuinely far configuration
owes its distance to many *locally checkable* defects: an edited port
set breaks the mutual-listing invariant with a specific neighbor, and
either the echo lies (the edited node rejects its own certificate) or
the neighbor's echo is truthful (the mutuality check rejects).  Each
edit therefore pins a rejection inside its own radius-1 ball, and
rejections scale as Ω(d/Δ) — error-sensitivity by redundancy.

:class:`ErrorSensitiveSpanningTreeScheme` packages that conversion and
registers it as ``es-spanning-tree``; the ES experiment measures its β
next to the unrepaired pointer scheme's collapse.
"""

from __future__ import annotations

from repro.core.catalog import register_scheme
from repro.core.verifier import Visibility
from repro.schemes.spanning_tree import SpanningTreeListScheme

__all__ = ["ErrorSensitiveSpanningTreeScheme"]


class ErrorSensitiveSpanningTreeScheme(SpanningTreeListScheme):
    """Spanning tree, repaired for error-sensitivity (FF17).

    The verifier is the list scheme's — root agreement, distance
    counters, echo truthfulness, mutual listing, and the
    every-listed-edge-is-a-tree-edge check — under KKP visibility, where
    the echoes are what make a neighbor's register corruption locally
    visible.  What makes this a *repair* rather than a new scheme is the
    encoding conversion documented in the module docstring: the
    certified object is the same (a spanning tree), but each edit of its
    description now contradicts a check within one hop of the edit.
    """

    def __init__(self) -> None:
        super().__init__(visibility=Visibility.KKP)
        self.name = "es-spanning-tree"


@register_scheme(
    "es-spanning-tree",
    kind="exact",
    summary="error-sensitive spanning tree: list re-encoding + echoes (FF17)",
    error_sensitive=True,
)
def _build_es_spanning_tree(graph, rng, **_params):
    return ErrorSensitiveSpanningTreeScheme()
