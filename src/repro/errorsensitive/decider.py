"""Rejection counting: the error-sensitivity decider.

Binary soundness asks *whether* some node rejects; error-sensitivity
(Feuilloley–Fraigniaud 2017) asks *how many*.  This module counts — and
does it on the verifier engine's view-reuse path, because a sensitivity
sweep evaluates hundreds of closely related corrupted labelings of one
base configuration and must not pay O(n) view builds each time.

* :func:`count_rejections` — one-shot count for a configuration;
* :class:`RejectionCounter` — a stateful counter pinned to a base
  configuration and certificate assignment: each :meth:`~RejectionCounter.count`
  of a corrupted labeling refreshes only the views within the scheme's
  radius of an edited node (exactly the
  :func:`~repro.core.verifier.refresh_views` contract the soundness
  adversaries and the ``selfstab`` detection sessions already ride);
* :func:`min_rejections` — the adversarial minimum: error-sensitivity
  quantifies over *all* certificate assignments, so the honest count is
  only an upper bound; the budgeted soundness adversary pushes it down.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Mapping

from repro.core.labeling import Configuration, Labeling
from repro.core.scheme import ProofLabelingScheme
from repro.core.soundness import AttackResult, attack
from repro.core.verifier import Verdict
from repro.errors import SchemeError
from repro.util.rng import make_rng

__all__ = ["RejectionCounter", "count_rejections", "min_rejections"]


def count_rejections(
    scheme: ProofLabelingScheme,
    config: Configuration,
    certificates: Mapping[int, Any] | None = None,
    views: Mapping[int, Any] | None = None,
) -> int:
    """Rejecting nodes under the given (default: honest) certificates."""
    return scheme.run(config, certificates=certificates, views=views).reject_count


class RejectionCounter:
    """Count rejections for many corrupted labelings of one base config.

    The counter builds the base configuration's verification views once;
    every :meth:`count` derives the corrupted configuration via
    :meth:`~repro.core.labeling.Configuration.with_labeling` (sharing the
    view scaffold) and refreshes only the views that can see an edited
    node.  Certificates stay pinned to the base assignment — the
    honest-but-stale reading the self-stabilization campaigns use: the
    prover certified the legal configuration, then the registers drifted.

    ``backend`` picks the verification machinery per count: ``"views"``
    (default) is the incremental dict path above; ``"array"`` builds no
    views and lets each count run the scheme's vectorized batched
    decider over the CSR mirror (verdict-identical by contract);
    ``"auto"`` selects ``"array"`` exactly when the scheme supports it
    and numpy is importable.
    """

    def __init__(
        self,
        scheme: ProofLabelingScheme,
        config: Configuration,
        certificates: Mapping[int, Any] | None = None,
        backend: str = "views",
    ) -> None:
        self.scheme = scheme
        self.base = config
        self.certificates = (
            dict(certificates) if certificates is not None else scheme.prove(config)
        )
        if backend == "auto":
            from repro.core import batch as _batch

            backend = (
                "array"
                if _batch.np is not None and _batch.supports_batch(scheme)
                else "views"
            )
        if backend not in ("views", "array"):
            raise SchemeError(
                f"unknown counter backend {backend!r}; "
                f"use 'views', 'array' or 'auto'"
            )
        self.backend = backend
        self._views = (
            scheme.build_views(config, self.certificates)
            if backend == "views"
            else None
        )

    def verdict(
        self,
        labeling: Labeling | Mapping[int, Any],
        changed: Iterable[int] | None = None,
    ) -> Verdict:
        """Verdict for the base configuration relabeled to ``labeling``.

        ``changed`` is an optional caller-known superset of the edited
        nodes (e.g. a fault injection's victims); omitted, the labeling
        is diffed against the base.
        """
        if not isinstance(labeling, Labeling):
            labeling = Labeling(labeling)
        config = self.base.with_labeling(labeling)
        if changed is None:
            changed = [
                v for v in self.base.graph.nodes
                if labeling[v] != self.base.state(v)
            ]
        else:
            changed = set(changed)
            stale = [v for v in self.base.graph.nodes
                     if v not in changed and labeling[v] != self.base.state(v)]
            if stale:
                raise SchemeError(
                    f"labeling differs outside the declared changed set "
                    f"at nodes {stale[:5]}"
                )
        if self._views is None:
            # Array backend: no cached views, so `run` dispatches to the
            # batched decider (with automatic per-node fallback).
            return self.scheme.run(config, certificates=self.certificates)
        views = self.scheme.refresh_views(
            config, self.certificates, self._views, changed
        )
        return self.scheme.run(config, certificates=self.certificates, views=views)

    def count(
        self,
        labeling: Labeling | Mapping[int, Any],
        changed: Iterable[int] | None = None,
    ) -> int:
        """Rejection count for ``labeling`` (see :meth:`verdict`)."""
        return self.verdict(labeling, changed).reject_count


def min_rejections(
    scheme: ProofLabelingScheme,
    config: Configuration,
    rng: random.Random | None = None,
    trials: int = 40,
    related: Iterable[Configuration] = (),
) -> AttackResult:
    """Adversarial minimum rejection count on an illegal configuration.

    Error-sensitivity demands ``rejections >= beta * dist`` under *every*
    certificate assignment, so the estimate of record is the smallest
    count the budgeted soundness adversary reaches (``related`` members
    arm its pool with honest certificates to replay).  The returned
    :class:`~repro.core.soundness.AttackResult` exposes it as
    ``min_rejects``.
    """
    return attack(scheme, config, rng=rng or make_rng(), trials=trials,
                  related=related)
