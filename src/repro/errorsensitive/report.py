"""Error-sensitivity measurement: β̂ estimation over corruption sweeps.

Feuilloley–Fraigniaud (PODC 2017) call a proof-labeling scheme
*error-sensitive* when there is a constant β > 0 such that every
configuration at edit distance d from the language keeps at least β·d
nodes rejecting — under **every** certificate assignment.  This module
estimates β empirically, per catalog scheme:

1. freeze a certified member configuration
   (:class:`~repro.selfstab.campaign.FrozenCertifiedProtocol`) and open
   an incremental :class:`~repro.selfstab.detector.DetectionSession`;
2. for each target distance d, corrupt exactly d registers
   (:func:`~repro.selfstab.reset.inject_faults_report`) and sweep
   incrementally — the honest-but-stale rejection count;
3. bracket the configuration's true edit distance
   (:func:`~repro.errorsensitive.distance.distance_to_language`,
   anchored at the uncorrupted member);
4. push the rejection count down adversarially
   (:func:`~repro.errorsensitive.decider.min_rejections`);
5. take β̂ = min over samples of ``min_rejects / dist_upper``.

Random corruption alone cannot *refute* sensitivity — the damning
configurations are structured.  :data:`FAR_PATTERNS` therefore registers
per-scheme adversarial constructions with exactly known distance; the
``spanning-tree-ptr`` pattern glues two oppositely rooted path halves
(Θ(n) edits from the language, O(1) rejections), which is what lets the
report demonstrate the FF17 negative next to its registered repair
(``es-spanning-tree``, see :mod:`repro.errorsensitive.repair`).

Classification is empirical on the sensitive side (*no sampled
configuration fell below β̂·dist*) and certified on the negative side
(a pattern of exactly known distance beat the threshold even with the
optimistic distance bound).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.approx.gap import GapLanguage
from repro.core import catalog
from repro.core.catalog import SchemeSpec
from repro.core.labeling import Configuration
from repro.errors import LanguageError, SchemeError, SimulationError
from repro.errorsensitive.decider import count_rejections, min_rejections
from repro.errorsensitive.distance import distance_to_language
from repro.graphs.generators import cycle_graph, path_graph
from repro.local.network import Network
from repro.selfstab.campaign import FrozenCertifiedProtocol
from repro.selfstab.detector import PlsDetector
from repro.selfstab.model import run_until_silent
from repro.selfstab.reset import inject_faults_report
from repro.util.rng import make_rng, spawn

__all__ = [
    "BETA_THRESHOLD",
    "ErrorSensitivityReport",
    "FAR_PATTERNS",
    "SchemeSensitivity",
    "SensitivitySample",
    "error_sensitivity_report",
    "measure_scheme_sensitivity",
]

#: Default β below which a scheme is not considered error-sensitive.
#: FF17 only ask for *some* constant; 0.2 rejections per edit is a
#: pragmatic floor that cleanly separates the measured populations
#: (schemes with per-edit local defects sit near β̂ ≈ 1, the pointer
#: counterexample collapses to β̂ = O(1/n)).
BETA_THRESHOLD = 0.2


@dataclass(frozen=True)
class SensitivitySample:
    """One corrupted configuration's measurements.

    ``kind`` is ``"random"`` (register-fault injection) or ``"pattern"``
    (a registered adversarial construction, whose distance bracket is
    exact by construction).  ``injected`` is the corruption knob — the
    number of corrupted registers, or the pattern's distance.
    """

    kind: str
    injected: int
    dist_lower: int
    dist_upper: int
    #: Rejections under the honest-but-stale certificates (the
    #: incremental detection sweep's verdict).
    stale_rejects: int
    #: Adversarial minimum over the attacked certificate assignments.
    min_rejects: int
    evaluations: int

    @property
    def beta_bound(self) -> float:
        """Certified-conservative sensitivity ratio (distance from above)."""
        return self.min_rejects / max(1, self.dist_upper)

    @property
    def beta_optimistic(self) -> float:
        """Ratio against the distance *lower* bound — an overestimate;
        a scheme is refuted only when even this falls below threshold."""
        return self.min_rejects / max(1, self.dist_lower)


@dataclass(frozen=True)
class SchemeSensitivity:
    """One scheme's measured error-sensitivity profile."""

    scheme: str
    declared: bool | None
    samples: tuple[SensitivitySample, ...]
    #: Corruption bursts skipped because they landed in a gap scheme's
    #: don't-care region (no rejection obligation) or stayed legal.
    skipped: int
    threshold: float = BETA_THRESHOLD

    @property
    def beta(self) -> float:
        """β̂ — the conservative estimate: min rejections per edit."""
        return min((s.beta_bound for s in self.samples), default=0.0)

    @property
    def beta_ceiling(self) -> float:
        return min((s.beta_optimistic for s in self.samples), default=0.0)

    @property
    def classification(self) -> str:
        if not self.samples:
            return "unmeasured"
        if self.beta_ceiling < self.threshold:
            return "not-error-sensitive"
        if self.beta >= self.threshold:
            return "error-sensitive"
        return "inconclusive"

    @property
    def matches_declaration(self) -> bool:
        """Measured classification does not contradict the catalog claim.

        Only a *definitive* opposite verdict contradicts: an unmeasured
        or inconclusive profile (too few obliging samples, wide distance
        brackets) is compatible with any declaration.
        """
        if self.declared is None:
            return True
        contradiction = (
            "not-error-sensitive" if self.declared else "error-sensitive"
        )
        return self.classification != contradiction


@dataclass(frozen=True)
class ErrorSensitivityReport:
    """Per-scheme sensitivity profiles over (a slice of) the catalog."""

    entries: tuple[SchemeSensitivity, ...]
    threshold: float = BETA_THRESHOLD

    def entry(self, name: str) -> SchemeSensitivity:
        for e in self.entries:
            if e.scheme == name:
                return e
        raise SchemeError(f"no sensitivity entry for {name!r}")

    @property
    def classified(self) -> dict[str, str]:
        return {e.scheme: e.classification for e in self.entries}

    @property
    def mismatches(self) -> list[str]:
        """Schemes whose measurement contradicts their declaration."""
        return [e.scheme for e in self.entries if not e.matches_declaration]


# ---------------------------------------------------------------------------
# Adversarial far-but-quiet patterns.
# ---------------------------------------------------------------------------


def _pointer_mix_pattern(
    n: int, rng: random.Random
) -> tuple[Configuration, int, list[Configuration]]:
    """The FF17 counterexample for pointer-encoded spanning trees.

    On a path, glue a left half oriented toward a left root onto a right
    half oriented toward a right root.  Every member of the pointer
    language on a path is a root-k orientation, so the exact edit
    distance is computed by enumerating all n of them — it is ~n/2 —
    while the honest best-effort certificates already leave only the
    second root rejecting, and certificate splicing cannot do worse.
    Returns ``(config, exact_distance, related_members)``; the related
    members arm the adversary's certificate pool with both orientations.
    """
    graph = path_graph(n)
    half = n // 2
    states: dict[int, object] = {0: None, n - 1: None}
    for v in range(1, half):
        states[v] = graph.port(v, v - 1)
    for v in range(half, n - 1):
        states[v] = graph.port(v, v + 1)
    config = Configuration.build(graph, states)

    def rooted(k: int) -> dict[int, object]:
        member: dict[int, object] = {k: None}
        for v in range(k):
            member[v] = graph.port(v, v + 1)
        for v in range(k + 1, n):
            member[v] = graph.port(v, v - 1)
        return member

    members = [rooted(k) for k in range(n)]
    distance = min(
        sum(1 for v in range(n) if m[v] != states[v]) for m in members
    )
    related = [config.with_labeling(members[0]), config.with_labeling(members[-1])]
    return config, distance, related


def _rotor_cycle_pattern(
    n: int, rng: random.Random
) -> tuple[Configuration, int, list[Configuration]]:
    """A rootless rotor for BFS trees: every pointer turns clockwise.

    On a cycle no node is a root and the orientation is maximally
    self-consistent — exactly the shape distance counters struggle to
    refute locally (they can only fail at one wrap-around seam).  Every
    member of the BFS language on a cycle points both halves toward some
    root (with a free antipodal choice when ``n`` is even), so the exact
    edit distance — ~n/2 — comes from enumerating all of them.  The
    related members arm the adversary with two opposite rootings.
    """
    graph = cycle_graph(max(3, n))
    n = graph.n
    states: dict[int, object] = {
        v: graph.port(v, (v + 1) % n) for v in range(n)
    }
    config = Configuration.build(graph, states)

    def rooted(r: int, antipodal_clockwise: bool) -> dict[int, object]:
        member: dict[int, object] = {r: None}
        for v in range(n):
            if v == r:
                continue
            forward = (r - v) % n  # hops going clockwise (v -> v+1 -> ... r)
            backward = (v - r) % n
            if forward < backward or (forward == backward and antipodal_clockwise):
                member[v] = graph.port(v, (v + 1) % n)
            else:
                member[v] = graph.port(v, (v - 1) % n)
        return member

    members = [rooted(r, cw) for r in range(n) for cw in (True, False)]
    distance = min(
        sum(1 for v in range(n) if m[v] != states[v]) for m in members
    )
    related = [
        config.with_labeling(rooted(0, True)),
        config.with_labeling(rooted(n // 2, False)),
    ]
    return config, distance, related


def _twin_leader_pattern(
    n: int, rng: random.Random
) -> tuple[Configuration, int, list[Configuration]]:
    """Two leaders at opposite ends of a path — edit distance exactly 1.

    Leader election's quietest illegal configuration: both endpoints
    marked.  One unmark lands in the language, so the distance is 1 by
    construction, and an adversary that pledges allegiance to one end
    (``leader_uid`` = that endpoint everywhere) confines the rejection
    to the other marked endpoint — the β̂ floor is one rejection per
    edit.  The related members are the two single-leader resolutions.
    """
    graph = path_graph(max(2, n))
    n = graph.n
    states = {v: v in (0, n - 1) for v in range(n)}
    config = Configuration.build(graph, states)
    resolutions = [
        {v: states[v] and v != drop for v in range(n)} for drop in (0, n - 1)
    ]
    related = [config.with_labeling(m) for m in resolutions]
    return config, 1, related


#: scheme name -> (n, rng) -> (config, exact distance, related members).
#: Structured constructions that random corruption cannot stumble into;
#: a scheme's β̂ is the minimum over random *and* pattern samples.
FAR_PATTERNS: dict[
    str,
    Callable[[int, random.Random], tuple[Configuration, int, list[Configuration]]],
] = {
    "spanning-tree-ptr": _pointer_mix_pattern,
    "bfs-tree": _rotor_cycle_pattern,
    "leader": _twin_leader_pattern,
}


# ---------------------------------------------------------------------------
# Measurement.
# ---------------------------------------------------------------------------


def measure_scheme_sensitivity(
    scheme: str | SchemeSpec,
    n: int = 24,
    distances: Sequence[int] = (1, 2, 4, 8, 16),
    samples_per_distance: int = 2,
    attack_trials: int = 24,
    rng: random.Random | None = None,
    threshold: float = BETA_THRESHOLD,
) -> SchemeSensitivity:
    """Measure one catalog scheme's error-sensitivity profile.

    Runs the randomized register-corruption sweep described in the
    module docstring plus the scheme's :data:`FAR_PATTERNS` construction
    (if registered).  Gap schemes only owe rejections on genuine
    no-instances, so bursts landing in the don't-care region (or staying
    legal) are skipped and tallied.
    """
    spec = catalog.get(scheme) if isinstance(scheme, str) else scheme
    rng = rng or make_rng(1717)
    if spec.kind == "universal":
        n = min(n, 14)  # Θ(n²) certificates: the local decoder dominates
    graph = spec.sample_graph(n, spawn(rng, 1))
    fitted = spec.build(graph=graph, rng=spawn(rng, 2))
    language = fitted.language
    member = language.member_configuration(graph, rng=spawn(rng, 3))
    certificates = fitted.prove(member)

    network = Network(graph)
    protocol = FrozenCertifiedProtocol(fitted, member, certificates)
    silent = run_until_silent(network, protocol).states
    session = PlsDetector(fitted, protocol).session(network, silent)

    samples: list[SensitivitySample] = []
    skipped = 0
    for d in distances:
        if d > graph.n:
            continue
        for index in range(samples_per_distance):
            cell_rng = spawn(rng, d * 1000 + index)
            injection = inject_faults_report(network, protocol, silent, d, cell_rng)
            report = session.sweep(
                injection.states, changed=injection.victims, check_membership=False
            )
            stale = report.verdict.reject_count
            config = session.config
            session.update(silent, changed=injection.victims)  # restore
            if isinstance(language, GapLanguage):
                obliged = language.classify(config) == "no"
            else:
                obliged = not language.is_member(config)
            if not obliged:
                skipped += 1
                continue
            dist = distance_to_language(
                config,
                language,
                mode="greedy",
                rng=spawn(cell_rng, 5),
                anchors=(member.labeling,),
            )
            outcome = min_rejections(
                fitted, config, rng=spawn(cell_rng, 6),
                trials=attack_trials, related=[member],
            )
            samples.append(
                SensitivitySample(
                    kind="random",
                    injected=len(injection.victims),
                    dist_lower=dist.lower,
                    dist_upper=dist.upper,
                    stale_rejects=stale,
                    min_rejects=outcome.min_rejects,
                    evaluations=dist.evaluations + outcome.evaluations,
                )
            )

    pattern = FAR_PATTERNS.get(spec.name)
    if pattern is not None:
        config, exact_dist, related = pattern(max(n, 16), spawn(rng, 77))
        pattern_scheme = spec.build(graph=config.graph, rng=spawn(rng, 78))
        stale = count_rejections(pattern_scheme, config)
        outcome = min_rejections(
            pattern_scheme, config, rng=spawn(rng, 79),
            trials=attack_trials, related=related,
        )
        samples.append(
            SensitivitySample(
                kind="pattern",
                injected=exact_dist,
                dist_lower=exact_dist,
                dist_upper=exact_dist,
                stale_rejects=stale,
                min_rejects=outcome.min_rejects,
                evaluations=outcome.evaluations,
            )
        )

    return SchemeSensitivity(
        scheme=spec.name,
        declared=spec.error_sensitive,
        samples=tuple(samples),
        skipped=skipped,
        threshold=threshold,
    )


def error_sensitivity_report(
    names: Iterable[str] | None = None,
    n: int = 24,
    distances: Sequence[int] = (1, 2, 4, 8, 16),
    samples_per_distance: int = 2,
    attack_trials: int = 24,
    rng: random.Random | None = None,
    threshold: float = BETA_THRESHOLD,
) -> ErrorSensitivityReport:
    """Sensitivity profiles for every named (default: all) catalog scheme."""
    rng = rng or make_rng(2024)
    names = list(names) if names is not None else catalog.names()
    entries = []
    for index, name in enumerate(names):
        try:
            entries.append(
                measure_scheme_sensitivity(
                    name,
                    n=n,
                    distances=distances,
                    samples_per_distance=samples_per_distance,
                    attack_trials=attack_trials,
                    rng=spawn(rng, index),
                    threshold=threshold,
                )
            )
        except (LanguageError, SimulationError):
            # A scheme whose language cannot be frozen/corrupted on the
            # sampled family still appears, as unmeasured.
            entries.append(
                SchemeSensitivity(
                    scheme=name,
                    declared=catalog.get(name).error_sensitive,
                    samples=(),
                    skipped=0,
                    threshold=threshold,
                )
            )
    return ErrorSensitivityReport(entries=tuple(entries), threshold=threshold)
