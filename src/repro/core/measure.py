"""Proof-size measurement and shape fitting.

The paper's results are asymptotic bounds; the reproduction checks their
*shape* empirically.  This module sweeps schemes across graph families
and sizes, records honest proof sizes in bits, and fits the measurements
against reference curves (``log n``, ``log² n``, ``n``, ``n²``) by
least-squares scaling, reporting which curve explains the data best.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.scheme import ProofLabelingScheme
from repro.graphs.graph import Graph
from repro.util.rng import make_rng, spawn

__all__ = [
    "CURVES",
    "SizeRow",
    "best_curve",
    "fit_affine",
    "fit_constant",
    "proof_size_sweep",
    "size_table",
]


@dataclass(frozen=True)
class SizeRow:
    """One measurement: a scheme run on one generated instance."""

    scheme: str
    family: str
    n: int
    proof_bits: int
    mean_bits: float
    state_bits: int

    def as_tuple(self) -> tuple:
        return (self.scheme, self.family, self.n, self.proof_bits,
                round(self.mean_bits, 1), self.state_bits)


#: Reference curves for shape fitting.
CURVES: dict[str, Callable[[int], float]] = {
    "log n": lambda n: math.log2(max(2, n)),
    "log^2 n": lambda n: math.log2(max(2, n)) ** 2,
    "n": lambda n: float(n),
    "n log n": lambda n: n * math.log2(max(2, n)),
    "n^2": lambda n: float(n * n),
    "1": lambda n: 1.0,
}


def proof_size_sweep(
    scheme: ProofLabelingScheme,
    family_name: str,
    family: Callable[[int, random.Random], Graph],
    sizes: Iterable[int],
    rng: random.Random | None = None,
    samples: int = 3,
) -> list[SizeRow]:
    """Measure honest proof sizes of ``scheme`` on a graph family.

    For each requested size, ``samples`` instances are generated and the
    *maximum* proof size is reported (bounds are worst-case).
    """
    rng = rng or make_rng()
    rows: list[SizeRow] = []
    for n in sizes:
        worst = 0
        mean_acc = 0.0
        state_bits = 0
        actual_n = n
        for sample in range(samples):
            graph = family(n, spawn(rng, sample))
            actual_n = graph.n
            config = scheme.language.member_configuration(
                graph, rng=spawn(rng, 1000 + sample)
            )
            assignment = scheme.assignment(config)
            worst = max(worst, assignment.max_bits)
            mean_acc += assignment.total_bits / max(1, graph.n)
            state_bits = max(state_bits, config.labeling.max_state_bits())
        rows.append(
            SizeRow(
                scheme=scheme.name,
                family=family_name,
                n=actual_n,
                proof_bits=worst,
                mean_bits=mean_acc / samples,
                state_bits=state_bits,
            )
        )
    return rows


def fit_constant(
    points: Sequence[tuple[int, float]],
    curve: Callable[[int], float],
) -> tuple[float, float]:
    """Least-squares scale ``c`` for ``value ≈ c * curve(n)``.

    Returns ``(c, normalised_rmse)``; the RMSE is divided by the mean
    measured value so fits across curves are comparable.
    """
    num = sum(v * curve(n) for n, v in points)
    den = sum(curve(n) ** 2 for n, v in points)
    c = num / den if den else 0.0
    if not points:
        return 0.0, float("inf")
    mse = sum((v - c * curve(n)) ** 2 for n, v in points) / len(points)
    mean = sum(v for _, v in points) / len(points)
    return c, math.sqrt(mse) / max(1e-9, mean)


def fit_affine(
    points: Sequence[tuple[int, float]],
    curve: Callable[[int], float],
) -> tuple[float, float, float]:
    """Least-squares affine fit ``value ≈ a + b * curve(n)``.

    Returns ``(a, b, normalised_rmse)``.  The slope ``b`` is the honest
    empirical quantity for shape claims on small ranges, where constant
    framing overhead would otherwise mask the asymptotic term: for
    ``curve = log2`` it reads as "bits gained per doubling of n".
    """
    if len(points) < 2:
        return (points[0][1] if points else 0.0, 0.0, float("inf"))
    xs = [curve(n) for n, _ in points]
    ys = [v for _, v in points]
    k = len(points)
    mean_x = sum(xs) / k
    mean_y = sum(ys) / k
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0:
        return mean_y, 0.0, float("inf")
    b = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / var_x
    a = mean_y - b * mean_x
    mse = sum((y - (a + b * x)) ** 2 for x, y in zip(xs, ys)) / k
    return a, b, math.sqrt(mse) / max(1e-9, mean_y)


def best_curve(
    points: Sequence[tuple[int, float]],
    candidates: dict[str, Callable[[int], float]] | None = None,
) -> tuple[str, float, float]:
    """The reference curve with the smallest normalised RMSE.

    Returns ``(curve_name, scale, rmse)``.
    """
    candidates = candidates or CURVES
    results = []
    for name, curve in candidates.items():
        c, rmse = fit_constant(points, curve)
        results.append((rmse, name, c))
    rmse, name, c = min(results)
    return name, c, rmse


def size_table(rows: Iterable[SizeRow]) -> str:
    """Monospace table of size measurements (benchmark report output)."""
    rows = list(rows)
    header = f"{'scheme':<28} {'family':<14} {'n':>6} {'bits':>8} {'mean':>8} {'state':>6}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.scheme:<28} {row.family:<14} {row.n:>6} "
            f"{row.proof_bits:>8} {row.mean_bits:>8.1f} {row.state_bits:>6}"
        )
    return "\n".join(lines)
