"""Experimental soundness testing: adversarial certificate search.

Soundness says that on an illegal configuration *every* certificate
assignment leaves at least one rejecting node.  That universal statement
cannot be tested by running the honest prover; it must be *attacked*.
This module implements the adversaries used by the test-suite and the
benchmarks:

* :func:`random_attack` — sample assignments from a pool of plausible
  certificates (honest certificates of the instance, of related legal
  instances, and structural mutations thereof);
* :func:`greedy_attack` — local search: start from the honest best-effort
  assignment and repeatedly re-certify nodes around rejecting nodes,
  keeping changes that reduce the number of rejections;
* :func:`exhaustive_attack` — full product search over per-node candidate
  sets, for small instances;
* :func:`attack` — the combined budgeted adversary.

An attack *fools* the scheme when it finds an assignment with zero
rejections on an illegal configuration — i.e. a soundness violation.  For
correct schemes the experiments report the *minimum number of rejecting
nodes* the adversary could reach (1 is the paper's bound).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.core.labeling import Configuration
from repro.core.scheme import ProofLabelingScheme
from repro.core.verifier import Verdict
from repro.errors import SchemeError
from repro.util.bits import encode_obj
from repro.util.rng import make_rng

__all__ = [
    "AttackResult",
    "attack",
    "completeness_holds",
    "exhaustive_attack",
    "gap_attack",
    "greedy_attack",
    "harvest_pool",
    "mutate_certificate",
    "random_attack",
]


@dataclass(frozen=True)
class AttackResult:
    """Outcome of an adversarial search against one configuration."""

    fooled: bool
    min_rejects: int
    best_certificates: dict[int, Any]
    evaluations: int

    def merge(self, other: "AttackResult") -> "AttackResult":
        best = self if self.min_rejects <= other.min_rejects else other
        return AttackResult(
            fooled=self.fooled or other.fooled,
            min_rejects=best.min_rejects,
            best_certificates=best.best_certificates,
            evaluations=self.evaluations + other.evaluations,
        )


def completeness_holds(scheme: ProofLabelingScheme, config: Configuration) -> bool:
    """Honest prover on a member configuration convinces every node."""
    if not scheme.language.is_member(config):
        raise SchemeError("completeness is only defined on member configurations")
    return scheme.run(config).all_accept


def harvest_pool(
    scheme: ProofLabelingScheme,
    configs: Iterable[Configuration],
    rng: random.Random | None = None,
    mutations_per_cert: int = 2,
) -> list[Any]:
    """Plausible certificates: honest ones from ``configs`` + mutations.

    Deduplicated by canonical encoding, order-stable.
    """
    rng = rng or make_rng()
    pool: list[Any] = []
    seen: set[str] = set()

    def add(cert: Any) -> None:
        try:
            key = encode_obj(cert)
        except Exception:
            key = repr(cert)
        if key not in seen:
            seen.add(key)
            pool.append(cert)

    for config in configs:
        for cert in scheme.prove(config).values():
            add(cert)
            for _ in range(mutations_per_cert):
                add(mutate_certificate(cert, rng))
    return pool


def mutate_certificate(cert: Any, rng: random.Random) -> Any:
    """A small structural mutation of a certificate.

    Recursively picks one atom and perturbs it: ints are nudged, booleans
    flipped, ``None`` stays (nothing to mutate inside).  Container shape
    is preserved, so mutants remain well-formed for format checks while
    being semantically wrong.
    """
    if isinstance(cert, bool):
        return not cert
    if isinstance(cert, int):
        delta = rng.choice([-2, -1, 1, 2])
        return max(0, cert + delta) if cert >= 0 else cert + delta
    if isinstance(cert, float):
        return cert + rng.choice([-1.0, 1.0])
    if isinstance(cert, str):
        return cert + "x"
    if isinstance(cert, tuple) and cert:
        index = rng.randrange(len(cert))
        mutated = list(cert)
        mutated[index] = mutate_certificate(cert[index], rng)
        return tuple(mutated)
    if isinstance(cert, list) and cert:
        index = rng.randrange(len(cert))
        mutated = list(cert)
        mutated[index] = mutate_certificate(cert[index], rng)
        return mutated
    if isinstance(cert, frozenset) and cert:
        items = sorted(cert, key=repr)
        index = rng.randrange(len(items))
        items[index] = mutate_certificate(items[index], rng)
        return frozenset(items)
    if isinstance(cert, dict) and cert:
        key = rng.choice(sorted(cert, key=repr))
        mutated = dict(cert)
        mutated[key] = mutate_certificate(cert[key], rng)
        return mutated
    return cert


def _evaluate(
    scheme: ProofLabelingScheme,
    config: Configuration,
    certs: Mapping[int, Any],
    views: Mapping[int, Any] | None = None,
) -> Verdict:
    return scheme.run(config, certificates=certs, views=views)


def random_attack(
    scheme: ProofLabelingScheme,
    config: Configuration,
    rng: random.Random | None = None,
    trials: int = 100,
    pool: Sequence[Any] | None = None,
) -> AttackResult:
    """Randomised assignment search.

    Each trial perturbs the current best assignment on a random subset of
    nodes with certificates drawn from the pool; improvements are kept
    (a simple stochastic hill-climb).
    """
    rng = rng or make_rng()
    if pool is None:
        pool = harvest_pool(scheme, [config], rng)
    if not pool:
        pool = [None]
    nodes = list(config.graph.nodes)
    best = dict(scheme.prove(config))
    best_views = scheme.build_views(config, best)
    best_verdict = _evaluate(scheme, config, best, views=best_views)
    evaluations = 1
    for _ in range(trials):
        if best_verdict.all_accept:
            break
        candidate = dict(best)
        changed = rng.sample(nodes, k=max(1, rng.randrange(1, max(2, len(nodes) // 2))))
        for node in changed:
            candidate[node] = rng.choice(pool)
        views = scheme.refresh_views(config, candidate, best_views, changed)
        verdict = _evaluate(scheme, config, candidate, views=views)
        evaluations += 1
        if verdict.reject_count < best_verdict.reject_count:
            best, best_verdict, best_views = candidate, verdict, views
    return AttackResult(
        fooled=best_verdict.all_accept,
        min_rejects=best_verdict.reject_count,
        best_certificates=best,
        evaluations=evaluations,
    )


def greedy_attack(
    scheme: ProofLabelingScheme,
    config: Configuration,
    rng: random.Random | None = None,
    pool: Sequence[Any] | None = None,
    max_passes: int = 4,
) -> AttackResult:
    """Local search focused on the neighborhoods of rejecting nodes."""
    rng = rng or make_rng()
    if pool is None:
        pool = harvest_pool(scheme, [config], rng)
    if not pool:
        pool = [None]
    graph = config.graph
    best = dict(scheme.prove(config))
    best_views = scheme.build_views(config, best)
    best_verdict = _evaluate(scheme, config, best, views=best_views)
    evaluations = 1
    for _ in range(max_passes):
        if best_verdict.all_accept:
            break
        improved = False
        frontier: set[int] = set()
        for rejecting in best_verdict.rejects:
            frontier.add(rejecting)
            frontier.update(graph.neighbors(rejecting))
        for node in sorted(frontier):
            for cert in pool:
                if cert == best.get(node):
                    continue
                candidate = dict(best)
                candidate[node] = cert
                # Single-node change: only the views that can see ``node``
                # are rebuilt — the adversary's hot loop.
                views = scheme.refresh_views(config, candidate, best_views, [node])
                verdict = _evaluate(scheme, config, candidate, views=views)
                evaluations += 1
                if verdict.reject_count < best_verdict.reject_count:
                    best, best_verdict, best_views = candidate, verdict, views
                    improved = True
                    break
        if not improved:
            break
    return AttackResult(
        fooled=best_verdict.all_accept,
        min_rejects=best_verdict.reject_count,
        best_certificates=best,
        evaluations=evaluations,
    )


def exhaustive_attack(
    scheme: ProofLabelingScheme,
    config: Configuration,
    candidates: Mapping[int, Sequence[Any]],
    limit: int = 250_000,
) -> AttackResult:
    """Try every assignment from per-node candidate sets (small cases).

    Raises :class:`~repro.errors.SchemeError` if the product space
    exceeds ``limit`` — exhaustive search must be deliberate.
    """
    nodes = sorted(config.graph.nodes)
    space = 1
    for node in nodes:
        space *= max(1, len(candidates[node]))
        if space > limit:
            raise SchemeError(
                f"exhaustive space {space}+ exceeds limit {limit}"
            )
    best: dict[int, Any] | None = None
    best_verdict: Verdict | None = None
    evaluations = 0
    for combo in itertools.product(*(candidates[node] for node in nodes)):
        assignment = dict(zip(nodes, combo))
        verdict = _evaluate(scheme, config, assignment)
        evaluations += 1
        if best_verdict is None or verdict.reject_count < best_verdict.reject_count:
            best, best_verdict = assignment, verdict
            if best_verdict.all_accept:
                break
    assert best is not None and best_verdict is not None
    return AttackResult(
        fooled=best_verdict.all_accept,
        min_rejects=best_verdict.reject_count,
        best_certificates=best,
        evaluations=evaluations,
    )


def attack(
    scheme: ProofLabelingScheme,
    config: Configuration,
    rng: random.Random | None = None,
    trials: int = 100,
    related: Iterable[Configuration] = (),
) -> AttackResult:
    """The combined budgeted adversary (random then greedy).

    ``related`` supplies extra legal configurations whose honest
    certificates enrich the pool — the classic way to fool weak schemes
    is to replay certificates from *other* accepted instances.
    """
    rng = rng or make_rng()
    pool = harvest_pool(scheme, [config, *related], rng)
    result = random_attack(scheme, config, rng, trials=trials, pool=pool)
    if not result.fooled:
        result = result.merge(greedy_attack(scheme, config, rng, pool=pool))
    return result


def gap_attack(
    scheme: ProofLabelingScheme,
    config: Configuration,
    rng: random.Random | None = None,
    trials: int = 100,
    related: Iterable[Configuration] = (),
) -> AttackResult:
    """The budgeted adversary against a *gap* (approximate) scheme.

    Gap soundness only promises rejection on configurations that miss
    the predicate by the scheme's approximation factor — the language's
    *no-instances*.  An adversary that fools the verifier inside the gap
    (neither a yes- nor a no-instance) has broken nothing, so counting it
    as a violation would be a false alarm.  This wrapper therefore
    refuses to attack anything but a genuine no-instance: the caller must
    hand it a configuration that is α-far from the predicate.

    The language is duck-typed: anything exposing ``is_no`` (see
    :class:`repro.approx.GapLanguage`) qualifies.
    """
    is_no = getattr(scheme.language, "is_no", None)
    if is_no is None:
        raise SchemeError(
            f"{scheme.language.name} has no gap (no is_no); use attack()"
        )
    if not is_no(config):
        raise SchemeError(
            f"{scheme.language.name}: configuration is not a no-instance; "
            "gap soundness says nothing about it"
        )
    return attack(scheme, config, rng=rng, trials=trials, related=related)
