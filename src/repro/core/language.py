"""Distributed languages: predicates on configurations.

A *distributed language* is a set of configurations (graph + identities +
per-node states).  Membership must be decidable centrally
(:meth:`DistributedLanguage.is_member`), and the language must be
*constructible*: for every admissible graph there is a legal labeling
(:meth:`DistributedLanguage.canonical_labeling`), possibly depending on
identities or randomness.  Both properties are the standing assumptions
of the paper.

Languages may restrict the graphs they speak about (e.g. bipartiteness is
constructible only on bipartite graphs); :meth:`supports_graph` reports
that, and canonical labelings raise :class:`~repro.errors.LanguageError`
on unsupported graphs.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any

from repro.core.labeling import Configuration, Labeling
from repro.errors import LanguageError
from repro.graphs.graph import Graph
from repro.util.rng import make_rng

__all__ = ["DistributedLanguage"]


class DistributedLanguage(ABC):
    """Base class for all languages.

    Subclasses set :attr:`name` and implement :meth:`is_member` and
    :meth:`canonical_labeling`.  States should be built from
    codec-friendly values (ints, ``None``, ``frozenset``/tuples of ints)
    so sizes can be measured; neighbor references inside states use port
    numbers.
    """

    name: str = "language"
    #: True when membership depends on edge weights (e.g. MST); such
    #: languages require weighted graphs.
    weighted: bool = False

    @abstractmethod
    def is_member(self, config: Configuration) -> bool:
        """Centralised membership decision."""

    @abstractmethod
    def canonical_labeling(
        self,
        graph: Graph,
        ids: dict[int, int] | None = None,
        rng: random.Random | None = None,
    ) -> Labeling:
        """Some legal labeling of ``graph`` (witness of constructibility).

        Raises :class:`~repro.errors.LanguageError` when the graph admits
        no legal labeling.
        """

    # -- optional hooks --------------------------------------------------------

    def supports_graph(self, graph: Graph) -> bool:
        """Can this graph be legally labeled at all?"""
        try:
            self.canonical_labeling(graph)
        except LanguageError:
            return False
        return True

    def validate_state(self, graph: Graph, node: int, state: Any) -> bool:
        """Format check for a single state (syntactic, not semantic)."""
        return True

    def state_space(self, graph: Graph, node: int) -> tuple[Any, ...] | None:
        """The node's *complete* finite state domain, or ``None``.

        Languages over small per-node alphabets (booleans, parent ports)
        return every syntactically valid state here, which is what lets
        :func:`repro.errorsensitive.distance_to_language` run a genuinely
        exhaustive edit-distance search on small instances.  ``None``
        (the default) means the domain is unbounded or impractically
        large; distance search then falls back to harvested candidates
        and certified bounds.
        """
        return None

    def random_corruption(self, node: int, state: Any, rng: random.Random) -> Any:
        """A plausible corrupted state for corruption experiments.

        The default flips the state to a fresh marker object distinct
        from every legitimate state; languages override this to produce
        *format-preserving* corruption (e.g. re-pointing a parent
        pointer), which is the interesting adversarial case.
        """
        return ("corrupted", rng.randrange(1 << 30))

    # -- conveniences ----------------------------------------------------------

    def member_configuration(
        self,
        graph: Graph,
        ids: dict[int, int] | None = None,
        rng: random.Random | None = None,
        backend: str = "auto",
    ) -> Configuration:
        """A legal configuration on ``graph`` (canonical labeling).

        ``backend`` picks the marker implementation: ``"auto"`` (the
        default) takes the vectorized kernel from
        :mod:`repro.core.batch` when one is registered for this language
        type and numpy is importable, falling back to the per-node dict
        canonical otherwise; ``"array"`` requires the kernel (raises
        :class:`~repro.errors.LanguageError` when there is none);
        ``"views"`` forces the dict path, which is the semantic oracle
        the kernels are pinned against.  All three return the same
        configuration from the same ``rng`` stream.
        """
        if backend not in ("auto", "array", "views"):
            raise LanguageError(
                f"{self.name}: unknown marker backend {backend!r}"
            )
        rng = rng or make_rng()
        if backend != "views":
            from repro.core.batch import try_batch_member_configuration

            config = try_batch_member_configuration(self, graph, ids=ids, rng=rng)
            if config is not None:
                return config
            if backend == "array":
                raise LanguageError(
                    f"{self.name}: no vectorized marker registered "
                    "(backend='array')"
                )
        labeling = self.canonical_labeling(graph, ids=ids, rng=rng)
        config = Configuration.build(graph, labeling, ids=ids)
        if not self.is_member(config):
            raise LanguageError(
                f"{self.name}: canonical labeling is not a member (bug)"
            )
        return config

    def corrupted_configuration(
        self,
        graph: Graph,
        corruptions: int,
        ids: dict[int, int] | None = None,
        rng: random.Random | None = None,
        require_illegal: bool = True,
        attempts: int = 64,
    ) -> Configuration:
        """A configuration obtained by corrupting a member.

        Retries the random corruption until the result actually leaves
        the language (corrupting a state can accidentally produce another
        member); gives up after ``attempts`` tries.
        """
        rng = rng or make_rng()
        base = self.member_configuration(graph, ids=ids, rng=rng)
        for _ in range(attempts):
            corrupted = base.labeling.corrupted(
                rng, corruptions, self.random_corruption
            )
            config = base.with_labeling(corrupted)
            if not require_illegal or not self.is_member(config):
                return config
        raise LanguageError(
            f"{self.name}: failed to corrupt out of the language "
            f"in {attempts} attempts"
        )

    def __repr__(self) -> str:
        return f"<language {self.name}>"
