"""Batched verification: evaluate every node's verifier at once.

This is the array half of the verification spine.  The per-node path
(:func:`repro.core.verifier.decide`) builds a Python ``LocalView`` per
node and calls ``verify`` n times; this module evaluates the same
predicate as vectorized numpy work over the graph's CSR mirror
(:meth:`~repro.graphs.graph.Graph.csr`) — one encode pass over the
registers, then O(n + m) array arithmetic, no views at all.

The dict path stays the *semantic oracle*: a batched decider must
return, for every certificate assignment however malformed, exactly the
accept set the per-node verifier produces (the registry-wide
equivalence property test pins this).  Two mechanisms make that
tractable:

* :class:`ObjectCodes` interns arbitrary register values into dense
  ``int64`` codes through a dict, so "same code" means exactly what
  ``==`` means for dict keys (``1 == True == 1.0`` intern together,
  just as the per-node verifier's ``==`` sees them).  Values a dict
  cannot faithfully intern — unhashable objects, non-reflexive values
  like ``nan`` — raise :class:`BatchFallback`.
* :class:`BatchFallback` aborts the whole batched attempt; the caller
  reruns the per-node oracle, so exotic inputs cost speed, never
  correctness.  Plain ints wider than 62 bits fall back the same way
  (they would overflow the ``int64`` columns).

Deciders register per concrete scheme *type* (exact match — a subclass
with an overridden ``verify`` must register itself) in
:mod:`repro.core.batch_deciders`, which is imported lazily on first
dispatch to keep ``repro.core`` import-cycle-free.  numpy itself is
optional at import time: without it every scheme simply reports
``supports_batch() == False`` and verification stays on the dict path.

The *generation* side mirrors the same design.  Marker kernels
(vectorized ``canonical_labeling`` per concrete language type) and
prover kernels (vectorized ``prove`` per concrete scheme type) register
in :mod:`repro.core.batch_markers` under the same ``(module, qualname)``
exact-class dispatch, and the dict path stays the oracle: a marker
kernel must reproduce the canonical labeling — and the rng stream
position, and any exception — bit for bit, and a prover kernel must
return exactly ``scheme.prove``'s certificates (pinned by
``tests/core/test_batch_generation.py``).  One extra contract keeps the
fallback sound: a marker kernel may raise :class:`BatchFallback` only
*before* consuming ``rng`` (the fallback reruns the dict path on the
same generator); prover kernels take no rng and may fall back freely.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Mapping

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    np = None  # type: ignore[assignment]

from repro.obs import metrics as _metrics

if TYPE_CHECKING:  # typing only; runtime import happens lazily below
    import random

    from repro.core.labeling import Configuration
    from repro.core.language import DistributedLanguage
    from repro.core.scheme import ProofLabelingScheme
    from repro.core.verifier import Verdict
    from repro.graphs.graph import Graph

__all__ = [
    "BatchContext",
    "BatchFallback",
    "ObjectCodes",
    "batch_decide",
    "batch_decider",
    "batch_marker",
    "batch_prove",
    "batch_prover",
    "batch_verdict",
    "supports_batch",
    "supports_batch_marker",
    "supports_batch_prove",
    "try_batch_member_configuration",
    "try_batch_prove",
    "try_batch_verdict",
]

#: Plain ints wider than this many bits cannot ride in an int64 column.
_INT_BITS = 62


class BatchFallback(Exception):
    """A register value the array encoding cannot represent faithfully.

    Raising this anywhere inside a batched decider aborts the attempt;
    the caller re-verifies per node, so the verdict is always the
    oracle's.
    """


class ObjectCodes:
    """Dense ``==``-faithful integer codes for arbitrary register values.

    Backed by a dict, so two values receive the same code exactly when a
    dict unifies them as keys — which is exactly when Python ``==``
    calls them equal (the numeric-hash invariant covers ``1 == True ==
    1.0`` and friends).  Values a dict cannot faithfully key —
    unhashable objects, values that are not equal to themselves (
    ``nan``), values whose comparison itself raises — raise
    :class:`BatchFallback` instead of receiving a wrong code.
    """

    __slots__ = ("_table",)

    def __init__(self) -> None:
        self._table: dict[Any, int] = {}

    def code(self, obj: Any) -> int:
        try:
            if obj != obj:
                raise BatchFallback(f"non-reflexive value {obj!r}")
            return self._table.setdefault(obj, len(self._table))
        except BatchFallback:
            raise
        except Exception as error:
            raise BatchFallback(
                f"value {type(obj).__name__} cannot be interned: {error}"
            ) from None


class BatchContext:
    """Shared per-call working set handed to every batched decider."""

    __slots__ = ("config", "graph", "csr", "n", "states", "certs", "codes",
                 "_uid_codes")

    def __init__(
        self, config: "Configuration", certificates: Mapping[int, Any]
    ) -> None:
        self.config = config
        self.graph = config.graph
        self.csr = config.graph.csr()
        self.n = config.graph.n
        # Mirrors the view scaffold exactly: a node without an entry in
        # ``certificates`` verifies against ``None``.
        self.states = [config.state(v) for v in range(self.n)]
        self.certs = [certificates.get(v) for v in range(self.n)]
        self.codes = ObjectCodes()
        self._uid_codes = None

    # -- encode helpers ------------------------------------------------------

    def code(self, obj: Any) -> int:
        return self.codes.code(obj)

    @property
    def uid_codes(self) -> "np.ndarray":
        """``int64`` column of interned node uids."""
        if self._uid_codes is None:
            config, code = self.config, self.codes.code
            self._uid_codes = np.fromiter(
                (code(config.uid(v)) for v in range(self.n)),
                dtype=np.int64,
                count=self.n,
            )
        return self._uid_codes

    def int_value(self, value: int) -> int:
        """``value`` as a plain int for an int64 column, or fall back."""
        if value.bit_length() > _INT_BITS:
            raise BatchFallback(f"{value.bit_length()}-bit int")
        return int(value)

    # -- segment reductions --------------------------------------------------

    def any_per_entry(self, entry_mask: "np.ndarray") -> "np.ndarray":
        """Per-node OR over each node's half-edge entries (empty = False).

        ``bincount`` over owners, not ``reduceat`` — isolated nodes
        (empty segments) come out False/True correctly by construction.
        """
        return (
            np.bincount(self.csr.owners[entry_mask], minlength=self.n) > 0
        )

    def all_per_entry(self, entry_mask: "np.ndarray") -> "np.ndarray":
        """Per-node AND over each node's entries (empty = True)."""
        return ~self.any_per_entry(~entry_mask)


# ---------------------------------------------------------------------------
# The decider registry.
# ---------------------------------------------------------------------------

#: ``(module, qualname)`` of a scheme class -> decider
#: ``(scheme, ctx) -> bool ndarray``.
_DECIDERS: dict[tuple[str, str], Callable[..., Any]] = {}
_loaded = False


def batch_decider(*class_paths: tuple[str, str]):
    """Register a decider for the named concrete scheme classes.

    Keys are ``(module, qualname)`` pairs rather than the classes
    themselves so :mod:`repro.core.batch_deciders` never imports the
    scheme packages (whose import populates the catalog — which may
    itself probe ``supports_batch`` mid-registration).  Dispatch is by
    exact class identity: a subclass that changes ``verify`` must not
    silently inherit a kernel for the wrong predicate, while subclasses
    that keep it (e.g. the FF17 repair re-registering the list scheme)
    opt in by listing their own path.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        for path in class_paths:
            _DECIDERS[path] = fn
        return fn

    return decorate


def _ensure_deciders() -> None:
    global _loaded
    if _loaded:
        return
    _loaded = True
    try:
        import repro.core.batch_deciders  # noqa: F401
    except BaseException:
        _loaded = False
        raise


def decider_for(scheme: "ProofLabelingScheme") -> Callable[..., Any] | None:
    if np is None:
        return None
    _ensure_deciders()
    cls = type(scheme)
    return _DECIDERS.get((cls.__module__, cls.__qualname__))


def supports_batch(scheme: "ProofLabelingScheme") -> bool:
    """True when ``scheme`` has a registered vectorized decider."""
    return decider_for(scheme) is not None


# ---------------------------------------------------------------------------
# The generation registries: batched markers and provers.
# ---------------------------------------------------------------------------

#: ``(module, qualname)`` of a *language* class -> marker kernel
#: ``(language, graph, ids, rng) -> ArrayLabeling``.
_MARKERS: dict[tuple[str, str], Callable[..., Any]] = {}
#: ``(module, qualname)`` of a *scheme* class -> prover kernel
#: ``(scheme, config) -> dict[int, Any]``.
_PROVERS: dict[tuple[str, str], Callable[..., Any]] = {}
_generators_loaded = False


def batch_marker(*class_paths: tuple[str, str]):
    """Register a marker kernel for the named concrete language classes.

    A marker kernel computes the language's ``canonical_labeling`` as an
    :class:`~repro.core.arrays.ArrayLabeling` — same values, same rng
    consumption, same exceptions as the dict path, node for node.  It
    may raise :class:`BatchFallback` only *before* consuming ``rng``
    (the dispatcher reruns the dict path on the same generator), and on
    success its labeling must be a member by construction: the batched
    path skips ``is_member``, which is where the large-n win lives.
    Dispatch is by exact class identity, as with deciders: a subclass
    that changes ``canonical_labeling`` must not inherit a kernel for
    the wrong distribution.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        for path in class_paths:
            _MARKERS[path] = fn
        return fn

    return decorate


def batch_prover(*class_paths: tuple[str, str]):
    """Register a prover kernel for the named concrete scheme classes.

    A prover kernel returns exactly ``scheme.prove(config)``'s
    certificate dict (total, best-effort off-language, same values on
    junk states).  It takes no rng, so it may raise
    :class:`BatchFallback` at any point; the dispatcher reruns the dict
    prover.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        for path in class_paths:
            _PROVERS[path] = fn
        return fn

    return decorate


def _ensure_generators() -> None:
    global _generators_loaded
    if _generators_loaded:
        return
    _generators_loaded = True
    try:
        import repro.core.batch_markers  # noqa: F401
    except BaseException:
        _generators_loaded = False
        raise


def marker_for(language: "DistributedLanguage") -> Callable[..., Any] | None:
    if np is None:
        return None
    _ensure_generators()
    cls = type(language)
    return _MARKERS.get((cls.__module__, cls.__qualname__))


def prover_for(scheme: "ProofLabelingScheme") -> Callable[..., Any] | None:
    if np is None:
        return None
    _ensure_generators()
    cls = type(scheme)
    return _PROVERS.get((cls.__module__, cls.__qualname__))


def supports_batch_marker(language: "DistributedLanguage") -> bool:
    """True when ``language`` has a registered vectorized marker."""
    return marker_for(language) is not None


def supports_batch_prove(scheme: "ProofLabelingScheme") -> bool:
    """True when ``scheme`` has a registered vectorized prover."""
    return prover_for(scheme) is not None


def try_batch_member_configuration(
    language: "DistributedLanguage",
    graph: "Graph",
    ids: dict[int, int] | None = None,
    rng: "random.Random | None" = None,
) -> "Configuration | None":
    """A batch-generated member configuration, or ``None`` to fall back.

    ``None`` means "run the dict marker": no kernel for this language
    type, or the kernel declined before touching ``rng``
    (:class:`BatchFallback`).  On success the configuration is identical
    to the dict path's — same labeling, same ids, same rng stream
    position — but the ``is_member`` re-check is skipped: kernels are
    member-by-construction, pinned against the oracle by the generation
    equivalence tests.  Charges ``generate.batch``/``.nodes``; a decline
    charges ``generate.batch.fallbacks``.
    """
    fn = marker_for(language)
    if fn is None:
        return None
    try:
        arrays = fn(language, graph, ids, rng)
    except BatchFallback:
        _metrics.inc("generate.batch.fallbacks")
        return None
    from repro.core.labeling import Configuration

    config = Configuration.build(graph, arrays.to_labeling(), ids=ids)
    _metrics.inc("generate.batch")
    _metrics.inc("generate.batch.nodes", graph.n)
    return config


def try_batch_prove(
    scheme: "ProofLabelingScheme", config: "Configuration"
) -> "dict[int, Any] | None":
    """Batched honest certificates, or ``None`` to use the dict prover.

    On success the dict is value-identical to ``scheme.prove(config)``.
    Charges ``prove.batch``/``.nodes``; declines charge
    ``prove.batch.fallbacks``.
    """
    fn = prover_for(scheme)
    if fn is None:
        return None
    try:
        certificates = fn(scheme, config)
    except BatchFallback:
        _metrics.inc("prove.batch.fallbacks")
        return None
    _metrics.inc("prove.batch")
    _metrics.inc("prove.batch.nodes", config.graph.n)
    return certificates


def batch_prove(
    scheme: "ProofLabelingScheme", config: "Configuration"
) -> "dict[int, Any]":
    """Honest certificates with automatic dict fallback (always answers)."""
    certificates = try_batch_prove(scheme, config)
    if certificates is not None:
        return certificates
    return scheme.prove(config)


# ---------------------------------------------------------------------------
# Entry points.
# ---------------------------------------------------------------------------


def try_batch_verdict(
    scheme: "ProofLabelingScheme",
    config: "Configuration",
    certificates: Mapping[int, Any],
) -> "Verdict | None":
    """The batched verdict, or ``None`` when the array path cannot run.

    ``None`` means "use the per-node oracle": no decider for this scheme
    type, or the registers contain values the encoding cannot represent
    (:class:`BatchFallback`).  On success the call charges the same
    ``decide.calls``/``decide.rejections`` counters as the per-node path
    plus ``decide.batch`` and ``decide.batch.nodes``, so cost ledgers
    stay comparable across both paths.
    """
    fn = decider_for(scheme)
    if fn is None:
        return None
    try:
        mask = fn(scheme, BatchContext(config, certificates))
    except BatchFallback:
        _metrics.inc("decide.batch.fallbacks")
        return None
    from repro.core.verifier import Verdict

    accepts = frozenset(int(v) for v in np.flatnonzero(mask))
    rejects = frozenset(int(v) for v in np.flatnonzero(~mask))
    _metrics.inc("decide.batch")
    _metrics.inc("decide.batch.nodes", len(mask))
    _metrics.inc("decide.calls")
    if rejects:
        _metrics.inc("decide.rejections", len(rejects))
    return Verdict(accepts=accepts, rejects=rejects)


def batch_verdict(
    scheme: "ProofLabelingScheme",
    config: "Configuration",
    certificates: Mapping[int, Any],
) -> "Verdict":
    """Batched verdict with automatic per-node fallback (always answers)."""
    verdict = try_batch_verdict(scheme, config, certificates)
    if verdict is not None:
        return verdict
    from repro.core.verifier import decide

    return decide(
        scheme.verify,
        config,
        certificates,
        scheme.visibility,
        scheme.radius,
    )


def batch_decide(
    scheme: "ProofLabelingScheme",
    config: "Configuration",
    certificates: Mapping[int, Any] | None = None,
) -> "np.ndarray":
    """Accept mask over all nodes — ``mask[v]`` iff node ``v`` accepts.

    The array-native entry point: certificates default to the scheme's
    own prover, and schemes without a vectorized decider (or registers
    the encoding cannot represent) transparently run the per-node
    oracle, so the answer is always verdict-identical to
    :func:`repro.core.verifier.decide`.
    """
    if np is None:
        raise RuntimeError("batch_decide needs numpy; install it or use decide()")
    if certificates is None:
        certificates = batch_prove(scheme, config)
    verdict = batch_verdict(scheme, config, certificates)
    mask = np.zeros(config.graph.n, dtype=bool)
    if verdict.accepts:
        mask[np.fromiter(verdict.accepts, dtype=np.int64)] = True
    return mask
