"""Proof-labeling schemes: the prover/verifier pair.

A scheme for a language ``L`` bundles:

* a **prover** (the paper's *marker*): on a configuration in ``L`` it
  produces certificates that make every node accept (completeness);
* a **verifier** (the paper's *decoder*): a one-round local decision at
  each node over its :class:`~repro.core.verifier.LocalView`;
* a certificate **codec** for honest bit-size accounting (the default is
  the canonical generic codec; schemes can override with a tighter one).

Soundness — on configurations outside ``L`` *every* certificate
assignment leaves at least one rejecting node — is a property of the
pair, exercised experimentally by :mod:`repro.core.soundness`.

Provers here are *total*: on an illegal configuration they return
best-effort certificates instead of raising, because the corruption
experiments want to run verifiers on whatever an honest-but-stale prover
would have produced.  Schemes document their best-effort behaviour.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable, Iterator, Mapping

from repro.core.labeling import Configuration
from repro.core.language import DistributedLanguage
from repro.core.verifier import (
    LocalView,
    Verdict,
    Visibility,
    build_views,
    decide,
    refresh_views,
)
from repro.errors import SchemeError
from repro.obs import metrics as _metrics
from repro.util.bits import obj_bit_size

__all__ = ["CertificateAssignment", "ProofLabelingScheme"]


class CertificateAssignment(Mapping[int, Any]):
    """Certificates for every node, with bit-size accounting.

    Sizes are computed through the owning scheme's codec, so
    ``assignment.max_bits`` is the *proof size* of this particular
    assignment.
    """

    def __init__(
        self, certificates: Mapping[int, Any], scheme: "ProofLabelingScheme"
    ) -> None:
        self._certs = dict(certificates)
        self._scheme = scheme

    def __getitem__(self, node: int) -> Any:
        return self._certs[node]

    def __iter__(self) -> Iterator[int]:
        return iter(self._certs)

    def __len__(self) -> int:
        return len(self._certs)

    def bits(self, node: int) -> int:
        return self._scheme.certificate_bits(self._certs[node])

    @property
    def max_bits(self) -> int:
        return max((self.bits(v) for v in self._certs), default=0)

    @property
    def total_bits(self) -> int:
        return sum(self.bits(v) for v in self._certs)

    def replaced(self, node: int, certificate: Any) -> "CertificateAssignment":
        certs = dict(self._certs)
        certs[node] = certificate
        return CertificateAssignment(certs, self._scheme)

    def __repr__(self) -> str:
        return f"CertificateAssignment({len(self._certs)} nodes, max {self.max_bits} bits)"


class ProofLabelingScheme(ABC):
    """Base class for all schemes.

    Subclasses set :attr:`language`, :attr:`name`, optionally
    :attr:`visibility` and :attr:`radius`, and implement :meth:`prove`
    and :meth:`verify`.
    """

    name: str = "scheme"
    visibility: Visibility = Visibility.KKP
    radius: int = 1
    #: Human-readable statement of the theoretical proof-size bound,
    #: e.g. ``"Theta(log n)"`` — used by the reporting tables.
    size_bound: str = "?"

    def __init__(self, language: DistributedLanguage) -> None:
        self.language = language

    # -- the pair -----------------------------------------------------------

    @abstractmethod
    def prove(self, config: Configuration) -> dict[int, Any]:
        """Certificates for every node (total, best-effort off-language)."""

    @abstractmethod
    def verify(self, view: LocalView) -> bool:
        """One-round decision at a node; ``True`` accepts."""

    # -- codec --------------------------------------------------------------

    def certificate_bits(self, certificate: Any) -> int:
        """Size of one certificate in bits (canonical codec by default)."""
        return obj_bit_size(certificate)

    # -- running ------------------------------------------------------------

    def assignment(self, config: Configuration) -> CertificateAssignment:
        from repro.core.batch import batch_prove

        certs = batch_prove(self, config)
        missing = [v for v in config.graph.nodes if v not in certs]
        if missing:
            raise SchemeError(f"{self.name}: prover skipped nodes {missing[:5]}")
        return CertificateAssignment(certs, self)

    def run(
        self,
        config: Configuration,
        certificates: Mapping[int, Any] | None = None,
        views: Mapping[int, LocalView] | None = None,
    ) -> Verdict:
        """Verify ``config`` under the given (default: honest) certificates.

        ``views`` (see :func:`repro.core.verifier.decide`) lets callers
        that re-verify many related assignments reuse prebuilt views.
        """
        if certificates is None:
            from repro.core.batch import batch_prove

            with _metrics.span("prove", scheme=self.name):
                certificates = batch_prove(self, config)
        with _metrics.span("decide", scheme=self.name):
            return decide(
                self.verify,
                config,
                certificates,
                visibility=self.visibility,
                radius=self.radius,
                views=views,
                scheme=self,
            )

    def build_views(
        self, config: Configuration, certificates: Mapping[int, Any]
    ) -> dict[int, LocalView]:
        """Prebuilt views for :meth:`run`'s fast path, under this
        scheme's visibility and radius."""
        return build_views(
            config, certificates, visibility=self.visibility, radius=self.radius
        )

    def refresh_views(
        self,
        config: Configuration,
        certificates: Mapping[int, Any],
        views: Mapping[int, LocalView],
        changed: Iterable[int],
    ) -> dict[int, LocalView]:
        """Views under ``certificates`` given ``views`` of an assignment
        differing only at ``changed`` nodes (shares untouched views)."""
        return refresh_views(
            config,
            certificates,
            views,
            changed,
            visibility=self.visibility,
            radius=self.radius,
        )

    def proof_size_bits(self, config: Configuration) -> int:
        """Proof size (max certificate bits) of the honest assignment."""
        return self.assignment(config).max_bits

    def __repr__(self) -> str:
        return f"<scheme {self.name} for {self.language.name}>"
