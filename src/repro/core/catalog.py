"""The scheme catalog: one registry and one build API for every scheme.

The paper treats every proof labeling scheme as the same object — a
(marker, decoder) pair for a language — and the catalog makes the
library do the same.  Exact schemes (zero parameters, graph-agnostic),
approximate gap schemes (graph-fitted budgets, an α of slack), the
universal scheme, and (1+ε)-parametrised families all register one
:class:`SchemeSpec` and are instantiated through one entry point::

    from repro.core import catalog

    scheme = catalog.build("spanning-tree-ptr")
    scheme = catalog.build("approx-tree-weight", graph=g, rng=rng, eps=0.5)

A spec carries the metadata the sweeps and the CLI render (kind,
size bound, visibility, radius, α, declared parameters with defaults and
validation) plus :meth:`SchemeSpec.sample_graph`, which owns the
graph-selection concerns that used to be duplicated across consumers:
picking a family the language supports (e.g. grids for bipartiteness)
and attaching edge weights when the language needs them.

Registration happens where the schemes live — :mod:`repro.schemes` and
:mod:`repro.approx` decorate their builders with :func:`register_scheme`
— and the catalog imports those packages lazily on first query, so
``repro.core`` stays import-cycle-free.
"""

from __future__ import annotations

import importlib
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.scheme import ProofLabelingScheme
from repro.core.verifier import Visibility
from repro.errors import CatalogError
from repro.graphs.generators import connected_gnp
from repro.graphs.graph import Graph
from repro.graphs.weighted import weighted_copy
from repro.util.rng import make_rng

__all__ = [
    "KINDS",
    "ParamSpec",
    "SchemeSpec",
    "build",
    "error_sensitivity_label",
    "get",
    "names",
    "register_scheme",
    "specs",
]


def error_sensitivity_label(declared: bool | None) -> str:
    """Render a :attr:`SchemeSpec.error_sensitive` declaration uniformly.

    One mapping for every surface (``list-schemes``, ``error-profile``,
    the ES experiment table): ``yes``/``no`` where a proof or
    counterexample is known, ``?`` where classification is empirical.
    """
    return {True: "yes", False: "no"}.get(declared, "?")

#: The three scheme flavours the catalog distinguishes.  ``exact``
#: schemes verify their language outright, ``approx`` schemes verify a
#: gap language (soundness only α-far from the predicate), ``universal``
#: marks the paper's generic Θ(n²) construction.
KINDS = ("exact", "approx", "universal")

#: Packages whose import populates the registry (each runs its
#: ``register_scheme`` calls at import time).
_PROVIDER_MODULES = ("repro.schemes", "repro.approx", "repro.errorsensitive")


@dataclass(frozen=True)
class ParamSpec:
    """One declared, user-settable scheme parameter.

    ``default`` fixes both the fallback value and the parameter's type
    (int stays int, float coerces).  ``minimum`` bounds the value from
    below; with ``exclusive`` the bound itself is rejected (ε > 0, not
    ε ≥ 0).  String values — the CLI's ``--param eps=0.5`` — are parsed
    through :meth:`coerce` as well, so every consumer shares one
    validation path.
    """

    name: str
    default: Any
    doc: str = ""
    minimum: float | None = None
    exclusive: bool = False

    def coerce(self, value: Any) -> Any:
        if isinstance(value, str):
            try:
                value = int(value)
            except ValueError:
                try:
                    value = float(value)
                except ValueError:
                    raise CatalogError(
                        f"parameter {self.name!r} expects a number, "
                        f"got {value!r}"
                    ) from None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise CatalogError(
                f"parameter {self.name!r} expects a number, got {value!r}"
            )
        if isinstance(self.default, int) and not isinstance(value, int):
            if not float(value).is_integer():
                raise CatalogError(
                    f"parameter {self.name!r} expects an integer, got {value!r}"
                )
            value = int(value)
        elif isinstance(self.default, float):
            value = float(value)
        if self.minimum is not None:
            if self.exclusive and not value > self.minimum:
                raise CatalogError(
                    f"parameter {self.name!r} must exceed {self.minimum:g}, "
                    f"got {value!r}"
                )
            if not self.exclusive and not value >= self.minimum:
                raise CatalogError(
                    f"parameter {self.name!r} must be at least "
                    f"{self.minimum:g}, got {value!r}"
                )
        return value


def _default_sampler(n: int, rng: random.Random) -> Graph:
    """A connected sparse G(n, p) — the workhorse sweep family."""
    return connected_gnp(n, min(0.6, 3.0 / max(3, n)), rng)


@dataclass(frozen=True)
class SchemeSpec:
    """Catalog entry: metadata plus the fitted-scheme builder.

    ``builder(graph, rng, **params)`` returns a ready
    :class:`~repro.core.scheme.ProofLabelingScheme`; graph-agnostic
    builders (all the exact schemes) simply ignore ``graph``, while
    ``graph_fitted`` specs derive instance parameters (budgets, bounds)
    from it and refuse to build without one.  Metadata (``visibility``,
    ``radius``, ``alpha``, ``size_bound``, ``weighted``) describes the
    scheme built at default parameters; the catalog's property tests pin
    the two against each other.
    """

    name: str
    kind: str
    summary: str
    builder: Callable[..., ProofLabelingScheme]
    size_bound: str
    visibility: Visibility
    radius: int = 1
    weighted: bool = False
    #: Approximation factor at default parameters; ``None`` for exact.
    alpha: float | None = None
    #: True when the builder derives instance parameters from the graph.
    graph_fitted: bool = False
    #: Declared error-sensitivity (Feuilloley–Fraigniaud 2017): ``True``
    #: when every configuration at edit distance d from the language
    #: keeps ≥ β·d nodes rejecting under *any* certificates, ``False``
    #: when a known construction beats that (e.g. the pointer-encoded
    #: spanning tree's sliding counters), ``None`` when unclassified.
    #: ``repro.errorsensitive`` measures β̂ empirically and the ES
    #: experiment cross-checks these declarations.
    error_sensitive: bool | None = None
    params: tuple[ParamSpec, ...] = ()
    #: Graph sampler for sweeps/CLI defaults; ``None`` uses sparse G(n,p).
    sampler: Callable[[int, random.Random], Graph] | None = field(
        default=None, repr=False
    )
    #: Declared batch capability; ``None`` probes the built scheme on
    #: first access (graph-fitted specs must declare to opt in).
    batch_declared: bool | None = field(default=None, repr=False)
    #: Declared vectorized-marker capability; same probing rules.
    generate_declared: bool | None = field(default=None, repr=False)

    @property
    def batch(self) -> bool:
        """True when the scheme this spec builds verifies on the array path.

        Probed lazily from a default-parameter build (declared
        explicitly for graph-fitted specs, which cannot be built without
        an instance) and cached: probing at registration time would
        race the lazy import of the decider registry.
        """
        cached = getattr(self, "_batch_cache", None)
        if cached is None:
            if self.batch_declared is not None:
                cached = self.batch_declared
            elif self.graph_fitted:
                cached = False
            else:
                from repro.core.batch import supports_batch

                probe = self._probe()
                cached = supports_batch(probe)
            object.__setattr__(self, "_batch_cache", cached)
        return cached

    @property
    def generate(self) -> bool:
        """True when this spec's language *generates* on the array path —
        a vectorized marker kernel is registered for it (same lazy
        probing discipline as :attr:`batch`)."""
        cached = getattr(self, "_generate_cache", None)
        if cached is None:
            if self.generate_declared is not None:
                cached = self.generate_declared
            elif self.graph_fitted:
                cached = False
            else:
                from repro.core.batch import supports_batch_marker

                probe = self._probe()
                cached = supports_batch_marker(probe.language)
            object.__setattr__(self, "_generate_cache", cached)
        return cached

    def _probe(self):
        defaults = {p.name: p.default for p in self.params}
        return self.builder(None, make_rng(0), **defaults)

    # -- parameters ---------------------------------------------------------

    def param(self, name: str) -> ParamSpec:
        for spec in self.params:
            if spec.name == name:
                return spec
        declared = [p.name for p in self.params] or "none"
        raise CatalogError(
            f"{self.name} has no parameter {name!r}; declared: {declared}"
        )

    def has_param(self, name: str) -> bool:
        return any(p.name == name for p in self.params)

    def resolve_params(self, overrides: Mapping[str, Any]) -> dict[str, Any]:
        """Defaults merged with validated/coerced ``overrides``."""
        values = {p.name: p.default for p in self.params}
        for name, value in overrides.items():
            values[name] = self.param(name).coerce(value)
        return values

    # -- machine-readable form ----------------------------------------------

    def describe(self) -> dict[str, Any]:
        """The spec as a JSON-ready dict (stable keys, plain values).

        One shape for every machine surface — ``list-schemes --json``,
        the service's ``/schemes`` endpoint — mirroring the columns the
        human table renders plus the declared parameter schemas.
        """
        return {
            "name": self.name,
            "kind": self.kind,
            "summary": self.summary,
            "size_bound": self.size_bound,
            "visibility": self.visibility.name.lower(),
            "radius": self.radius,
            "weighted": self.weighted,
            "alpha": self.alpha,
            "graph_fitted": self.graph_fitted,
            "error_sensitive": error_sensitivity_label(self.error_sensitive),
            "batch": self.batch,
            "generate": self.generate,
            "params": [
                {
                    "name": p.name,
                    "default": p.default,
                    "doc": p.doc,
                    "minimum": p.minimum,
                    "exclusive": p.exclusive,
                }
                for p in self.params
            ],
        }

    # -- graphs -------------------------------------------------------------

    def sample_graph(self, n: int, rng: random.Random | None = None) -> Graph:
        """A graph of ~``n`` nodes this scheme's language supports.

        Owns the selection concerns consumers used to duplicate: the
        per-language family choice (via ``sampler``) and the weighted
        copy when the language reads edge weights.
        """
        rng = rng or make_rng()
        graph = (self.sampler or _default_sampler)(n, rng)
        if self.weighted and not graph.is_weighted:
            graph = weighted_copy(graph, rng)
        return graph

    # -- building -----------------------------------------------------------

    def build(
        self,
        graph: Graph | None = None,
        rng: random.Random | None = None,
        **params: Any,
    ) -> ProofLabelingScheme:
        """A fitted scheme under ``params`` (validated against the spec)."""
        values = self.resolve_params(params)
        if graph is None and self.graph_fitted:
            raise CatalogError(
                f"{self.name} is graph-fitted (its language parameters come "
                f"from the instance); pass graph=..."
            )
        if self.weighted and graph is not None and not graph.is_weighted:
            raise CatalogError(
                f"{self.name} needs a weighted graph; use "
                f"spec.sample_graph or repro.graphs.weighted.weighted_copy"
            )
        return self.builder(graph, rng or make_rng(), **values)

    def __repr__(self) -> str:
        return f"<scheme-spec {self.name} kind={self.kind}>"


# ---------------------------------------------------------------------------
# The registry.
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, SchemeSpec] = {}
_populated = False


def _ensure_populated() -> None:
    global _populated
    if _populated:
        return
    # Guard first so a provider querying the catalog mid-import cannot
    # recurse; roll back on failure so the real import error resurfaces
    # on the next query instead of a silently empty registry.
    _populated = True
    try:
        for module in _PROVIDER_MODULES:
            importlib.import_module(module)
    except BaseException:
        _populated = False
        raise


def register_scheme(
    name: str,
    *,
    kind: str,
    summary: str,
    graph_fitted: bool = False,
    params: tuple[ParamSpec, ...] = (),
    sampler: Callable[[int, random.Random], Graph] | None = None,
    size_bound: str | None = None,
    visibility: Visibility | None = None,
    radius: int | None = None,
    weighted: bool | None = None,
    alpha: float | None = None,
    error_sensitive: bool | None = None,
    batch: bool | None = None,
    generate: bool | None = None,
):
    """Decorator registering ``builder(graph, rng, **params)`` as a spec.

    Metadata left unset is probed from the scheme the builder produces
    at default parameters (graph-agnostic builders only — graph-fitted
    specs cannot be built without an instance, so they must declare all
    of ``size_bound``/``visibility``/``radius``/``weighted``/``alpha``
    explicitly, and the catalog tests pin the declarations against a
    fitted build).
    """
    if kind not in KINDS:
        raise CatalogError(f"unknown scheme kind {kind!r}; known: {KINDS}")
    if name in _REGISTRY:
        raise CatalogError(f"scheme {name!r} is already registered")
    seen: set[str] = set()
    for p in params:
        if p.name in seen:
            raise CatalogError(f"{name}: duplicate parameter {p.name!r}")
        seen.add(p.name)

    def decorate(builder: Callable[..., ProofLabelingScheme]):
        nonlocal size_bound, visibility, radius, weighted, alpha
        needs_probe = None in (size_bound, visibility, radius, weighted) or (
            kind == "approx" and alpha is None
        )
        if needs_probe:
            if graph_fitted:
                raise CatalogError(
                    f"{name} is graph-fitted; declare size_bound, "
                    f"visibility, radius, weighted (and alpha for approx) "
                    f"explicitly"
                )
            defaults = {p.name: p.default for p in params}
            probe = builder(None, make_rng(0), **defaults)
            size_bound = probe.size_bound if size_bound is None else size_bound
            visibility = probe.visibility if visibility is None else visibility
            radius = probe.radius if radius is None else radius
            weighted = (
                probe.language.weighted if weighted is None else weighted
            )
            if alpha is None:
                alpha = getattr(probe, "alpha", None)
        if kind == "approx" and not (alpha is not None and alpha > 1.0):
            raise CatalogError(f"{name}: approx specs need alpha > 1")
        _REGISTRY[name] = SchemeSpec(
            name=name,
            kind=kind,
            summary=summary,
            builder=builder,
            size_bound=size_bound,
            visibility=visibility,
            radius=radius,
            weighted=bool(weighted),
            alpha=alpha,
            graph_fitted=graph_fitted,
            error_sensitive=error_sensitive,
            params=tuple(params),
            sampler=sampler,
            batch_declared=batch,
            generate_declared=generate,
        )
        return builder

    return decorate


def get(name: str) -> SchemeSpec:
    """The spec registered under ``name``."""
    _ensure_populated()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CatalogError(
            f"unknown scheme {name!r}; known: {names()}"
        ) from None


def specs(kind: str | None = None) -> list[SchemeSpec]:
    """All specs (optionally one kind), exact → approx → universal."""
    _ensure_populated()
    if kind is not None and kind not in KINDS:
        raise CatalogError(f"unknown scheme kind {kind!r}; known: {KINDS}")
    selected = [
        spec
        for spec in _REGISTRY.values()
        if kind is None or spec.kind == kind
    ]
    return sorted(selected, key=lambda s: (KINDS.index(s.kind), s.name))


def names(kind: str | None = None) -> list[str]:
    """Registered names (optionally one kind), in :func:`specs` order."""
    return [spec.name for spec in specs(kind)]


def build(
    name: str,
    graph: Graph | None = None,
    rng: random.Random | None = None,
    **params: Any,
) -> ProofLabelingScheme:
    """The one instantiation path: a fitted scheme for any registered name.

    ``graph`` is required only by graph-fitted specs (whose languages
    carry instance-derived budgets); ``params`` override the spec's
    declared parameters, e.g. ``build("approx-tree-weight", graph=g,
    eps=0.5)`` for a (1.5)-gap verifier.
    """
    return get(name).build(graph=graph, rng=rng, **params)
