"""The proof-labeling-scheme framework — the source paper's core model.

Configurations, distributed languages, prover/one-round-verifier pairs,
the soundness adversaries, the universal scheme, and the scheme catalog
(the registry every other layer instantiates schemes through).
"""

from repro.core import catalog
from repro.core.catalog import ParamSpec, SchemeSpec, register_scheme
from repro.core.composition import ConjunctionScheme, IntersectionLanguage
from repro.core.labeling import Configuration, Labeling
from repro.core.language import DistributedLanguage
from repro.core.measure import SizeRow, best_curve, fit_constant, proof_size_sweep
from repro.core.scheme import CertificateAssignment, ProofLabelingScheme
from repro.core.soundness import (
    AttackResult,
    attack,
    completeness_holds,
    exhaustive_attack,
    greedy_attack,
    random_attack,
)
from repro.core.universal import UniversalScheme
from repro.core.verifier import (
    BallView,
    LocalView,
    NeighborGlimpse,
    Verdict,
    Visibility,
    build_view,
    build_views,
    decide,
)

__all__ = [
    "AttackResult",
    "BallView",
    "CertificateAssignment",
    "Configuration",
    "ConjunctionScheme",
    "DistributedLanguage",
    "IntersectionLanguage",
    "Labeling",
    "LocalView",
    "NeighborGlimpse",
    "ParamSpec",
    "ProofLabelingScheme",
    "SchemeSpec",
    "SizeRow",
    "UniversalScheme",
    "Verdict",
    "Visibility",
    "attack",
    "best_curve",
    "build_view",
    "build_views",
    "catalog",
    "completeness_holds",
    "decide",
    "exhaustive_attack",
    "fit_constant",
    "greedy_attack",
    "proof_size_sweep",
    "random_attack",
    "register_scheme",
]
