"""Composing languages and schemes.

Many certificates in the literature are conjunctions: "these pointers
form a spanning tree AND the root is marked".  This module provides the
intersection of languages over a shared state space and the matching
product scheme, whose certificate at each node is the tuple of component
certificates — proof size is the sum of the parts.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Any, Sequence

from repro.core.labeling import Configuration, Labeling
from repro.core.language import DistributedLanguage
from repro.core.scheme import ProofLabelingScheme
from repro.core.verifier import LocalView, Visibility
from repro.errors import LanguageError, SchemeError
from repro.graphs.graph import Graph

__all__ = ["ConjunctionScheme", "IntersectionLanguage"]


class IntersectionLanguage(DistributedLanguage):
    """Configurations legal for *every* component language.

    The components must interpret the same states (the intersection of
    predicates over one labeling, not a product of labelings).  The
    canonical labeling comes from the first component and is validated
    against the rest — constructibility of the intersection is the
    caller's responsibility.
    """

    def __init__(self, components: Sequence[DistributedLanguage]) -> None:
        if not components:
            raise LanguageError("intersection of zero languages")
        self.components = tuple(components)
        self.name = " & ".join(lang.name for lang in self.components)
        self.weighted = any(lang.weighted for lang in self.components)

    def is_member(self, config: Configuration) -> bool:
        return all(lang.is_member(config) for lang in self.components)

    def canonical_labeling(
        self,
        graph: Graph,
        ids: dict[int, int] | None = None,
        rng: random.Random | None = None,
    ) -> Labeling:
        labeling = self.components[0].canonical_labeling(graph, ids=ids, rng=rng)
        candidate = Configuration.build(graph, labeling, ids=ids)
        for lang in self.components[1:]:
            if not lang.is_member(candidate):
                raise LanguageError(
                    f"canonical labeling of {self.components[0].name} is not "
                    f"legal for {lang.name}; intersection not constructible here"
                )
        return labeling


class ConjunctionScheme(ProofLabelingScheme):
    """Product of schemes certifying one shared labeling.

    The certificate is the tuple of component certificates; a node
    accepts iff every component verifier accepts its slice of the view.
    """

    def __init__(self, schemes: Sequence[ProofLabelingScheme]) -> None:
        if not schemes:
            raise SchemeError("conjunction of zero schemes")
        self.schemes = tuple(schemes)
        language = IntersectionLanguage([s.language for s in self.schemes])
        super().__init__(language)
        self.name = " & ".join(s.name for s in self.schemes)
        self.visibility = (
            Visibility.FULL
            if any(s.visibility is Visibility.FULL for s in self.schemes)
            else Visibility.KKP
        )
        self.radius = max(s.radius for s in self.schemes)
        self.size_bound = " + ".join(s.size_bound for s in self.schemes)

    def prove(self, config: Configuration) -> dict[int, Any]:
        parts = [scheme.prove(config) for scheme in self.schemes]
        return {
            node: tuple(part[node] for part in parts)
            for node in config.graph.nodes
        }

    def verify(self, view: LocalView) -> bool:
        cert = view.certificate
        if not isinstance(cert, tuple) or len(cert) != len(self.schemes):
            return False
        for index, scheme in enumerate(self.schemes):
            if not scheme.verify(self._slice_view(view, index)):
                return False
        return True

    def _slice_view(self, view: LocalView, index: int) -> LocalView:
        """The view as the ``index``-th component scheme would see it."""

        def component(cert: Any) -> Any:
            if isinstance(cert, tuple) and len(cert) == len(self.schemes):
                return cert[index]
            return None  # malformed neighbor certificate: pass raw None

        neighbors = tuple(
            replace(glimpse, certificate=component(glimpse.certificate))
            for glimpse in view.neighbors
        )
        return replace(
            view, certificate=component(view.certificate), neighbors=neighbors
        )

    def certificate_bits(self, certificate: Any) -> int:
        if isinstance(certificate, tuple) and len(certificate) == len(self.schemes):
            return sum(
                scheme.certificate_bits(part)
                for scheme, part in zip(self.schemes, certificate)
            )
        return super().certificate_bits(certificate)
