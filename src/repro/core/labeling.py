"""Configurations: graphs with identities and per-node input states.

A *labeling* assigns every node its input state — the node's part of the
global configuration a distributed language talks about (a parent
pointer, a color, an adjacency list, ...).  States reference neighbors by
**port number** (position in the node's ordered neighbor list), which
keeps them identifier-independent, exactly as in the LOCAL model.

The *Hamming distance* between two labelings of the same graph is the
number of nodes whose states differ — the configuration-space metric used
in corruption experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.errors import LabelingError
from repro.graphs.graph import Graph
from repro.util.bits import obj_bit_size
from repro.util.idspace import contiguous_ids, validate_ids

__all__ = ["Configuration", "Labeling"]


class Labeling(Mapping[int, Any]):
    """Immutable mapping from node index to input state."""

    __slots__ = ("_states",)

    def __init__(self, states: Mapping[int, Any]) -> None:
        self._states = dict(states)

    @classmethod
    def uniform(cls, nodes: range | list[int], state: Any) -> "Labeling":
        """The labeling giving every node the same state."""
        return cls({v: state for v in nodes})

    # -- Mapping protocol ---------------------------------------------------

    def __getitem__(self, node: int) -> Any:
        try:
            return self._states[node]
        except KeyError:
            raise LabelingError(f"no state for node {node}") from None

    def __iter__(self) -> Iterator[int]:
        return iter(self._states)

    def __len__(self) -> int:
        return len(self._states)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Labeling):
            return NotImplemented
        return self._states == other._states

    def __repr__(self) -> str:
        return f"Labeling({len(self._states)} nodes)"

    # -- derived labelings ----------------------------------------------------

    def with_state(self, node: int, state: Any) -> "Labeling":
        """Copy with one node's state replaced."""
        if node not in self._states:
            raise LabelingError(f"no state for node {node}")
        states = dict(self._states)
        states[node] = state
        return Labeling(states)

    def with_states(self, replacements: Mapping[int, Any]) -> "Labeling":
        """Copy with several nodes' states replaced."""
        states = dict(self._states)
        for node, state in replacements.items():
            if node not in states:
                raise LabelingError(f"no state for node {node}")
            states[node] = state
        return Labeling(states)

    def corrupted(
        self,
        rng: random.Random,
        count: int,
        mutator: Callable[[int, Any, random.Random], Any],
    ) -> "Labeling":
        """Corrupt ``count`` distinct random nodes through ``mutator``.

        ``mutator(node, old_state, rng)`` returns the replacement state;
        it should return something different from ``old_state`` for the
        Hamming distance to actually grow.
        """
        if count > len(self._states):
            raise LabelingError(f"cannot corrupt {count} of {len(self)} nodes")
        victims = rng.sample(sorted(self._states), count)
        return self.with_states(
            {v: mutator(v, self._states[v], rng) for v in victims}
        )

    # -- canonical serialization ----------------------------------------------

    def to_obj(self) -> list:
        """The labeling as a deterministic JSON-able object.

        A node-sorted ``[[node, encoded_state], ...]`` list under the
        tagged canonical encoding (:mod:`repro.util.canonical`), so equal
        labelings serialize to equal bytes — the property the service
        layer's content hashes require.  States with no canonical form
        raise :class:`~repro.errors.CanonicalError`.
        """
        from repro.util.canonical import encode_value

        return [
            [node, encode_value(state)]
            for node, state in sorted(self._states.items())
        ]

    @classmethod
    def from_obj(cls, obj: Any) -> "Labeling":
        """Rebuild a labeling from :meth:`to_obj` output (exact round trip)."""
        from repro.errors import CanonicalError
        from repro.util.canonical import decode_value

        if not isinstance(obj, (list, tuple)):
            raise CanonicalError(
                f"labeling object must be a list, got {type(obj).__name__}"
            )
        states: dict[int, Any] = {}
        for pair in obj:
            if (
                not isinstance(pair, (list, tuple))
                or len(pair) != 2
                or not isinstance(pair[0], int)
                or isinstance(pair[0], bool)
            ):
                raise CanonicalError(f"malformed labeling entry {pair!r}")
            node = pair[0]
            if node in states:
                raise CanonicalError(f"duplicate labeling entry for node {node}")
            states[node] = decode_value(pair[1])
        return cls(states)

    # -- metrics --------------------------------------------------------------

    def hamming_distance(self, other: "Labeling") -> int:
        """Number of nodes whose states differ."""
        if set(self._states) != set(other._states):
            raise LabelingError("labelings cover different node sets")
        return sum(
            1 for v, state in self._states.items() if other._states[v] != state
        )

    def max_state_bits(self) -> int:
        """Size of the largest state under the canonical codec."""
        return max((obj_bit_size(s) for s in self._states.values()), default=0)


@dataclass(frozen=True)
class Configuration:
    """A labeled, identified network: the object languages judge.

    Build with :meth:`Configuration.build` for defaulted ids and loose
    state mappings.
    """

    graph: Graph
    labeling: Labeling
    ids: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if set(self.labeling) != set(self.graph.nodes):
            raise LabelingError("labeling does not cover the graph's nodes")
        if not self.ids:
            object.__setattr__(self, "ids", contiguous_ids(list(self.graph.nodes)))
        validate_ids(list(self.graph.nodes), self.ids)

    @classmethod
    def build(
        cls,
        graph: Graph,
        states: Mapping[int, Any] | Labeling | None = None,
        ids: Mapping[int, int] | None = None,
    ) -> "Configuration":
        if states is None:
            labeling = Labeling.uniform(graph.nodes, None)
        elif isinstance(states, Labeling):
            labeling = states
        else:
            labeling = Labeling(states)
        return cls(graph=graph, labeling=labeling, ids=dict(ids) if ids else {})

    @property
    def n(self) -> int:
        return self.graph.n

    def uid(self, node: int) -> int:
        return self.ids[node]

    def node_of_uid(self, uid: int) -> int:
        for node, candidate in self.ids.items():
            if candidate == uid:
                return node
        raise LabelingError(f"no node has uid {uid}")

    def state(self, node: int) -> Any:
        return self.labeling[node]

    def with_labeling(self, labeling: Labeling | Mapping[int, Any]) -> "Configuration":
        if not isinstance(labeling, Labeling):
            labeling = Labeling(labeling)
        config = Configuration(graph=self.graph, labeling=labeling, ids=dict(self.ids))
        # The verifier's cached view scaffold depends only on the graph
        # and ids, both shared with the derived configuration; handing it
        # down keeps incremental re-verification (detection sessions,
        # soundness adversaries) free of per-round O(n) rebuilds.
        scaffold = self.__dict__.get("_view_scaffold")
        if scaffold is not None:
            object.__setattr__(config, "_view_scaffold", scaffold)
        return config

    def with_ids(self, ids: Mapping[int, int]) -> "Configuration":
        return Configuration(graph=self.graph, labeling=self.labeling, ids=dict(ids))
