"""Vectorized batched deciders for the highest-traffic catalog schemes.

Each decider re-expresses one scheme's ``verify(view) -> bool`` as
array arithmetic over the CSR mirror: an O(n + m) Python encode pass
interns the register values (:class:`~repro.core.batch.ObjectCodes`),
then numpy computes every node's verdict at once.  The per-node dict
path is the semantic oracle — a decider must agree verdict-for-verdict
on *arbitrary* certificates, including malformed ones — so each kernel
mirrors its ``verify`` clause by clause:

* Arbitrary-object equality (``g_cert[0] != root_uid``) becomes equality
  of interned codes; identity checks (``cert is True``, ``parent_uid is
  None``) become explicit flags computed with ``is``.
* "Raises means reject" holds by construction: parse failures mark the
  node unparsed, which rejects it and every neighbor that reads it —
  exactly what the per-node exception produces.
* Values the encoding cannot represent faithfully (NaN, unhashables,
  ints past 62 bits, counters decoding past 2^52) raise
  :class:`~repro.core.batch.BatchFallback` and the caller reruns the
  oracle.
* Per-node reductions go through ``bincount`` over owners
  (:meth:`BatchContext.any_per_entry`) — never ``reduceat``, whose
  empty segments would mangle isolated nodes.

Registration is by ``(module, qualname)`` string so this module imports
no scheme packages (keeping it loadable mid-registry-population); a
subclass that overrides ``verify`` therefore never inherits a kernel by
accident, while subclasses that keep it (the FF17 repair) opt in by
listing their own path.
"""

from __future__ import annotations

import numpy as np

from repro.approx.counters import is_counter
from repro.core.batch import BatchContext, BatchFallback, batch_decider
from repro.core.verifier import Visibility

__all__ = []  # deciders are reached through the registry, not imports

#: Rounded counters must decode within float64's exact-integer range:
#: the counter sums (and the α·budget comparison) are bit-identical to
#: the per-node arbitrary-precision math only below 2^52.
_COUNTER_BITS = 52


def _tag_matches(value, tag: str) -> bool:
    try:
        return bool(value == tag)
    except Exception:
        # The per-node parse would raise here, which rejects the node
        # and every neighbor reading it — same as a failed parse.
        return False


def _port_states(ctx: BatchContext):
    """``(state_none, port)`` for pointer-style states (port = -1 invalid)."""
    degrees = ctx.csr.degrees()
    state_none = np.zeros(ctx.n, dtype=bool)
    port = np.full(ctx.n, -1, dtype=np.int64)
    for v, state in enumerate(ctx.states):
        if state is None:
            state_none[v] = True
        elif isinstance(state, int) and 0 <= state < int(degrees[v]):
            port[v] = int(state)
    return state_none, port


def _parent_entry(ctx: BatchContext, port: np.ndarray) -> np.ndarray:
    """Per-node index of the half-edge behind each node's parent port.

    Only meaningful where ``port >= 0``; elsewhere the index is clamped
    to a safe dummy so gathers stay in bounds.
    """
    has_port = port >= 0
    if not ctx.csr.num_entries:
        return np.zeros(ctx.n, dtype=np.int64)
    return np.where(has_port, ctx.csr.indptr[:-1] + port, 0)


# ---------------------------------------------------------------------------
# Spanning tree (pointer encoding).
# ---------------------------------------------------------------------------


@batch_decider(
    ("repro.schemes.spanning_tree", "SpanningTreePointerScheme"),
)
def _spanning_tree_ptr(scheme, ctx: BatchContext) -> np.ndarray:
    n, code = ctx.n, ctx.code
    shape = np.zeros(n, dtype=bool)
    dist_ok = np.zeros(n, dtype=bool)
    dist = np.zeros(n, dtype=np.int64)
    root_code = np.full(n, -1, dtype=np.int64)
    c1_code = np.full(n, -1, dtype=np.int64)
    dm1_code = np.full(n, -1, dtype=np.int64)
    for v, cert in enumerate(ctx.certs):
        if isinstance(cert, tuple) and len(cert) == 2:
            shape[v] = True
            root_code[v] = code(cert[0])
            d = cert[1]
            c1_code[v] = code(d)
            if isinstance(d, int) and d >= 0:
                dist_ok[v] = True
                dist[v] = ctx.int_value(int(d))
                dm1_code[v] = code(d - 1)
    state_none, port = _port_states(ctx)

    own, nbr = ctx.csr.owners, ctx.csr.indices
    bad_nb = ~shape[nbr] | (root_code[nbr] != root_code[own])
    ok = shape & dist_ok & ~ctx.any_per_entry(bad_nb)

    uid_code = ctx.uid_codes
    root_accept = (dist == 0) & (uid_code == root_code)
    has_port = port >= 0
    if ctx.csr.num_entries:
        parent = nbr[_parent_entry(ctx, port)]
        parent_ok = shape[parent] & (c1_code[parent] == dm1_code)
    else:
        parent_ok = np.zeros(n, dtype=bool)
    nonroot_accept = has_port & (dist > 0) & parent_ok
    return ok & np.where(state_none, root_accept, nonroot_accept)


# ---------------------------------------------------------------------------
# BFS tree: the pointer scheme plus the 1-Lipschitz edge condition.
# ---------------------------------------------------------------------------


@batch_decider(("repro.schemes.bfs_tree", "BfsTreeScheme"))
def _bfs_tree(scheme, ctx: BatchContext) -> np.ndarray:
    n, code = ctx.n, ctx.code
    shape = np.zeros(n, dtype=bool)
    dist_ok = np.zeros(n, dtype=bool)
    dist = np.zeros(n, dtype=np.int64)
    root_code = np.full(n, -1, dtype=np.int64)
    c1_code = np.full(n, -1, dtype=np.int64)
    dm1_code = np.full(n, -1, dtype=np.int64)
    for v, cert in enumerate(ctx.certs):
        if isinstance(cert, tuple) and len(cert) == 2:
            shape[v] = True
            root_code[v] = code(cert[0])
            d = cert[1]
            c1_code[v] = code(d)
            if isinstance(d, int) and d >= 0:
                dist_ok[v] = True
                dist[v] = ctx.int_value(int(d))
                dm1_code[v] = code(d - 1)
    state_none, port = _port_states(ctx)

    own, nbr = ctx.csr.owners, ctx.csr.indices
    bad_nb = (
        ~shape[nbr]
        | (root_code[nbr] != root_code[own])
        | ~dist_ok[nbr]
        | (np.abs(dist[nbr] - dist[own]) > 1)
    )
    ok = shape & dist_ok & ~ctx.any_per_entry(bad_nb)

    uid_code = ctx.uid_codes
    root_accept = (dist == 0) & (uid_code == root_code)
    has_port = port >= 0
    if ctx.csr.num_entries:
        parent = nbr[_parent_entry(ctx, port)]
        parent_ok = shape[parent] & (c1_code[parent] == dm1_code)
    else:
        parent_ok = np.zeros(n, dtype=bool)
    nonroot_accept = has_port & (dist > 0) & parent_ok
    return ok & np.where(state_none, root_accept, nonroot_accept)


# ---------------------------------------------------------------------------
# Leader election: tree toward the unique marked node.
# ---------------------------------------------------------------------------


@batch_decider(("repro.schemes.leader", "LeaderScheme"))
def _leader(scheme, ctx: BatchContext) -> np.ndarray:
    n, code = ctx.n, ctx.code
    shape = np.zeros(n, dtype=bool)
    dist_ok = np.zeros(n, dtype=bool)
    dist = np.zeros(n, dtype=np.int64)
    leader_code = np.full(n, -1, dtype=np.int64)
    parent_code = np.full(n, -1, dtype=np.int64)
    c2_code = np.full(n, -1, dtype=np.int64)
    dm1_code = np.full(n, -1, dtype=np.int64)
    for v, cert in enumerate(ctx.certs):
        if isinstance(cert, tuple) and len(cert) == 3:
            shape[v] = True
            leader_code[v] = code(cert[0])
            parent_code[v] = code(cert[1])
            d = cert[2]
            c2_code[v] = code(d)
            if isinstance(d, int) and d >= 0:
                dist_ok[v] = True
                dist[v] = ctx.int_value(int(d))
                dm1_code[v] = code(d - 1)
    is_bool = np.zeros(n, dtype=bool)
    marked = np.zeros(n, dtype=bool)
    for v, state in enumerate(ctx.states):
        if isinstance(state, bool):
            is_bool[v] = True
            marked[v] = state

    own, nbr = ctx.csr.owners, ctx.csr.indices
    bad_nb = ~shape[nbr] | (leader_code[nbr] != leader_code[own])
    ok = shape & dist_ok & is_bool & ~ctx.any_per_entry(bad_nb)

    uid_code = ctx.uid_codes
    root_accept = (
        marked & (uid_code == leader_code) & (parent_code == uid_code)
    )
    # Distinct uids: at most one neighbor can match parent_uid, so
    # "the named parent exists and sits one closer" is one entry test.
    pmatch = (
        shape[nbr]
        & (uid_code[nbr] == parent_code[own])
        & (c2_code[nbr] == dm1_code[own])
    )
    nonroot_accept = ~marked & ctx.any_per_entry(pmatch)
    return ok & np.where(dist == 0, root_accept, nonroot_accept)


# ---------------------------------------------------------------------------
# Acyclic pointer forests: exact depth counters.
# ---------------------------------------------------------------------------


@batch_decider(("repro.schemes.acyclic", "AcyclicScheme"))
def _acyclic(scheme, ctx: BatchContext) -> np.ndarray:
    n, code = ctx.n, ctx.code
    counter_ok = np.zeros(n, dtype=bool)
    cert_code = np.full(n, -1, dtype=np.int64)
    cm1_code = np.full(n, -1, dtype=np.int64)
    for v, cert in enumerate(ctx.certs):
        cert_code[v] = code(cert)
        if isinstance(cert, int) and cert >= 0:
            counter_ok[v] = True
            cm1_code[v] = code(cert - 1)
    state_none, port = _port_states(ctx)
    has_port = port >= 0
    if ctx.csr.num_entries:
        parent = ctx.csr.indices[_parent_entry(ctx, port)]
        parent_ok = cert_code[parent] == cm1_code
    else:
        parent_ok = np.zeros(n, dtype=bool)
    return counter_ok & (state_none | (has_port & parent_ok))


# ---------------------------------------------------------------------------
# Marked-set predicates: independent set, dominating set, vertex cover.
# ---------------------------------------------------------------------------


def _marked_base(ctx: BatchContext):
    """``(base, marked, nb_cert_true)``: the shared marked-set checks.

    ``base`` is "state is a bool and certificate == state";
    ``nb_cert_true[j]`` is "the neighbor behind entry j certifies with
    the ``True`` object" — identity, as the verifiers test ``is True``.
    """
    n, code = ctx.n, ctx.code
    is_bool = np.zeros(n, dtype=bool)
    marked = np.zeros(n, dtype=bool)
    state_code = np.full(n, -1, dtype=np.int64)
    for v, state in enumerate(ctx.states):
        if isinstance(state, bool):
            is_bool[v] = True
            marked[v] = state
            state_code[v] = code(state)
    cert_code = np.fromiter(
        (code(cert) for cert in ctx.certs), dtype=np.int64, count=n
    )
    cert_is_true = np.fromiter(
        (cert is True for cert in ctx.certs), dtype=bool, count=n
    )
    base = is_bool & (cert_code == state_code)
    nb_cert_true = cert_is_true[ctx.csr.indices]
    return base, marked, nb_cert_true


@batch_decider(("repro.schemes.independent_set", "IndependentSetScheme"))
def _independent_set(scheme, ctx: BatchContext) -> np.ndarray:
    base, marked, nb_true = _marked_base(ctx)
    any_nb_true = ctx.any_per_entry(nb_true)
    if scheme.language.maximal:
        unmarked_accept = any_nb_true
    else:
        unmarked_accept = np.ones(ctx.n, dtype=bool)
    return base & np.where(marked, ~any_nb_true, unmarked_accept)


@batch_decider(("repro.schemes.dominating_set", "DominatingSetScheme"))
def _dominating_set(scheme, ctx: BatchContext) -> np.ndarray:
    base, marked, nb_true = _marked_base(ctx)
    return base & (marked | ctx.any_per_entry(nb_true))


@batch_decider(("repro.schemes.vertex_cover", "VertexCoverScheme"))
def _vertex_cover(scheme, ctx: BatchContext) -> np.ndarray:
    base, marked, nb_true = _marked_base(ctx)
    return base & (marked | ctx.all_per_entry(nb_true))


# ---------------------------------------------------------------------------
# Agreement: one common value.
# ---------------------------------------------------------------------------


@batch_decider(("repro.schemes.agreement", "AgreementScheme"))
def _agreement(scheme, ctx: BatchContext) -> np.ndarray:
    n, code = ctx.n, ctx.code
    cert_code = np.fromiter(
        (code(cert) for cert in ctx.certs), dtype=np.int64, count=n
    )
    state_code = np.fromiter(
        (code(state) for state in ctx.states), dtype=np.int64, count=n
    )
    own, nbr = ctx.csr.owners, ctx.csr.indices
    disagree = cert_code[nbr] != cert_code[own]
    return (cert_code == state_code) & ~ctx.any_per_entry(disagree)


# ---------------------------------------------------------------------------
# Spanning tree (list encoding), both visibilities, incl. the FF17 repair.
# ---------------------------------------------------------------------------


@batch_decider(
    ("repro.schemes.spanning_tree", "SpanningTreeListScheme"),
    ("repro.errorsensitive.repair", "ErrorSensitiveSpanningTreeScheme"),
)
def _spanning_tree_list(scheme, ctx: BatchContext) -> np.ndarray:
    full = scheme.visibility is Visibility.FULL
    n, code, csr = ctx.n, ctx.code, ctx.csr
    indptr, own, nbr = csr.indptr, csr.owners, csr.indices
    degrees = csr.degrees()
    entries = csr.num_entries

    shape = np.zeros(n, dtype=bool)
    dist_ok = np.zeros(n, dtype=bool)
    dist = np.zeros(n, dtype=np.int64)
    root_code = np.full(n, -1, dtype=np.int64)
    parent_code = np.full(n, -1, dtype=np.int64)
    c2_code = np.full(n, -1, dtype=np.int64)
    dm1_code = np.full(n, -1, dtype=np.int64)
    dp1_code = np.full(n, -1, dtype=np.int64)
    for v, cert in enumerate(ctx.certs):
        if isinstance(cert, tuple) and len(cert) == 4:
            shape[v] = True
            root_code[v] = code(cert[0])
            parent_code[v] = code(cert[1])
            d = cert[2]
            c2_code[v] = code(d)
            if isinstance(d, int) and d >= 0:
                dist_ok[v] = True
                dist[v] = ctx.int_value(int(d))
                dm1_code[v] = code(d - 1)
                dp1_code[v] = code(d + 1)

    # States: `listed` marks the ports a *validly* listing node names;
    # `contains` (FULL only) marks raw membership — a neighbor's
    # back_port can sit in an otherwise invalid frozenset, and the
    # per-node `back_port in state` test does not care about validity.
    state_fs = np.zeros(n, dtype=bool)
    state_valid = np.zeros(n, dtype=bool)
    listed = np.zeros(entries, dtype=bool)
    contains = np.zeros(entries, dtype=bool) if full else None
    for v, state in enumerate(ctx.states):
        if not isinstance(state, frozenset):
            continue
        state_fs[v] = True
        degree = int(degrees[v])
        base = int(indptr[v])
        valid = True
        for element in state:
            if isinstance(element, int):
                if 0 <= element < degree:
                    if full:
                        contains[base + int(element)] = True
                else:
                    valid = False
            else:
                valid = False
                if full:
                    if isinstance(element, float):
                        if element.is_integer() and 0 <= element < degree:
                            contains[base + int(element)] = True
                    elif isinstance(
                        element,
                        (str, bytes, tuple, frozenset, type(None)),
                    ):
                        pass  # can never == an int back_port
                    else:
                        raise BatchFallback(
                            f"opaque port listing element {element!r}"
                        )
        if valid:
            state_valid[v] = True
            for element in state:
                listed[base + int(element)] = True

    uid_code = ctx.uid_codes

    # Echo truthfulness (KKP): frozenset(echo) == the listed uids.
    echo_ok = np.ones(n, dtype=bool)
    if not full:
        echo_ok = np.zeros(n, dtype=bool)
        for v in np.flatnonzero(shape & state_valid):
            echo = ctx.certs[v][3]
            if echo is None:
                continue
            try:
                echo_set = frozenset(echo)
            except TypeError:
                continue  # per-node frozenset(echo) raises -> reject
            echo_codes = {code(e) for e in echo_set}
            base, end = int(indptr[v]), int(indptr[v + 1])
            listed_codes = {
                int(uid_code[nbr[j]])
                for j in range(base, end)
                if listed[j]
            }
            echo_ok[v] = echo_codes == listed_codes

    # Mutual listing per listed entry.
    lists_me = np.zeros(entries, dtype=bool)
    if full:
        if entries:
            lists_me = state_fs[nbr] & contains[csr.reverse]
    else:
        echo_sets: list[set[int] | None] = [None] * n
        for v in np.flatnonzero(shape):
            echo = ctx.certs[v][3]
            if isinstance(echo, tuple):
                echo_sets[v] = {code(e) for e in echo}
        for j in np.flatnonzero(listed):
            neighbor_echo = echo_sets[nbr[j]]
            lists_me[j] = (
                neighbor_echo is not None
                and int(uid_code[own[j]]) in neighbor_echo
            )

    bad_nb = ~shape[nbr] | (root_code[nbr] != root_code[own])
    ok = (
        shape
        & dist_ok
        & state_valid
        & echo_ok
        & ~ctx.any_per_entry(bad_nb)
        & ~ctx.any_per_entry(listed & ~lists_me)
    )

    # Tree shape: the root anchors, everyone else names a listed parent
    # one closer; every listed edge is a parent/child tree edge.
    root_accept = (uid_code == root_code) & (parent_code == uid_code)
    pmatch = (
        listed
        & (uid_code[nbr] == parent_code[own])
        & (c2_code[nbr] == dm1_code[own])
    )
    nonroot_accept = ctx.any_per_entry(pmatch)
    is_parent = (dist[own] > 0) & (uid_code[nbr] == parent_code[own])
    is_child = (parent_code[nbr] == uid_code[own]) & (
        c2_code[nbr] == dp1_code[own]
    )
    ok &= ~ctx.any_per_entry(listed & ~(is_parent | is_child))
    return ok & np.where(dist == 0, root_accept, nonroot_accept)


# ---------------------------------------------------------------------------
# Rounded-counter approx schemes.
# ---------------------------------------------------------------------------


def _counter_value_checked(counter) -> int:
    mantissa, exponent = counter
    if mantissa.bit_length() + exponent > _COUNTER_BITS:
        raise BatchFallback(f"counter decodes past 2^{_COUNTER_BITS}")
    return mantissa << exponent


@batch_decider(("repro.approx.dominating_set", "ApproxDominatingSetScheme"))
def _approx_dominating_set(scheme, ctx: BatchContext) -> np.ndarray:
    lang = scheme.gap_language
    threshold = lang.alpha * lang.budget
    n, code = ctx.n, ctx.code
    parsed = np.zeros(n, dtype=bool)
    bit = np.zeros(n, dtype=bool)
    root_code = np.full(n, -1, dtype=np.int64)
    parent_code = np.full(n, -1, dtype=np.int64)
    parent_none = np.zeros(n, dtype=bool)
    dist = np.zeros(n, dtype=np.int64)
    cval = np.zeros(n, dtype=np.int64)
    total_decoded = 0
    for v, cert in enumerate(ctx.certs):
        if not (
            isinstance(cert, tuple)
            and len(cert) == 6
            and _tag_matches(cert[0], "apx-ds")
            and isinstance(cert[1], bool)
            and isinstance(cert[3], int)
            and cert[3] >= 0
            and is_counter(cert[5])
        ):
            continue
        parsed[v] = True
        bit[v] = cert[1]
        root_code[v] = code(cert[2])
        dist[v] = ctx.int_value(int(cert[3]))
        parent_code[v] = code(cert[4])
        parent_none[v] = cert[4] is None
        value = _counter_value_checked(cert[5])
        cval[v] = value
        total_decoded += value
    if total_decoded + n >= 1 << 62:
        raise BatchFallback("counter totals would overflow int64")
    is_bool = np.zeros(n, dtype=bool)
    state_bit = np.zeros(n, dtype=bool)
    for v, state in enumerate(ctx.states):
        if isinstance(state, bool):
            is_bool[v] = True
            state_bit[v] = state

    own, nbr = ctx.csr.owners, ctx.csr.indices
    bad_nb = ~parsed[nbr] | (root_code[nbr] != root_code[own])
    ok = (
        parsed
        & is_bool
        & (bit == state_bit)
        & ~ctx.any_per_entry(bad_nb)
    )
    # Domination from truthful echoes.
    ok &= bit | ctx.any_per_entry(bit[nbr])
    # Spanning-tree layer.
    uid_code = ctx.uid_codes
    root_accept = (uid_code == root_code) & parent_none
    pmatch = (uid_code[nbr] == parent_code[own]) & (dist[nbr] == dist[own] - 1)
    ok &= np.where(dist == 0, root_accept, ctx.any_per_entry(pmatch))
    # Counter layer: children = neighbors whose parent pointer names me.
    totals = np.zeros(n, dtype=np.int64)
    child = np.flatnonzero(parent_code[nbr] == uid_code[own])
    np.add.at(totals, own[child], cval[nbr[child]])
    need = totals + np.where(bit, 1, 0)
    ok &= cval >= need
    # The root compares against the α-relaxed budget.
    ok &= ~((dist == 0) & (cval.astype(np.float64) > threshold))
    return ok


@batch_decider(("repro.approx.mst_weight", "ApproxTreeWeightScheme"))
def _approx_tree_weight(scheme, ctx: BatchContext) -> np.ndarray:
    lang = scheme.gap_language
    threshold = lang.alpha * lang.budget
    n, code = ctx.n, ctx.code
    parsed = np.zeros(n, dtype=bool)
    root_code = np.full(n, -1, dtype=np.int64)
    echo_code = np.full(n, -1, dtype=np.int64)
    echo_none = np.zeros(n, dtype=bool)
    dist = np.zeros(n, dtype=np.int64)
    cval = np.zeros(n, dtype=np.int64)
    for v, cert in enumerate(ctx.certs):
        if not (
            isinstance(cert, tuple)
            and len(cert) == 5
            and _tag_matches(cert[0], "apx-tw")
            and isinstance(cert[2], int)
            and cert[2] >= 0
            and is_counter(cert[4])
        ):
            continue
        parsed[v] = True
        root_code[v] = code(cert[1])
        dist[v] = ctx.int_value(int(cert[2]))
        echo_code[v] = code(cert[3])
        echo_none[v] = cert[3] is None
        cval[v] = _counter_value_checked(cert[4])
    state_none, port = _port_states(ctx)

    own, nbr = ctx.csr.owners, ctx.csr.indices
    bad_nb = ~parsed[nbr] | (root_code[nbr] != root_code[own])
    if ctx.csr.weights is None and ctx.csr.num_entries:
        # A weight bound needs a weighted network: every neighbor check
        # fails, so only isolated nodes can still accept.
        bad_nb |= True
    ok = parsed & ~ctx.any_per_entry(bad_nb)

    uid_code = ctx.uid_codes
    root_accept = echo_none & (dist == 0) & (uid_code == root_code)
    has_port = port >= 0
    if ctx.csr.num_entries:
        parent = nbr[_parent_entry(ctx, port)]
        pointer_ok = (echo_code == uid_code[parent]) & (
            dist[parent] == dist - 1
        )
    else:
        pointer_ok = np.zeros(n, dtype=bool)
    nonroot_accept = has_port & (dist != 0) & pointer_ok

    # Counter layer: float accumulation in port order, exactly like the
    # per-node loop (np.add.at applies updates in index order).
    cval_f = cval.astype(np.float64)
    totals = np.zeros(n, dtype=np.float64)
    if ctx.csr.weights is not None and ctx.csr.num_entries:
        child = np.flatnonzero(echo_code[nbr] == uid_code[own])
        np.add.at(totals, own[child], cval_f[nbr[child]] + ctx.csr.weights[child])
    ok &= cval_f >= totals
    ok &= ~((dist == 0) & (cval_f > threshold))
    return ok & np.where(state_none, root_accept, nonroot_accept)


# ---------------------------------------------------------------------------
# Bipartiteness: one-bit side certificates.
# ---------------------------------------------------------------------------


@batch_decider(("repro.schemes.bipartite", "BipartiteScheme"))
def _bipartite(scheme, ctx: BatchContext) -> np.ndarray:
    n, code = ctx.n, ctx.code
    state_none = np.fromiter(
        (s is None for s in ctx.states), dtype=bool, count=n
    )
    # ``certificate not in (0, 1)`` and ``== 1 - certificate`` are both
    # ``==`` comparisons, so 0/0.0/False (and 1/1.0/True) must unify —
    # exactly what the interned codes give.
    c0, c1 = code(0), code(1)
    cert_code = np.fromiter((code(c) for c in ctx.certs), np.int64, count=n)
    side0 = cert_code == c0
    side1 = cert_code == c1
    own, nbr = ctx.csr.owners, ctx.csr.indices
    bad_nb = np.where(side0[own], cert_code[nbr] != c1, cert_code[nbr] != c0)
    return state_none & (side0 | side1) & ~ctx.any_per_entry(bad_nb)


# ---------------------------------------------------------------------------
# Proper coloring: the KKP echo scheme and the FULL-visibility scheme.
# ---------------------------------------------------------------------------


def _valid_colors(ctx: BatchContext, colors: int) -> np.ndarray:
    """Nodes whose state passes ``isinstance(int) and 0 <= s < colors``.

    ``isinstance`` admits bools (``True`` is a valid color below
    ``colors``), mirroring the per-node clause exactly.
    """
    valid = np.zeros(ctx.n, dtype=bool)
    for v, state in enumerate(ctx.states):
        if isinstance(state, int) and 0 <= state < colors:
            valid[v] = True
    return valid


@batch_decider(("repro.schemes.coloring", "ColoringEchoScheme"))
def _coloring_echo(scheme, ctx: BatchContext) -> np.ndarray:
    n, code = ctx.n, ctx.code
    valid = _valid_colors(ctx, scheme.language.colors)
    # Valid states are ints, so they always intern; -1 (below every
    # code) marks invalid states, whose nodes are already rejected.
    state_code = np.full(n, -1, dtype=np.int64)
    for v in np.flatnonzero(valid):
        state_code[v] = code(ctx.states[v])
    cert_code = np.fromiter((code(c) for c in ctx.certs), np.int64, count=n)
    echo = valid & (cert_code == state_code)
    own, nbr = ctx.csr.owners, ctx.csr.indices
    bad_nb = cert_code[nbr] == cert_code[own]
    return echo & ~ctx.any_per_entry(bad_nb)


@batch_decider(("repro.schemes.coloring", "ColoringFullScheme"))
def _coloring_full(scheme, ctx: BatchContext) -> np.ndarray:
    n, code = ctx.n, ctx.code
    valid = _valid_colors(ctx, scheme.language.colors)
    # ``g.state != view.state`` compares arbitrary neighbor states
    # against mine with ``==``, so *every* state must intern faithfully
    # (a neighbor state of 2.0 clashes with my color 2); unrepresentable
    # states fall back to the oracle via the raised BatchFallback.
    state_code = np.fromiter((code(s) for s in ctx.states), np.int64, count=n)
    own, nbr = ctx.csr.owners, ctx.csr.indices
    bad_nb = state_code[nbr] == state_code[own]
    return valid & ~ctx.any_per_entry(bad_nb)
