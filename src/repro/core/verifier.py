"""The one-round verification engine.

This module materialises what a node *sees* during the verification round
and executes a scheme's verifier at every node.

Visibility models
-----------------
The paper's verifier at node ``v`` sees: ``v``'s identity, input state
and certificate, and the **certificates** of its neighbors (exchanged in
the single communication round), plus ground truth that the network
itself provides — neighbor identities and incident edge weights.  It does
*not* see neighbor input states; a scheme that needs them must echo them
in certificates (and pay for it in proof size).  That is
:attr:`Visibility.KKP`.  The relaxed :attr:`Visibility.FULL` model also
reveals neighbor states; some schemes are cheaper there, and the
framework supports both so the experiments can compare.

Verification radius
-------------------
Radius 1 is the paper's model.  The engine also supports radius ``t > 1``
(the natural extension studied in follow-up work): the view then carries
the whole distance-``t`` ball — induced edges, identities, certificates,
and states when visibility is FULL.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.labeling import Configuration
from repro.errors import SchemeError
from repro.graphs.graph import Graph

__all__ = [
    "BallView",
    "LocalView",
    "NeighborGlimpse",
    "Verdict",
    "Visibility",
    "build_view",
    "build_views",
    "decide",
]


class Visibility(enum.Enum):
    """What the verification round reveals about neighbors."""

    #: Neighbor certificates only (the paper's model).
    KKP = "kkp"
    #: Neighbor certificates and input states.
    FULL = "full"


@dataclass(frozen=True)
class NeighborGlimpse:
    """What a node learns about one neighbor during verification.

    ``state`` is ``None`` under :attr:`Visibility.KKP` (and
    indistinguishable from a true ``None`` state — schemes needing states
    under KKP must echo them in certificates instead).  ``weight`` is the
    ground-truth weight of the connecting edge, or ``None`` on unweighted
    graphs.  ``back_port`` is the port through which the *neighbor* sees
    this edge: the neighbor reports it during the round, and the report
    is network ground truth (not prover-supplied), so verifiers may rely
    on it — it is what lets a node interpret port-valued neighbor states
    under FULL visibility.
    """

    port: int
    uid: int
    certificate: Any
    state: Any = None
    weight: float | None = None
    back_port: int = 0


@dataclass(frozen=True)
class BallView:
    """Distance-``t`` ball for radius > 1 verification.

    ``members`` maps uid to ``(distance, certificate, state_or_None)``;
    ``edges`` lists uid pairs of induced edges with their weight (or
    ``None``); ``ports`` maps each member's uid to the uids of *all* its
    neighbors in port order — the ground truth needed to interpret
    port-valued states of ball members (e.g. to follow pointer chains).
    """

    radius: int
    members: dict[int, tuple[int, Any, Any]]
    edges: tuple[tuple[int, int, float | None], ...]
    ports: dict[int, tuple[int, ...]] = field(default_factory=dict)


@dataclass(frozen=True)
class LocalView:
    """Everything a node's verifier may base its output on."""

    uid: int
    degree: int
    state: Any
    certificate: Any
    neighbors: tuple[NeighborGlimpse, ...]
    ball: BallView | None = None

    def neighbor_at(self, port: int) -> NeighborGlimpse:
        if not 0 <= port < len(self.neighbors):
            raise SchemeError(f"no port {port} in view of uid {self.uid}")
        return self.neighbors[port]

    def neighbor_by_uid(self, uid: int) -> NeighborGlimpse | None:
        for glimpse in self.neighbors:
            if glimpse.uid == uid:
                return glimpse
        return None

    def neighbor_uids(self) -> frozenset[int]:
        return frozenset(g.uid for g in self.neighbors)


@dataclass(frozen=True)
class Verdict:
    """Outcome of running the verifier at every node."""

    accepts: frozenset[int]
    rejects: frozenset[int]

    @property
    def all_accept(self) -> bool:
        return not self.rejects

    @property
    def reject_count(self) -> int:
        return len(self.rejects)

    def __repr__(self) -> str:
        return f"Verdict(accept={len(self.accepts)}, reject={len(self.rejects)})"


def _ball_nodes(graph: Graph, center: int, radius: int) -> dict[int, int]:
    """Nodes within ``radius`` of ``center`` with their distances."""
    frontier = {center}
    dist = {center: 0}
    for d in range(1, radius + 1):
        nxt: set[int] = set()
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in dist:
                    dist[v] = d
                    nxt.add(v)
        frontier = nxt
    return dist


def build_view(
    config: Configuration,
    certificates: Mapping[int, Any],
    node: int,
    visibility: Visibility = Visibility.KKP,
    radius: int = 1,
) -> LocalView:
    """Construct the verification-round view of a single node."""
    graph = config.graph
    weighted = graph.is_weighted
    glimpses = []
    for port, nb in enumerate(graph.neighbors(node)):
        glimpses.append(
            NeighborGlimpse(
                port=port,
                uid=config.uid(nb),
                certificate=certificates.get(nb),
                state=config.state(nb) if visibility is Visibility.FULL else None,
                weight=graph.weight(node, nb) if weighted else None,
                back_port=graph.port(nb, node),
            )
        )
    ball = None
    if radius > 1:
        dist = _ball_nodes(graph, node, radius)
        members = {
            config.uid(v): (
                d,
                certificates.get(v),
                config.state(v) if visibility is Visibility.FULL else None,
            )
            for v, d in dist.items()
        }
        edges = tuple(
            (config.uid(u), config.uid(v), graph.weight(u, v) if weighted else None)
            for u, v in graph.edges()
            if u in dist and v in dist
        )
        ports = {
            config.uid(v): tuple(config.uid(nb) for nb in graph.neighbors(v))
            for v in dist
        }
        ball = BallView(radius=radius, members=members, edges=edges, ports=ports)
    return LocalView(
        uid=config.uid(node),
        degree=graph.degree(node),
        state=config.state(node),
        certificate=certificates.get(node),
        neighbors=tuple(glimpses),
        ball=ball,
    )


def build_views(
    config: Configuration,
    certificates: Mapping[int, Any],
    visibility: Visibility = Visibility.KKP,
    radius: int = 1,
) -> dict[int, LocalView]:
    """Views for every node (keys are node indices)."""
    return {
        v: build_view(config, certificates, v, visibility, radius)
        for v in config.graph.nodes
    }


def decide(
    verify,
    config: Configuration,
    certificates: Mapping[int, Any],
    visibility: Visibility = Visibility.KKP,
    radius: int = 1,
) -> Verdict:
    """Run ``verify(view) -> bool`` at every node and fold the verdict.

    A verifier that raises is treated as rejecting at that node — a
    malformed certificate must never crash verification into acceptance.
    """
    accepts: set[int] = set()
    rejects: set[int] = set()
    for node, view in build_views(config, certificates, visibility, radius).items():
        try:
            ok = bool(verify(view))
        except Exception:
            ok = False
        (accepts if ok else rejects).add(node)
    return Verdict(accepts=frozenset(accepts), rejects=frozenset(rejects))
