"""The one-round verification engine.

This module materialises what a node *sees* during the verification round
and executes a scheme's verifier at every node.

Visibility models
-----------------
The paper's verifier at node ``v`` sees: ``v``'s identity, input state
and certificate, and the **certificates** of its neighbors (exchanged in
the single communication round), plus ground truth that the network
itself provides — neighbor identities and incident edge weights.  It does
*not* see neighbor input states; a scheme that needs them must echo them
in certificates (and pay for it in proof size).  That is
:attr:`Visibility.KKP`.  The relaxed :attr:`Visibility.FULL` model also
reveals neighbor states; some schemes are cheaper there, and the
framework supports both so the experiments can compare.

Verification radius
-------------------
Radius 1 is the paper's model.  The engine also supports radius ``t > 1``
(the natural extension studied in follow-up work): the view then carries
the whole distance-``t`` ball — induced edges, identities, certificates,
and states when visibility is FULL.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.core.labeling import Configuration
from repro.errors import SchemeError
from repro.graphs.graph import Graph
from repro.obs import metrics as _metrics

__all__ = [
    "BallView",
    "LocalView",
    "NeighborGlimpse",
    "Verdict",
    "ViewSet",
    "Visibility",
    "affected_nodes",
    "build_view",
    "build_views",
    "decide",
    "record_view_build",
    "refresh_views",
    "view_build_count",
]


class Visibility(enum.Enum):
    """What the verification round reveals about neighbors."""

    #: Neighbor certificates only (the paper's model).
    KKP = "kkp"
    #: Neighbor certificates and input states.
    FULL = "full"


@dataclass(frozen=True)
class NeighborGlimpse:
    """What a node learns about one neighbor during verification.

    ``state`` is ``None`` under :attr:`Visibility.KKP` (and
    indistinguishable from a true ``None`` state — schemes needing states
    under KKP must echo them in certificates instead).  ``weight`` is the
    ground-truth weight of the connecting edge, or ``None`` on unweighted
    graphs.  ``back_port`` is the port through which the *neighbor* sees
    this edge: the neighbor reports it during the round, and the report
    is network ground truth (not prover-supplied), so verifiers may rely
    on it — it is what lets a node interpret port-valued neighbor states
    under FULL visibility.
    """

    port: int
    uid: int
    certificate: Any
    state: Any = None
    weight: float | None = None
    back_port: int = 0


@dataclass(frozen=True)
class BallView:
    """Distance-``t`` ball for radius > 1 verification.

    ``members`` maps uid to ``(distance, certificate, state_or_None)``;
    ``edges`` lists uid pairs of induced edges with their weight (or
    ``None``); ``ports`` maps each member's uid to the uids of *all* its
    neighbors in port order — the ground truth needed to interpret
    port-valued states of ball members (e.g. to follow pointer chains).
    """

    radius: int
    members: dict[int, tuple[int, Any, Any]]
    edges: tuple[tuple[int, int, float | None], ...]
    ports: dict[int, tuple[int, ...]] = field(default_factory=dict)


@dataclass(frozen=True)
class LocalView:
    """Everything a node's verifier may base its output on."""

    uid: int
    degree: int
    state: Any
    certificate: Any
    neighbors: tuple[NeighborGlimpse, ...]
    ball: BallView | None = None

    def neighbor_at(self, port: int) -> NeighborGlimpse:
        if not 0 <= port < len(self.neighbors):
            raise SchemeError(f"no port {port} in view of uid {self.uid}")
        return self.neighbors[port]

    def neighbor_by_uid(self, uid: int) -> NeighborGlimpse | None:
        # Hot path for pointer-chasing verifiers: a lazily built
        # uid -> glimpse map replaces the linear scan.  First-wins on
        # duplicate uids, matching the original scan order.
        index = self.__dict__.get("_uid_index")
        if index is None:
            index = {}
            for glimpse in self.neighbors:
                index.setdefault(glimpse.uid, glimpse)
            object.__setattr__(self, "_uid_index", index)
        return index.get(uid)

    def neighbor_uids(self) -> frozenset[int]:
        return frozenset(g.uid for g in self.neighbors)


@dataclass(frozen=True)
class Verdict:
    """Outcome of running the verifier at every node."""

    accepts: frozenset[int]
    rejects: frozenset[int]

    @property
    def all_accept(self) -> bool:
        return not self.rejects

    @property
    def reject_count(self) -> int:
        return len(self.rejects)

    def __repr__(self) -> str:
        return f"Verdict(accept={len(self.accepts)}, reject={len(self.rejects)})"


# LocalView constructions are the unit the incremental engine is judged
# by.  They are charged to :mod:`repro.obs` — the always-on root
# collector keeps the process-lifetime total (read it via
# :func:`view_build_count` before and after an operation to count the
# views it built), and any open ``obs.collect()`` scope sees the same
# increments as its own delta.  The benchmark suite uses the deltas to
# certify that incremental sweeps rebuild O(ball(k)) views, not O(n).


def view_build_count() -> int:
    """Monotone counter of :class:`LocalView` constructions.

    Bit-identical wrapper over the :mod:`repro.obs` root collector's
    ``views.built`` counter (the pre-observability process global).
    """
    return _metrics.view_build_total()


def record_view_build(count: int = 1) -> None:
    """Charge ``count`` view constructions to the cost ledger.

    The message-passing simulator assembles :class:`LocalView` objects
    itself (from real inboxes rather than through the scaffold), so it
    reports its constructions here — keeping ``view_build_count`` the
    single audited cost unit across the direct engine and the
    distributed one.
    """
    _metrics.record_view_builds(count)


class ViewSet(dict):
    """Views keyed by node, tagged with the parameters they were built under.

    A plain ``dict`` of views carries no record of the ``visibility`` and
    ``radius`` it was built with, so handing it back to
    :func:`decide`/:func:`refresh_views` under different parameters would
    silently produce wrong verdicts.  ``ViewSet`` (what
    :func:`build_views` and :func:`refresh_views` actually return) tags
    the dict; the consumers raise :class:`~repro.errors.SchemeError` on a
    mismatch.  Untagged mappings are still accepted unchecked, for
    callers that assemble views by hand.
    """

    __slots__ = ("visibility", "radius")

    def __init__(
        self,
        views: Mapping[int, "LocalView"],
        visibility: Visibility,
        radius: int,
    ) -> None:
        super().__init__(views)
        self.visibility = visibility
        self.radius = radius


def _check_view_tags(
    views: Mapping[int, "LocalView"], visibility: Visibility, radius: int
) -> None:
    """Reject reuse of views built under different parameters."""
    if isinstance(views, ViewSet) and (
        views.visibility is not visibility or views.radius != radius
    ):
        raise SchemeError(
            f"views built under visibility={views.visibility.value} "
            f"radius={views.radius} reused under "
            f"visibility={visibility.value} radius={radius}"
        )


def _ball_nodes(graph: Graph, center: int, radius: int) -> dict[int, int]:
    """Nodes within ``radius`` of ``center`` with their distances."""
    frontier = {center}
    dist = {center: 0}
    for d in range(1, radius + 1):
        nxt: set[int] = set()
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in dist:
                    dist[v] = d
                    nxt.add(v)
        frontier = nxt
    return dist


class _Scaffold:
    """Per-(graph, ids) data shared by every node's view construction.

    Hoists everything a view needs that does not depend on the focal
    node — uid table, port lists in uid space, the weighted flag — so
    building all ``n`` views touches each edge a constant number of
    times instead of re-enumerating ``graph.edges()`` per node
    (previously O(n·m) for ``radius > 1``).

    The scaffold is deliberately *labeling-independent*: it captures only
    the graph and the identifier assignment, and takes the configuration
    (for states) as an argument to :meth:`view`.  That is what lets
    :meth:`Configuration.with_labeling` propagate a cached scaffold to
    derived configurations, keeping incremental re-verification loops
    (the soundness adversaries, ``selfstab`` detection sessions) free of
    per-round O(n) setup.
    """

    __slots__ = ("graph", "weighted", "uid", "uid_ports")

    def __init__(self, config: Configuration) -> None:
        self.graph = config.graph
        self.weighted = self.graph.is_weighted
        self.uid = [config.uid(v) for v in self.graph.nodes]
        self.uid_ports: dict[int, tuple[int, ...]] | None = None

    def ports_by_uid(self) -> dict[int, tuple[int, ...]]:
        """uid -> uids of all neighbors in port order (built once)."""
        if self.uid_ports is None:
            uid = self.uid
            self.uid_ports = {
                uid[v]: tuple(uid[nb] for nb in self.graph.neighbors(v))
                for v in self.graph.nodes
            }
        return self.uid_ports

    def view(
        self,
        config: Configuration,
        certificates: Mapping[int, Any],
        node: int,
        visibility: Visibility,
        radius: int,
    ) -> LocalView:
        _metrics.record_view_builds(1)
        graph, uid = self.graph, self.uid
        full = visibility is Visibility.FULL
        weighted = self.weighted
        glimpses = []
        for port, nb in enumerate(graph.neighbors(node)):
            glimpses.append(
                NeighborGlimpse(
                    port=port,
                    uid=uid[nb],
                    certificate=certificates.get(nb),
                    state=config.state(nb) if full else None,
                    weight=graph.weight(node, nb) if weighted else None,
                    back_port=graph.port(nb, node),
                )
            )
        ball = None
        if radius > 1:
            dist = _ball_nodes(graph, node, radius)
            members = {
                uid[v]: (
                    d,
                    certificates.get(v),
                    config.state(v) if full else None,
                )
                for v, d in dist.items()
            }
            # Induced edges via adjacency of ball members: O(ball volume)
            # instead of a scan over all m graph edges.
            edges = tuple(
                (uid[u], uid[v], graph.weight(u, v) if weighted else None)
                for u in dist
                for v in graph.neighbors(u)
                if u < v and v in dist
            )
            all_ports = self.ports_by_uid()
            ports = {uid[v]: all_ports[uid[v]] for v in dist}
            ball = BallView(radius=radius, members=members, edges=edges, ports=ports)
        return LocalView(
            uid=uid[node],
            degree=graph.degree(node),
            state=config.state(node),
            certificate=certificates.get(node),
            neighbors=tuple(glimpses),
            ball=ball,
        )


def _scaffold_for(config: Configuration) -> _Scaffold:
    """The configuration's view scaffold, built once and cached.

    Configurations are immutable, so the scaffold (uid table, port
    lists) is a pure function of the graph and ids; caching it on the
    instance keeps the adversaries' refresh-one-view loop free of
    repeated O(n) setup, and ``with_labeling`` shares it across derived
    configurations.
    """
    scaffold = config.__dict__.get("_view_scaffold")
    if scaffold is None:
        scaffold = _Scaffold(config)
        object.__setattr__(config, "_view_scaffold", scaffold)
    return scaffold


def build_view(
    config: Configuration,
    certificates: Mapping[int, Any],
    node: int,
    visibility: Visibility = Visibility.KKP,
    radius: int = 1,
) -> LocalView:
    """Construct the verification-round view of a single node."""
    return _scaffold_for(config).view(config, certificates, node, visibility, radius)


def build_views(
    config: Configuration,
    certificates: Mapping[int, Any],
    visibility: Visibility = Visibility.KKP,
    radius: int = 1,
) -> ViewSet:
    """Views for every node (keys are node indices), tagged with the
    visibility/radius they were built under."""
    scaffold = _scaffold_for(config)
    return ViewSet(
        {
            v: scaffold.view(config, certificates, v, visibility, radius)
            for v in config.graph.nodes
        },
        visibility,
        radius,
    )


def affected_nodes(graph: Graph, changed: Iterable[int], radius: int = 1) -> set[int]:
    """Nodes whose radius-``radius`` view can see any changed node.

    These are exactly the nodes within distance ``radius`` of a change —
    the set of views that must be rebuilt when only the certificates of
    ``changed`` differ.
    """
    affected: set[int] = set()
    for node in changed:
        affected.update(_ball_nodes(graph, node, radius))
    return affected


def refresh_views(
    config: Configuration,
    certificates: Mapping[int, Any],
    views: Mapping[int, LocalView],
    changed: Iterable[int],
    visibility: Visibility = Visibility.KKP,
    radius: int = 1,
) -> ViewSet:
    """Views under new certificates/states, rebuilding only what changed.

    ``views`` must be views of a configuration with the same graph and
    ids whose certificates *and states* differ from
    ``(config, certificates)`` only at ``changed`` nodes.  (Passing a
    sibling configuration — e.g. from
    :meth:`~repro.core.labeling.Configuration.with_labeling` — is how the
    ``selfstab`` detection sessions track register changes.)  Returns a
    fresh tagged :class:`ViewSet` (the input mapping is not mutated);
    untouched views are shared, which is what makes re-verification after
    a handful of edits cost O(ball(changed)) instead of O(n).

    Raises :class:`~repro.errors.SchemeError` if ``views`` is a tagged
    :class:`ViewSet` built under a different visibility or radius.
    """
    _check_view_tags(views, visibility, radius)
    updated = ViewSet(views, visibility, radius)
    scaffold = _scaffold_for(config)
    for node in affected_nodes(config.graph, changed, radius):
        updated[node] = scaffold.view(config, certificates, node, visibility, radius)
    return updated


def decide(
    verify,
    config: Configuration,
    certificates: Mapping[int, Any],
    visibility: Visibility = Visibility.KKP,
    radius: int = 1,
    views: Mapping[int, LocalView] | None = None,
    scheme=None,
) -> Verdict:
    """Run ``verify(view) -> bool`` at every node and fold the verdict.

    A verifier that raises is treated as rejecting at that node — a
    malformed certificate must never crash verification into acceptance.

    ``views`` is a fast path for callers that re-verify many closely
    related assignments (the soundness adversaries, the ``selfstab``
    detection sessions): prebuilt views — for instance from
    :func:`build_views` plus :func:`refresh_views` — are used as-is
    instead of being rebuilt from the certificates.  A tagged
    :class:`ViewSet` built under a different visibility or radius raises
    :class:`~repro.errors.SchemeError` instead of silently producing a
    wrong verdict; untagged mappings are trusted.

    ``scheme`` opts the call into the batched array path: when the
    scheme has a vectorized decider (see :mod:`repro.core.batch`) and no
    prebuilt views were handed in, the verdict comes from one numpy pass
    over the CSR mirror instead of n per-node calls.  The batched path
    is verdict-identical by contract (it falls back here on anything it
    cannot represent), so callers only ever see a speed difference.
    """
    if (
        views is None
        and scheme is not None
        and visibility is scheme.visibility
        and radius == scheme.radius
    ):
        from repro.core.batch import try_batch_verdict

        verdict = try_batch_verdict(scheme, config, certificates)
        if verdict is not None:
            return verdict
    if views is None:
        views = build_views(config, certificates, visibility, radius)
    else:
        _check_view_tags(views, visibility, radius)
    accepts: set[int] = set()
    rejects: set[int] = set()
    for node, view in views.items():
        try:
            ok = bool(verify(view))
        except Exception:
            ok = False
        (accepts if ok else rejects).add(node)
    _metrics.inc("decide.calls")
    if rejects:
        _metrics.inc("decide.rejections", len(rejects))
    return Verdict(accepts=frozenset(accepts), rejects=frozenset(rejects))
