"""The universal proof-labeling scheme.

The paper's existence result: *every* decidable, constructible
distributed language has a proof-labeling scheme — with certificates of
size ``O(n² + n·s)`` bits (``s`` the state size).  The prover gives every
node the same global map ``(uids, adjacency matrix, states[, weights])``;
each node checks that (a) it agrees with all neighbors on the map, (b)
the map is locally truthful — its own uid, state, incident edges and
weights appear correctly — and (c) the configuration the map describes is
in the language, decided locally by running the centralised membership
test.

On a connected graph, (a) forces one global map, (b) at every node forces
the map to equal the actual configuration, and then (c) decides
membership — which is the soundness argument.
"""

from __future__ import annotations

from typing import Any

from repro.core.labeling import Configuration, Labeling
from repro.core.language import DistributedLanguage
from repro.core.scheme import ProofLabelingScheme
from repro.core.verifier import LocalView
from repro.graphs.graph import Graph

__all__ = ["UniversalScheme"]

_MAGIC = "universal-map"


class UniversalScheme(ProofLabelingScheme):
    """Works for any language; certificates are the whole configuration."""

    name = "universal"
    size_bound = "O(n^2 + n*s)"

    def __init__(self, language: DistributedLanguage) -> None:
        super().__init__(language)
        self.name = f"universal[{language.name}]"

    # -- prover ---------------------------------------------------------------

    def prove(self, config: Configuration) -> dict[int, Any]:
        graph = config.graph
        order = sorted(graph.nodes, key=config.uid)
        index = {node: i for i, node in enumerate(order)}
        uids = tuple(config.uid(node) for node in order)
        rows = []
        for node in order:
            mask = 0
            for nb in graph.neighbors(node):
                mask |= 1 << index[nb]
            rows.append(mask)
        states = tuple(config.state(node) for node in order)
        weights: tuple[tuple[int, int, float], ...] | None = None
        if graph.is_weighted:
            weights = tuple(
                (index[u], index[v], graph.weight(u, v)) for u, v in graph.edges()
            )
        certificate = (_MAGIC, uids, tuple(rows), states, weights)
        return {node: certificate for node in graph.nodes}

    # -- verifier -------------------------------------------------------------

    def verify(self, view: LocalView) -> bool:
        cert = view.certificate
        if not self._well_formed(cert):
            return False
        _, uids, rows, states, weights = cert
        # (a) agreement with all neighbors on the global map.
        for glimpse in view.neighbors:
            if glimpse.certificate != cert:
                return False
        # (b) local truthfulness.
        if uids.count(view.uid) != 1:
            return False
        me = uids.index(view.uid)
        claimed_neighbors = {
            uids[j] for j in range(len(uids)) if rows[me] >> j & 1
        }
        if claimed_neighbors != view.neighbor_uids():
            return False
        if states[me] != view.state:
            return False
        if not self._weights_locally_truthful(view, uids, me, weights):
            return False
        # (c) the described configuration is in the language.
        described = self._decode(uids, rows, states, weights)
        if described is None:
            return False
        return self.language.is_member(described)

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _well_formed(cert: Any) -> bool:
        if not (isinstance(cert, tuple) and len(cert) == 5 and cert[0] == _MAGIC):
            return False
        _, uids, rows, states, weights = cert
        if not (
            isinstance(uids, tuple)
            and isinstance(rows, tuple)
            and isinstance(states, tuple)
        ):
            return False
        if not (len(uids) == len(rows) == len(states)):
            return False
        if len(set(uids)) != len(uids):
            return False
        if weights is not None and not isinstance(weights, tuple):
            return False
        return True

    @staticmethod
    def _weights_locally_truthful(
        view: LocalView,
        uids: tuple[int, ...],
        me: int,
        weights: tuple[tuple[int, int, float], ...] | None,
    ) -> bool:
        """Claimed weights of my incident edges match ground truth."""
        if weights is None:
            # Unweighted map: fine iff the actual graph is unweighted,
            # i.e. no glimpse carries a weight.
            return all(g.weight is None for g in view.neighbors)
        claimed: dict[int, float] = {}
        for i, j, w in weights:
            if i == me:
                claimed[j] = w
            elif j == me:
                claimed[i] = w
        for glimpse in view.neighbors:
            if glimpse.weight is None:
                return False
            other = uids.index(glimpse.uid) if glimpse.uid in uids else -1
            if other < 0 or claimed.get(other) != glimpse.weight:
                return False
        return True

    def _decode(
        self,
        uids: tuple[int, ...],
        rows: tuple[int, ...],
        states: tuple[Any, ...],
        weights: tuple[tuple[int, int, float], ...] | None,
    ) -> Configuration | None:
        n = len(uids)
        edges = []
        for i in range(n):
            for j in range(i + 1, n):
                bit_ij = rows[i] >> j & 1
                bit_ji = rows[j] >> i & 1
                if bit_ij != bit_ji:
                    return None  # asymmetric matrix: malformed map
                if bit_ij:
                    edges.append((i, j))
        weight_map = None
        if weights is not None:
            weight_map = {}
            for i, j, w in weights:
                if not (0 <= i < n and 0 <= j < n) or i == j:
                    return None
                key = (min(i, j), max(i, j))
                if key not in set(edges) or key in weight_map:
                    return None
                weight_map[key] = w
            if len(weight_map) != len(edges):
                return None
        try:
            graph = Graph(n, edges, weight_map)
            labeling = Labeling({i: states[i] for i in range(n)})
            ids = {i: uids[i] for i in range(n)}
            return Configuration(graph=graph, labeling=labeling, ids=ids)
        except Exception:
            return None
