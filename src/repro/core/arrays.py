"""Columnar register storage for the array-native verification core.

:class:`ArrayLabeling` keeps one numpy column per field instead of one
dict per node.  Columns pick the tightest faithful dtype per field —
``bool`` when every value is a bool, ``int64`` when every value is a
plain int that fits, ``object`` otherwise — and conversion back through
:meth:`to_labeling` restores the exact Python values (``tolist`` turns
numpy scalars back into ``bool``/``int``), so the dict path and the
array path always see the same states.

Unlike :class:`~repro.core.labeling.Labeling` (immutable, one value per
node) this store is *mutable by row*: detection sessions own one and
update only the registers inside a fault's ball, which is the
O(ball(k))-per-sweep contract of the incremental engine.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import numpy as np

from repro.core.labeling import Labeling
from repro.errors import SchemeError

__all__ = ["ArrayLabeling", "column_from_values"]


def column_from_values(values: Iterable[Any], n: int) -> np.ndarray:
    """The tightest faithful column for ``n`` Python values.

    ``bool`` and ``int64`` columns are used only when round-tripping
    through ``tolist()`` reproduces the original objects exactly (same
    type, same value); everything else — ``None``, tuples, frozensets,
    ints beyond 64 bits, mixed rows — lands in an ``object`` column,
    which stores the references untouched.
    """
    items = list(values)
    if len(items) != n:
        raise SchemeError(f"expected {n} values, got {len(items)}")
    if items and all(type(v) is bool for v in items):
        return np.array(items, dtype=bool)
    if items and all(
        type(v) is int and v.bit_length() < 63 for v in items
    ):
        return np.array(items, dtype=np.int64)
    column = np.empty(n, dtype=object)
    for i, v in enumerate(items):
        column[i] = v
    return column


class ArrayLabeling:
    """Per-field numpy columns over nodes ``0..n-1``."""

    __slots__ = ("_n", "_columns")

    def __init__(self, n: int, columns: Mapping[str, np.ndarray]) -> None:
        self._n = n
        for name, column in columns.items():
            if column.shape != (n,):
                raise SchemeError(
                    f"column {name!r} has shape {column.shape}, expected ({n},)"
                )
        self._columns = dict(columns)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_labeling(
        cls, labeling: Mapping[int, Any], n: int, field: str = "state"
    ) -> "ArrayLabeling":
        """One column holding ``labeling[v]`` for every node ``v``."""
        missing = [v for v in range(n) if v not in labeling]
        if missing:
            raise SchemeError(f"labeling misses nodes {missing[:5]}")
        column = column_from_values((labeling[v] for v in range(n)), n)
        return cls(n, {field: column})

    @classmethod
    def from_column(
        cls, column: np.ndarray, field: str = "state"
    ) -> "ArrayLabeling":
        """Wrap an already-built column — the bulk constructor the
        vectorized marker kernels emit into (no per-node conversion)."""
        return cls(int(column.shape[0]), {field: column})

    @classmethod
    def from_fields(
        cls, n: int, fields: Mapping[str, Mapping[int, Any]]
    ) -> "ArrayLabeling":
        """One column per field, each covering every node."""
        columns = {}
        for name, mapping in fields.items():
            missing = [v for v in range(n) if v not in mapping]
            if missing:
                raise SchemeError(
                    f"field {name!r} misses nodes {missing[:5]}"
                )
            columns[name] = column_from_values(
                (mapping[v] for v in range(n)), n
            )
        return cls(n, columns)

    # -- queries ------------------------------------------------------------

    @property
    def n(self) -> int:
        return self._n

    @property
    def fields(self) -> tuple[str, ...]:
        return tuple(self._columns)

    def column(self, field: str) -> np.ndarray:
        try:
            return self._columns[field]
        except KeyError:
            raise SchemeError(
                f"no column {field!r}; have {sorted(self._columns)}"
            ) from None

    def value(self, field: str, node: int) -> Any:
        """The Python value at one cell (numpy scalars converted back)."""
        cell = self.column(field)[node]
        return cell.item() if isinstance(cell, np.generic) else cell

    def row(self, node: int) -> dict[str, Any]:
        return {name: self.value(name, node) for name in self._columns}

    # -- updates (the O(ball(k)) column-write path) -------------------------

    def set(self, field: str, node: int, value: Any) -> None:
        """Write one cell, widening the column to ``object`` on mismatch."""
        column = self.column(field)
        if column.dtype == object:
            column[node] = value
        elif column.dtype == bool and type(value) is bool:
            column[node] = value
        elif (
            column.dtype == np.int64
            and type(value) is int
            and value.bit_length() < 63
        ):
            column[node] = value
        else:
            widened = np.empty(self._n, dtype=object)
            widened[:] = column.tolist()
            widened[node] = value
            self._columns[field] = widened

    def update(self, field: str, values: Mapping[int, Any]) -> None:
        for node, value in values.items():
            self.set(field, node, value)

    # -- conversion back ----------------------------------------------------

    def to_dict(self, field: str) -> dict[int, Any]:
        """``{node: value}`` with exact Python scalars."""
        column = self.column(field)
        if column.dtype == object:
            return {v: column[v] for v in range(self._n)}
        return dict(enumerate(column.tolist()))

    def to_labeling(self, field: str = "state") -> Labeling:
        """The :class:`Labeling` this column denotes, value-for-value."""
        return Labeling(self.to_dict(field))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArrayLabeling):
            return NotImplemented
        if self._n != other._n or set(self._columns) != set(other._columns):
            return False
        return all(
            self.to_dict(name) == other.to_dict(name)
            for name in self._columns
        )

    def __repr__(self) -> str:
        dtypes = {name: str(col.dtype) for name, col in self._columns.items()}
        return f"ArrayLabeling(n={self._n}, columns={dtypes})"
