"""Vectorized marker and prover kernels for the generation pipeline.

This is the generation half of the array core, the mirror image of
:mod:`repro.core.batch_deciders`.  Marker kernels recompute a language's
``canonical_labeling`` as an :class:`~repro.core.arrays.ArrayLabeling`
built from CSR traversals (:mod:`repro.graphs.traversal_arrays`); prover
kernels recompute a scheme's ``prove`` certificates off the same
columns.  The dict path stays the semantic oracle, and the contract is
exact equivalence, clause for clause:

* A marker kernel must consume the ``rng`` stream exactly as the dict
  canonical does (same calls, same order), return value-identical
  states, and raise the *same* exceptions on graphs the dict path
  cannot label — the dispatcher skips the ``is_member`` re-check, so
  kernels must be member-by-construction wherever the dict path is.
  :class:`~repro.core.batch.BatchFallback` is legal only *before* the
  first rng draw; after that the kernel owns the outcome.
* A prover kernel takes no rng and must return exactly
  ``scheme.prove(config)``'s dict — including the best-effort
  certificates on off-language and junk states — or raise
  :class:`~repro.core.batch.BatchFallback` to rerun the dict prover.

Registration is by ``(module, qualname)`` string so this module imports
no scheme packages (the same mid-registry-population rule as the
deciders); subclasses that override ``canonical_labeling``/``prove``
never inherit a kernel by accident, while subclasses that keep them
(the FF17 repair) opt in by listing their own path.
"""

from __future__ import annotations

import math
import random

import numpy as np

from repro.approx.counters import counter_value, mantissa_bits_for, round_up_counter
from repro.core.arrays import ArrayLabeling, column_from_values
from repro.core.batch import BatchFallback, batch_marker, batch_prover
from repro.core.verifier import Visibility
from repro.errors import LanguageError
from repro.graphs.mst import kruskal, mst_weight
from repro.graphs.traversal_arrays import (
    bfs_arrays,
    bfs_arrays_indexed,
    pointer_depths,
)

__all__ = []  # kernels are reached through the registry, not imports


def _port_parents(csr, states):
    """``(port, parent)`` decoding pointer states like ``pointers_from_ports``.

    ``port[v]``/``parent[v]`` are ``-1`` where the state is not a valid
    port (``isinstance`` admits bools, exactly as the dict decoder does).
    """
    n = csr.n
    degrees = csr.degrees().tolist()
    port = np.full(n, -1, dtype=np.int64)
    for v, state in enumerate(states):
        if isinstance(state, int) and 0 <= state < degrees[v]:
            port[v] = state
    parent = np.full(n, -1, dtype=np.int64)
    sel = np.flatnonzero(port >= 0)
    parent[sel] = csr.indices[csr.indptr[sel] + port[sel]]
    return port, parent


def _states_of(config):
    labeling = config.labeling
    return [labeling[v] for v in range(config.graph.n)]


def _greedy_marked_column(csr, order):
    """Greedy closed-neighborhood packing in ``order`` — the shared
    canonical of independent-set, dominating-set and gap-dominating-set
    (a greedy MIS is independent, maximal and dominating at once)."""
    n = csr.n
    chosen = np.zeros(n, dtype=bool)
    blocked = np.zeros(n, dtype=bool)
    indptr, indices = csr.indptr, csr.indices
    for v in order:
        if not blocked[v]:
            chosen[v] = True
            blocked[v] = True
            blocked[indices[indptr[v] : indptr[v + 1]]] = True
    return chosen


# ---------------------------------------------------------------------------
# Marker kernels: vectorized canonical labelings.
# ---------------------------------------------------------------------------


@batch_marker(
    ("repro.schemes.spanning_tree", "SpanningTreePointerLanguage"),
    ("repro.schemes.bfs_tree", "BfsTreeLanguage"),
)
def _spanning_tree_ptr_marker(language, graph, ids, rng):
    # Both canonicals are "BFS tree from a random root, as parent ports";
    # a BFS tree is a spanning tree whose depths are graph distances, so
    # one kernel is member-by-construction for both languages.
    n = graph.n
    if n == 0:
        raise BatchFallback("empty graph")  # pre-rng: dict path decides
    csr = graph.csr()
    root = rng.randrange(n) if rng is not None else 0
    dist, _, entry = bfs_arrays(csr, root)
    unreached = np.flatnonzero(dist < 0)
    if unreached.size:
        # The dict path reads bfs()'s parent dict node by node and hits
        # the first unreached node as a missing key.
        raise KeyError(int(unreached[0]))
    column = np.empty(n, dtype=object)
    if csr.num_entries:
        column[:] = csr.back_ports[np.maximum(entry, 0)].tolist()
    column[root] = None
    return ArrayLabeling.from_column(column)


@batch_marker(("repro.schemes.spanning_tree", "SpanningTreeListLanguage"))
def _spanning_tree_list_marker(language, graph, ids, rng):
    n = graph.n
    if n == 0:
        raise BatchFallback("empty graph")
    csr = graph.csr()
    root = rng.randrange(n) if rng is not None else 0
    dist, _, entry = bfs_arrays(csr, root)
    if int((dist < 0).sum()):
        # The dict canonical happily lists one component's BFS tree; the
        # skipped is_member re-check is what rejects it there.
        raise LanguageError(
            f"{language.name}: canonical labeling is not a member (bug)"
        )
    # One discovering half-edge per non-root node; each tree edge is
    # listed from both ends as a port.
    tree = entry[dist > 0]
    ends = np.concatenate([csr.indices[tree], csr.owners[tree]])
    ports = np.concatenate([csr.back_ports[tree], csr.ports[tree]])
    order = np.argsort(ends, kind="stable")
    ports = ports[order].tolist()
    starts = np.concatenate(
        ([0], np.cumsum(np.bincount(ends, minlength=n)))
    ).tolist()
    column = np.empty(n, dtype=object)
    for v in range(n):
        column[v] = frozenset(ports[starts[v] : starts[v + 1]])
    return ArrayLabeling.from_column(column)


@batch_marker(("repro.schemes.leader", "LeaderLanguage"))
def _leader_marker(language, graph, ids, rng):
    n = graph.n
    if n == 0:
        raise BatchFallback("empty graph")
    leader = rng.randrange(n) if rng is not None else 0
    return ArrayLabeling.from_column(np.arange(n) == leader)


@batch_marker(("repro.schemes.agreement", "AgreementLanguage"))
def _agreement_marker(language, graph, ids, rng):
    n = graph.n
    if n == 0:
        raise BatchFallback("empty graph")
    value = rng.randrange(language.domain) if rng is not None else 0
    if value.bit_length() < 63:
        column = np.full(n, value, dtype=np.int64)
    else:
        column = np.empty(n, dtype=object)
        column[:] = value
    return ArrayLabeling.from_column(column)


@batch_marker(("repro.schemes.acyclic", "AcyclicLanguage"))
def _acyclic_marker(language, graph, ids, rng):
    n = graph.n
    if n == 0:
        raise BatchFallback("empty graph")
    rng = rng or random.Random(0)
    csr = graph.csr()
    # Neighbors sit in ascending index order, so a node's lower-index
    # neighbors are exactly its first ports — choosing index i among
    # them draws the same randbelow(count) as the dict's rng.choice and
    # *is* the chosen port.
    lower_counts = np.bincount(
        csr.owners[csr.indices < csr.owners], minlength=n
    ).tolist()
    states = [None] * n
    for v, count in enumerate(lower_counts):
        if count and rng.random() < 0.8:
            states[v] = rng.choice(range(count))
    return ArrayLabeling.from_column(column_from_values(states, n))


@batch_marker(
    ("repro.schemes.independent_set", "IndependentSetLanguage"),
    ("repro.schemes.dominating_set", "DominatingSetLanguage"),
)
def _greedy_mis_marker(language, graph, ids, rng):
    n = graph.n
    if n == 0:
        raise BatchFallback("empty graph")
    order = list(range(n))
    if rng is not None:
        rng.shuffle(order)
    return ArrayLabeling.from_column(_greedy_marked_column(graph.csr(), order))


@batch_marker(("repro.schemes.vertex_cover", "VertexCoverLanguage"))
def _vertex_cover_marker(language, graph, ids, rng):
    n = graph.n
    if n == 0:
        raise BatchFallback("empty graph")
    order = list(graph.edges())
    if rng is not None:
        rng.shuffle(order)
    covered = np.zeros(n, dtype=bool)
    for u, v in order:
        if not covered[u] and not covered[v]:
            covered[u] = True
            covered[v] = True
    return ArrayLabeling.from_column(covered)


@batch_marker(("repro.schemes.eccentricity", "BoundedEccentricityLanguage"))
def _eccentricity_marker(language, graph, ids, rng):
    # Consumes no rng, so falling back is free at any point.
    n = graph.n
    if n == 0:
        raise BatchFallback("empty graph")
    csr = graph.csr()
    for v in range(n):
        dist, _, _ = bfs_arrays(csr, v)
        if int(dist.min()) < 0:
            raise BatchFallback("disconnected graph")  # dict raises GraphError
        if int(dist.max()) <= language.k:
            return ArrayLabeling.from_column(np.empty(n, dtype=object))
    raise LanguageError(f"graph has radius above {language.k}")


@batch_marker(("repro.approx.dominating_set", "GapDominatingSetLanguage"))
def _gap_dominating_set_marker(language, graph, ids, rng):
    n = graph.n
    if n == 0:
        raise BatchFallback("empty graph")
    csr = graph.csr()
    order = list(range(n))
    if rng is not None:
        rng.shuffle(order)
    chosen = _greedy_marked_column(csr, order)
    if int(chosen.sum()) > language.budget:
        # A shuffled greedy can overshoot a budget fitted to the
        # deterministic order; fall back to that order (rng is already
        # consumed, so this replays the dict path's own retry).
        chosen = _greedy_marked_column(csr, range(n))
    count = int(chosen.sum())
    if count > language.budget:
        raise LanguageError(
            f"greedy dominating set ({count}) exceeds budget "
            f"{language.budget} on this graph"
        )
    return ArrayLabeling.from_column(chosen)


@batch_marker(("repro.approx.mst_weight", "GapTreeWeightLanguage"))
def _gap_tree_weight_marker(language, graph, ids, rng):
    n = graph.n
    if n == 0 or not graph.is_weighted:
        raise BatchFallback("empty or unweighted graph")
    csr = graph.csr()
    if int((bfs_arrays(csr, 0)[0] < 0).sum()):
        raise BatchFallback("disconnected graph")  # kruskal raises there
    tree = kruskal(graph)
    if mst_weight(graph, tree) > language.budget:
        raise BatchFallback("MST over budget")  # still pre-rng
    root = rng.randrange(n) if rng is not None else 0
    # Orient the MST toward the root: BFS over the tree's half-edges
    # only.  Row slices of a masked CSR keep ascending neighbor order,
    # which is the adjacency order of the dict path's rebuilt tree graph.
    tu = np.fromiter((e[0] for e in tree), dtype=np.int64, count=len(tree))
    tv = np.fromiter((e[1] for e in tree), dtype=np.int64, count=len(tree))
    tree_keys = np.sort(np.concatenate([tu * n + tv, tv * n + tu]))
    half_keys = csr.owners * n + csr.indices
    pos = np.searchsorted(tree_keys, half_keys)
    pos_safe = np.minimum(pos, max(tree_keys.size - 1, 0))
    on_tree = (pos < tree_keys.size) & (tree_keys[pos_safe] == half_keys)
    tj = np.flatnonzero(on_tree)
    sub_indptr = np.concatenate(
        ([0], np.cumsum(np.bincount(csr.owners[tj], minlength=n)))
    )
    _, _, entry = bfs_arrays_indexed(n, sub_indptr, csr.indices[tj], root)
    column = np.empty(n, dtype=object)
    if tj.size:
        column[:] = csr.back_ports[tj[np.maximum(entry, 0)]].tolist()
    column[root] = None
    return ArrayLabeling.from_column(column)


# ---------------------------------------------------------------------------
# Prover kernels: vectorized honest certificates.
# ---------------------------------------------------------------------------


@batch_prover(("repro.schemes.spanning_tree", "SpanningTreePointerScheme"))
def _spanning_tree_ptr_prover(scheme, config):
    n = config.graph.n
    if n == 0:
        raise BatchFallback("empty graph")
    csr = config.graph.csr()
    _, parent = _port_parents(csr, _states_of(config))
    depth = pointer_depths(parent)
    roots = np.flatnonzero(parent < 0)
    ids = config.ids
    root_uid = ids[int(roots[0])] if roots.size else ids[0]
    d0 = np.where(depth < 0, 0, depth).tolist()
    return {v: (root_uid, d) for v, d in enumerate(d0)}


@batch_prover(("repro.schemes.bfs_tree", "BfsTreeScheme"))
def _bfs_tree_prover(scheme, config):
    n = config.graph.n
    if n == 0:
        raise BatchFallback("empty graph")
    csr = config.graph.csr()
    _, parent = _port_parents(csr, _states_of(config))
    roots = np.flatnonzero(parent < 0)
    root = int(roots[0]) if roots.size else 0
    dist, _, _ = bfs_arrays(csr, root)
    root_uid = config.ids[root]
    d0 = np.where(dist < 0, 0, dist).tolist()
    return {v: (root_uid, d) for v, d in enumerate(d0)}


@batch_prover(("repro.schemes.leader", "LeaderScheme"))
def _leader_prover(scheme, config):
    n = config.graph.n
    if n == 0:
        raise BatchFallback("empty graph")
    states = _states_of(config)
    root = next((v for v, s in enumerate(states) if s is True), 0)
    dist, parent, _ = bfs_arrays(config.graph.csr(), root)
    ids = config.ids
    leader_uid = ids[root]
    plist = parent.tolist()
    d0 = np.where(dist < 0, 0, dist).tolist()
    return {
        v: (leader_uid, ids[v] if plist[v] < 0 else ids[plist[v]], d0[v])
        for v in range(n)
    }


@batch_prover(("repro.schemes.acyclic", "AcyclicScheme"))
def _acyclic_prover(scheme, config):
    n = config.graph.n
    if n == 0:
        raise BatchFallback("empty graph")
    _, parent = _port_parents(config.graph.csr(), _states_of(config))
    depth = pointer_depths(parent)
    d0 = np.where(depth < 0, 0, depth).tolist()
    return dict(enumerate(d0))


@batch_prover(("repro.schemes.agreement", "AgreementScheme"))
def _agreement_prover(scheme, config):
    return dict(enumerate(_states_of(config)))


@batch_prover(
    ("repro.schemes.independent_set", "IndependentSetScheme"),
    ("repro.schemes.dominating_set", "DominatingSetScheme"),
    ("repro.schemes.vertex_cover", "VertexCoverScheme"),
)
def _marked_echo_prover(scheme, config):
    return {v: bool(s) for v, s in enumerate(_states_of(config))}


@batch_prover(
    ("repro.schemes.spanning_tree", "SpanningTreeListScheme"),
    ("repro.errorsensitive.repair", "ErrorSensitiveSpanningTreeScheme"),
)
def _spanning_tree_list_prover(scheme, config):
    n = config.graph.n
    if n == 0:
        raise BatchFallback("empty graph")
    csr = config.graph.csr()
    states = _states_of(config)
    degrees = csr.degrees().tolist()
    indptr = csr.indptr.tolist()
    # A node's listing counts only when *every* element is a valid port
    # (`_listed_edges`); the echo filters element by element (`_echo`).
    listed = np.zeros(csr.num_entries, dtype=bool)
    for v, state in enumerate(states):
        if isinstance(state, frozenset) and all(
            isinstance(p, int) and 0 <= p < degrees[v] for p in state
        ):
            base = indptr[v]
            for p in state:
                listed[base + p] = True
    mutual = listed & listed[csr.reverse]
    tj = np.flatnonzero(mutual)
    sub_indptr = np.concatenate(
        ([0], np.cumsum(np.bincount(csr.owners[tj], minlength=n)))
    )
    dist, parent, _ = bfs_arrays_indexed(n, sub_indptr, csr.indices[tj], 0)
    ids = config.ids
    root_uid = ids[0]
    kkp = scheme.visibility is Visibility.KKP
    echoes = None
    if kkp:
        indices = csr.indices
        echoes = [()] * n
        for v, state in enumerate(states):
            if isinstance(state, frozenset):
                base = indptr[v]
                degree = degrees[v]
                echoes[v] = tuple(
                    sorted(
                        ids[int(indices[base + p])]
                        for p in state
                        if isinstance(p, int) and 0 <= p < degree
                    )
                )
    plist = parent.tolist()
    d0 = np.where(dist < 0, 0, dist).tolist()
    certs = {}
    for v in range(n):
        p = plist[v]
        certs[v] = (
            root_uid,
            ids[v] if p < 0 else ids[p],
            d0[v],
            echoes[v] if kkp else None,
        )
    return certs


@batch_prover(("repro.schemes.eccentricity", "BoundedEccentricityScheme"))
def _eccentricity_prover(scheme, config):
    n = config.graph.n
    if n == 0:
        raise BatchFallback("empty graph")
    csr = config.graph.csr()
    ecc = []
    for v in range(n):
        dist, _, _ = bfs_arrays(csr, v)
        if int(dist.min()) < 0:
            raise BatchFallback("disconnected graph")  # dict raises GraphError
        ecc.append(int(dist.max()))
    ids = config.ids
    center = min(range(n), key=lambda v: (ecc[v], ids[v]))
    dist, _, _ = bfs_arrays(csr, center)
    center_uid = ids[center]
    return {v: (center_uid, d) for v, d in enumerate(dist.tolist())}


@batch_prover(("repro.approx.dominating_set", "ApproxDominatingSetScheme"))
def _approx_dominating_set_prover(scheme, config):
    n = config.graph.n
    if n == 0:
        raise BatchFallback("empty graph")
    ids = config.ids
    root = min(range(n), key=lambda v: ids[v])
    dist, parent, _ = bfs_arrays(config.graph.csr(), root)
    depth = int(dist.max())
    mantissa = mantissa_bits_for(depth, scheme.alpha)
    states = _states_of(config)
    bits = [1 if s else 0 for s in states]
    d0 = np.where(dist < 0, 0, dist)
    plist = parent.tolist()
    # Deepest first, ties in node order — the dict prover's stable sort.
    totals = [0] * n
    counters: list = [None] * n
    for v in np.argsort(-d0, kind="stable").tolist():
        counter = round_up_counter(bits[v] + totals[v], mantissa)
        counters[v] = counter
        p = plist[v]
        if p >= 0:
            totals[p] += counter_value(counter)
    root_uid = ids[root]
    d0 = d0.tolist()
    certs = {}
    for v in range(n):
        p = plist[v]
        certs[v] = (
            "apx-ds",
            bool(states[v]),
            root_uid,
            d0[v],
            None if p < 0 else ids[p],
            counters[v],
        )
    return certs


@batch_prover(("repro.approx.mst_weight", "ApproxTreeWeightScheme"))
def _approx_tree_weight_prover(scheme, config):
    graph = config.graph
    n = graph.n
    if n == 0:
        raise BatchFallback("empty graph")
    csr = graph.csr()
    port, parent = _port_parents(csr, _states_of(config))
    depth = pointer_depths(parent)
    roots = np.flatnonzero(parent < 0)
    ids = config.ids
    root_uid = ids[int(roots[0])] if roots.size else ids[0]
    d0 = np.where(depth < 0, 0, depth)
    mantissa = mantissa_bits_for(int(d0.max()), scheme.alpha)
    plist = parent.tolist()
    portl = port.tolist()
    rooted = (depth >= 0).tolist()
    indptr = csr.indptr.tolist()
    weighted = graph.is_weighted
    totals = [0] * n
    counters: list = [None] * n
    for v in np.argsort(-d0, kind="stable").tolist():
        counter = round_up_counter(totals[v], mantissa)
        counters[v] = counter
        p = plist[v]
        # Cycle nodes have no certified depth; like the dict prover they
        # never contribute to their target's subtree bound.
        if p >= 0 and rooted[v]:
            add = counter_value(counter)
            if weighted:
                add += math.ceil(csr.weights[indptr[v] + portl[v]])
            totals[p] += add
    d0 = d0.tolist()
    certs = {}
    for v in range(n):
        p = plist[v]
        certs[v] = (
            "apx-tw",
            root_uid,
            d0[v],
            None if p < 0 else ids[p],
            counters[v],
        )
    return certs
