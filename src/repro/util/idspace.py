"""Identifier assignment policies.

The LOCAL model assumes nodes carry distinct identifiers from some domain
``[1, N]``.  Proof sizes depend on that domain (a spanning-tree
certificate stores a root identifier, i.e. ``Θ(log N)`` bits), so the
experiments sweep several policies:

* :func:`contiguous_ids` — ids ``1..n`` in node order (the friendliest
  domain, ``N = n``);
* :func:`permuted_ids` — a random permutation of ``1..n``;
* :func:`random_ids` — distinct ids sampled from a configurable universe
  ``[1, N]`` with ``N >> n`` (the paper's polynomial-id regime, e.g.
  ``N = n^3``);
* :func:`adversarial_ids` — ids chosen to maximise certificate sizes
  (largest values in the universe).

An assignment is a plain ``dict`` mapping node index to identifier; the
:func:`validate_ids` helper enforces distinctness and domain membership.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from repro.errors import IdentityError
from repro.util.rng import make_rng

__all__ = [
    "adversarial_ids",
    "contiguous_ids",
    "id_domain_bits",
    "permuted_ids",
    "random_ids",
    "validate_ids",
]


def contiguous_ids(nodes: Sequence[int]) -> dict[int, int]:
    """Assign ids ``1..n`` following node order."""
    return {node: index + 1 for index, node in enumerate(nodes)}


def permuted_ids(
    nodes: Sequence[int], rng: random.Random | None = None
) -> dict[int, int]:
    """Assign a uniformly random permutation of ``1..n``."""
    rng = rng or make_rng()
    ids = list(range(1, len(nodes) + 1))
    rng.shuffle(ids)
    return dict(zip(nodes, ids))


def random_ids(
    nodes: Sequence[int],
    universe: int,
    rng: random.Random | None = None,
) -> dict[int, int]:
    """Assign distinct ids sampled uniformly from ``[1, universe]``."""
    n = len(nodes)
    if universe < n:
        raise IdentityError(f"universe {universe} too small for {n} nodes")
    rng = rng or make_rng()
    return dict(zip(nodes, rng.sample(range(1, universe + 1), n)))


def adversarial_ids(nodes: Sequence[int], universe: int) -> dict[int, int]:
    """Assign the ``n`` largest ids of the universe (worst-case id sizes)."""
    n = len(nodes)
    if universe < n:
        raise IdentityError(f"universe {universe} too small for {n} nodes")
    return {node: universe - n + 1 + index for index, node in enumerate(nodes)}


def validate_ids(
    nodes: Sequence[int], ids: Mapping[int, int], universe: int | None = None
) -> None:
    """Check that ``ids`` is a distinct assignment covering ``nodes``.

    Raises :class:`~repro.errors.IdentityError` on any violation.
    """
    missing = [node for node in nodes if node not in ids]
    if missing:
        raise IdentityError(f"nodes without ids: {missing[:5]}")
    values = [ids[node] for node in nodes]
    if len(set(values)) != len(values):
        raise IdentityError("duplicate identifiers")
    if any(v < 1 for v in values):
        raise IdentityError("identifiers must be positive")
    if universe is not None and any(v > universe for v in values):
        raise IdentityError(f"identifier outside universe [1, {universe}]")


def id_domain_bits(ids: Mapping[int, int]) -> int:
    """Bits needed for the largest identifier in the assignment."""
    return max(v.bit_length() for v in ids.values()) if ids else 0
