"""Shared low-level utilities: bit codecs, RNG discipline, id spaces."""

from repro.util.bits import (
    BitReader,
    BitWriter,
    decode_obj,
    encode_obj,
    obj_bit_size,
)
from repro.util.idspace import (
    adversarial_ids,
    contiguous_ids,
    permuted_ids,
    random_ids,
    validate_ids,
)
from repro.util.rng import make_rng

__all__ = [
    "BitReader",
    "BitWriter",
    "adversarial_ids",
    "contiguous_ids",
    "decode_obj",
    "encode_obj",
    "make_rng",
    "obj_bit_size",
    "permuted_ids",
    "random_ids",
    "validate_ids",
]
