"""Deterministic randomness helpers.

Every stochastic component of the library (graph generators, corruption
operators, adversaries) takes an explicit ``random.Random`` instance so
that experiments are reproducible.  This module centralises construction
of those instances and a few sampling utilities the generators share.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["make_rng", "sample_distinct", "shuffled", "spawn"]

_DEFAULT_SEED = 0x5EED


def make_rng(seed: int | None = None) -> random.Random:
    """Return a seeded ``random.Random``.

    ``None`` selects the library-wide default seed rather than entropy, so
    that "I did not pass a seed" still reproduces: benchmarks must emit
    the same tables on every run.
    """
    return random.Random(_DEFAULT_SEED if seed is None else seed)


def spawn(rng: random.Random, salt: int = 0) -> random.Random:
    """Derive an independent child generator from ``rng``.

    Used when a routine must hand private randomness to sub-routines
    without entangling their consumption orders.
    """
    return random.Random((rng.getrandbits(64) << 8) ^ salt)


def sample_distinct(rng: random.Random, low: int, high: int, count: int) -> list[int]:
    """Sample ``count`` distinct integers from ``[low, high]`` inclusive.

    Raises ``ValueError`` when the range is too small, mirroring
    ``random.sample``.
    """
    return rng.sample(range(low, high + 1), count)


def shuffled(rng: random.Random, items: Iterable[T]) -> list[T]:
    """Return a new shuffled list of ``items`` (input left untouched)."""
    result = list(items)
    rng.shuffle(result)
    return result


def weighted_choice(
    rng: random.Random, items: Sequence[T], weights: Sequence[float]
) -> T:
    """Choose one item with the given (non-normalised) weights."""
    return rng.choices(list(items), weights=list(weights), k=1)[0]
