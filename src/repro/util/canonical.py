"""Canonical, deterministic serialization for register-shaped values.

The service layer (:mod:`repro.service`) needs graphs, labelings, and
certificate assignments to become *durable* objects: byte strings that
two processes — or two machines — derive identically from equal Python
values, so content hashes can key caches and anti-replay registries.
JSON alone cannot carry the register vocabulary faithfully (tuples,
frozensets, bytes, dict-valued certificates), so this module defines a
**tagged encoding** into JSON-able objects plus one canonical byte
rendering:

* JSON-native scalars (``None``, ``bool``, ``int``, finite ``float``,
  ``str``) pass through unchanged — JSON already distinguishes ``1``
  from ``1.0`` from ``True``, and Python's float repr round-trips
  exactly.
* ``tuple`` becomes a plain JSON array (tuples are the dominant
  certificate shape); ``list``, ``set``, ``frozenset``, ``dict`` and
  ``bytes`` become ``{"__pls__": <tag>, "v": ...}`` wrappers.  Plain
  JSON objects therefore appear *only* as wrappers, so decoding is
  unambiguous: user dicts are always wrapped.
* Unordered containers are rendered in a deterministic element order
  (sorted by each element's canonical byte form), so equal sets encode
  to equal bytes regardless of construction history.
* Values with no faithful canonical form — NaN and infinities (JSON
  round-trips them unportably), arbitrary objects — raise
  :class:`~repro.errors.CanonicalError` instead of encoding wrongly.

Canonical bytes are ``json.dumps(..., sort_keys=True,
separators=(",", ":"), ensure_ascii=True)`` encoded as UTF-8, and every
content hash is **domain-separated**: :func:`domain_hash` prefixes the
SHA-256 input with an explicit tag (``PLS_GRAPH/v1``,
``PLS_ENVELOPE/v1``, ...) so a graph hash can never collide with an
envelope hash over the same bytes — the anti-replay argument needs
exactly this separation.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any

from repro.errors import CanonicalError

__all__ = [
    "canonical_bytes",
    "decode_value",
    "domain_hash",
    "encode_value",
]

#: Wrapper key marking an encoded container; plain JSON objects appear
#: only as ``{"__pls__": tag, "v": payload}`` wrappers in the encoding.
_TAG_KEY = "__pls__"


def encode_value(value: Any) -> Any:
    """``value`` as a JSON-able object under the tagged canonical encoding."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise CanonicalError(
                f"non-finite float {value!r} has no canonical form"
            )
        return value
    if isinstance(value, tuple):
        return [encode_value(item) for item in value]
    if isinstance(value, list):
        return {_TAG_KEY: "list", "v": [encode_value(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        tag = "set" if isinstance(value, set) else "fset"
        encoded = [encode_value(item) for item in value]
        encoded.sort(key=lambda item: canonical_bytes(item))
        return {_TAG_KEY: tag, "v": encoded}
    if isinstance(value, dict):
        pairs = [
            [encode_value(key), encode_value(item)]
            for key, item in value.items()
        ]
        pairs.sort(key=lambda pair: canonical_bytes(pair[0]))
        return {_TAG_KEY: "dict", "v": pairs}
    if isinstance(value, bytes):
        return {_TAG_KEY: "bytes", "v": value.hex()}
    raise CanonicalError(
        f"value of type {type(value).__name__} has no canonical form"
    )


def decode_value(obj: Any) -> Any:
    """Inverse of :func:`encode_value` (exact round trip)."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return tuple(decode_value(item) for item in obj)
    if isinstance(obj, dict):
        tag = obj.get(_TAG_KEY)
        payload = obj.get("v")
        if tag == "list":
            return [decode_value(item) for item in payload]
        if tag == "set":
            return {decode_value(item) for item in payload}
        if tag == "fset":
            return frozenset(decode_value(item) for item in payload)
        if tag == "dict":
            return {
                decode_value(key): decode_value(item) for key, item in payload
            }
        if tag == "bytes":
            return bytes.fromhex(payload)
        raise CanonicalError(f"unknown encoding tag {tag!r}")
    raise CanonicalError(
        f"object of type {type(obj).__name__} is not a canonical encoding"
    )


def canonical_bytes(obj: Any) -> bytes:
    """The one byte rendering of an encoded (JSON-able) object.

    Key order, separators, and escaping are all pinned, so equal
    objects produce equal bytes on every platform and Python version.
    """
    try:
        text = json.dumps(
            obj,
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
            allow_nan=False,
        )
    except (TypeError, ValueError) as error:
        raise CanonicalError(f"not canonically serializable: {error}") from None
    return text.encode("utf-8")


def domain_hash(domain: str, payload: bytes) -> str:
    """Hex SHA-256 of ``payload`` under an explicit domain tag.

    The tag (e.g. ``"PLS_GRAPH/v1"``) is prefixed with a NUL separator,
    so hashes from different domains can never collide on equal
    payloads — the separation the nullifier anti-replay scheme relies
    on.
    """
    digest = hashlib.sha256()
    digest.update(domain.encode("ascii"))
    digest.update(b"\x00")
    digest.update(payload)
    return digest.hexdigest()
