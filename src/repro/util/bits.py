"""Bit-level encoding of certificates and messages.

Proof-labeling schemes are measured by their *proof size*: the maximum
number of bits in any node's certificate.  To keep that measurement
honest, every certificate produced by this library is actually serialised
to a bitstring by the codecs in this module, and "size" always means the
length of that bitstring — never a Python ``sys.getsizeof``.

Two layers are provided:

* primitive codecs — fixed-width unsigned integers, Elias-gamma
  self-delimiting naturals, zig-zag signed integers, booleans, byte
  strings;
* a generic tagged codec (:func:`encode_obj` / :func:`decode_obj`) that
  round-trips ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes``,
  ``tuple``, ``list`` and ``dict`` values.  Schemes whose certificates are
  plain tuples of integers can rely on it directly.

The :class:`BitWriter` / :class:`BitReader` pair implements the streams.
Bits are stored as Python strings of ``'0'``/``'1'`` characters: the
volumes involved in the experiments (thousands of certificates of at most
a few kilobits) make the simplicity worth far more than a packed
representation.
"""

from __future__ import annotations

import math
import struct
from typing import Any, Iterable, Iterator

from repro.errors import EncodingError

__all__ = [
    "BitReader",
    "BitWriter",
    "bit_length",
    "decode_obj",
    "encode_obj",
    "elias_gamma",
    "elias_gamma_decode",
    "fixed_uint",
    "fixed_uint_decode",
    "obj_bit_size",
    "zigzag",
    "zigzag_decode",
]


def bit_length(value: int) -> int:
    """Number of bits needed to write ``value`` in binary (at least 1).

    >>> bit_length(0), bit_length(1), bit_length(8)
    (1, 1, 4)
    """
    if value < 0:
        raise EncodingError(f"bit_length is defined for naturals, got {value}")
    return max(1, value.bit_length())


def fixed_uint(value: int, width: int) -> str:
    """Encode ``value`` as exactly ``width`` bits, most significant first."""
    if width <= 0:
        raise EncodingError(f"width must be positive, got {width}")
    if value < 0 or value >= (1 << width):
        raise EncodingError(f"{value} does not fit in {width} bits")
    return format(value, f"0{width}b")


def fixed_uint_decode(bits: str) -> int:
    """Inverse of :func:`fixed_uint` for a complete bitstring."""
    if not bits or any(b not in "01" for b in bits):
        raise EncodingError(f"not a bitstring: {bits!r}")
    return int(bits, 2)


def elias_gamma(value: int) -> str:
    """Elias-gamma code of a *positive* integer.

    The code of ``v`` is ``floor(log2 v)`` zeros followed by the binary
    expansion of ``v``; it is self-delimiting and has length
    ``2*floor(log2 v) + 1``.

    >>> elias_gamma(1), elias_gamma(2), elias_gamma(5)
    ('1', '010', '00101')
    """
    if value <= 0:
        raise EncodingError(f"Elias gamma encodes positive ints, got {value}")
    binary = format(value, "b")
    return "0" * (len(binary) - 1) + binary


def elias_gamma_decode(bits: str, start: int = 0) -> tuple[int, int]:
    """Decode one gamma codeword from ``bits`` starting at ``start``.

    Returns ``(value, next_position)``.
    """
    zeros = 0
    pos = start
    while pos < len(bits) and bits[pos] == "0":
        zeros += 1
        pos += 1
    end = pos + zeros + 1
    if pos >= len(bits) or end > len(bits):
        raise EncodingError("truncated Elias-gamma codeword")
    return int(bits[pos:end], 2), end


def zigzag(value: int) -> int:
    """Map a signed integer to a natural: 0,-1,1,-2,2 -> 0,1,2,3,4."""
    return 2 * value if value >= 0 else -2 * value - 1


_zigzag_big = zigzag


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return (value >> 1) ^ -(value & 1)


class BitWriter:
    """Accumulates bits; supports the primitive codecs as methods."""

    def __init__(self) -> None:
        self._chunks: list[str] = []

    def __len__(self) -> int:
        return sum(len(c) for c in self._chunks)

    def raw(self, bits: str) -> None:
        """Append a raw bitstring (validated)."""
        if any(b not in "01" for b in bits):
            raise EncodingError(f"not a bitstring: {bits!r}")
        self._chunks.append(bits)

    def bit(self, flag: bool) -> None:
        self._chunks.append("1" if flag else "0")

    def uint(self, value: int, width: int) -> None:
        self._chunks.append(fixed_uint(value, width))

    def gamma(self, value: int) -> None:
        self._chunks.append(elias_gamma(value))

    def nat(self, value: int) -> None:
        """Self-delimiting natural (gamma of ``value + 1``)."""
        if value < 0:
            raise EncodingError(f"nat encodes non-negatives, got {value}")
        self._chunks.append(elias_gamma(value + 1))

    def int(self, value: int) -> None:
        """Self-delimiting signed integer (zig-zag then nat)."""
        self.nat(_zigzag_big(value))

    def getvalue(self) -> str:
        return "".join(self._chunks)


class BitReader:
    """Sequential reader over a bitstring, mirroring :class:`BitWriter`."""

    def __init__(self, bits: str) -> None:
        if any(b not in "01" for b in bits):
            raise EncodingError("not a bitstring")
        self._bits = bits
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    def exhausted(self) -> bool:
        return self._pos >= len(self._bits)

    def raw(self, width: int) -> str:
        end = self._pos + width
        if end > len(self._bits):
            raise EncodingError("read past end of bitstring")
        chunk = self._bits[self._pos:end]
        self._pos = end
        return chunk

    def bit(self) -> bool:
        return self.raw(1) == "1"

    def uint(self, width: int) -> int:
        return int(self.raw(width), 2)

    def gamma(self) -> int:
        value, self._pos = elias_gamma_decode(self._bits, self._pos)
        return value

    def nat(self) -> int:
        return self.gamma() - 1

    def int(self) -> int:
        return zigzag_decode(self.nat())


# ---------------------------------------------------------------------------
# Generic tagged codec.
# ---------------------------------------------------------------------------

_TAG_NONE = 0
_TAG_FALSE = 1
_TAG_TRUE = 2
_TAG_INT = 3
_TAG_STR = 4
_TAG_TUPLE = 5
_TAG_LIST = 6
_TAG_DICT = 7
_TAG_FLOAT = 8
_TAG_BYTES = 9
_TAG_FROZENSET = 10

_TAG_WIDTH = 4


def _write_obj(writer: BitWriter, obj: Any) -> None:
    if obj is None:
        writer.uint(_TAG_NONE, _TAG_WIDTH)
    elif obj is False:
        writer.uint(_TAG_FALSE, _TAG_WIDTH)
    elif obj is True:
        writer.uint(_TAG_TRUE, _TAG_WIDTH)
    elif isinstance(obj, int):
        writer.uint(_TAG_INT, _TAG_WIDTH)
        writer.int(obj)
    elif isinstance(obj, float):
        writer.uint(_TAG_FLOAT, _TAG_WIDTH)
        packed = struct.pack(">d", obj)
        for byte in packed:
            writer.uint(byte, 8)
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        writer.uint(_TAG_STR, _TAG_WIDTH)
        writer.nat(len(data))
        for byte in data:
            writer.uint(byte, 8)
    elif isinstance(obj, bytes):
        writer.uint(_TAG_BYTES, _TAG_WIDTH)
        writer.nat(len(obj))
        for byte in obj:
            writer.uint(byte, 8)
    elif isinstance(obj, tuple):
        writer.uint(_TAG_TUPLE, _TAG_WIDTH)
        _write_seq(writer, obj)
    elif isinstance(obj, list):
        writer.uint(_TAG_LIST, _TAG_WIDTH)
        _write_seq(writer, obj)
    elif isinstance(obj, frozenset):
        writer.uint(_TAG_FROZENSET, _TAG_WIDTH)
        _write_seq(writer, sorted(obj, key=repr))
    elif isinstance(obj, dict):
        writer.uint(_TAG_DICT, _TAG_WIDTH)
        writer.nat(len(obj))
        for key in sorted(obj, key=repr):
            _write_obj(writer, key)
            _write_obj(writer, obj[key])
    else:
        raise EncodingError(f"cannot encode object of type {type(obj).__name__}")


def _write_seq(writer: BitWriter, items: Iterable[Any]) -> None:
    items = list(items)
    writer.nat(len(items))
    for item in items:
        _write_obj(writer, item)


def _read_obj(reader: BitReader) -> Any:
    tag = reader.uint(_TAG_WIDTH)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_INT:
        return reader.int()
    if tag == _TAG_FLOAT:
        data = bytes(reader.uint(8) for _ in range(8))
        return struct.unpack(">d", data)[0]
    if tag == _TAG_STR:
        length = reader.nat()
        return bytes(reader.uint(8) for _ in range(length)).decode("utf-8")
    if tag == _TAG_BYTES:
        length = reader.nat()
        return bytes(reader.uint(8) for _ in range(length))
    if tag == _TAG_TUPLE:
        return tuple(_read_seq(reader))
    if tag == _TAG_LIST:
        return list(_read_seq(reader))
    if tag == _TAG_FROZENSET:
        return frozenset(_read_seq(reader))
    if tag == _TAG_DICT:
        length = reader.nat()
        return {(_read_obj(reader)): _read_obj(reader) for _ in range(length)}
    raise EncodingError(f"unknown tag {tag}")


def _read_seq(reader: BitReader) -> Iterator[Any]:
    length = reader.nat()
    for _ in range(length):
        yield _read_obj(reader)


def encode_obj(obj: Any) -> str:
    """Serialise a Python value to a self-delimiting bitstring.

    Supported types: ``None``, ``bool``, ``int``, ``float``, ``str``,
    ``bytes``, ``tuple``, ``list``, ``frozenset`` and ``dict`` (with
    supported keys/values).  The encoding is canonical for a given value,
    so equal values always produce equal bitstrings.
    """
    writer = BitWriter()
    _write_obj(writer, obj)
    return writer.getvalue()


def decode_obj(bits: str) -> Any:
    """Inverse of :func:`encode_obj`; rejects trailing garbage."""
    reader = BitReader(bits)
    obj = _read_obj(reader)
    if not reader.exhausted():
        raise EncodingError("trailing bits after decoded object")
    return obj


def obj_bit_size(obj: Any) -> int:
    """Length in bits of the canonical encoding of ``obj``.

    This is the size function used throughout the library for
    certificates, messages, and states.
    """
    return len(encode_obj(obj))


def log2_ceil(value: int) -> int:
    """``ceil(log2(value))`` for positive integers (0 for value 1)."""
    if value <= 0:
        raise EncodingError(f"log2_ceil needs a positive int, got {value}")
    return (value - 1).bit_length()


def theoretical_log_bound(n: int, constant: float = 1.0) -> float:
    """Reference curve ``constant * log2(n)`` used by the size fits."""
    return constant * math.log2(max(2, n))


def theoretical_log2_bound(n: int, constant: float = 1.0) -> float:
    """Reference curve ``constant * log2(n) ** 2`` used by the size fits."""
    return constant * math.log2(max(2, n)) ** 2
