"""Distributed markers: building labelings *and* certificates in-network.

The paper's prover is an abstraction; in reality the certificates are
produced by the distributed algorithm that solves the task.  These
helpers run actual LOCAL algorithms and return ``(labeling states,
certificates)`` exactly as the corresponding schemes expect them — so the
pipeline *construct distributively → certify → verify in one round* can
be exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.algorithms.bfs import DistributedBfs
from repro.algorithms.fullinfo import gather_configurations
from repro.algorithms.leader_election import FloodMaxLeaderElection
from repro.core.labeling import Configuration, Labeling
from repro.local.network import Network
from repro.local.runner import run_synchronous
from repro.schemes.mst import MstScheme

__all__ = [
    "MarkerResult",
    "leader_marker",
    "mst_marker",
    "spanning_tree_marker",
]


@dataclass(frozen=True)
class MarkerResult:
    """Output of a distributed marker run.

    ``states`` is the constructed labeling (keyed by node index),
    ``certificates`` the constructed proof, and the message statistics
    describe the construction cost.
    """

    states: dict[int, Any]
    certificates: dict[int, Any]
    rounds: int
    message_count: int
    message_bits: int

    def configuration(self, network: Network) -> Configuration:
        return Configuration(
            graph=network.graph,
            labeling=Labeling(self.states),
            ids=dict(network.ids),
        )


def leader_marker(network: Network) -> MarkerResult:
    """Elect a leader and certify it, all in-network.

    Flood-max election yields at each node ``(is_leader, leader_uid,
    dist, parent_port)``; the states are the leader marks, and the
    certificates are the ``(leader_uid, parent_uid, dist)`` triples of
    :class:`~repro.schemes.leader.LeaderScheme`.
    """
    result = run_synchronous(network, FloodMaxLeaderElection())
    graph = network.graph
    states: dict[int, Any] = {}
    certs: dict[int, Any] = {}
    for node, output in result.outputs.items():
        states[node] = output.is_leader
        if output.parent_port is None:
            parent_uid = network.ids[node]
        else:
            parent_uid = network.ids[graph.neighbor_at(node, output.parent_port)]
        certs[node] = (output.leader_uid, parent_uid, output.dist)
    return MarkerResult(
        states=states,
        certificates=certs,
        rounds=result.rounds,
        message_count=result.message_count,
        message_bits=result.message_bits,
    )


def spanning_tree_marker(network: Network, root_uid: int | None = None) -> MarkerResult:
    """Build a BFS spanning tree and its ``(root_uid, dist)`` proof.

    The states are parent ports (the pointer encoding of
    :class:`~repro.schemes.spanning_tree.SpanningTreePointerScheme` and
    :class:`~repro.schemes.bfs_tree.BfsTreeScheme`).
    """
    if root_uid is None:
        root_uid = max(network.ids.values())
    result = run_synchronous(network, DistributedBfs(root_uid))
    states: dict[int, Any] = {}
    certs: dict[int, Any] = {}
    for node, output in result.outputs.items():
        states[node] = output.parent_port
        certs[node] = (output.root_uid, output.dist)
    return MarkerResult(
        states=states,
        certificates=certs,
        rounds=result.rounds,
        message_count=result.message_count,
        message_bits=result.message_bits,
    )


def mst_marker(network: Network) -> MarkerResult:
    """Construct the MST and its ``O(log² n)`` Borůvka proof in-network.

    Full-information gathering gives every node the same weighted
    configuration; each node then *locally* computes the canonical MST
    labeling and the :class:`~repro.schemes.mst.MstScheme` certificates,
    keeping only its own entries.  Determinism of the canonical
    construction makes all the local computations agree.
    """
    configs, result = gather_configurations(network)
    scheme = MstScheme()
    states: dict[int, Any] = {}
    certs: dict[int, Any] = {}
    for node in network.graph.nodes:
        config = configs[node]
        # Re-locate myself inside the reconstruction (indexed by uid).
        me = config.node_of_uid(network.ids[node])
        labeling = scheme.language.canonical_labeling(config.graph)
        member = config.with_labeling(labeling)
        my_cert = scheme.prove(member)[me]
        # Translate my pointer from reconstruction ports to real ports.
        port = labeling[me]
        if port is None:
            states[node] = None
        else:
            nb_uid = config.uid(config.graph.neighbor_at(me, port))
            actual_nb = network.node_of_uid(nb_uid)
            states[node] = network.graph.port(node, actual_nb)
        certs[node] = my_cert
    return MarkerResult(
        states=states,
        certificates=certs,
        rounds=result.rounds,
        message_count=result.message_count,
        message_bits=result.message_bits,
    )
