"""Flood-max leader election in the LOCAL model.

Every node tracks the maximum uid it has heard of and forwards it only
when its claim improves (so the message count stays near-linear on most
graphs instead of ``n`` messages per edge per round).  After ``n - 1``
rounds the maximum has reached everyone.  Because claims travel one hop
per round, the hop count on first adoption is the node's BFS distance
from the leader, and the adopting port is a BFS parent — so the election
output already contains the spanning tree toward the leader that the
leader certificates need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.local.algorithm import Halted, NodeContext, SynchronousAlgorithm

__all__ = ["FloodMaxLeaderElection", "LeaderOutput"]


@dataclass(frozen=True)
class LeaderOutput:
    """What each node knows when the election halts."""

    is_leader: bool
    leader_uid: int
    dist: int
    parent_port: int | None


class FloodMaxLeaderElection(SynchronousAlgorithm):
    """State ``(best_uid, dist, parent_port, dirty)``; halts after n rounds."""

    name = "flood-max"

    def init_state(self, ctx: NodeContext) -> Any:
        return (ctx.uid, 0, None, True)

    def send(self, ctx: NodeContext, state: Any, round_index: int) -> Mapping[int, Any]:
        best, dist, _parent, dirty = state
        if not dirty:
            return {}
        return {port: (best, dist) for port in range(ctx.degree)}

    def receive(
        self,
        ctx: NodeContext,
        state: Any,
        inbox: Mapping[int, Any],
        round_index: int,
    ) -> Any:
        best, dist, parent, _ = state
        improved = False
        for port in sorted(inbox):
            their_best, their_dist = inbox[port]
            if their_best > best or (their_best == best and their_dist + 1 < dist):
                best, dist, parent = their_best, their_dist + 1, port
                improved = True
        if round_index >= ctx.n - 1:
            return Halted(
                LeaderOutput(
                    is_leader=(best == ctx.uid),
                    leader_uid=best,
                    dist=dist,
                    parent_port=parent,
                )
            )
        return (best, dist, parent, improved)
