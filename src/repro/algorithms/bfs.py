"""Distributed BFS-tree construction in the LOCAL model.

A wave algorithm: the designated root announces distance 0 in round 0;
a node joining the wave at round ``r`` sits at distance ``r + 1``,
records the (smallest) port the wave arrived through as its parent, and
forwards the wave once.  After ``n`` rounds everyone has joined; the
output at each node is ``(parent_port, dist, root_uid)`` — at once the
spanning-tree-by-pointers labeling *and* the data of its ``Θ(log n)``
certificate, illustrating the paper's point that the marker comes for
free with the construction algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.local.algorithm import Halted, NodeContext, SynchronousAlgorithm

__all__ = ["BfsOutput", "DistributedBfs"]


@dataclass(frozen=True)
class BfsOutput:
    """Per-node result of the BFS wave."""

    parent_port: int | None
    dist: int
    root_uid: int


class DistributedBfs(SynchronousAlgorithm):
    """BFS wave from the node whose uid is ``root_uid``."""

    name = "bfs-wave"

    def __init__(self, root_uid: int) -> None:
        self.root_uid = root_uid

    def init_state(self, ctx: NodeContext) -> Any:
        if ctx.uid == self.root_uid:
            return {"dist": 0, "parent": None, "announced": False}
        return {"dist": None, "parent": None, "announced": False}

    def send(self, ctx: NodeContext, state: Any, round_index: int) -> Mapping[int, Any]:
        if state["dist"] is not None and not state["announced"]:
            return {port: state["dist"] for port in range(ctx.degree)}
        return {}

    def receive(
        self,
        ctx: NodeContext,
        state: Any,
        inbox: Mapping[int, Any],
        round_index: int,
    ) -> Any:
        new_state = dict(state)
        if state["dist"] is not None and not state["announced"]:
            new_state["announced"] = True
        if new_state["dist"] is None and inbox:
            port = min(inbox)  # deterministic parent choice
            new_state["dist"] = inbox[port] + 1
            new_state["parent"] = port
        if round_index >= ctx.n - 1:
            return Halted(
                BfsOutput(
                    parent_port=new_state["parent"],
                    dist=new_state["dist"] if new_state["dist"] is not None else 0,
                    root_uid=self.root_uid,
                )
            )
        return new_state
