"""Full-information gathering in the LOCAL model.

The LOCAL model places no bound on message size, so the canonical
technique for global problems is to flood everything: each round every
node sends its entire current knowledge of the network (tagged with its
uid) to all neighbors.  After ``diameter`` rounds every node knows the
whole labeled weighted graph; the simulator runs ``n`` rounds (nodes
know ``n``), which always suffices.

The gathered knowledge is returned as a
:class:`~repro.core.labeling.Configuration` re-indexed by sorted uid, so
a node can run any *centralised* routine (membership tests, provers) on
it — this is how the distributed MST marker computes its certificates.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.labeling import Configuration, Labeling
from repro.graphs.graph import Graph
from repro.local.algorithm import Halted, NodeContext, SynchronousAlgorithm
from repro.local.network import Network
from repro.local.runner import RunResult, run_synchronous

__all__ = ["FullInfoGather", "configuration_from_knowledge", "gather_configurations"]


class FullInfoGather(SynchronousAlgorithm):
    """Flood (nodes, edges, inputs, weights) knowledge for ``n`` rounds.

    Knowledge is a pair of frozensets: node facts ``(uid, input)`` and
    edge facts ``(uid_a, uid_b, weight_or_None)`` with ``uid_a < uid_b``.
    Messages are ``(sender_uid, knowledge)`` — the uid tag is how a
    receiver learns the edge behind each port.
    """

    name = "full-info-gather"

    def init_state(self, ctx: NodeContext) -> Any:
        node_facts = frozenset({(ctx.uid, self._freeze(ctx.input))})
        return (node_facts, frozenset())

    def send(self, ctx: NodeContext, state: Any, round_index: int) -> Mapping[int, Any]:
        return {port: (ctx.uid, state) for port in range(ctx.degree)}

    def receive(
        self,
        ctx: NodeContext,
        state: Any,
        inbox: Mapping[int, Any],
        round_index: int,
    ) -> Any:
        node_facts, edge_facts = state
        new_nodes = set(node_facts)
        new_edges = set(edge_facts)
        for port, (sender_uid, payload) in inbox.items():
            their_nodes, their_edges = payload
            new_nodes |= their_nodes
            new_edges |= their_edges
            weight = (
                ctx.port_weights[port] if ctx.port_weights is not None else None
            )
            a, b = sorted((ctx.uid, sender_uid))
            new_edges.add((a, b, weight))
        next_state = (frozenset(new_nodes), frozenset(new_edges))
        if round_index >= ctx.n - 1:
            return Halted(next_state)
        return next_state

    @staticmethod
    def _freeze(value: Any) -> Any:
        if isinstance(value, (set, frozenset)):
            return frozenset(value)
        return value


def configuration_from_knowledge(
    knowledge: Any,
) -> tuple[Configuration, dict[int, int]]:
    """Decode gathered knowledge into a configuration.

    Returns the configuration (nodes re-indexed by sorted uid) and the
    uid -> new-node-index mapping.
    """
    node_facts, edge_facts = knowledge
    uids = sorted(uid for uid, _ in node_facts)
    index = {uid: i for i, uid in enumerate(uids)}
    inputs = {index[uid]: value for uid, value in node_facts}
    weighted = any(w is not None for _, _, w in edge_facts)
    edges = [(index[a], index[b]) for a, b, _ in edge_facts]
    weights = (
        {(index[a], index[b]): w for a, b, w in edge_facts} if weighted else None
    )
    graph = Graph(len(uids), edges, weights)
    config = Configuration(
        graph=graph,
        labeling=Labeling(inputs),
        ids={index[uid]: uid for uid in uids},
    )
    return config, index


def gather_configurations(
    network: Network,
) -> tuple[dict[int, Configuration], RunResult]:
    """Run the gather; return each node's reconstructed configuration.

    On a connected network every node reconstructs the *same*
    configuration (up to the shared re-indexing), which the distributed
    markers rely on for determinism.
    """
    result = run_synchronous(network, FullInfoGather())
    configs: dict[int, Configuration] = {}
    for node, knowledge in result.outputs.items():
        configs[node], _ = configuration_from_knowledge(knowledge)
    return configs, result
