"""Distributed constructions in the LOCAL model: flooding, election,
BFS waves, and certified markers."""

from repro.algorithms.bfs import BfsOutput, DistributedBfs
from repro.algorithms.fullinfo import (
    FullInfoGather,
    configuration_from_knowledge,
    gather_configurations,
)
from repro.algorithms.leader_election import FloodMaxLeaderElection, LeaderOutput
from repro.algorithms.markers import (
    MarkerResult,
    leader_marker,
    mst_marker,
    spanning_tree_marker,
)

__all__ = [
    "BfsOutput",
    "DistributedBfs",
    "FloodMaxLeaderElection",
    "FullInfoGather",
    "LeaderOutput",
    "MarkerResult",
    "configuration_from_knowledge",
    "gather_configurations",
    "leader_marker",
    "mst_marker",
    "spanning_tree_marker",
]
